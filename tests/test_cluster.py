"""Cluster-layer contracts: real proofs, policy-invariant bytes, model time.

The fleet simulation must never change *what* is proven — only where and
when.  Every node rebuilds the same seeded SRS, so a proof is
bit-identical whichever node (and whichever routing policy) produced it,
and execute-mode clusters produce the same model-time numbers as pure
simulation over the same stream.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    FleetTimeModel,
    NodeConfig,
    ProvingCluster,
    SimIndexCache,
)
from repro.service.traffic import TrafficGenerator

SCENARIO = "uniform-small"
SEED = 7


def stream(jobs: int, *, scenario: str = SCENARIO, seed: int = SEED):
    generator = TrafficGenerator(scenario, seed=seed)
    return generator, generator.jobs(jobs)


def make_config(**kwargs) -> ClusterConfig:
    node = kwargs.pop("node", None)
    if node is None:
        node = NodeConfig(max_vars=6, wave_s=1.0)
    return ClusterConfig(node=node, **kwargs)


class TestSimIndexCache:
    def test_lru_eviction_and_stats(self):
        cache = SimIndexCache(capacity=2)
        assert cache.lookup("a") is False
        assert cache.lookup("a") is True
        assert cache.lookup("b") is False
        assert cache.lookup("c") is False  # evicts "a"
        assert "a" not in cache
        assert cache.lookup("a") is False
        assert cache.stats.hits == 1
        assert cache.stats.misses == 4
        assert cache.stats.evictions == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SimIndexCache(capacity=0)


class TestClusterSimulation:
    def test_single_node_policies_agree(self):
        """With one node every policy degenerates to the same timeline."""
        summaries = []
        for policy in ("round_robin", "least_loaded", "affinity"):
            _, jobs = stream(10)
            with ProvingCluster(make_config(num_nodes=1, policy=policy)) as c:
                c.run(jobs)
                summaries.append(c.summary()["model"])
        assert summaries[0] == summaries[1] == summaries[2]

    def test_records_cover_every_job(self):
        _, jobs = stream(12)
        with ProvingCluster(make_config(num_nodes=3)) as cluster:
            records = cluster.run(jobs)
            summary = cluster.summary()
        assert len(records) == 12
        assert sorted(r.job_id for r in records) == list(range(12))
        assert sum(summary["routing"]["jobs_per_node"].values()) == 12
        assert summary["jobs"] == 12
        busy = summary["model"]["busy_s"]
        assert summary["model"]["makespan_s"] >= max(busy.values()) - 1e-9

    def test_affinity_keeps_shapes_on_one_node(self):
        _, jobs = stream(16, scenario="zipf-mixed", seed=3)
        with ProvingCluster(make_config(num_nodes=4, policy="affinity")) as c:
            c.run(jobs)
            summary = c.summary()
        assert summary["routing"]["shape_spread"] == 1.0

    def test_respect_arrivals_inserts_idle_time(self):
        _, jobs = stream(8)
        with ProvingCluster(make_config(num_nodes=2)) as saturated:
            saturated.run(jobs)
            fast = saturated.summary()["model"]["makespan_s"]
        _, jobs = stream(8)
        paced_config = make_config(num_nodes=2, respect_arrivals=True)
        with ProvingCluster(paced_config) as paced:
            paced.run(jobs)
            slow = paced.summary()["model"]["makespan_s"]
        assert slow >= fast

    def test_oversized_circuit_rejected(self):
        generator = TrafficGenerator("jellyfish-heavy", seed=0)
        job = generator.jobs(1)[0]
        config = make_config(node=NodeConfig(max_vars=3))
        job.circuit.num_vars = 5  # forged: larger than the node SRS
        with ProvingCluster(config) as cluster:
            with pytest.raises(ValueError, match="exceeds"):
                cluster.submit(job)

    def test_membership_cycle(self):
        _, jobs = stream(8)
        with ProvingCluster(make_config(num_nodes=2)) as cluster:
            cluster.run(jobs[:4])
            new_node = cluster.add_node()
            assert new_node == "node-2"
            cluster.run(jobs[4:])
            cluster.remove_node(new_node)
            summary = cluster.summary()
        assert summary["jobs"] == 8
        # the retired node's history stays visible
        assert new_node in summary["model"]["busy_s"]

    def test_remove_with_pending_refused(self):
        _, jobs = stream(4)
        with ProvingCluster(make_config(num_nodes=1)) as cluster:
            for job in jobs:
                node_id = cluster.submit(job)
            with pytest.raises(ValueError, match="pending"):
                cluster.remove_node(node_id)

    def test_time_model_presets(self):
        assert FleetTimeModel.preset("accelerator").name == "accelerator"
        assert FleetTimeModel.preset("functional").name == "functional"
        with pytest.raises(ValueError):
            FleetTimeModel.preset("nope")


class TestClusterExecution:
    def test_proofs_real_and_verified(self):
        """Execute mode proves through real per-node services, with
        in-service verification turned on."""
        _, jobs = stream(6)
        config = make_config(
            num_nodes=2,
            execute=True,
            node=NodeConfig(max_vars=6, wave_s=1.0, verify_proofs=True),
        )
        with ProvingCluster(config) as cluster:
            cluster.run(jobs)
            results = cluster.results
            summary = cluster.summary()
        assert len(results) == 6
        assert all(r.verified for r in results)
        assert "real" in summary["cache"]
        assert summary["measured"]["makespan_s"] > 0
        # caller-held jobs keep their cluster-wide ids after execution,
        # so results/records can be joined back to the submitted jobs
        assert sorted(job.job_id for job in jobs) == list(range(6))
        # the fleet time model must not leak into the per-node service's
        # prediction metrics (the router never stamps predicted_cost_s)
        assert all(r.predicted_s is None for r in results)

    def test_policy_does_not_change_proof_bytes(self):
        """Identical job streams produce identical proofs under every
        routing policy — sharding moves work, never changes it."""
        by_policy = {}
        for policy in ("round_robin", "affinity"):
            _, jobs = stream(6)
            config = make_config(num_nodes=2, policy=policy, execute=True)
            with ProvingCluster(config) as cluster:
                cluster.run(jobs)
                results = cluster.results
                by_policy[policy] = {r.job_id: r.proof for r in results}
        assert sorted(by_policy["round_robin"]) == sorted(by_policy["affinity"])
        for job_id, proof in by_policy["round_robin"].items():
            assert proof == by_policy["affinity"][job_id], (
                f"job {job_id} proof diverged across routing policies"
            )

    def test_execute_matches_simulation_model_time(self):
        """Really proving must not perturb the model-time numbers."""
        model_sections = []
        for execute in (False, True):
            _, jobs = stream(6)
            config = make_config(num_nodes=2, execute=execute)
            with ProvingCluster(config) as cluster:
                cluster.run(jobs)
                model_sections.append(cluster.summary()["model"])
        assert model_sections[0] == model_sections[1]
