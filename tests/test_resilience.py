"""Failure-aware cluster contracts: determinism, retries, autoscaling.

ISSUE 5 satellite coverage:

* **retry determinism** — same seed + same churn trace ⇒ identical
  records, identical retry counts, and (in execute mode) bit-identical
  proof bytes across runs; crashes move work, never change it;
* **exclusion** — a job lost to a crash never returns to the node that
  lost it, and `HashRing` failover only diverts the failed node's keys;
* **failure accounting** — exhausted retries and stranded jobs are
  failed and counted as deadline misses;
* **autoscaling** — the plan-cost signal grows and shrinks the fleet
  within its configured bounds.
"""

import pytest

from repro.cluster import (
    AutoscalePolicy,
    ClusterConfig,
    NodeConfig,
    NoRoutableNodeError,
    ProvingCluster,
)
from repro.plan import FunctionalProverCostModel, OutstandingCost
from repro.service.traffic import TrafficGenerator
from repro.workloads import ChurnEvent, churn_trace, trace_for_downtime

#: crash both nodes mid-stream, recover them staggered: exercises
#: in-flight loss (retry), whole-fleet-down parking, and recovery
TWO_NODE_CHURN = (
    ChurnEvent(0.6, 0, "crash"),
    ChurnEvent(0.61, 1, "crash"),
    ChurnEvent(1.6, 0, "recover"),
    ChurnEvent(2.0, 1, "recover"),
)

#: one node down at a time: a peer is always up, so retry exclusion is
#: never waived and the strict never-return-to-loser guarantee holds.
#: node-1 first (affinity parks this stream's shapes there), then
#: node-0 while it is digesting the failed-over backlog
STAGGERED_CHURN = (
    ChurnEvent(0.6, 1, "crash"),
    ChurnEvent(1.2, 1, "recover"),
    ChurnEvent(1.35, 0, "crash"),
    ChurnEvent(2.0, 0, "recover"),
)


def make_cluster(**kwargs) -> ProvingCluster:
    defaults = dict(
        num_nodes=2,
        policy="affinity",
        time_model="functional",
        max_retries=3,
        node=NodeConfig(max_vars=4),
    )
    defaults.update(kwargs)
    return ProvingCluster(ClusterConfig(**defaults))


def scenario_run(*, execute=False, churn=TWO_NODE_CHURN, **kwargs):
    generator = TrafficGenerator("uniform-small", seed=7)
    jobs = generator.jobs(10)
    with make_cluster(execute=execute, **kwargs) as cluster:
        records = cluster.run_scenario(jobs, churn=churn)
        return records, cluster.summary(), cluster.results, cluster.failed_jobs


class TestRetryDeterminism:
    def test_same_seed_and_trace_identical_runs(self):
        """The whole scenario — records, retry counts, failure stats —
        is a pure function of (traffic seed, churn trace)."""
        first_records, first_summary, _, first_failed = scenario_run()
        second_records, second_summary, _, second_failed = scenario_run()
        assert first_records == second_records
        assert first_summary == second_summary
        assert [j.job_id for j in first_failed] == [
            j.job_id for j in second_failed
        ]
        # the handcrafted trace really exercises the failure paths
        resilience = first_summary["resilience"]
        assert resilience["crashes"] == 2
        assert resilience["retries"] >= 1
        assert resilience["parked"] > 0
        assert first_summary["deadlines"]["missed"] > 0

    def test_proof_bytes_survive_churn_and_retries(self):
        """Execute mode: crashing and retrying must not change what is
        proven — proofs are bit-identical across scenario runs *and*
        equal to a failure-free run of the same stream."""
        _, _, churned, _ = scenario_run(execute=True)
        _, _, churned_again, _ = scenario_run(execute=True)
        generator = TrafficGenerator("uniform-small", seed=7)
        with make_cluster(execute=True) as calm_cluster:
            calm_cluster.run(generator.jobs(10))
            calm = calm_cluster.results
        by_id = lambda results: {r.job_id: r.proof for r in results}  # noqa: E731
        assert by_id(churned) == by_id(churned_again)
        assert by_id(churned) == by_id(calm)

    def test_retry_counts_visible_in_metrics(self):
        records, summary, _, _ = scenario_run()
        retried = [r for r in records if r.attempt > 0]
        assert summary["retries"]["jobs_retried"] == len(retried)
        assert summary["retries"]["attempts"] == sum(r.attempt for r in retried)
        assert summary["resilience"]["retries"] >= len(retried)


class TestCrashSemantics:
    def test_lost_job_excludes_failed_node(self):
        """The retried job's record lands on a different node, carries a
        bumped attempt, and remembers who lost it."""
        generator = TrafficGenerator("uniform-small", seed=7)
        jobs = generator.jobs(10)
        with make_cluster() as cluster:
            records = cluster.run_scenario(jobs, churn=STAGGERED_CHURN)
            summary = cluster.summary()
        retried = [r for r in records if r.attempt > 0]
        assert retried, "the handcrafted trace must force a retry"
        excluded = {j.job_id: set(j.excluded_node_ids) for j in jobs}
        for record in retried:
            assert excluded[record.job_id], "lost jobs must remember the loser"
            assert record.node_id not in excluded[record.job_id]
        assert summary["resilience"]["lost_model_s"] > 0
        assert summary["resilience"]["exclusion_waivers"] == 0

    def test_requeued_job_never_returns_to_loser(self):
        """With a peer always up, exclusion is strict end to end."""
        generator = TrafficGenerator("uniform-small", seed=7)
        jobs = generator.jobs(10)
        with make_cluster() as cluster:
            records = cluster.run_scenario(jobs, churn=STAGGERED_CHURN)
        excluded = {j.job_id: set(j.excluded_node_ids) for j in jobs}
        for record in records:
            assert record.node_id not in excluded.get(record.job_id, set())

    def test_exclusion_waived_rather_than_starving(self):
        """A job excluded from every surviving node is re-homed (and the
        waiver counted) instead of parking forever — the livelock guard."""
        generator = TrafficGenerator("uniform-small", seed=7)
        jobs = generator.jobs(10)
        with make_cluster() as cluster:
            records = cluster.run_scenario(jobs, churn=TWO_NODE_CHURN)
            summary = cluster.summary()
        assert len(records) == 10, "every job must still complete"
        assert summary["resilience"]["parked"] > 0

    def test_exhausted_retries_fail_and_count_as_misses(self):
        records, summary, _, failed = scenario_run(max_retries=0)
        assert failed, "with no retry budget the lost job must drop"
        assert summary["resilience"]["failed_jobs"] == len(failed)
        assert summary["deadlines"]["missed_by_failure"] == len(
            [j for j in failed if j.deadline_s is not None]
        )
        assert len(records) + len(failed) == 10

    def test_stranded_jobs_fail_when_fleet_never_recovers(self):
        churn = (
            ChurnEvent(0.1, 0, "crash"),
            ChurnEvent(0.11, 1, "crash"),
        )
        records, summary, _, failed = scenario_run(churn=churn)
        assert len(records) + len(failed) == 10
        assert failed, "jobs parked against a dead fleet must fail"
        assert summary["resilience"]["parked"] > 0

    def test_crash_cold_starts_the_sim_cache(self):
        generator = TrafficGenerator("uniform-small", seed=7)
        jobs = generator.jobs(12)
        churn = (ChurnEvent(0.5, 0, "crash"), ChurnEvent(0.7, 0, "recover"))
        with make_cluster(num_nodes=1, policy="round_robin") as cluster:
            cluster.run_scenario(jobs, churn=churn)
            node = cluster.nodes["node-0"]
            records = cluster.records
        post_crash = [r for r in records if r.start_s >= 0.7]
        assert node.crashes == 1
        # the first job after recovery must re-install its index even
        # though the same shape was cached before the crash
        assert post_crash and post_crash[0].cache_hit is False


class TestAutoscaler:
    def test_scales_out_under_backlog_and_back_in_when_idle(self):
        """A burst then a lull: the backlog signal grows the fleet, the
        idle stretch shrinks it back, all within the policy's bounds."""
        generator = TrafficGenerator("zipf-mixed", seed=3)
        jobs = generator.jobs(17)
        for job in jobs[:16]:
            job.arrival_s = 0.0  # one thundering herd...
        jobs[16].arrival_s = 20.0  # ...then a straggler after a lull
        policy = AutoscalePolicy(
            scale_out_threshold_s=0.5,
            scale_in_threshold_s=0.1,
            interval_s=0.25,
            min_nodes=1,
            max_nodes=4,
            provision_s=0.25,
        )
        with make_cluster(
            num_nodes=1, autoscale=policy, node=NodeConfig(max_vars=6)
        ) as cluster:
            records = cluster.run_scenario(jobs, churn=())
            summary = cluster.summary()
            active_nodes = len(cluster.nodes)
        assert len(records) == 17
        autoscale = summary["resilience"]["autoscale"]
        assert autoscale["scale_outs"] >= 1
        assert autoscale["scale_ins"] >= 1
        peak_nodes = max(a["nodes"] for a in autoscale["actions"])
        assert peak_nodes <= policy.max_nodes
        assert active_nodes >= policy.min_nodes

    def test_autoscale_run_is_deterministic(self):
        def run_once():
            generator = TrafficGenerator("zipf-mixed", seed=3)
            policy = AutoscalePolicy(
                scale_out_threshold_s=0.5,
                scale_in_threshold_s=0.1,
                interval_s=0.25,
                max_nodes=4,
            )
            with make_cluster(
                num_nodes=1, autoscale=policy, node=NodeConfig(max_vars=6)
            ) as cluster:
                cluster.run_scenario(generator.jobs(24), churn=())
                return cluster.summary()

        assert run_once() == run_once()

    def test_churn_plus_autoscale_terminates(self):
        """Regression: churn + autoscaler must never spin the event loop
        forever (parked work feeds the backlog signal, a dead fleet
        provisions a replacement, and ticks stop on a frozen heap)."""
        generator = TrafficGenerator("zipf-mixed", seed=1)
        jobs = generator.jobs(48)
        horizon = max(j.arrival_s for j in jobs) + 8.0
        churn = trace_for_downtime(
            4, horizon, downtime_fraction=0.2, mttr_s=2.0, seed=101
        )
        policy = AutoscalePolicy(
            scale_out_threshold_s=0.5,
            scale_in_threshold_s=0.05,
            interval_s=0.25,
            min_nodes=1,
            max_nodes=8,
            provision_s=0.25,
        )
        with make_cluster(
            num_nodes=4,
            time_model="accelerator",
            autoscale=policy,
            node=NodeConfig(max_vars=6),
        ) as cluster:
            records = cluster.run_scenario(jobs, churn=churn)
            summary = cluster.summary()
        assert len(records) + summary["resilience"]["failed_jobs"] == 48

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(interval_s=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(scale_out_threshold_s=1.0, scale_in_threshold_s=1.5)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_nodes=4, max_nodes=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(provision_s=-1)


class TestChurnTraces:
    def test_trace_deterministic_and_sorted(self):
        first = churn_trace(4, 50.0, mttf_s=8.0, mttr_s=2.0, seed=5)
        second = churn_trace(4, 50.0, mttf_s=8.0, mttr_s=2.0, seed=5)
        assert first == second
        times = [e.at_s for e in first]
        assert times == sorted(times)
        assert all(e.kind in ("crash", "recover") for e in first)

    def test_node_streams_stable_as_fleet_grows(self):
        """Adding nodes must not perturb existing nodes' churn."""
        small = churn_trace(2, 50.0, mttf_s=8.0, mttr_s=2.0, seed=5)
        large = churn_trace(4, 50.0, mttf_s=8.0, mttr_s=2.0, seed=5)
        large_first_two = [e for e in large if e.node_index < 2]
        assert small == large_first_two

    def test_alternates_crash_recover_per_node(self):
        trace = churn_trace(3, 100.0, mttf_s=5.0, mttr_s=1.0, seed=1)
        for node_index in range(3):
            kinds = [e.kind for e in trace if e.node_index == node_index]
            for i, kind in enumerate(kinds):
                assert kind == ("crash" if i % 2 == 0 else "recover")

    def test_downtime_fraction_targets(self):
        trace = trace_for_downtime(
            8, 2000.0, downtime_fraction=0.2, mttr_s=2.0, seed=0
        )
        down = {i: 0.0 for i in range(8)}
        crashed_at = {}
        for event in trace:
            if event.kind == "crash":
                crashed_at[event.node_index] = event.at_s
            else:
                down[event.node_index] += event.at_s - crashed_at.pop(
                    event.node_index
                )
        for node_index, at_s in crashed_at.items():
            down[node_index] += 2000.0 - at_s
        fraction = sum(down.values()) / (8 * 2000.0)
        assert 0.1 < fraction < 0.3, f"empirical downtime {fraction:.3f}"
        assert trace_for_downtime(4, 100.0, downtime_fraction=0.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            churn_trace(0, 10.0, mttf_s=1.0, mttr_s=1.0)
        with pytest.raises(ValueError):
            churn_trace(1, 10.0, mttf_s=0.0, mttr_s=1.0)
        with pytest.raises(ValueError):
            trace_for_downtime(1, 10.0, downtime_fraction=1.0)
        with pytest.raises(ValueError):
            ChurnEvent(1.0, 0, "explode")


class TestOutstandingCost:
    def test_add_release_and_signal(self):
        generator = TrafficGenerator("uniform-small", seed=0)
        job = generator.jobs(1)[0]
        tracker = OutstandingCost(FunctionalProverCostModel())
        tracker.track("a")
        tracker.track("b")
        cost = tracker.add("a", job)
        assert cost > 0
        assert tracker.node_s("a") == pytest.approx(cost)
        assert tracker.total_s == pytest.approx(cost)
        assert tracker.mean_per_node_s() == pytest.approx(cost / 2)
        tracker.release("a", cost)
        assert tracker.total_s == 0.0
        tracker.drop("b")
        assert "b" not in tracker

    def test_unknown_node_rejected(self):
        tracker = OutstandingCost(FunctionalProverCostModel())
        with pytest.raises(KeyError):
            tracker.release("ghost")


class TestScenarioVsWave:
    def test_calm_scenario_matches_arrival_respecting_run(self):
        """With no churn and no autoscaler, the scenario path reproduces
        the failure-free drain's records exactly (affinity routing does
        not depend on submission timing)."""
        generator = TrafficGenerator("zipf-mixed", seed=4)
        with make_cluster(
            num_nodes=3, node=NodeConfig(max_vars=6)
        ) as scenario_cluster:
            scenario_records = scenario_cluster.run_scenario(
                generator.jobs(16), churn=()
            )
        generator = TrafficGenerator("zipf-mixed", seed=4)
        with make_cluster(
            num_nodes=3, respect_arrivals=True, node=NodeConfig(max_vars=6)
        ) as wave_cluster:
            wave_records = wave_cluster.run(generator.jobs(16))
        assert scenario_records == wave_records

    def test_scenario_rejects_oversized_circuits_up_front(self):
        generator = TrafficGenerator("jellyfish-heavy", seed=0)
        jobs = generator.jobs(2)
        jobs[1].circuit.num_vars = 9  # forged
        with make_cluster(node=NodeConfig(max_vars=6)) as cluster:
            with pytest.raises(ValueError, match="exceeds"):
                cluster.run_scenario(jobs)
            assert cluster.records == []

    def test_router_error_surfaces_outside_scenarios(self):
        with make_cluster(num_nodes=1) as cluster:
            cluster.router.mark_down("node-0")
            generator = TrafficGenerator("uniform-small", seed=0)
            with pytest.raises(NoRoutableNodeError):
                cluster.submit(generator.jobs(1)[0])
