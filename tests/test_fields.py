"""Unit and property tests for repro.fields."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import (
    FQ_MODULUS,
    FR_MODULUS,
    Fq,
    Fr,
    MontgomeryContext,
    OpCounter,
    PrimeField,
    batch_inverse,
)

fr_ints = st.integers(min_value=0, max_value=FR_MODULUS - 1)


class TestPrimeFieldBasics:
    def test_moduli_are_the_published_bls12_381_primes(self):
        assert FR_MODULUS.bit_length() == 255
        assert FQ_MODULUS.bit_length() == 381
        # r divides q^12 - 1 (pairing embedding degree 12)
        assert pow(17, FR_MODULUS, FR_MODULUS) == 17  # Fermat sanity
        assert (FQ_MODULUS**12 - 1) % FR_MODULUS == 0

    def test_element_construction_reduces(self):
        assert Fr(FR_MODULUS + 5).value == 5
        assert Fr(-1).value == FR_MODULUS - 1

    def test_zero_one_identities(self):
        x = Fr(1234)
        assert x + Fr.zero == x
        assert x * Fr.one == x
        assert x * Fr.zero == Fr.zero

    def test_mixed_int_arithmetic(self):
        assert Fr(10) + 5 == Fr(15)
        assert 5 + Fr(10) == Fr(15)
        assert Fr(10) - 15 == Fr(-5)
        assert 15 - Fr(10) == Fr(5)
        assert 3 * Fr(7) == Fr(21)

    def test_cross_field_mixing_rejected(self):
        with pytest.raises(ValueError):
            Fr(1) + Fq(1)

    def test_division_and_inverse(self):
        x = Fr(98765)
        assert x / x == Fr.one
        assert (Fr.one / x) * x == Fr.one
        assert x.inverse() * x == Fr.one

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fr.zero.inverse()
        with pytest.raises(ZeroDivisionError):
            Fr.inv(0)

    def test_pow(self):
        x = Fr(3)
        assert x**0 == Fr.one
        assert x**5 == Fr(243)
        # Fermat's little theorem
        assert x ** (FR_MODULUS - 1) == Fr.one

    def test_neg(self):
        assert -Fr(5) + Fr(5) == Fr.zero

    def test_immutability(self):
        x = Fr(5)
        with pytest.raises(AttributeError):
            x.value = 6

    def test_repr_and_bool(self):
        assert "Fr" in repr(Fr(3))
        assert bool(Fr(3)) and not bool(Fr.zero)

    def test_field_equality_by_modulus(self):
        other = PrimeField(FR_MODULUS, "Fr-clone")
        assert other == Fr
        assert hash(other) == hash(Fr)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            PrimeField(10, "bad")

    def test_elements_factory(self):
        xs = Fr.elements([1, 2, 3])
        assert xs == [Fr(1), Fr(2), Fr(3)]

    def test_rand_in_range(self):
        rng = random.Random(7)
        for _ in range(20):
            assert 0 <= Fr.rand(rng).value < FR_MODULUS


class TestRawOps:
    @given(a=fr_ints, b=fr_ints)
    @settings(max_examples=50)
    def test_raw_add_sub_roundtrip(self, a, b):
        assert Fr.sub(Fr.add(a, b), b) == a

    @given(a=fr_ints, b=fr_ints)
    @settings(max_examples=50)
    def test_raw_mul_matches_bigint(self, a, b):
        assert Fr.mul(a, b) == a * b % FR_MODULUS

    @given(a=st.integers(min_value=1, max_value=FR_MODULUS - 1))
    @settings(max_examples=30)
    def test_raw_inv(self, a):
        assert Fr.mul(a, Fr.inv(a)) == 1

    def test_neg_raw(self):
        assert Fr.neg(0) == 0
        assert Fr.add(Fr.neg(17), 17) == 0


class TestBatchInverse:
    def test_matches_scalar_inverse(self, rng):
        values = [rng.randrange(1, FR_MODULUS) for _ in range(50)]
        expected = [Fr.inv(v) for v in values]
        assert batch_inverse(Fr, values) == expected

    def test_empty(self):
        assert batch_inverse(Fr, []) == []

    def test_single(self):
        assert batch_inverse(Fr, [2]) == [Fr.inv(2)]

    def test_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            batch_inverse(Fr, [1, 0, 2])

    @given(st.lists(st.integers(min_value=1, max_value=FR_MODULUS - 1),
                    min_size=1, max_size=20))
    @settings(max_examples=20)
    def test_property(self, values):
        invs = batch_inverse(Fr, values)
        assert all(v * i % FR_MODULUS == 1 for v, i in zip(values, invs))


class TestMontgomery:
    def test_limb_counts_match_paper_datapaths(self):
        assert MontgomeryContext(Fr).limbs == 4  # 255-bit datapath
        assert MontgomeryContext(Fq).limbs == 6  # 381-bit datapath

    def test_domain_roundtrip(self):
        ctx = MontgomeryContext(Fr)
        for v in [0, 1, 2, FR_MODULUS - 1, 123456789]:
            assert ctx.from_mont(ctx.to_mont(v)) == v

    @given(a=fr_ints, b=fr_ints)
    @settings(max_examples=30)
    def test_mont_mul_matches_plain(self, a, b):
        ctx = MontgomeryContext(Fr)
        assert ctx.mul(a, b) == a * b % FR_MODULUS

    @given(a=fr_ints, b=fr_ints)
    @settings(max_examples=30)
    def test_mont_domain_product(self, a, b):
        ctx = MontgomeryContext(Fr)
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        assert ctx.from_mont(ctx.mont_mul(am, bm)) == a * b % FR_MODULUS

    def test_redc_range_check(self):
        ctx = MontgomeryContext(Fr)
        with pytest.raises(ValueError):
            ctx.redc(FR_MODULUS * ctx.r + 1)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryContext.__new__(MontgomeryContext).__init__(
                PrimeField(2, "F2")
            )

    def test_fq_mont_mul(self):
        ctx = MontgomeryContext(Fq)
        a, b = 2**380 - 3, 2**379 + 7
        assert ctx.mul(a, b) == a * b % FQ_MODULUS


class TestOpCounter:
    def test_counts_by_kind(self):
        c = OpCounter()
        c.count_mul(3, kind="ee")
        c.count_mul(2, kind="pl")
        c.count_mul(1)
        c.count_add(4)
        c.count_inv()
        assert (c.mul, c.ee_mul, c.pl_mul, c.add, c.inv) == (6, 3, 2, 4, 1)

    def test_merge_and_labels(self):
        a, b = OpCounter(), OpCounter()
        a.bump("zerocheck", 2)
        b.bump("zerocheck")
        b.bump("permcheck", 5)
        a.count_mul(1)
        b.count_mul(2)
        m = a.merged(b)
        assert m.mul == 3
        assert m.labels == {"zerocheck": 3, "permcheck": 5}

    def test_reset(self):
        c = OpCounter()
        c.count_mul(5, kind="ee")
        c.bump("x")
        c.reset()
        assert c.mul == 0 and c.ee_mul == 0 and not c.labels
