"""The plan layer's semantic anchor (ISSUE 3 satellite): ProofPlan's
predicted modmul/MSM counts equal the **actual** ``OpCounter`` tallies of
a real ``HyperPlonkProver.prove()`` run, for Vanilla and Jellyfish at two
sizes each.

If a protocol change alters what a proof computes, this fails before any
scheduler or pricing decision silently drifts.
"""

import random

import pytest

from repro.fields import OpCounter, list_backends
from repro.hyperplonk import (
    HyperPlonkProver,
    MultilinearKZG,
    TrapdoorSRS,
    preprocess,
)
from repro.plan import ProofPlan
from repro.service.traffic import GATE_TYPES, synthesize_circuit

SHAPES = [
    ("vanilla", 2),
    ("vanilla", 3),
    ("jellyfish", 2),
    ("jellyfish", 3),
]


@pytest.fixture(scope="module")
def kzg():
    return MultilinearKZG(TrapdoorSRS(4, random.Random(0xC0)))


def prove_with_counter(gate: str, mu: int, kzg, backend=None) -> OpCounter:
    circuit = synthesize_circuit(GATE_TYPES[gate], mu, witness_seed=11)
    pidx, _ = preprocess(circuit, kzg)
    counter = OpCounter()
    HyperPlonkProver(circuit, pidx, kzg, backend=backend).prove(counter)
    return counter


class TestPlanVsProver:
    @pytest.mark.parametrize("gate,mu", SHAPES)
    def test_predicted_ops_match_actual(self, gate, mu, kzg):
        actual = prove_with_counter(gate, mu, kzg)
        predicted = ProofPlan.for_shape(gate, mu).predicted_prover_ops()
        assert actual.ee_mul == predicted.ee_mul
        assert actual.pl_mul == predicted.pl_mul
        assert actual.mul == predicted.total_mul
        assert actual.inv == predicted.inv
        assert actual.labels == predicted.msm_counts

    @pytest.mark.parametrize(
        "backend", [b for b in list_backends() if b != "reference"]
    )
    def test_fast_backends_count_identically(self, backend, kzg):
        """Every fast backend keeps tally parity, so one plan predicts
        them all — prediction is backend-invariant by construction."""
        actual = prove_with_counter("vanilla", 3, kzg, backend=backend)
        predicted = ProofPlan.for_shape("vanilla", 3).predicted_prover_ops()
        assert actual.mul == predicted.total_mul
        assert actual.ee_mul == predicted.ee_mul
        assert actual.pl_mul == predicted.pl_mul
        assert actual.labels == predicted.msm_counts

    def test_predictions_scale_with_size(self):
        """Tallies roughly double per extra variable (sanity on the
        closed forms, not the prover)."""
        small = ProofPlan.for_shape("vanilla", 3).predicted_prover_ops()
        big = ProofPlan.for_shape("vanilla", 4).predicted_prover_ops()
        assert 1.9 < big.total_mul / small.total_mul < 2.4
        assert big.msm_counts == small.msm_counts  # counts, not sizes
