"""Carbon subsystem contracts: trace, power, policies, suspend/resume.

The :mod:`repro.carbon` stack must be deterministic under seeds (same
trace and job stream → bit-identical schedules and gram totals),
restartable (two iterations of one trace agree), and *conservative*:
parking a deferrable job at a phase boundary and resuming it later must
never change what is proven, only when — the suspend/resume end-to-end
tests here pin records, event kinds, counters, and (in execute mode)
proof bytes.
"""

import math

import pytest

from repro.carbon import (
    CARBON_POLICIES,
    CarbonConfig,
    CarbonIntensityTrace,
    CarbonRuntime,
    JOULES_PER_KWH,
    NodePowerModel,
    node_watts,
)
from repro.cluster import ClusterConfig, FleetTimeModel, NodeConfig, ProvingCluster
from repro.cluster.nodes import ProverNode
from repro.fleet.events import EventLog
from repro.service.jobs import RequestClass
from repro.service.traffic import TrafficGenerator


def make_trace(**kwargs) -> CarbonIntensityTrace:
    kwargs.setdefault("base_g_per_kwh", 300.0)
    kwargs.setdefault("amplitude", 0.5)
    kwargs.setdefault("period_s", 240.0)
    kwargs.setdefault("noise", 0.05)
    kwargs.setdefault("seed", 3)
    return CarbonIntensityTrace(**kwargs)


class TestCarbonIntensityTrace:
    def test_events_restart_identically(self):
        """The EventSource contract: every iteration restarts from the
        seed, and an identically-configured trace agrees sample-for-
        sample."""
        trace = make_trace(horizon_s=60.0)
        first = list(trace.events())
        second = list(trace.events())
        assert first == second
        assert first == list(make_trace(horizon_s=60.0).events())
        assert len(first) == 13  # windows 0..12 cover [0, 60]

    def test_events_match_point_queries(self):
        trace = make_trace(horizon_s=50.0)
        for at_s, intensity in trace.events():
            assert intensity == trace.intensity_at(at_s)
        times = [at_s for at_s, _ in trace.events()]
        assert times == sorted(times)

    def test_events_require_horizon(self):
        with pytest.raises(ValueError):
            list(make_trace().events())

    def test_seed_moves_noise_only(self):
        a = make_trace(seed=1, horizon_s=40.0)
        b = make_trace(seed=2, horizon_s=40.0)
        assert list(a.events()) != list(b.events())
        # noiseless traces are seed-independent pure sinusoids
        a0 = make_trace(seed=1, noise=0.0)
        b0 = make_trace(seed=2, noise=0.0)
        assert a0.intensity_at(17.0) == b0.intensity_at(17.0)

    def test_noiseless_sinusoid_exact(self):
        trace = make_trace(noise=0.0)
        window_mid = 7.5  # window [5, 10) at step 5
        expected = 300.0 * (
            1.0 + 0.5 * math.sin(2.0 * math.pi * window_mid / 240.0)
        )
        assert trace.intensity_at(6.0) == pytest.approx(expected)
        # piecewise constant: any query inside the window agrees
        assert trace.intensity_at(5.0) == trace.intensity_at(9.999)

    def test_grid_events_step_intensity(self):
        plain = make_trace(seed=5)
        stepped = make_trace(seed=5, grid_events=[(20.0, 2.0)])
        assert stepped.intensity_at(10.0) == plain.intensity_at(10.0)
        assert stepped.intensity_at(30.0) == pytest.approx(
            2.0 * plain.intensity_at(30.0)
        )

    def test_integral_exact_and_additive(self):
        trace = make_trace()
        # exact piecewise-constant integral over partial windows
        manual = (
            trace.intensity_at(0.0) * 2.0  # [3, 5) of window 0
            + trace.intensity_at(5.0) * 5.0  # [5, 10)
            + trace.intensity_at(10.0) * 2.0  # [10, 12)
        )
        assert trace.integral_g_s_per_kwh(3.0, 12.0) == pytest.approx(manual)
        whole = trace.integral_g_s_per_kwh(0.0, 100.0)
        split = trace.integral_g_s_per_kwh(
            0.0, 37.3
        ) + trace.integral_g_s_per_kwh(37.3, 100.0)
        assert whole == pytest.approx(split)
        assert trace.integral_g_s_per_kwh(10.0, 10.0) == 0.0

    def test_carbon_g_prices_constant_draw(self):
        trace = make_trace(noise=0.0, amplitude=0.0)
        # flat 300 g/kWh at 1000 W for one hour = 300 g
        assert trace.carbon_g(0.0, 3600.0, 1000.0) == pytest.approx(300.0)
        assert JOULES_PER_KWH == 3.6e6

    def test_next_low_start_finds_the_trough(self):
        trace = make_trace(noise=0.0)
        start = trace.next_low_start(0.0, 200.0, 240.0)
        # 300·(1+0.5·sin) ≤ 200 needs sin ≤ -2/3: mid-trough, ~148 s in
        assert start is not None and 140.0 <= start <= 160.0
        assert trace.intensity_at(start) <= 200.0
        # already-low instants are returned as-is
        assert trace.next_low_start(start + 1.0, 200.0, 240.0) == start + 1.0
        # no qualifying window before until_s
        assert trace.next_low_start(0.0, 200.0, 30.0) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_g_per_kwh": 0.0},
            {"amplitude": 1.0},
            {"amplitude": -0.1},
            {"period_s": 0.0},
            {"noise": 1.0},
            {"step_s": 0.0},
            {"horizon_s": -1.0},
            {"grid_events": [(-1.0, 2.0)]},
            {"grid_events": [(5.0, 0.0)]},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_trace(**kwargs)


class TestNodePowerModel:
    def test_accelerator_preset_prices_the_paper_rollup(self):
        power = NodePowerModel.accelerator()
        assert power.name == "accelerator"
        # Table V total accelerator power plus host-side install watts
        assert power.prove_w == pytest.approx(200.738953)
        assert power.install_w == 250.0
        assert power.idle_w == pytest.approx(30.0)
        assert power.busy_w == 250.0

    def test_functional_preset(self):
        power = NodePowerModel.functional()
        assert (power.prove_w, power.install_w) == (350.0, 350.0)
        assert power.idle_w == pytest.approx(42.0)
        assert power.busy_w == 350.0

    def test_job_energy_splits_install_and_prove(self):
        power = NodePowerModel(prove_w=100.0, install_w=200.0, idle_w=10.0)
        assert power.job_energy_j(2.0, 3.0) == pytest.approx(700.0)
        assert power.busy_w == 200.0

    def test_node_watts_resolves_presets(self):
        assert node_watts("accelerator").name == "accelerator"
        assert node_watts(FleetTimeModel.preset("functional")).name == (
            "functional"
        )
        with pytest.raises(ValueError):
            node_watts("bogus")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prove_w": 0.0, "install_w": 1.0, "idle_w": 0.0},
            {"prove_w": 1.0, "install_w": -1.0, "idle_w": 0.0},
            {"prove_w": 1.0, "install_w": 1.0, "idle_w": -0.1},
        ],
    )
    def test_bad_watts_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NodePowerModel(**kwargs)


class TestCarbonConfig:
    def test_policy_registry(self):
        assert CARBON_POLICIES == ("none", "carbon_waiting", "edd")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "greedy"},
            {"power_cap_w": 0.0},
            {"low_threshold_g_per_kwh": 0.0},
            {"max_wait_s": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CarbonConfig(trace=make_trace(), **kwargs)

    def test_runtime_defaults_and_passive(self):
        time_model = FleetTimeModel.preset("functional")
        runtime = CarbonRuntime(CarbonConfig(trace=make_trace()), time_model)
        assert runtime.passive
        assert runtime.threshold_g_per_kwh == 300.0
        assert runtime.max_wait_s == 240.0
        assert runtime.power.name == "functional"
        active = CarbonRuntime(
            CarbonConfig(trace=make_trace(), policy="edd"), time_model
        )
        assert not active.passive

    def test_cap_below_one_busy_node_rejected(self):
        config = CarbonConfig(trace=make_trace(), power_cap_w=100.0)
        with pytest.raises(ValueError):
            CarbonRuntime(config, FleetTimeModel.preset("functional"))


def _node(time_model: str = "functional") -> ProverNode:
    return ProverNode(
        "node-0", NodeConfig(max_vars=6), FleetTimeModel.preset(time_model)
    )


def _queued_jobs(node: ProverNode, count: int = 6) -> list:
    jobs = TrafficGenerator("uniform-small", seed=9).jobs(count)
    for job_id, job in enumerate(jobs):
        job.job_id = job_id
        node.submit(job)
    return jobs


class TestSelectJob:
    def _runtime(self, policy: str) -> CarbonRuntime:
        return CarbonRuntime(
            CarbonConfig(trace=make_trace(noise=0.0), policy=policy),
            FleetTimeModel.preset("functional"),
        )

    def test_edd_orders_by_deadline(self):
        node = _node()
        jobs = _queued_jobs(node, 3)
        jobs[0].deadline_s = 9.0
        jobs[1].deadline_s = 2.0
        jobs[2].deadline_s = None
        job, hold = self._runtime("edd").select_job(
            node, now_s=0.0, respect_arrivals=False
        )
        assert job is jobs[1] and hold is None

    def test_carbon_waiting_serves_realtime_first(self):
        """A drained low-window backlog of deferrable work must never
        starve realtime jobs, whatever the queue (arrival) order."""
        node = _node()
        jobs = _queued_jobs(node, 3)
        jobs[0].request_class = RequestClass.DEFERRABLE
        jobs[1].request_class = RequestClass.DEFERRABLE
        jobs[2].request_class = RequestClass.REALTIME
        job, hold = self._runtime("carbon_waiting").select_job(
            node, now_s=0.0, respect_arrivals=False
        )
        assert job is jobs[2] and hold is None

    def test_carbon_waiting_holds_deferrable_at_high_intensity(self):
        node = _node()
        jobs = _queued_jobs(node, 1)
        jobs[0].request_class = RequestClass.DEFERRABLE
        jobs[0].deadline_s = 500.0
        runtime = CarbonRuntime(
            CarbonConfig(
                trace=make_trace(noise=0.0),
                policy="carbon_waiting",
                low_threshold_g_per_kwh=200.0,
            ),
            FleetTimeModel.preset("functional"),
        )
        job, hold = runtime.select_job(node, now_s=0.0, respect_arrivals=False)
        assert job is jobs[0]
        assert hold is not None and 140.0 <= hold <= 160.0
        assert runtime.trace.intensity_at(hold) <= 200.0


def _suspend_jobs() -> list:
    """A long deferrable job then a realtime one: the cap-preemption
    fixture (fresh objects per call — runs stamp ids in place)."""
    pool = TrafficGenerator("uniform-small", seed=1).jobs(50)
    deferrable = next(j for j in pool if j.circuit.num_vars == 4)
    realtime = next(j for j in pool if j.circuit.num_vars == 3)
    deferrable.request_class = RequestClass.DEFERRABLE
    deferrable.arrival_s = 0.0
    deferrable.deadline_s = None
    realtime.request_class = RequestClass.REALTIME
    realtime.arrival_s = 0.02
    realtime.deadline_s = 10.0
    return [deferrable, realtime]


def _cap_config(*, execute: bool = False, carbon: bool = True) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=2,
        policy="round_robin",
        time_model="functional",
        execute=execute,
        node=NodeConfig(max_vars=6, wave_s=None),
        carbon=(
            CarbonConfig(trace=make_trace(), power_cap_w=400.0)
            if carbon
            else None
        ),
    )


class TestSuspendResume:
    def test_cap_parks_deferrable_at_phase_boundary(self):
        """A realtime start blocked by the cap parks the running
        deferrable job at its next checkpoint, then it resumes and both
        proofs complete with no busy seconds lost."""
        with ProvingCluster(_cap_config()) as cluster:
            records = cluster.run_scenario(_suspend_jobs())
            events = cluster.events
            carbon = cluster.carbon
        assert len(records) == 2 and not cluster.failed_jobs
        by_id = {r.job_id: r for r in records}
        parked = by_id[0]
        assert parked.suspensions == 1
        assert parked.suspended_s > 0.0
        assert by_id[1].suspensions == 0
        # the realtime job ran inside the suspension window
        assert by_id[1].finish_s < parked.finish_s
        assert carbon.suspends == 1 and carbon.resumes == 1
        assert carbon.cap_deferrals >= 1 and carbon.cap_breaches == 0
        kinds = events.kinds()
        assert kinds["job_suspend"] == 1
        assert kinds["job_resume"] == 1
        assert kinds["power_cap"] >= 1
        suspend = next(e for e in events if e.kind == "job_suspend")
        assert suspend.job_id == 0
        assert suspend.detail["done_s"] > 0.0
        assert suspend.detail["remaining_s"] > 0.0
        # banked + resumed segments add up to the full job cost
        assert parked.suspended_s == pytest.approx(
            parked.finish_s
            - parked.start_s
            - parked.install_model_s
            - parked.prove_model_s
        )

    def test_suspend_schedule_is_deterministic(self):
        runs = []
        for _ in range(2):
            with ProvingCluster(_cap_config()) as cluster:
                records = cluster.run_scenario(_suspend_jobs())
                runs.append(
                    (records, cluster.events.events, cluster.summary())
                )
        assert runs[0][0] == runs[1][0]
        assert EventLog.replay_identical(runs[0][1], runs[1][1])
        assert runs[0][2] == runs[1][2]

    def test_parking_does_not_change_proof_bytes(self):
        """Execute mode: a parked-and-resumed schedule proves exactly
        the bytes the carbon-free schedule proves."""
        with ProvingCluster(_cap_config(execute=True)) as cluster:
            cluster.run_scenario(_suspend_jobs())
            assert cluster.carbon.suspends == 1
            capped = {r.job_id: r.proof for r in cluster.results}
        with ProvingCluster(_cap_config(execute=True, carbon=False)) as cluster:
            cluster.run_scenario(_suspend_jobs())
            free = {r.job_id: r.proof for r in cluster.results}
        assert capped.keys() == free.keys() and len(capped) == 2
        for job_id, proof in capped.items():
            assert proof == free[job_id], (
                f"job {job_id} proof diverged under cap-driven parking"
            )

    def test_cap_floor_keeps_the_fleet_live(self):
        """A cap that cannot admit even one busy node breaches (counted)
        instead of deadlocking."""
        jobs = _suspend_jobs()[:1]
        config = _cap_config()
        # 2 nodes: one busy draws 350 + 42 = 392 W > 360 W cap
        config.carbon.power_cap_w = 360.0
        with ProvingCluster(config) as cluster:
            records = cluster.run_scenario(jobs)
            carbon = cluster.carbon
            events = cluster.events
        assert len(records) == 1 and not cluster.failed_jobs
        assert carbon.cap_breaches >= 1
        floor = next(e for e in events if e.kind == "power_cap")
        assert floor.detail["reason"] == "floor"

    def test_held_start_lands_in_a_low_window(self):
        """carbon_waiting moves a deferrable start into the trough and
        leaves realtime starts untouched."""
        jobs = _suspend_jobs()
        jobs[0].deadline_s = 500.0  # slack to reach the trough
        config = ClusterConfig(
            num_nodes=2,
            policy="round_robin",
            time_model="functional",
            node=NodeConfig(max_vars=6, wave_s=None),
            carbon=CarbonConfig(
                trace=make_trace(noise=0.0),
                policy="carbon_waiting",
                low_threshold_g_per_kwh=200.0,
            ),
        )
        with ProvingCluster(config) as cluster:
            records = cluster.run_scenario(jobs)
            carbon = cluster.carbon
            events = cluster.events
        by_id = {r.job_id: r for r in records}
        trace = carbon.trace
        assert by_id[0].start_s >= 140.0
        assert trace.intensity_at(by_id[0].start_s) <= 200.0
        assert by_id[1].start_s == pytest.approx(0.02)
        assert carbon.held_starts >= 1
        hold = next(
            e
            for e in events
            if e.kind == "scheduler_choice" and e.detail["action"] == "hold"
        )
        assert hold.job_id == 0
        assert hold.detail["policy"] == "carbon_waiting"

    def test_summary_carries_the_carbon_block(self):
        with ProvingCluster(_cap_config()) as cluster:
            cluster.run_scenario(_suspend_jobs())
            summary = cluster.summary()
        carbon = summary["carbon"]
        assert carbon["policy"] == "none"
        assert carbon["power_cap_w"] == 400.0
        assert carbon["energy_j"] > 0.0
        assert carbon["carbon_g"] > 0.0
        assert carbon["carbon_per_proof_g"] > 0.0
        assert carbon["suspends"] == 1 and carbon["resumes"] == 1
        assert carbon["energy_lost_j"] == 0.0
