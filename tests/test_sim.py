"""Contracts of the discrete-event core (`repro.sim`).

The cluster engine's determinism rests on three properties locked here:
total event order ``(time, priority, sequence)``, lazy cancellation
(a cancelled handle never fires, even if already heaped), and seeded
event sources that are pure functions of their constructor arguments.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PoissonSource, Simulator, TraceSource, install


class TestSimulator:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        end = sim.run()
        assert fired == ["a", "b", "c"]
        assert end == 3.0
        assert sim.fired == 3

    def test_ties_break_by_priority_then_sequence(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("late"), priority=5)
        sim.schedule(1.0, lambda: fired.append("first"), priority=0)
        sim.schedule(1.0, lambda: fired.append("second"), priority=0)
        sim.run()
        assert fired == ["first", "second", "late"]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule_after(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        assert sim.run() == 3.0
        assert fired == [0, 1, 2, 3]

    def test_past_scheduling_rejected(self):
        sim = Simulator(start_s=5.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule(4.0, lambda: None)
        with pytest.raises(ValueError, match=">= 0"):
            sim.schedule_after(-1.0, lambda: None)

    def test_cancelled_events_never_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        handle.cancel()
        sim.run()
        assert fired == ["kept"]
        assert sim.fired == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.peek_time() == 2.0
        assert len(sim) == 1

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.schedule(3.0, lambda: fired.append(3))
        assert sim.run(until_s=2.0) == 2.0
        assert fired == [1, 2]
        assert sim.run() == 3.0  # the rest still fires
        assert fired == [1, 2, 3]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False


class TestSources:
    def test_trace_source_sorts_by_time(self):
        source = TraceSource([(2.0, "b"), (1.0, "a"), (3.0, "c")])
        assert [p for _, p in source] == ["a", "b", "c"]
        assert len(source) == 3

    def test_poisson_source_deterministic_per_seed(self):
        first = list(PoissonSource(4.0, 10.0, seed=7))
        second = list(PoissonSource(4.0, 10.0, seed=7))
        other = list(PoissonSource(4.0, 10.0, seed=8))
        assert first == second
        assert first != other
        assert all(0.0 <= t < 10.0 for t, _ in first)
        times = [t for t, _ in first]
        assert times == sorted(times)

    def test_poisson_source_validates(self):
        with pytest.raises(ValueError):
            PoissonSource(0.0, 10.0)
        with pytest.raises(ValueError):
            PoissonSource(1.0, -1.0)

    def test_install_pumps_source_into_simulator(self):
        sim = Simulator()
        seen = []
        handles = install(sim, TraceSource([(1.0, "x"), (2.0, "y")]), seen.append)
        assert len(handles) == 2
        sim.run()
        assert seen == ["x", "y"]

    def test_install_handles_are_cancellable(self):
        sim = Simulator()
        seen = []
        handles = install(sim, TraceSource([(1.0, "x"), (2.0, "y")]), seen.append)
        handles[1].cancel()
        sim.run()
        assert seen == ["x"]


class TestFastPath:
    """The ISSUE 8 fast path: O(1) len, compaction, schedule_fast."""

    def test_len_is_live_count_not_heap_size(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert len(sim) == 10
        for handle in handles[:4]:
            handle.cancel()
        assert len(sim) == 6
        handles[0].cancel()  # cancel is idempotent
        assert len(sim) == 6
        sim.run()
        assert len(sim) == 0

    def test_schedule_fast_orders_with_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("slow-2"))
        sim.schedule_fast(1.0, lambda: fired.append("fast-1"))
        sim.schedule_fast(2.0, lambda: fired.append("fast-2-late"), priority=5)
        sim.schedule(2.0, lambda: fired.append("slow-2-tie"))
        sim.schedule_fast(2.0, lambda: fired.append("fast-2-tie"))
        end = sim.run()
        # same (time, priority) resolves by schedule order across APIs
        assert fired == [
            "fast-1",
            "slow-2",
            "slow-2-tie",
            "fast-2-tie",
            "fast-2-late",
        ]
        assert end == 2.0
        assert sim.fired == 5

    def test_schedule_fast_rejects_past(self):
        sim = Simulator(start_s=5.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_fast(4.0, lambda: None)

    def test_compaction_preserves_order_and_counts(self):
        sim = Simulator()
        fired = []
        keep = []
        # far more cancelled than live entries forces compaction
        doomed = [
            sim.schedule(1000.0 + i, lambda: fired.append("doomed"))
            for i in range(512)
        ]
        for i in range(8):
            at = float(i + 1)
            sim.schedule(at, lambda at=at: fired.append(at))
            keep.append(at)
        for handle in doomed:
            handle.cancel()
        assert len(sim) == 8
        assert sim.peek_time() == 1.0
        end = sim.run()
        assert fired == keep
        assert end == 8.0

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("once"))
        sim.schedule(2.0, lambda: fired.append("later"))
        sim.run(until_s=1.5)
        handle.cancel()  # already fired; must not corrupt live counts
        assert len(sim) == 1
        sim.run()
        assert fired == ["once", "later"]

    def test_run_with_only_cancelled_left_drains_to_now(self):
        # matches the pre-fast-path engine: an emptied heap returns the
        # current clock, never advancing to the horizon
        sim = Simulator()
        handle = sim.schedule(5.0, lambda: None)
        handle.cancel()
        assert sim.run(until_s=10.0) == 0.0
        assert sim.now == 0.0
        assert len(sim) == 0

    def test_horizon_with_pending_cancelled_and_live(self):
        sim = Simulator()
        fired = []
        doomed = sim.schedule(4.0, lambda: fired.append("doomed"))
        sim.schedule(6.0, lambda: fired.append("live"))
        doomed.cancel()
        # the horizon stop must purge the cancelled head, then park at
        # the horizon with the live event still queued
        assert sim.run(until_s=5.0) == 5.0
        assert fired == []
        assert len(sim) == 1
        assert sim.run() == 6.0
        assert fired == ["live"]


class TestFastPathProperties:
    """Randomized order invariance under cancellation + compaction."""

    @given(
        ops=st.lists(
            st.tuples(
                st.floats(
                    min_value=0.0,
                    max_value=100.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.integers(min_value=-3, max_value=3),
                st.sampled_from(["schedule", "fast", "cancelled"]),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_total_order_survives_cancellation(self, ops):
        """Surviving events fire in exact (time, priority, seq) order
        no matter how many neighbours were cancelled around them —
        i.e. threshold compaction never reorders or drops live events."""
        sim = Simulator()
        fired = []
        expected = []
        doomed = []
        for seq, (at, priority, kind) in enumerate(ops):
            if kind == "fast":
                sim.schedule_fast(
                    at,
                    lambda key=(at, priority, seq): fired.append(key),
                    priority=priority,
                )
                expected.append((at, priority, seq))
            else:
                handle = sim.schedule(
                    at,
                    lambda key=(at, priority, seq): fired.append(key),
                    priority=priority,
                )
                if kind == "cancelled":
                    doomed.append(handle)
                else:
                    expected.append((at, priority, seq))
        for handle in doomed:
            handle.cancel()
        assert len(sim) == len(expected)
        sim.run()
        assert fired == sorted(expected)
        assert len(sim) == 0
        assert sim.fired == len(expected)


@pytest.mark.slow
class TestMillionEventSmoke:
    def test_million_event_churn_run_is_exact(self):
        """The churn-heavy bench driver at 10⁶ events: the fired count
        and final clock are pure model values and must be bit-exact
        (the same figures BENCH_traffic.json pins)."""
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parents[1] / "tools")
        )
        from profile_sim import churn_heavy

        sim = Simulator()
        fired, final_clock, len_probe = churn_heavy(
            sim, 1_000_000, fast=True
        )
        assert fired == 1_000_007
        assert round(final_clock, 6) == 163.7826
        assert len_probe == 58_590
        assert sim.fired == fired
        assert len(sim) == 0
