"""Contracts of the discrete-event core (`repro.sim`).

The cluster engine's determinism rests on three properties locked here:
total event order ``(time, priority, sequence)``, lazy cancellation
(a cancelled handle never fires, even if already heaped), and seeded
event sources that are pure functions of their constructor arguments.
"""

import pytest

from repro.sim import PoissonSource, Simulator, TraceSource, install


class TestSimulator:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        end = sim.run()
        assert fired == ["a", "b", "c"]
        assert end == 3.0
        assert sim.fired == 3

    def test_ties_break_by_priority_then_sequence(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("late"), priority=5)
        sim.schedule(1.0, lambda: fired.append("first"), priority=0)
        sim.schedule(1.0, lambda: fired.append("second"), priority=0)
        sim.run()
        assert fired == ["first", "second", "late"]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule_after(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        assert sim.run() == 3.0
        assert fired == [0, 1, 2, 3]

    def test_past_scheduling_rejected(self):
        sim = Simulator(start_s=5.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule(4.0, lambda: None)
        with pytest.raises(ValueError, match=">= 0"):
            sim.schedule_after(-1.0, lambda: None)

    def test_cancelled_events_never_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        handle.cancel()
        sim.run()
        assert fired == ["kept"]
        assert sim.fired == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.peek_time() == 2.0
        assert len(sim) == 1

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.schedule(3.0, lambda: fired.append(3))
        assert sim.run(until_s=2.0) == 2.0
        assert fired == [1, 2]
        assert sim.run() == 3.0  # the rest still fires
        assert fired == [1, 2, 3]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False


class TestSources:
    def test_trace_source_sorts_by_time(self):
        source = TraceSource([(2.0, "b"), (1.0, "a"), (3.0, "c")])
        assert [p for _, p in source] == ["a", "b", "c"]
        assert len(source) == 3

    def test_poisson_source_deterministic_per_seed(self):
        first = list(PoissonSource(4.0, 10.0, seed=7))
        second = list(PoissonSource(4.0, 10.0, seed=7))
        other = list(PoissonSource(4.0, 10.0, seed=8))
        assert first == second
        assert first != other
        assert all(0.0 <= t < 10.0 for t, _ in first)
        times = [t for t, _ in first]
        assert times == sorted(times)

    def test_poisson_source_validates(self):
        with pytest.raises(ValueError):
            PoissonSource(0.0, 10.0)
        with pytest.raises(ValueError):
            PoissonSource(1.0, -1.0)

    def test_install_pumps_source_into_simulator(self):
        sim = Simulator()
        seen = []
        handles = install(sim, TraceSource([(1.0, "x"), (2.0, "y")]), seen.append)
        assert len(handles) == 2
        sim.run()
        assert seen == ["x", "y"]

    def test_install_handles_are_cancellable(self):
        sim = Simulator()
        seen = []
        handles = install(sim, TraceSource([(1.0, "x"), (2.0, "y")]), seen.append)
        handles[1].cancel()
        sim.run()
        assert seen == ["x"]
