"""Hypothesis property tests on core invariants across the stack."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import Fr
from repro.gates.compiler import compile_expr
from repro.gates.expr import Const, Var
from repro.hw.config import SumCheckUnitConfig
from repro.hw.cpu_baseline import sumcheck_modmuls
from repro.hw.scheduler import (
    PolyProfile,
    TermProfile,
    nodes_for_degree,
    schedule_polynomial,
)
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.mle import DenseMLE, Term, VirtualPolynomial, build_eq_mle
from repro.sumcheck import Transcript, prove_sumcheck, verify_sumcheck
from repro.sumcheck.univariate import lagrange_eval_at

P = Fr.modulus


# -- strategies -----------------------------------------------------------------

@st.composite
def term_profiles(draw):
    n_factors = draw(st.integers(min_value=1, max_value=5))
    factors = tuple(
        (f"m{draw(st.integers(min_value=0, max_value=7))}",
         draw(st.integers(min_value=1, max_value=4)))
        for _ in range(n_factors)
    )
    # de-duplicate names within the term
    seen = {}
    for name, power in factors:
        seen[name] = seen.get(name, 0) + power
    return TermProfile(tuple(sorted(seen.items())))


@st.composite
def poly_profiles(draw):
    terms = draw(st.lists(term_profiles(), min_size=1, max_size=6))
    return PolyProfile(name="prop", terms=terms)


# -- scheduler invariants ----------------------------------------------------------

class TestSchedulerProperties:
    @given(poly=poly_profiles(),
           ees=st.integers(min_value=2, max_value=8),
           pls=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_schedule_covers_all_factor_slots(self, poly, ees, pls):
        sched = schedule_polynomial(poly, ees, pls)
        slots = sum(n.factor_slots for n in sched.nodes)
        assert slots == sum(t.degree for t in poly.terms)

    @given(poly=poly_profiles(),
           ees=st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_node_counts_match_closed_form(self, poly, ees):
        sched = schedule_polynomial(poly, ees, 4)
        per_term: dict[int, int] = {}
        for node in sched.nodes:
            per_term[node.term_index] = per_term.get(node.term_index, 0) + 1
        for idx, term in enumerate(poly.terms):
            assert per_term[idx] == nodes_for_degree(term.degree, ees)

    @given(poly=poly_profiles(),
           ees=st.integers(min_value=2, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_nodes_never_exceed_capacity(self, poly, ees):
        sched = schedule_polynomial(poly, ees, 4)
        for node in sched.nodes:
            cap = ees if node.node_index == 0 else ees - 1
            assert 1 <= node.factor_slots <= cap

    @given(poly=poly_profiles())
    @settings(max_examples=40, deadline=None)
    def test_more_ees_never_more_steps(self, poly):
        steps = [schedule_polynomial(poly, e, 4).num_steps
                 for e in range(2, 9)]
        assert steps == sorted(steps, reverse=True)

    @given(poly=poly_profiles(),
           ees=st.integers(min_value=2, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_fetch_each_unique_mle_once(self, poly, ees):
        sched = schedule_polynomial(poly, ees, 4)
        fetched = [n for node in sched.nodes for n in node.new_names]
        assert sorted(fetched) == sorted(poly.unique_mles)


# -- hardware model invariants --------------------------------------------------------

class TestModelProperties:
    @given(poly=poly_profiles(),
           mu=st.integers(min_value=2, max_value=20),
           bw=st.sampled_from([64, 512, 4096]))
    @settings(max_examples=30, deadline=None)
    def test_latency_positive_and_bw_monotone(self, poly, mu, bw):
        cfg = SumCheckUnitConfig(pes=4, ees_per_pe=4, pls_per_pe=4,
                                 sram_bank_words=1024)
        slow = SumCheckUnitModel(cfg, bw).run(poly, mu)
        fast = SumCheckUnitModel(cfg, bw * 2).run(poly, mu)
        assert slow.latency_s > 0
        assert fast.latency_s <= slow.latency_s + 1e-12

    @given(poly=poly_profiles(), mu=st.integers(min_value=2, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_utilization_bounded(self, poly, mu):
        cfg = SumCheckUnitConfig(pes=2, ees_per_pe=3, pls_per_pe=3)
        run = SumCheckUnitModel(cfg, 1024).run(poly, mu)
        assert 0.0 <= run.utilization <= 1.0

    @given(poly=poly_profiles(), mu=st.integers(min_value=2, max_value=18))
    @settings(max_examples=30, deadline=None)
    def test_cpu_modmuls_positive_and_monotone_in_mu(self, poly, mu):
        assert sumcheck_modmuls(poly, mu) < sumcheck_modmuls(poly, mu + 1)


# -- protocol-layer properties -------------------------------------------------------

class TestProtocolProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32),
           mu=st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_sumcheck_roundtrip_any_compiled_expression(self, seed, mu):
        """Random small expressions compile, prove, and verify."""
        rng = random.Random(seed)
        a, b, c = Var("a"), Var("b"), Var("c")
        pool = [a * b + c, (a + b) * (b + c), a * a * b - c + 1,
                (a - b) * (a + b) + c * c]
        expr = pool[rng.randrange(len(pool))]
        compiled = compile_expr("prop", expr + Const(1))
        terms = compiled.bind(Fr)
        mles = {n: DenseMLE.random(Fr, mu, rng) for n in compiled.mle_names}
        vp = VirtualPolynomial(Fr, terms, mles)
        proof = prove_sumcheck(vp, Transcript(Fr))
        verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_round_polynomial_consistency(self, seed):
        """Each round polynomial's s(0)+s(1) equals evaluating the claim
        chain — the SumCheck soundness invariant, checked directly."""
        rng = random.Random(seed)
        mles = {n: DenseMLE.random(Fr, 3, rng) for n in ("x", "y")}
        vp = VirtualPolynomial(
            Fr, [Term(1, (("x", 1), ("y", 2)))], mles)
        proof = prove_sumcheck(vp, Transcript(Fr))
        claim = proof.claim
        for evals, r in zip(proof.round_evals, proof.challenges):
            assert (evals[0] + evals[1]) % P == claim % P
            claim = lagrange_eval_at(Fr, evals, r)
        assert vp.combine(proof.final_evals) == claim

    @given(seed=st.integers(min_value=0, max_value=2**32),
           mu=st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_eq_partition_of_unity(self, seed, mu):
        rng = random.Random(seed)
        r = [rng.randrange(P) for _ in range(mu)]
        eq = build_eq_mle(Fr, r)
        assert sum(eq.table) % P == 1
