"""Cross-validation: hardware-model op counts vs the functional prover.

DESIGN.md §4: the performance model's predicted operation counts must
match what the instrumented functional SumCheck actually does.
(Full-protocol op tallies are pinned plan-side by
``tests/test_plan_crosscheck.py``, DESIGN.md §6.)  The two
sides count slightly differently by construction:

* product-lane muls: the model charges (deg_t - 1) multiplies per term
  per evaluation point (a product of deg_t extension values), while the
  functional prover also multiplies by the term coefficient slot — one
  extra mul per term per point;
* update muls: the functional prover folds after every round including
  the last (producing the final evaluations), one extra fold per MLE
  versus the model's rounds 2..μ accounting.

These offsets are exact, so the identities below pin both bookkeepings.
"""


import pytest

from repro.fields import Fr, OpCounter
from repro.gates import gate_by_id
from repro.hw.config import SumCheckUnitConfig
from repro.hw.scheduler import PolyProfile
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.mle import DenseMLE, VirtualPolynomial
from repro.sumcheck import Transcript, prove_sumcheck

NUM_VARS = 5


def functional_counts(gate_id: int, rng) -> tuple[OpCounter, VirtualPolynomial]:
    spec = gate_by_id(gate_id)
    scalars = {s: rng.randrange(1, Fr.modulus)
               for s in spec.compiled.scalar_names}
    terms = spec.compiled.bind(Fr, scalars)
    mles = {n: DenseMLE.random(Fr, NUM_VARS, rng)
            for n in spec.compiled.mle_names}
    vp = VirtualPolynomial(Fr, terms, mles)
    counter = OpCounter()
    prove_sumcheck(vp, Transcript(Fr), counter=counter)
    return counter, vp


@pytest.mark.parametrize("gate_id", [0, 1, 2, 3, 20, 22, 24])
class TestOpCountCrossValidation:
    def test_product_lane_muls(self, gate_id, rng):
        counter, vp = functional_counts(gate_id, rng)
        d = vp.degree
        pairs_total = (1 << NUM_VARS) - 1
        sum_deg = sum(t.degree for t in vp.terms)
        expected = pairs_total * (d + 1) * sum_deg
        assert counter.pl_mul == expected

    def test_model_pl_muls_offset_by_coefficient_slot(self, gate_id, rng):
        counter, vp = functional_counts(gate_id, rng)
        d = vp.degree
        pairs_total = (1 << NUM_VARS) - 1
        num_terms = len(vp.terms)
        model_pl = pairs_total * (d + 1) * sum(
            t.degree - 1 for t in vp.terms)
        assert counter.pl_mul == model_pl + pairs_total * (d + 1) * num_terms

    def test_update_muls(self, gate_id, rng):
        counter, vp = functional_counts(gate_id, rng)
        num_uniq = len(vp.unique_mle_names)
        # μ folds per MLE: sizes 2^{μ-1} + ... + 1 = 2^μ - 1 outputs
        expected = num_uniq * ((1 << NUM_VARS) - 1)
        assert counter.ee_mul == expected


class TestModelUsefulWorkConsistency:
    """The model's useful-muls tally obeys the same closed forms."""

    @pytest.mark.parametrize("gate_id", [2, 20, 22])
    def test_useful_muls_closed_form(self, gate_id):
        profile = PolyProfile.from_gate(gate_by_id(gate_id))
        cfg = SumCheckUnitConfig(pes=4, ees_per_pe=4, pls_per_pe=5,
                                 sram_bank_words=1024)
        model = SumCheckUnitModel(cfg, 2048)
        mu = 10
        run = model.run(profile, mu, fuse_fr=False)
        d = profile.degree
        pairs_total = (1 << mu) - 1
        pl = pairs_total * (d + 1) * sum(t.degree - 1 for t in profile.terms)
        # updates: rounds 2..μ, two muls per pair per distinct MLE
        upd = 2 * len(profile.unique_mles) * (pairs_total - (1 << (mu - 1)))
        assert run.useful_muls == pytest.approx(pl + upd)

    def test_fused_fr_adds_build_muls(self):
        profile = PolyProfile.from_gate(gate_by_id(20))
        cfg = SumCheckUnitConfig(pes=4, ees_per_pe=4, pls_per_pe=5)
        model = SumCheckUnitModel(cfg, 2048)
        mu = 8
        fused = model.run(profile, mu, fuse_fr=True)
        plain = model.run(profile, mu, fuse_fr=False)
        # Build-MLE fusion adds 2 muls per round-1 pair
        assert fused.useful_muls - plain.useful_muls == 2 * (1 << (mu - 1))


class TestSchedulerAgainstFunctionalReuse:
    def test_distinct_fetch_set_matches_unique_mles(self, rng):
        """Every unique MLE is fetched exactly once per round."""
        from repro.hw.scheduler import schedule_polynomial

        for gate_id in (20, 22, 24):
            profile = PolyProfile.from_gate(gate_by_id(gate_id))
            sched = schedule_polynomial(profile, ees=4, pls=5)
            fetched = [n for node in sched.nodes for n in node.new_names]
            assert sorted(fetched) == sorted(profile.unique_mles)

    def test_factor_slots_cover_total_degree(self):
        from repro.hw.scheduler import schedule_polynomial

        for gate_id in range(25):
            profile = PolyProfile.from_gate(gate_by_id(gate_id))
            for ees in (2, 3, 7):
                sched = schedule_polynomial(profile, ees=ees, pls=5)
                slots = sum(n.factor_slots for n in sched.nodes)
                total_degree = sum(t.degree for t in profile.terms)
                assert slots == total_degree
