"""Carbon pricing without a policy is arithmetically invisible.

With ``policy="none"`` and no power cap the :class:`CarbonRuntime` is
*passive*: the engine skips every scheduling hook and only the joule/
gram pricing runs.  These tests pin the construction-level consequence
— a carbon-enabled-but-capless run is **bit-identical** (records, event
log, and summary minus the ``carbon`` block) to a carbon-free run of
the same seeded stream, across the failure-free, churn, and autoscale
paths — plus the ROADMAP item 5 schema fix: the event log carries the
``autoscale_decision`` / ``scheduler_choice`` / ``job_suspend`` /
``job_resume`` / ``power_cap`` kinds and still round-trips and replays
bit-identically through JSONL.
"""

from repro.carbon import CarbonConfig, CarbonIntensityTrace
from repro.cluster import ClusterConfig, NodeConfig, ProvingCluster
from repro.cluster.autoscale import AutoscalePolicy
from repro.fleet.events import EVENT_KINDS, EventLog
from repro.service.jobs import RequestClass
from repro.service.traffic import TrafficGenerator
from repro.workloads import trace_for_downtime

SCENARIO = "zipf-mixed"
SEED = 7
JOBS = 40


def passive_carbon() -> CarbonConfig:
    return CarbonConfig(
        trace=CarbonIntensityTrace(amplitude=0.6, noise=0.1, seed=SEED),
        policy="none",
    )


def make_config(*, carbon: bool, **kwargs) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=3,
        time_model="functional",
        node=NodeConfig(max_vars=6, wave_s=None),
        carbon=passive_carbon() if carbon else None,
        **kwargs,
    )


def run_scenario(config: ClusterConfig, *, churn=()) -> tuple:
    jobs = TrafficGenerator(SCENARIO, seed=SEED).jobs(JOBS)
    with ProvingCluster(config) as cluster:
        records = cluster.run_scenario(jobs, churn=churn)
        return records, cluster.events.events, cluster.summary()


class TestCaplessParity:
    def test_scenario_run_bit_identical(self):
        free_records, free_events, free_summary = run_scenario(
            make_config(carbon=False)
        )
        records, events, summary = run_scenario(make_config(carbon=True))
        assert records == free_records
        assert EventLog.replay_identical(events, free_events)
        carbon = summary.pop("carbon")
        assert summary == free_summary
        # ...and the pricing really ran on the identical schedule
        assert carbon["policy"] == "none"
        assert carbon["energy_j"] > 0.0
        assert carbon["carbon_g"] > 0.0

    def test_churn_path_bit_identical(self):
        """Crash accounting (lost segments) must not perturb the retry
        schedule either."""
        churn = trace_for_downtime(
            3, 20.0, downtime_fraction=0.2, mttr_s=1.0, seed=SEED
        )
        free = run_scenario(make_config(carbon=False), churn=churn)
        priced = run_scenario(make_config(carbon=True), churn=churn)
        assert priced[0] == free[0]
        assert EventLog.replay_identical(priced[1], free[1])
        summary = dict(priced[2])
        carbon = summary.pop("carbon")
        assert summary == free[2]
        # lost joules track lost model seconds exactly: both zero when
        # every crash hit an idle node, both positive otherwise
        lost_s = summary["resilience"]["lost_model_s"]
        assert (carbon["energy_lost_j"] > 0.0) == (lost_s > 0.0)

    def test_closed_drain_bit_identical(self):
        jobs = TrafficGenerator(SCENARIO, seed=SEED).jobs(JOBS)
        with ProvingCluster(make_config(carbon=False)) as cluster:
            free_records = cluster.run(jobs)
            free_events = cluster.events.events
        jobs = TrafficGenerator(SCENARIO, seed=SEED).jobs(JOBS)
        with ProvingCluster(make_config(carbon=True)) as cluster:
            records = cluster.run(jobs)
            events = cluster.events.events
            assert cluster.summary()["carbon"]["carbon_g"] > 0.0
        assert records == free_records
        assert EventLog.replay_identical(events, free_events)


class TestEventSchemaRoundTrip:
    def test_new_kinds_registered(self):
        for kind in (
            "autoscale_decision",
            "scheduler_choice",
            "job_suspend",
            "job_resume",
            "power_cap",
        ):
            assert kind in EVENT_KINDS

    def test_autoscale_log_replays_bit_identically(self):
        """An autoscale + churn run emits ``autoscale_decision`` lines
        and the whole log survives a JSONL round trip."""
        config = make_config(
            carbon=False,
            autoscale=AutoscalePolicy(
                scale_out_threshold_s=0.4,
                scale_in_threshold_s=0.05,
                interval_s=0.5,
                min_nodes=1,
                max_nodes=6,
                provision_s=0.2,
            ),
        )
        jobs = TrafficGenerator(SCENARIO, seed=SEED).jobs(60)
        with ProvingCluster(config) as cluster:
            cluster.run_scenario(jobs)
            events = cluster.events
        kinds = events.kinds()
        assert kinds.get("autoscale_decision", 0) > 0
        reloaded = EventLog.loads(events.to_jsonl())
        assert EventLog.replay_identical(events, reloaded)

    def test_carbon_log_replays_bit_identically(self):
        """The suspend/resume/cap kinds also survive the round trip."""
        gen = TrafficGenerator("uniform-small", seed=1)
        jobs = gen.jobs(6)
        for index, job in enumerate(jobs):
            job.deadline_s = None
            if index % 2 == 0:
                job.request_class = RequestClass.DEFERRABLE
        config = ClusterConfig(
            num_nodes=2,
            time_model="functional",
            node=NodeConfig(max_vars=6, wave_s=None),
            carbon=CarbonConfig(
                trace=CarbonIntensityTrace(noise=0.0, seed=SEED),
                policy="carbon_waiting",
                power_cap_w=400.0,
                low_threshold_g_per_kwh=200.0,
            ),
        )
        with ProvingCluster(config) as cluster:
            records = cluster.run_scenario(jobs)
            events = cluster.events
        assert len(records) + len(cluster.failed_jobs) == 6
        assert events.kinds().get("scheduler_choice", 0) > 0
        reloaded = EventLog.loads(events.to_jsonl())
        assert EventLog.replay_identical(events, reloaded)
