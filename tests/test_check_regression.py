"""Unit tests for the CI bench-regression gate (benchmarks/check_regression.py).

The gate itself guards the benchmark records, so its comparison rules —
exact structural keys, ±tolerance headline ratios, loud failures on
missing keys — get locked down here with synthetic records.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)

SUMCHECK_RECORD = {
    "benchmark": "sumcheck_fastpath",
    "unit": "seconds",
    "backend": "fused",
    "speedup_floor_mu12": 2.0,
    "array_speedup_floor_mu12": 1.5,
    "rows": [
        {
            "name": "vanilla-mu12",
            "gate_id": 20,
            "mu": 12,
            "degree": 4,
            "num_mles": 9,
            "num_terms": 5,
            "reference_s": 0.2,
            "fused_s": 0.08,
            "speedup": 2.5,
            "acceptance_row": True,
            "array_s": 0.1,
            "array_speedup": 2.0,
            "array_vs_fused": 0.8,
        },
    ],
}


def clone(doc):
    return json.loads(json.dumps(doc))


class TestExtract:
    def test_plain_and_nested_paths(self):
        doc = {"a": {"b": 3}, "c": 1}
        assert check_regression.extract(doc, "c") == [("c", 1)]
        assert check_regression.extract(doc, "a.b") == [("a.b", 3)]

    def test_list_wildcard(self):
        doc = {"rows": [{"v": 1}, {"v": 2}]}
        assert check_regression.extract(doc, "rows[*].v") == [
            ("rows[0].v", 1),
            ("rows[1].v", 2),
        ]

    def test_dict_wildcard(self):
        doc = {"costs": {"b": 2.0, "a": 1.0}}
        assert check_regression.extract(doc, "costs.*") == [
            ("costs.a", 1.0),
            ("costs.b", 2.0),
        ]

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            check_regression.extract({"a": 1}, "b")


class TestCompareRecords:
    def test_identical_records_pass(self):
        problems = check_regression.compare_records(
            "BENCH_sumcheck.json", SUMCHECK_RECORD, clone(SUMCHECK_RECORD)
        )
        assert problems == []

    def test_ratio_within_tolerance_passes(self):
        fresh = clone(SUMCHECK_RECORD)
        fresh["rows"][0]["speedup"] = 2.5 * 1.25  # +25% < 30%
        problems = check_regression.compare_records(
            "BENCH_sumcheck.json", SUMCHECK_RECORD, fresh
        )
        assert problems == []

    def test_ratio_beyond_tolerance_fails(self):
        fresh = clone(SUMCHECK_RECORD)
        fresh["rows"][0]["speedup"] = 1.0  # -60%
        problems = check_regression.compare_records(
            "BENCH_sumcheck.json", SUMCHECK_RECORD, fresh
        )
        assert any("ratio drift" in p for p in problems)
        # the triage message must carry the drift's sign: this is a drop
        assert any("-60.0%" in p for p in problems)

    def test_tolerance_is_configurable(self):
        fresh = clone(SUMCHECK_RECORD)
        fresh["rows"][0]["speedup"] = 2.5 * 1.25
        problems = check_regression.compare_records(
            "BENCH_sumcheck.json", SUMCHECK_RECORD, fresh, tolerance=0.10
        )
        assert any("ratio drift" in p for p in problems)

    def test_structural_drift_fails(self):
        fresh = clone(SUMCHECK_RECORD)
        fresh["rows"][0]["mu"] = 13
        problems = check_regression.compare_records(
            "BENCH_sumcheck.json", SUMCHECK_RECORD, fresh
        )
        assert any("structural drift" in p for p in problems)

    def test_absolute_seconds_are_not_compared(self):
        fresh = clone(SUMCHECK_RECORD)
        fresh["rows"][0]["reference_s"] = 40.0  # machine-dependent: ignored
        fresh["rows"][0]["fused_s"] = 16.0
        problems = check_regression.compare_records(
            "BENCH_sumcheck.json", SUMCHECK_RECORD, fresh
        )
        assert problems == []

    def test_row_count_change_fails(self):
        fresh = clone(SUMCHECK_RECORD)
        fresh["rows"].append(clone(SUMCHECK_RECORD["rows"][0]))
        problems = check_regression.compare_records(
            "BENCH_sumcheck.json", SUMCHECK_RECORD, fresh
        )
        assert any("appeared" in p for p in problems)

    def test_missing_key_reported(self):
        fresh = clone(SUMCHECK_RECORD)
        del fresh["rows"][0]["speedup"]
        problems = check_regression.compare_records(
            "BENCH_sumcheck.json", SUMCHECK_RECORD, fresh
        )
        assert any("missing key" in p for p in problems)

    def test_unknown_record_name_fails(self):
        problems = check_regression.compare_records("BENCH_new.json", {}, {})
        assert any("no comparison spec" in p for p in problems)

    def test_every_committed_record_has_a_spec(self):
        repo = Path(__file__).resolve().parents[1]
        committed = {p.name for p in repo.glob("BENCH_*.json")}
        assert committed <= set(check_regression.SPECS)


class TestCli:
    def test_self_comparison_of_committed_records(self, capsys):
        """Every committed record is within policy vs itself."""
        repo = Path(__file__).resolve().parents[1]
        code = check_regression.main(
            ["--baseline-dir", str(repo), "--fresh-dir", str(repo)]
        )
        assert code == 0
        assert "DRIFT" not in capsys.readouterr().out

    def test_missing_baseline_fails(self, tmp_path):
        repo = Path(__file__).resolve().parents[1]
        code = check_regression.main(
            [
                "--baseline-dir",
                str(tmp_path),
                "--fresh-dir",
                str(repo),
                "--only",
                "BENCH_sumcheck.json",
            ]
        )
        assert code == 1

    def test_bad_tolerance_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            args = ["--baseline-dir", ".", "--tolerance", "1.5"]
            check_regression.main(args)
        assert excinfo.value.code == 2
