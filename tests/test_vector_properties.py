"""Seeded property tests for the batched field-vector layer.

Checks the field axioms on :class:`~repro.fields.vector.FieldVec`
operations and the structural identities of the SumCheck primitives
(fold selects convex combinations of the even/odd halves; extension
columns 0/1 reproduce the table pairs) on every registered backend.
Plain ``random`` with fixed seeds — no extra dependencies.
"""

import random

import pytest

from repro.fields import (
    FieldVec,
    Fr,
    OpCounter,
    PrimeField,
    get_backend,
    list_backends,
)
from repro.mle import DenseMLE, extend_pair, extend_table

P = Fr.modulus
SEED = 0x5EED
N = 64

# every registered backend — optional ones (array/gmp) join automatically
BACKENDS = list_backends()


def rand_vec(rng, backend, n=N, field=Fr):
    return FieldVec.random(field, n, rng, backend)


@pytest.fixture
def rng():
    return random.Random(SEED)


@pytest.mark.parametrize("backend", BACKENDS)
class TestFieldAxioms:
    def test_add_associative_commutative(self, backend, rng):
        a, b, c = (rand_vec(rng, backend) for _ in range(3))
        assert ((a + b) + c).values == (a + (b + c)).values
        assert (a + b).values == (b + a).values

    def test_mul_associative_commutative(self, backend, rng):
        a, b, c = (rand_vec(rng, backend) for _ in range(3))
        assert ((a * b) * c).values == (a * (b * c)).values
        assert (a * b).values == (b * a).values

    def test_mul_distributes_over_add(self, backend, rng):
        a, b, c = (rand_vec(rng, backend) for _ in range(3))
        assert (a * (b + c)).values == (a * b + a * c).values

    def test_sub_is_add_inverse(self, backend, rng):
        a, b = (rand_vec(rng, backend) for _ in range(2))
        assert ((a - b) + b).values == a.values
        assert (a - a).values == [0] * N

    def test_identities(self, backend, rng):
        a = rand_vec(rng, backend)
        zeros = FieldVec.zeros(Fr, N, backend)
        ones = FieldVec(Fr, [1] * N, backend)
        assert (a + zeros).values == a.values
        assert (a * ones).values == a.values
        assert (a * zeros).values == [0] * N

    def test_scale_matches_elementwise(self, backend, rng):
        a = rand_vec(rng, backend)
        c = rng.randrange(P)
        assert (c * a).values == [c * v % P for v in a.values]
        assert a.scale(c).values == (a * c).values

    def test_axpy_matches_scale_add(self, backend, rng):
        a, x = (rand_vec(rng, backend) for _ in range(2))
        c = rng.randrange(P)
        assert a.axpy(c, x).values == (a + x.scale(c)).values

    def test_scalars_agree_with_scalar_field_ops(self, backend, rng):
        a, b = (rand_vec(rng, backend) for _ in range(2))
        assert (a + b).values == [Fr.add(x, y) for x, y in zip(a, b)]
        assert (a - b).values == [Fr.sub(x, y) for x, y in zip(a, b)]
        assert (a * b).values == [Fr.mul(x, y) for x, y in zip(a, b)]


@pytest.mark.parametrize("backend", BACKENDS)
class TestFoldProperties:
    def test_fold_at_zero_selects_even_half(self, backend, rng):
        a = rand_vec(rng, backend)
        assert a.fold(0).values == a.values[::2]

    def test_fold_at_one_selects_odd_half(self, backend, rng):
        a = rand_vec(rng, backend)
        assert a.fold(1).values == a.values[1::2]

    def test_fold_is_affine_in_r(self, backend, rng):
        a = rand_vec(rng, backend)
        r = rng.randrange(P)
        lo, hi = a.values[::2], a.values[1::2]
        expected = [(l + r * (h - l)) % P for l, h in zip(lo, hi)]
        assert a.fold(r).values == expected

    def test_fold_matches_dense_mle_update(self, backend, rng):
        table = [rng.randrange(P) for _ in range(N)]
        r = rng.randrange(P)
        vec = FieldVec(Fr, table, backend)
        mle = DenseMLE(Fr, table)
        assert vec.fold(r).values == mle.fix_first_variable(r).table
        assert (
            mle.fix_first_variable(r, backend=backend).table
            == mle.fix_first_variable(r).table
        )


@pytest.mark.parametrize("backend", BACKENDS)
class TestExtendProperties:
    def test_extend_columns_0_and_1_are_the_table_pairs(self, backend, rng):
        a = rand_vec(rng, backend)
        cols = a.extend(3)
        assert cols[0].values == a.values[::2]
        assert cols[1].values == a.values[1::2]

    def test_extend_matches_extend_pair(self, backend, rng):
        table = [rng.randrange(P) for _ in range(N)]
        degree = 5
        cols = extend_table(Fr, table, degree, backend=backend)
        for j in range(N // 2):
            expected = extend_pair(Fr, table[2 * j], table[2 * j + 1], degree)
            assert [cols[x][j] for x in range(degree + 1)] == expected

    def test_extend_degree_zero(self, backend, rng):
        a = rand_vec(rng, backend)
        cols = a.extend(0)
        assert len(cols) == 1
        assert cols[0].values == a.values[::2]

    def test_extension_is_affine(self, backend, rng):
        """Column x must equal lo + x * (hi - lo) elementwise."""
        a = rand_vec(rng, backend)
        cols = a.extend(4)
        lo, hi = a.values[::2], a.values[1::2]
        for x, col in enumerate(cols):
            assert col.values == [
                (l + x * (h - l)) % P for l, h in zip(lo, hi)
            ]


class TestBackendParity:
    """Identical values *and* identical OpCounter tallies across backends."""

    OPS = ("add", "sub", "mul")

    def test_elementwise_parity(self):
        rng = random.Random(SEED)
        a = [rng.randrange(P) for _ in range(N)]
        b = [rng.randrange(P) for _ in range(N)]
        for op in self.OPS:
            results, counts = [], []
            for name in BACKENDS:
                c = OpCounter()
                be = get_backend(name)
                results.append(getattr(be, op)(Fr, a, b, c))
                counts.append((c.mul, c.add, c.inv, c.ee_mul, c.pl_mul))
            assert all(r == results[0] for r in results), op
            assert all(k == counts[0] for k in counts), op

    def test_fold_and_extend_parity(self):
        rng = random.Random(SEED + 1)
        table = [rng.randrange(P) for _ in range(N)]
        r = rng.randrange(P)
        folds, exts, counts = [], [], []
        for name in BACKENDS:
            c = OpCounter()
            be = get_backend(name)
            folds.append(be.fold(Fr, table, r, c))
            exts.append(be.extend_columns(Fr, table, 4, c))
            counts.append((c.mul, c.add, c.ee_mul))
        assert all(f == folds[0] for f in folds)
        assert all(e == exts[0] for e in exts)
        assert all(k == counts[0] for k in counts)

    def test_non_canonical_input_parity(self):
        """Public fold/extend entry points must agree across backends even
        when handed out-of-range integers."""
        rng = random.Random(SEED + 3)
        table = [rng.randrange(-P, 2 * P) for _ in range(N)]
        r = rng.randrange(P)
        folds = [get_backend(n).fold(Fr, table, r) for n in BACKENDS]
        exts = [get_backend(n).extend_columns(Fr, table, 3) for n in BACKENDS]
        assert all(f == folds[0] for f in folds)
        assert all(e == exts[0] for e in exts)
        assert all(0 <= v < P for col in exts[0] for v in col)

    def test_small_field_support(self):
        """Backends are field-generic, not BLS12-381-specific."""
        small = PrimeField((1 << 61) - 1, "F61")
        rng = random.Random(SEED + 2)
        a = [rng.randrange(small.modulus) for _ in range(32)]
        b = [rng.randrange(small.modulus) for _ in range(32)]
        outs = [get_backend(n).mul(small, a, b) for n in BACKENDS]
        assert all(o == outs[0] for o in outs)


class TestFieldVecApi:
    def test_length_mismatch_rejected(self):
        a = FieldVec(Fr, [1, 2, 3])
        b = FieldVec(Fr, [1, 2])
        with pytest.raises(ValueError, match="length"):
            a.add(b)

    def test_field_mismatch_rejected(self):
        small = PrimeField((1 << 61) - 1, "F61")
        a = FieldVec(Fr, [1, 2])
        b = FieldVec(small, [1, 2])
        with pytest.raises(ValueError, match="field"):
            a.add(b)

    def test_values_normalized_on_construction(self):
        a = FieldVec(Fr, [-1, P, P + 5])
        assert a.values == [P - 1, 0, 5]

    def test_fold_requires_a_pair(self):
        with pytest.raises(ValueError, match="pair"):
            FieldVec(Fr, [7]).fold(3)

    def test_eq_against_list(self):
        assert FieldVec(Fr, [1, 2, 3]) == [1, 2, 3]
