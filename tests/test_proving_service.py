"""ProvingService end-to-end: differential bit-equality, batching,
executors, traffic, scheduling order, metrics, and the demo CLI.

The core contract (ISSUE 2): every proof produced through the service —
any executor, any backend, batched or sequential — is bit-identical to a
direct ``HyperPlonkProver.prove()`` call against the same SRS, and
verifies with the stock verifier.
"""

import random

import pytest

from repro.fields import Fr
from repro.hyperplonk import (
    HyperPlonkProver,
    HyperPlonkVerifier,
    MultilinearKZG,
    TrapdoorSRS,
    preprocess,
)
from repro.service import (
    JobCostModel,
    ProofJob,
    ProvingService,
    RequestClass,
    ServiceConfig,
    TrafficGenerator,
    order_jobs,
    plan_batches,
    synthesize_circuit,
)
from repro.service.__main__ import main as service_cli
from repro.service.metrics import percentile
from repro.service.traffic import GATE_TYPES
from repro.workloads import SCENARIOS, scenario_by_name

MAX_VARS = 3
SRS_SEED = 0x5EED  # ServiceConfig default; direct provers must match


def direct_prove(circuit, backend=None):
    """The one-shot path the service must match bit-for-bit."""
    srs = TrapdoorSRS(MAX_VARS + 1, random.Random(SRS_SEED))
    kzg = MultilinearKZG(srs)
    pidx, vidx = preprocess(circuit, kzg)
    proof = HyperPlonkProver(circuit, pidx, kzg, backend=backend).prove()
    return proof, vidx, kzg


@pytest.fixture(scope="module")
def circuits():
    return [
        synthesize_circuit(GATE_TYPES["vanilla"], MAX_VARS, witness_seed=1),
        synthesize_circuit(GATE_TYPES["vanilla"], MAX_VARS, witness_seed=2),
        synthesize_circuit(GATE_TYPES["jellyfish"], MAX_VARS, witness_seed=3),
    ]


class TestDifferential:
    def test_sync_service_matches_direct_both_backends(self, circuits):
        """reference + fused jobs through one service == direct proofs,
        with the fixed-base MSM path enabled (the service default)."""
        backends = [None, "fused", "fused"]
        with ProvingService(ServiceConfig(max_vars=MAX_VARS)) as svc:
            for circuit, backend in zip(circuits, backends):
                svc.submit(circuit, backend=backend)
            results = {r.job_id: r for r in svc.drain()}
        for i, (circuit, backend) in enumerate(zip(circuits, backends)):
            expected, vidx, kzg = direct_prove(circuit, backend)
            assert results[i].proof == expected, (
                f"service proof {i} (backend={backend}) diverged"
            )
            HyperPlonkVerifier(Fr, vidx, kzg).verify(results[i].proof)

    def test_batched_vs_sequential_runs(self, circuits):
        cfg = dict(max_vars=MAX_VARS, default_backend="fused",
                   fixed_base_msm=False)
        with ProvingService(ServiceConfig(**cfg)) as batched:
            for c in circuits:
                batched.submit(c)
            batch_proofs = [r.proof for r in batched.drain()]
            assert batched.metrics.drains == 1
        with ProvingService(ServiceConfig(**cfg)) as sequential:
            seq_proofs = []
            for c in circuits:
                sequential.submit(c)
                seq_proofs.extend(r.proof for r in sequential.drain())
        # drain order may differ from submit order; compare as sets via
        # deterministic pairing on (num_vars, gate type, witness commits)
        assert len(batch_proofs) == len(seq_proofs)
        for proof in batch_proofs:
            assert proof in seq_proofs

    def test_thread_executor_matches_sync(self, circuits):
        cfg = dict(max_vars=MAX_VARS, default_backend="fused",
                   fixed_base_msm=False)
        with ProvingService(ServiceConfig(executor="thread", num_workers=2,
                                          **cfg)) as threaded:
            for c in circuits[:2]:
                threaded.submit(c)
            thread_results = {r.job_id: r.proof for r in threaded.drain()}
        for i, c in enumerate(circuits[:2]):
            expected, _, _ = direct_prove(c, "fused")
            assert thread_results[i] == expected

    def test_process_executor_matches_direct(self, circuits):
        cfg = ServiceConfig(max_vars=MAX_VARS, executor="process",
                            num_workers=2, default_backend="fused",
                            fixed_base_msm=False)
        try:
            service = ProvingService(cfg)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process pools unavailable: {exc}")
        with service:
            for c in circuits[:2]:
                service.submit(c)
            results = {r.job_id: r for r in service.drain()}
        for i, c in enumerate(circuits[:2]):
            expected, vidx, kzg = direct_prove(c, "fused")
            assert results[i].proof == expected
            HyperPlonkVerifier(Fr, vidx, kzg).verify(results[i].proof)
        assert all(r.worker_id.startswith("pid-") for r in results.values())


class TestSchedulingAndBatching:
    def _job(self, jid, circuit, request_class, priority=0, arrival=0.0):
        return ProofJob(job_id=jid, circuit=circuit,
                        request_class=request_class, priority=priority,
                        arrival_s=arrival)

    def test_plan_batches_groups_and_orders(self):
        rt = RequestClass.REALTIME
        df = RequestClass.DEFERRABLE
        small = synthesize_circuit(GATE_TYPES["vanilla"], 2, witness_seed=1)
        small2 = synthesize_circuit(GATE_TYPES["vanilla"], 2, witness_seed=9)
        big = synthesize_circuit(GATE_TYPES["vanilla"], 3, witness_seed=1)
        jobs = [
            self._job(0, small, df, arrival=0.0),
            self._job(1, big, rt, arrival=1.0),
            self._job(2, small2, rt, arrival=2.0),
        ]
        batches = plan_batches(jobs)
        # real-time first: big's batch leads; the deferrable small job
        # rides along in the batch anchored by the real-time small job
        assert [b.circuit_key for b in batches] == [
            jobs[1].circuit_key, jobs[0].circuit_key
        ]
        assert [j.job_id for j in batches[1].jobs] == [2, 0]

    def test_max_batch_size_splits(self):
        c = synthesize_circuit(GATE_TYPES["vanilla"], 2)
        jobs = [self._job(i, c, RequestClass.REALTIME) for i in range(5)]
        batches = plan_batches(jobs, max_batch_size=2)
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_max_batch_size_rejects_non_positive(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            plan_batches([], max_batch_size=0)
        with pytest.raises(ValueError, match="must be >= 1"):
            plan_batches([], max_batch_size=-3)

    def test_max_batch_size_rejects_non_int(self):
        """Floats used to slip through and silently misbehave in range
        slicing; the type is now validated (ISSUE 3 satellite)."""
        with pytest.raises(TypeError, match="must be an int or None"):
            plan_batches([], max_batch_size=2.0)
        with pytest.raises(TypeError, match="must be an int or None"):
            plan_batches([], max_batch_size=True)
        with pytest.raises(TypeError, match="must be an int or None"):
            plan_batches([], max_batch_size="4")

    def test_drain_runs_realtime_first(self):
        cfg = ServiceConfig(max_vars=MAX_VARS, default_backend="fused",
                            fixed_base_msm=False)
        shapes = [
            synthesize_circuit(GATE_TYPES["vanilla"], 2, witness_seed=1),
            synthesize_circuit(GATE_TYPES["jellyfish"], 2, witness_seed=1),
        ]
        with ProvingService(cfg) as svc:
            j0 = svc.submit(shapes[0],
                            request_class=RequestClass.DEFERRABLE)
            j1 = svc.submit(shapes[1], request_class=RequestClass.REALTIME)
            results = svc.drain()
        assert [r.job_id for r in results] == [j1.job_id, j0.job_id]
        assert all(r.batch_size == 1 for r in results)


class TestCostAwareScheduling:
    """ISSUE 3: plan-cost-driven drain policies (sjf / deadline)."""

    def _job(self, jid, circuit, request_class, arrival=0.0, deadline=None):
        return ProofJob(job_id=jid, circuit=circuit,
                        request_class=request_class, arrival_s=arrival,
                        deadline_s=deadline)

    def _shapes(self):
        return {
            mu: synthesize_circuit(GATE_TYPES["vanilla"], mu, witness_seed=1)
            for mu in (2, 3, 4)
        }

    def test_order_jobs_validation(self):
        with pytest.raises(ValueError, match="unknown drain policy"):
            order_jobs([], policy="lifo")
        with pytest.raises(ValueError, match="needs a cost_fn"):
            order_jobs([], policy="sjf")
        with pytest.raises(ValueError, match="needs a cost_fn"):
            order_jobs([], policy="deadline")

    def test_sjf_orders_cheap_first_within_class(self):
        shapes = self._shapes()
        rt, df = RequestClass.REALTIME, RequestClass.DEFERRABLE
        jobs = [
            self._job(0, shapes[4], rt, arrival=0.0),   # big, arrives first
            self._job(1, shapes[2], rt, arrival=1.0),   # small
            self._job(2, shapes[3], rt, arrival=2.0),   # medium
            self._job(3, shapes[2], df, arrival=0.5),   # small, deferrable
        ]
        cost = JobCostModel()
        ordered = order_jobs(jobs, policy="sjf", cost_fn=cost)
        # realtime cheap->expensive, deferrable after everything realtime
        assert [j.job_id for j in ordered] == [1, 2, 0, 3]
        # fifo would have drained the expensive early arrival first
        fifo = order_jobs(jobs, policy="fifo")
        assert [j.job_id for j in fifo] == [0, 1, 2, 3]

    def test_deadline_policy_edf_for_realtime(self):
        shapes = self._shapes()
        rt, df = RequestClass.REALTIME, RequestClass.DEFERRABLE
        jobs = [
            self._job(0, shapes[2], rt, arrival=0.0, deadline=9.0),
            self._job(1, shapes[4], rt, arrival=1.0, deadline=2.0),
            self._job(2, shapes[3], rt, arrival=2.0),           # no deadline
            self._job(3, shapes[4], df, arrival=0.0),
            self._job(4, shapes[2], df, arrival=3.0),
        ]
        ordered = order_jobs(jobs, policy="deadline", cost_fn=JobCostModel())
        # urgent first, deadline-less realtime last among realtime;
        # deferrable tail is shortest-job-first
        assert [j.job_id for j in ordered] == [1, 0, 2, 4, 3]

    def test_deadline_outranks_priority_for_realtime(self):
        """EDF proper: an imminent deadline drains before a
        higher-priority job with a distant one."""
        shapes = self._shapes()
        rt = RequestClass.REALTIME
        lazy_vip = ProofJob(job_id=0, circuit=shapes[2], request_class=rt,
                            priority=5, deadline_s=100.0)
        urgent = ProofJob(job_id=1, circuit=shapes[2], request_class=rt,
                          priority=0, deadline_s=0.1)
        ordered = order_jobs([lazy_vip, urgent], policy="deadline",
                             cost_fn=JobCostModel())
        assert [j.job_id for j in ordered] == [1, 0]

    def test_job_cost_model_stamps_and_caches(self):
        shapes = self._shapes()
        job_a = self._job(0, shapes[3], RequestClass.REALTIME)
        job_b = self._job(1, shapes[3], RequestClass.REALTIME)
        cost = JobCostModel()
        assert cost(job_a) == cost(job_b) > 0
        assert job_a.predicted_cost_s == job_b.predicted_cost_s

    def test_batch_predicted_cost(self):
        shapes = self._shapes()
        jobs = [self._job(i, shapes[2], RequestClass.REALTIME)
                for i in range(3)]
        (batch,) = plan_batches(jobs, policy="sjf", cost_fn=JobCostModel())
        assert batch.predicted_cost_s == pytest.approx(
            3 * jobs[0].predicted_cost_s)
        fresh = plan_batches([self._job(9, shapes[2],
                                        RequestClass.REALTIME)])[0]
        assert fresh.predicted_cost_s is None  # no cost model ran

    def test_service_sjf_end_to_end_with_prediction_metrics(self):
        shapes = self._shapes()
        cfg = ServiceConfig(max_vars=4, default_backend="fused",
                            drain_policy="sjf", fixed_base_msm=False)
        with ProvingService(cfg) as svc:
            big = svc.submit(shapes[4])
            small = svc.submit(shapes[2])
            results = svc.drain()
            summary = svc.summary()
        assert [r.job_id for r in results] == [small.job_id, big.job_id]
        assert all(r.predicted_s is not None and r.predicted_s > 0
                   for r in results)
        assert summary["drain_policy"] == "sjf"
        assert summary["prediction"]["jobs"] == 2
        assert summary["prediction"]["predicted_total_s"] > 0
        cap = summary["estimated_capacity_proofs_per_s"]
        assert cap["actual"] > 0 and cap["predicted"] > 0

    def test_fifo_without_cost_model_has_no_prediction(self):
        c = synthesize_circuit(GATE_TYPES["vanilla"], 2)
        with ProvingService(ServiceConfig(max_vars=2,
                                          fixed_base_msm=False)) as svc:
            svc.submit(c)
            (result,) = svc.drain()
            summary = svc.summary()
        assert result.predicted_s is None
        assert "prediction" not in summary

    def test_predict_costs_flag_without_reordering(self):
        c = synthesize_circuit(GATE_TYPES["vanilla"], 2)
        cfg = ServiceConfig(max_vars=2, predict_costs=True,
                            fixed_base_msm=False)
        with ProvingService(cfg) as svc:
            svc.submit(c)
            (result,) = svc.drain()
            summary = svc.summary()
        assert summary["drain_policy"] == "fifo"
        assert result.predicted_s is not None
        assert "prediction" in summary

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown drain policy"):
            ProvingService(ServiceConfig(drain_policy="edf2"))

    def test_traffic_generator_stamps_deadlines(self):
        jobs = TrafficGenerator("zipf-mixed", seed=3).jobs(12)
        scenario = scenario_by_name("zipf-mixed")
        for job in jobs:
            if job.request_class is RequestClass.REALTIME:
                assert job.deadline_s == pytest.approx(
                    job.arrival_s + scenario.realtime_deadline_s)
            else:
                assert job.deadline_s is None


class TestTrafficGenerator:
    def test_deterministic(self):
        a = TrafficGenerator("zipf-mixed", seed=5).jobs(6)
        b = TrafficGenerator("zipf-mixed", seed=5).jobs(6)
        assert [j.circuit_key for j in a] == [j.circuit_key for j in b]
        assert [j.arrival_s for j in a] == [j.arrival_s for j in b]
        assert [j.request_class for j in a] == [j.request_class for j in b]

    def test_arrivals_monotonic_and_classes(self):
        for name in SCENARIOS:
            jobs = TrafficGenerator(name, seed=1).jobs(8)
            arrivals = [j.arrival_s for j in jobs]
            assert arrivals == sorted(arrivals)
            scenario = scenario_by_name(name)
            if scenario.realtime_fraction == 1.0:
                assert all(j.request_class is RequestClass.REALTIME
                           for j in jobs)
            gate_names = {name for name, _ in scenario.gate_mix}
            sizes = {size for size, _ in scenario.size_weights}
            for j in jobs:
                tag_gate, tag_mu = j.tag.rsplit("/", 1)[1].split("-mu")
                assert tag_gate in gate_names
                assert int(tag_mu) in sizes

    def test_same_shape_draws_share_fingerprint(self):
        jobs = TrafficGenerator("uniform-small", seed=2).jobs(10)
        keys = {}
        for j in jobs:
            keys.setdefault(j.tag, set()).add(j.circuit_key)
        for tag, tag_keys in keys.items():
            assert len(tag_keys) == 1, f"{tag} produced multiple fingerprints"

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            TrafficGenerator("no-such-mix")


class TestServiceOperations:
    def test_wave_run_hits_cache_and_reports_metrics(self):
        gen = TrafficGenerator("uniform-small", seed=3)
        cfg = ServiceConfig(max_vars=gen.max_vars(),
                            default_backend="fused")
        with ProvingService(cfg) as svc:
            results = svc.run(gen.jobs(5), wave_s=0.3)
            summary = svc.summary()
        assert len(results) == 5
        assert summary["jobs"] == 5
        assert summary["drains"] >= 2
        assert summary["cache"]["hits"] >= 1  # later waves reuse indexes
        assert summary["throughput_proofs_per_s"] > 0
        assert summary["latency_s"]["p50"] <= summary["latency_s"]["p95"]
        assert summary["workers"][0]["jobs"] == 5

    def test_verify_proofs_flag(self):
        cfg = ServiceConfig(max_vars=2, default_backend="fused",
                            verify_proofs=True, collect_counters=True,
                            fixed_base_msm=False)
        c = synthesize_circuit(GATE_TYPES["vanilla"], 2)
        with ProvingService(cfg) as svc:
            svc.submit(c)
            (result,) = svc.drain()
            summary = svc.summary()
        assert result.verified
        assert result.counter is not None and result.counter.mul > 0
        assert summary["ops"]["mul"] > 0

    def test_submit_validation(self):
        from repro.fields import PrimeField

        cfg = ServiceConfig(max_vars=2, fixed_base_msm=False)
        ok_circuit = synthesize_circuit(GATE_TYPES["vanilla"], 2,
                                        witness_seed=1)
        too_big = synthesize_circuit(GATE_TYPES["vanilla"], 4)
        foreign = synthesize_circuit(GATE_TYPES["vanilla"], 2,
                                     field=PrimeField((1 << 61) - 1, "F61"))
        with ProvingService(cfg) as svc:
            with pytest.raises(ValueError, match="exceeds the service SRS"):
                svc.submit(too_big)
            with pytest.raises(ValueError, match="over Fr only"):
                svc.submit(foreign)
            with pytest.raises(ValueError, match="unknown vector backend"):
                svc.submit(ok_circuit, backend="no-such-backend")
            assert svc.pending == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ProvingService(ServiceConfig(executor="fiber"))
        kzg = MultilinearKZG(TrapdoorSRS(3, random.Random(1)))
        with pytest.raises(ValueError, match="service-owned SRS"):
            ProvingService(ServiceConfig(executor="process"), kzg=kzg)
        with pytest.raises(ValueError, match="unknown vector backend"):
            ProvingService(ServiceConfig(default_backend="bogus"))

    def test_empty_drain(self):
        with ProvingService(ServiceConfig(max_vars=2)) as svc:
            assert svc.drain() == []

    def test_scalar_path_labelled_scalar(self):
        """backend=None runs the original scalar prover, not the
        'reference' vector backend — results must say so."""
        c = synthesize_circuit(GATE_TYPES["vanilla"], 2)
        with ProvingService(ServiceConfig(max_vars=2,
                                          fixed_base_msm=False)) as svc:
            svc.submit(c)
            (scalar_result,) = svc.drain()
            svc.submit(c, backend="reference")
            (reference_result,) = svc.drain()
        assert scalar_result.backend == "scalar"
        assert reference_result.backend == "reference"
        assert scalar_result.proof == reference_result.proof

    def test_summary_before_drain_has_zero_wall(self):
        c = synthesize_circuit(GATE_TYPES["vanilla"], 2)
        with ProvingService(ServiceConfig(max_vars=2,
                                          fixed_base_msm=False)) as svc:
            svc.submit(c)
            summary = svc.summary()
        assert summary["wall_s"] == 0.0
        assert summary["throughput_proofs_per_s"] == 0.0

    def test_pool_failure_requeues_jobs(self, monkeypatch):
        c = synthesize_circuit(GATE_TYPES["vanilla"], 2)
        with ProvingService(ServiceConfig(max_vars=2,
                                          fixed_base_msm=False)) as svc:
            svc.submit(c)

            def boom(tasks, kzg):
                raise RuntimeError("worker died")

            monkeypatch.setattr(svc.pool, "run_tasks", boom)
            with pytest.raises(RuntimeError):
                svc.drain()
            assert svc.pending == 1  # the wave survives for a retry
            assert svc.metrics.drains == 0  # failed wave isn't counted


class TestMetricsHelpers:
    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 95) == 7.0


class TestCLI:
    def test_cli_json_smoke(self, capsys):
        rc = service_cli(["--scenario", "uniform-small", "--jobs", "2",
                          "--no-verify", "--json", "--seed", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"throughput_proofs_per_s"' in out

    def test_cli_human_output(self, capsys):
        rc = service_cli(["--scenario", "uniform-small", "--jobs", "2",
                          "--backend", "fused", "--seed", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "index cache" in out and "all proofs verified" in out
