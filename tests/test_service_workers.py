"""Persistent worker state: the build-once SRS contract.

ISSUE 7 satellite: a persistent worker process constructs its seeded
SRS exactly once and reuses it for every batch it ever proves — and
the worker-local index cache honours the service's configured bound
(the latent bug this PR fixed: ``ProvingService`` never forwarded
``cache_capacity`` to its process workers, leaving them unbounded).
"""

import pytest

from repro.service.core import ProvingService, ServiceConfig
from repro.service.traffic import TrafficGenerator
from repro.service.workers import ProveTask, WorkerState, worker_state

MAX_VARS = 4


def tasks(n: int, start_id: int = 0) -> list[ProveTask]:
    jobs = TrafficGenerator("uniform-small", seed=3).jobs(n)
    return [
        ProveTask(
            job_id=start_id + i,
            circuit=job.circuit,
            backend="fused",
            circuit_key=job.circuit_key,
        )
        for i, job in enumerate(jobs)
    ]


class TestWorkerState:
    def test_srs_built_once_across_batches(self):
        state = WorkerState(0x5EED, MAX_VARS + 1, cache_capacity=4)
        for batch in (tasks(2), tasks(2, start_id=2)):
            for task in batch:
                outcome = state.prove(task)
                assert outcome.proof is not None
        assert state.srs_builds == 1
        assert state.jobs_proved == 4

    def test_repeat_circuit_hits_cache_with_zero_install(self):
        state = WorkerState(0x5EED, MAX_VARS + 1, cache_capacity=4)
        first, second = tasks(1)[0], tasks(1)[0]
        miss = state.prove(first)
        hit = state.prove(second)
        assert not miss.cache_hit and miss.install_s > 0.0
        assert hit.cache_hit and hit.install_s == 0.0

    def test_worker_state_guard_reuses_same_params(self):
        a = worker_state(0x5EED, MAX_VARS + 1, cache_capacity=2)
        b = worker_state(0x5EED, MAX_VARS + 1, cache_capacity=2)
        assert a is b
        c = worker_state(0x5EED, MAX_VARS + 1, cache_capacity=3)
        assert c is not a

    def test_probe_snapshot_reflects_state(self):
        state = WorkerState(0x5EED, MAX_VARS + 1, cache_capacity=4)
        state.prove(tasks(1)[0])
        probe = state.probe(worker_id="w-0")
        assert probe.worker_id == "w-0"
        assert probe.srs_builds == 1
        assert probe.jobs_proved == 1
        assert probe.cache_capacity == 4
        assert probe.cache_len == 1


class TestProcessExecutor:
    @pytest.fixture(scope="class")
    def service(self):
        config = ServiceConfig(
            max_vars=MAX_VARS,
            executor="process",
            num_workers=1,
            cache_capacity=3,
            default_backend="fused",
        )
        with ProvingService(config) as svc:
            yield svc

    def test_two_batches_one_srs_construction(self, service):
        generator = TrafficGenerator("uniform-small", seed=3)
        jobs = generator.jobs(4)
        first = service.run(jobs[:2])
        second = service.run(jobs[2:])
        assert len(first) == 2 and len(second) == 2
        (probe,) = service.pool.probe()
        assert probe.srs_builds == 1
        assert probe.jobs_proved == 4

    def test_worker_cache_is_bounded_by_service_config(self, service):
        (probe,) = service.pool.probe()
        assert probe.cache_capacity == 3
        assert probe.cache_len <= 3
