"""Hypothesis properties of the traffic and suspend/resume machinery.

Three contracts the open-loop stack leans on, checked over many seeds:

* **restart identity** — :meth:`OpenLoopTraffic.jobs` (and the carbon
  trace's :meth:`events`) restart from the seed on every call, so two
  iterations of one source agree element-for-element;
* **monotone arrivals** — the thinned Poisson process yields strictly
  increasing arrival times (the sim schedules them verbatim);
* **thinning mean** — over a long horizon the realized arrival count
  tracks ``∫ rate_at dt`` of the diurnal × burst envelope (the whole
  point of thinning against the peak rate);

plus the suspend/resume conservation property: parking a node's
in-flight job at any interior points and resuming after any idle gaps
changes *when* the proof finishes, never its modeled cost — the
node-level half of the carbon subsystem's determinism story.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon import CarbonIntensityTrace
from repro.cluster import FleetTimeModel, NodeConfig
from repro.cluster.nodes import ProverNode
from repro.service.traffic import TrafficGenerator
from repro.traffic import OpenLoopTraffic

SCENARIO = "uniform-small"


def make_traffic(seed: int, **kwargs) -> OpenLoopTraffic:
    kwargs.setdefault("rate_rps", 8.0)
    kwargs.setdefault("max_jobs", 60)
    return OpenLoopTraffic(SCENARIO, seed=seed, **kwargs)


class TestTrafficProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_restart_identity(self, seed):
        traffic = make_traffic(seed)
        first = [
            (j.arrival_s, j.tag, j.tenant, j.deadline_s)
            for j in traffic.jobs()
        ]
        second = [
            (j.arrival_s, j.tag, j.tenant, j.deadline_s)
            for j in traffic.jobs()
        ]
        assert first == second
        assert len(first) == 60
        # an identically-seeded sibling generator agrees too
        third = [
            (j.arrival_s, j.tag, j.tenant, j.deadline_s)
            for j in make_traffic(seed).jobs()
        ]
        assert first == third

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_arrivals_strictly_increase(self, seed):
        arrivals = [j.arrival_s for j in make_traffic(seed).jobs()]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[0] > 0.0

    @given(
        seed=st.integers(min_value=0, max_value=200),
        amplitude=st.sampled_from([0.0, 0.3, 0.6]),
        burst_mult=st.sampled_from([1.0, 3.0]),
    )
    @settings(max_examples=12, deadline=None, derandomize=True)
    def test_thinning_tracks_the_rate_envelope(
        self, seed, amplitude, burst_mult
    ):
        """The realized count is a Poisson draw around ``∫ rate dt`` —
        derandomized, so this is a fixed deterministic example set, and
        the 5σ band makes each example a ~3e-7 false-alarm event."""
        horizon = 120.0
        traffic = make_traffic(
            seed,
            max_jobs=None,
            horizon_s=horizon,
            diurnal_amplitude=amplitude,
            burst_mult=burst_mult,
        )
        count = sum(1 for _ in traffic.jobs())
        dt = 0.01
        steps = int(horizon / dt)
        expected = sum(
            traffic.rate_at((k + 0.5) * dt) for k in range(steps)
        ) * dt
        tolerance = 5.0 * expected**0.5
        assert abs(count - expected) <= tolerance, (
            f"{count} arrivals vs {expected:.1f} expected "
            f"(±{tolerance:.1f} allowed)"
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_carbon_trace_restart_identity(self, seed):
        trace = CarbonIntensityTrace(seed=seed, horizon_s=80.0)
        first = list(trace.events())
        assert first == list(trace.events())
        assert first == list(
            CarbonIntensityTrace(seed=seed, horizon_s=80.0).events()
        )
        times = [at_s for at_s, _ in first]
        assert times == sorted(times)


class TestSuspendResumeProperty:
    @given(
        fractions=st.lists(
            st.floats(min_value=0.05, max_value=0.95),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=4, max_size=4
        ),
        job_index=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_park_resume_conserves_the_modeled_work(
        self, fractions, gaps, job_index
    ):
        """Parking N times at arbitrary interior points and resuming
        after arbitrary waits yields the same record as never parking,
        except for wall placement (finish/suspended seconds)."""
        time_model = FleetTimeModel.preset("functional")
        config = NodeConfig(max_vars=6)
        job_a = TrafficGenerator(SCENARIO, seed=4).jobs(8)[job_index]
        job_b = TrafficGenerator(SCENARIO, seed=4).jobs(8)[job_index]
        job_a.job_id = job_b.job_id = 0

        baseline_node = ProverNode("node-0", config, time_model)
        baseline_node.submit(job_a)
        baseline_node.begin(job_a, 0.0)
        baseline = baseline_node.complete()

        node = ProverNode("node-0", config, time_model)
        node.submit(job_b)
        live = node.begin(job_b, 0.0)
        total = live.install_s + live.prove_s
        parks = 0
        for fraction, gap in zip(sorted(fractions), gaps):
            at = fraction * total
            if at <= live.done_before_s:
                continue  # already past this progress point
            node.suspend(live.start_s + (at - live.done_before_s))
            parks += 1
            live = node.resume(0, node.clock_s + gap)
        parked = node.complete()

        assert parked.suspensions == parks
        assert parked.install_model_s == baseline.install_model_s
        assert parked.prove_model_s == baseline.prove_model_s
        assert parked.cache_hit == baseline.cache_hit
        assert parked.start_s == baseline.start_s
        assert node.busy_s == pytest.approx(total)
        assert node.lost_s == 0.0
        # every model second is either busy or parked wait
        assert parked.finish_s == pytest.approx(
            total + parked.suspended_s
        )
        assert parked.suspended_s >= 0.0
        if parks == 0:
            assert parked == baseline
