"""End-to-end HyperPlonk protocol tests: completeness and soundness."""

import random

import pytest

from repro.fields import Fr, OpCounter
from repro.hyperplonk import (
    JELLYFISH,
    VANILLA,
    CircuitBuilder,
    HyperPlonkError,
    HyperPlonkProver,
    HyperPlonkVerifier,
    MultilinearKZG,
    TrapdoorSRS,
    preprocess,
)
from repro.hyperplonk.opencheck import (
    EvalClaim,
    prove_opencheck,
    verify_opencheck,
)
from repro.mle import DenseMLE
from repro.sumcheck import SumCheckError, Transcript

P = Fr.modulus


def vanilla_circuit(min_gates=1):
    b = CircuitBuilder(VANILLA, Fr)
    x = b.new_wire(3)
    y = b.new_wire(5)
    s = b.add(x, y)
    m = b.mul(s, x)
    b.assert_equal(m, b.constant(24))
    return b, b.build(min_gates=min_gates)


def jellyfish_circuit():
    b = CircuitBuilder(JELLYFISH, Fr)
    x = b.new_wire(3)
    h = b.pow5(x)
    y = b.add(h, x)
    z = b.mul(y, h)
    b.assert_equal(z, b.constant(246 * 243 % P))
    return b, b.build(min_gates=8)


def setup(circuit, seed=7):
    srs = TrapdoorSRS(circuit.num_vars + 1, random.Random(seed))
    kzg = MultilinearKZG(srs)
    pidx, vidx = preprocess(circuit, kzg)
    return kzg, pidx, vidx


class TestCompleteness:
    def test_vanilla_roundtrip(self):
        _, circuit = vanilla_circuit()
        kzg, pidx, vidx = setup(circuit)
        proof = HyperPlonkProver(circuit, pidx, kzg).prove()
        HyperPlonkVerifier(Fr, vidx, kzg).verify(proof)

    def test_jellyfish_roundtrip(self):
        _, circuit = jellyfish_circuit()
        kzg, pidx, vidx = setup(circuit)
        proof = HyperPlonkProver(circuit, pidx, kzg).prove()
        HyperPlonkVerifier(Fr, vidx, kzg).verify(proof)

    def test_larger_circuit(self):
        """A 16-gate circuit with a longer mul chain."""
        b = CircuitBuilder(VANILLA, Fr)
        acc = b.new_wire(2)
        for _ in range(5):
            acc = b.mul(acc, acc)
        expected = pow(2, 2**5, P)
        b.assert_equal(acc, b.constant(expected))
        circuit = b.build(min_gates=16)
        assert circuit.check_gates() == []
        kzg, pidx, vidx = setup(circuit)
        proof = HyperPlonkProver(circuit, pidx, kzg).prove()
        HyperPlonkVerifier(Fr, vidx, kzg).verify(proof)

    def test_proof_is_deterministic(self):
        _, circuit = vanilla_circuit()
        kzg, pidx, vidx = setup(circuit)
        p1 = HyperPlonkProver(circuit, pidx, kzg).prove()
        p2 = HyperPlonkProver(circuit, pidx, kzg).prove()
        assert p1.gate_zerocheck.challenges == p2.gate_zerocheck.challenges
        assert p1.size_bytes() == p2.size_bytes()

    def test_op_counter_collects_phases(self):
        _, circuit = vanilla_circuit()
        kzg, pidx, vidx = setup(circuit)
        counter = OpCounter()
        HyperPlonkProver(circuit, pidx, kzg).prove(counter)
        assert counter.labels["witness_msm"] == 3
        assert counter.labels["permcheck_msm"] == 2
        assert counter.mul > 0 and counter.inv > 0

    def test_proof_size_reported(self):
        _, circuit = vanilla_circuit()
        kzg, pidx, vidx = setup(circuit)
        proof = HyperPlonkProver(circuit, pidx, kzg).prove()
        assert 1000 < proof.size_bytes() < 20000


class TestSoundness:
    @pytest.fixture
    def proven(self):
        _, circuit = vanilla_circuit()
        kzg, pidx, vidx = setup(circuit)
        proof = HyperPlonkProver(circuit, pidx, kzg).prove()
        return proof, HyperPlonkVerifier(Fr, vidx, kzg)

    def test_bad_witness_rejected(self):
        """A witness violating a gate produces an unverifiable proof."""
        b, _ = vanilla_circuit()
        b._values[2] = 9  # corrupt s = x + y
        circuit = b.build()
        assert circuit.check_gates() != []
        kzg, pidx, vidx = setup(circuit)
        proof = HyperPlonkProver(circuit, pidx, kzg).prove()
        with pytest.raises(HyperPlonkError):
            HyperPlonkVerifier(Fr, vidx, kzg).verify(proof)

    def test_wiring_violation_rejected(self):
        """Consistent gates but broken copy constraints: PermCheck fires.

        We rebuild the circuit replacing a *shared* wire use with a fresh
        wire of a different value — all gates still hold locally."""
        b = CircuitBuilder(VANILLA, Fr)
        x = b.new_wire(3)
        y = b.new_wire(5)
        s = b.add(x, y)  # 8
        # next gate claims to use s but uses an impostor wire with value 9
        impostor = b.new_wire(9)
        m_val = 9 * 3 % P
        m = b.new_wire(m_val)
        b.add_gate({"qM": 1, "qO": 1}, [impostor, x, m])
        circuit = b.build()
        assert circuit.check_gates() == []  # locally consistent
        # now forge: pretend impostor IS s by overwriting sigma tables —
        # the honest arithmetization of the forged wiring simply differs,
        # so instead we prove the original circuit against an index built
        # from a *different* wiring claim.
        b2 = CircuitBuilder(VANILLA, Fr)
        x2 = b2.new_wire(3)
        y2 = b2.new_wire(5)
        s2 = b2.add(x2, y2)
        m2 = b2.new_wire(m_val)
        b2.add_gate({"qM": 1, "qO": 1}, [s2, x2, m2])  # claims s is reused
        circuit_claimed = b2.build()
        kzg, pidx, vidx = setup(circuit_claimed)
        # prover uses the claimed index but the impostor witness tables
        pidx.selectors = circuit.selector_tables()
        proof_circuit = circuit  # witness with impostor value 9
        proof = HyperPlonkProver(proof_circuit, pidx, kzg).prove()
        with pytest.raises(HyperPlonkError):
            HyperPlonkVerifier(Fr, vidx, kzg).verify(proof)

    @pytest.mark.parametrize("mutation", [
        "claim", "round", "final", "witness_commit", "tree_value",
        "perm_eval", "opencheck_value",
    ])
    def test_tampered_proofs_rejected(self, proven, mutation):
        proof, verifier = proven
        if mutation == "claim":
            proof.gate_zerocheck.claim = 1
        elif mutation == "round":
            proof.perm_zerocheck.round_evals[0][0] = (
                proof.perm_zerocheck.round_evals[0][0] + 1
            ) % P
        elif mutation == "final":
            proof.gate_zerocheck.final_evals["w1"] = (
                proof.gate_zerocheck.final_evals["w1"] + 1
            ) % P
        elif mutation == "witness_commit":
            proof.witness_commitments["w1"] = proof.witness_commitments["w2"]
        elif mutation == "tree_value":
            op = proof.tree_openings["root"]
            from repro.hyperplonk.commitment import Opening

            proof.tree_openings["root"] = Opening(op.point, 2, op.quotients)
        elif mutation == "perm_eval":
            proof.perm_sigma_evals["sigma1"] = (
                proof.perm_sigma_evals["sigma1"] + 1
            ) % P
        elif mutation == "opencheck_value":
            sc = proof.opencheck.sumcheck
            name = next(iter(sc.final_evals))
            sc.final_evals[name] = (sc.final_evals[name] + 1) % P
        with pytest.raises(HyperPlonkError):
            verifier.verify(proof)

    def test_wrong_index_rejected(self):
        _, circuit = vanilla_circuit()
        kzg, pidx, _ = setup(circuit)
        proof = HyperPlonkProver(circuit, pidx, kzg).prove()
        # verifier with an index for a *different* circuit
        b2 = CircuitBuilder(VANILLA, Fr)
        w = b2.new_wire(1)
        b2.mul(w, w)
        b2.add(w, w)
        b2.constant(5)
        b2.add(w, w)
        circuit2 = b2.build()
        kzg2, _, vidx2 = setup(circuit2)
        with pytest.raises(HyperPlonkError):
            HyperPlonkVerifier(Fr, vidx2, kzg).verify(proof)


class TestOpenCheck:
    def _claims_env(self, rng, n_polys=3, num_vars=3):
        srs = TrapdoorSRS(num_vars, rng)
        kzg = MultilinearKZG(srs)
        polys = {
            f"P{i}": DenseMLE.random(Fr, num_vars, rng) for i in range(n_polys)
        }
        commitments = {n: kzg.commit(m) for n, m in polys.items()}
        claims = []
        for i, (name, mle) in enumerate(sorted(polys.items())):
            point = tuple(rng.randrange(P) for _ in range(num_vars))
            claims.append(EvalClaim(name, point, mle.evaluate(point)))
        return kzg, polys, commitments, claims

    def test_roundtrip(self, rng):
        kzg, polys, commitments, claims = self._claims_env(rng)
        proof = prove_opencheck(Fr, claims, polys, kzg, Transcript(Fr))
        verify_opencheck(Fr, claims, commitments, proof, kzg, Transcript(Fr))

    def test_same_poly_two_points(self, rng):
        kzg, polys, commitments, claims = self._claims_env(rng, n_polys=2)
        extra_pt = tuple(rng.randrange(P) for _ in range(3))
        claims.append(EvalClaim("P0", extra_pt, polys["P0"].evaluate(extra_pt)))
        proof = prove_opencheck(Fr, claims, polys, kzg, Transcript(Fr))
        verify_opencheck(Fr, claims, commitments, proof, kzg, Transcript(Fr))

    def test_false_claim_rejected(self, rng):
        kzg, polys, commitments, claims = self._claims_env(rng)
        bad = EvalClaim(claims[0].poly_name, claims[0].point,
                        (claims[0].value + 1) % P)
        claims[0] = bad
        proof = prove_opencheck(Fr, claims, polys, kzg, Transcript(Fr))
        with pytest.raises(SumCheckError):
            verify_opencheck(Fr, claims, commitments, proof, kzg, Transcript(Fr))

    def test_wrong_commitment_rejected(self, rng):
        kzg, polys, commitments, claims = self._claims_env(rng)
        proof = prove_opencheck(Fr, claims, polys, kzg, Transcript(Fr))
        commitments["P0"] = commitments["P1"]
        with pytest.raises(SumCheckError):
            verify_opencheck(Fr, claims, commitments, proof, kzg, Transcript(Fr))

    def test_empty_claims_rejected(self, rng):
        kzg, polys, commitments, _ = self._claims_env(rng)
        with pytest.raises(ValueError):
            prove_opencheck(Fr, [], polys, kzg, Transcript(Fr))

    def test_mixed_arity_rejected(self, rng):
        kzg, polys, commitments, claims = self._claims_env(rng)
        claims.append(EvalClaim("P0", (1, 2), 3))
        with pytest.raises(ValueError):
            prove_opencheck(Fr, claims, polys, kzg, Transcript(Fr))
