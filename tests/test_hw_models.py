"""Tests for the per-module hardware models and full-system rollups."""

import pytest

from repro.gates import gate_by_id
from repro.hw import memory, tech
from repro.hw.accelerator import (
    ZkPhireModel,
    opencheck_profile,
    proof_size_bytes,
)
from repro.hw.area import accelerator_area, standalone_sumcheck_area
from repro.hw.config import (
    AcceleratorConfig,
    ForestConfig,
    MSMUnitConfig,
    PermQuotConfig,
    SumCheckUnitConfig,
)
from repro.hw.cpu_baseline import CpuModel, sumcheck_modmuls
from repro.hw.forest import ForestModel
from repro.hw.mle_combine import MLECombineModel
from repro.hw.msm_unit import MSMUnitModel
from repro.hw.permquot import PermQuotModel, inverse_units_required
from repro.hw.power import accelerator_power
from repro.hw.scheduler import PolyProfile
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.hw.zkspeed import ZkSpeedSumCheckModel


def poly(gid):
    return PolyProfile.from_gate(gate_by_id(gid))


class TestTech:
    def test_7nm_modmul_areas_match_table9(self):
        assert tech.MODMUL_255_FIXED_MM2 == pytest.approx(0.073, abs=0.001)
        assert tech.MODMUL_255_ARBITRARY_MM2 == pytest.approx(0.133, abs=0.001)
        assert tech.MODMUL_381_FIXED_MM2 == pytest.approx(0.162, abs=0.001)
        assert tech.MODMUL_381_ARBITRARY_MM2 == pytest.approx(0.314, abs=0.001)

    def test_fixed_prime_saves_half(self):
        """§V: fixed-prime multipliers save ~50% area."""
        assert tech.MODMUL_255_FIXED_MM2 / tech.MODMUL_255_ARBITRARY_MM2 == \
            pytest.approx(0.55, abs=0.05)

    def test_modmul_unknown_width(self):
        with pytest.raises(ValueError):
            tech.modmul_area(128, True)


class TestMemory:
    def test_entry_bytes_ordering(self):
        assert (memory.entry_bytes("selector") < memory.entry_bytes("sparse")
                < memory.entry_bytes("dense"))

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            memory.entry_bytes("bogus")

    def test_phy_plan_tiers(self):
        kind, count, area = memory.phy_plan(2048)
        assert (kind, count) == ("HBM3", 2)
        assert area == pytest.approx(59.2)  # Table V
        kind, count, _ = memory.phy_plan(256)
        assert (kind, count) == ("HBM2", 1)
        kind, count, _ = memory.phy_plan(4096)
        assert (kind, count) == ("HBM3", 4)

    def test_phy_plan_invalid(self):
        with pytest.raises(ValueError):
            memory.phy_plan(0)

    def test_transfer_seconds(self):
        assert memory.transfer_seconds(1e9, 1.0) == pytest.approx(1.0)


class TestSumCheckUnit:
    def setup_method(self):
        self.cfg = SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                                      sram_bank_words=1024)
        self.model = SumCheckUnitModel(self.cfg, bandwidth_gbps=2048)

    def test_round_count(self):
        run = self.model.run(poly(20), 20)
        assert len(run.rounds) == 20

    def test_round_one_dominates(self):
        """Round 1 processes half of all pairs (§VI-A1 factor 1)."""
        run = self.model.run(poly(20), 20)
        total_pairs = sum(r.pairs for r in run.rounds)
        assert run.rounds[0].pairs / total_pairs == pytest.approx(0.5, abs=0.01)

    def test_fr_not_read_in_round_one(self):
        """Build-MLE fusion: fused fr contributes no round-1 reads."""
        fused = self.model.run(poly(20), 16, fuse_fr=True)
        unfused = self.model.run(poly(20), 16, fuse_fr=False)
        assert fused.rounds[0].bytes_read < unfused.rounds[0].bytes_read

    def test_late_rounds_on_chip(self):
        run = self.model.run(poly(20), 20)
        assert run.rounds[-1].on_chip
        assert not run.rounds[0].on_chip
        assert run.rounds[-1].bytes_read == 0

    def test_bandwidth_monotonicity(self):
        slow = SumCheckUnitModel(self.cfg, 64).run(poly(22), 20)
        fast = SumCheckUnitModel(self.cfg, 4096).run(poly(22), 20)
        assert fast.latency_s < slow.latency_s

    def test_more_pes_faster(self):
        small = SumCheckUnitModel(
            SumCheckUnitConfig(pes=2, ees_per_pe=7, pls_per_pe=5), 4096
        ).run(poly(22), 20)
        big = SumCheckUnitModel(
            SumCheckUnitConfig(pes=32, ees_per_pe=7, pls_per_pe=5), 4096
        ).run(poly(22), 20)
        assert big.latency_s < small.latency_s

    def test_utilization_in_range(self):
        """Fig 6: utilization around 0.4-0.6 for the HP polynomials."""
        for gid in (20, 21, 22, 23):
            run = self.model.run(poly(gid), 20)
            assert 0.2 < run.utilization < 0.8, (gid, run.utilization)

    def test_sparsity_reduces_round1_reads(self):
        dense_poly = poly(20)
        all_dense = PolyProfile(
            name="dense", terms=dense_poly.terms,
            mle_classes={k: "dense" for k in dense_poly.mle_classes},
        )
        sparse_run = self.model.run(dense_poly, 16)
        dense_run = self.model.run(all_dense, 16)
        assert sparse_run.rounds[0].bytes_read < dense_run.rounds[0].bytes_read

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SumCheckUnitConfig(ees_per_pe=1)
        with pytest.raises(ValueError):
            SumCheckUnitConfig(pls_per_pe=0)
        with pytest.raises(ValueError):
            SumCheckUnitConfig(pes=0)


class TestMSMUnit:
    def setup_method(self):
        self.model = MSMUnitModel(MSMUnitConfig(pes=32, window_bits=9), 2048)

    def test_sparse_cheaper_than_dense(self):
        n = 1 << 20
        assert (self.model.latency_s(n, sparse=True)
                < self.model.latency_s(n, sparse=False))

    def test_roughly_linear_in_points(self):
        t1 = self.model.latency_s(1 << 20)
        t2 = self.model.latency_s(1 << 22)
        assert 3.0 < t2 / t1 < 5.0

    def test_more_pes_faster(self):
        small = MSMUnitModel(MSMUnitConfig(pes=1, window_bits=9), 2048)
        assert small.latency_s(1 << 20) > self.model.latency_s(1 << 20)

    def test_window_count(self):
        assert MSMUnitConfig(window_bits=9).num_windows == 29
        assert MSMUnitConfig(window_bits=10).num_windows == 26

    def test_invalid(self):
        with pytest.raises(ValueError):
            self.model.run(0)
        with pytest.raises(ValueError):
            MSMUnitConfig(pes=0)


class TestForestAndOthers:
    def test_forest_product_tree_muls(self):
        run = ForestModel(ForestConfig(80, 8), 2048).product_tree(1 << 20)
        assert run.multiplies == (1 << 20) - 1

    def test_forest_sized_for_matches_exemplar(self):
        sc = SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5)
        forest = ForestConfig.sized_for(sc)
        assert forest.total_multipliers == 640  # 80 trees x 8 (§IV-B2)

    def test_forest_batch_eval_scales(self):
        m = ForestModel(ForestConfig(80, 8), 2048)
        assert (m.batch_eval(10, 1 << 20).latency_s
                > m.batch_eval(2, 1 << 20).latency_s)

    def test_permquot_inverse_units_published_value(self):
        """§IV-B5: 266 inverse units sustain full throughput."""
        assert inverse_units_required() == 266

    def test_permquot_latency_scales_with_columns(self):
        m = PermQuotModel(PermQuotConfig(), 2048)
        t5 = m.run(1 << 20, 5).latency_s
        t10 = m.run(1 << 20, 10).latency_s
        assert t10 > t5

    def test_mle_combine_bandwidth_bound(self):
        m = MLECombineModel(64)  # slow memory
        run = m.run(1 << 20, streams=4)
        assert run.latency_s == pytest.approx(
            memory.transfer_seconds(run.bytes_moved, 64))

    def test_mle_combine_validation(self):
        with pytest.raises(ValueError):
            MLECombineModel(2048).run(100, streams=0)


class TestAreaPower:
    def test_exemplar_matches_table5(self):
        """Table V: 294.32 mm², 202.28 W (we accept ±8%)."""
        cfg = AcceleratorConfig.exemplar()
        area = accelerator_area(cfg)
        assert area.msm == pytest.approx(105.69, rel=0.05)
        assert area.forest == pytest.approx(48.18, rel=0.05)
        assert area.sumcheck == pytest.approx(16.65, rel=0.08)
        assert area.other == pytest.approx(10.64, rel=0.10)
        assert area.hbm_phy == pytest.approx(59.20, rel=0.01)
        assert area.total == pytest.approx(294.32, rel=0.08)
        power = accelerator_power(area, cfg.bandwidth_gbps)
        assert power.total == pytest.approx(202.28, rel=0.08)

    def test_standalone_sumcheck_area_order(self):
        small = standalone_sumcheck_area(
            SumCheckUnitConfig(pes=1, ees_per_pe=2, pls_per_pe=3), 64)
        big = standalone_sumcheck_area(
            SumCheckUnitConfig(pes=32, ees_per_pe=7, pls_per_pe=8), 64)
        assert small < 2.0 < big

    def test_fixed_vs_arbitrary_prime(self):
        fixed = accelerator_area(AcceleratorConfig.exemplar())
        arb_cfg = AcceleratorConfig(
            sumcheck=SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                                        sram_bank_words=1024,
                                        fixed_prime=False),
            msm=MSMUnitConfig(pes=32, window_bits=9, points_per_pe=8192,
                              fixed_prime=False),
            forest=ForestConfig(trees=80, muls_per_tree=8, fixed_prime=False),
            bandwidth_gbps=2048.0,
        )
        arb = accelerator_area(arb_cfg)
        assert arb.compute > 1.5 * fixed.compute  # ~2x computational density


class TestFullModel:
    def test_exemplar_speedup_band(self):
        """§VI-B1: ~1400x at iso-CPU area with 2 TB/s for 2^24 Jellyfish."""
        model = ZkPhireModel(AcceleratorConfig.exemplar())
        total = model.prove_latency_s("jellyfish", 24)
        speedup = 182.896 / total
        assert 1000 < speedup < 2000

    def test_vanilla_runtimes_match_table6_shape(self):
        """Table VI zkPHIRE column (measured *without* masking):
        2.012 / 10.88 / 161.876 ms — we accept a 2.2x band."""
        cfg = AcceleratorConfig.exemplar()
        unmasked = AcceleratorConfig(
            sumcheck=cfg.sumcheck, msm=cfg.msm, forest=cfg.forest,
            bandwidth_gbps=cfg.bandwidth_gbps, mask_zerocheck=False)
        model = ZkPhireModel(unmasked)
        for mu, paper_ms in [(17, 2.012), (20, 10.88), (24, 161.876)]:
            ours = model.prove_latency_s("vanilla", mu) * 1e3
            assert paper_ms / 2.2 < ours < paper_ms * 2.2, (mu, ours)

    def test_masking_helps(self):
        cfg = AcceleratorConfig.exemplar()
        masked = ZkPhireModel(cfg).breakdown("jellyfish", 24)
        unmasked_cfg = AcceleratorConfig(
            sumcheck=cfg.sumcheck, msm=cfg.msm, forest=cfg.forest,
            bandwidth_gbps=cfg.bandwidth_gbps, mask_zerocheck=False)
        unmasked = ZkPhireModel(unmasked_cfg).breakdown("jellyfish", 24)
        assert masked.total < unmasked.total

    def test_jellyfish_reduction_wins(self):
        """Fig 13: Jellyfish gates (smaller tables) beat Vanilla."""
        model = ZkPhireModel(AcceleratorConfig.exemplar())
        vanilla = model.prove_latency_s("vanilla", 24)
        jellyfish = model.prove_latency_s("jellyfish", 19)  # 32x reduction
        assert jellyfish < vanilla / 5

    def test_proof_size_band(self):
        """Table IX: 5.09 KB Vanilla @2^24, 4.41 KB Jellyfish @2^19 (±50%)."""
        assert 3500 < proof_size_bytes("vanilla", 24) < 7600
        assert 3000 < proof_size_bytes("jellyfish", 19) < 6600

    def test_unknown_gate_type(self):
        with pytest.raises(ValueError):
            ZkPhireModel(AcceleratorConfig.exemplar()).breakdown("plonkish", 20)

    def test_opencheck_profile(self):
        p = opencheck_profile()
        assert p.degree == 2
        assert len(p.terms) == 6  # Table I row 24


class TestCpuBaseline:
    def test_table2_calibration_within_2x(self):
        """Every Table II CPU entry within 2x of the fitted model."""
        cpu = CpuModel(threads=4)
        # (profile, num_vars, repeats, measured ms)
        from repro.hw.scheduler import TermProfile

        spartan1 = PolyProfile("s1", [TermProfile((("A", 1), ("B", 1), ("f", 1))),
                                      TermProfile((("C", 1), ("f", 1)))])
        spartan2 = PolyProfile("s2", [TermProfile((("S", 1), ("Z", 1)))])
        abc = PolyProfile("abc", [TermProfile((("A", 1), ("B", 1), ("C", 1)))])
        hp20 = PolyProfile("hp20", [
            TermProfile((("qL", 1), ("w1", 1))),
            TermProfile((("qR", 1), ("w2", 1))),
            TermProfile((("qO", 1), ("w3", 1))),
            TermProfile((("qM", 1), ("w1", 1), ("w2", 1))),
            TermProfile((("qC", 1),)),
        ])
        cases = [
            (spartan1, 24, 1, 6770), (spartan2, 25, 1, 5237),
            (abc, 24, 12, 60993), (abc, 23, 6, 15248), (abc, 25, 4, 40662),
            (hp20, 24, 1, 13354),
        ]
        for profile, mu, reps, measured_ms in cases:
            ours = cpu.sumcheck_seconds(profile, mu, repeats=reps) * 1e3
            assert measured_ms / 2 < ours < measured_ms * 2, (
                profile.name, ours, measured_ms)

    def test_modmul_count_formula(self):
        p = PolyProfile("x", [__import__("repro.hw.scheduler",
                                         fromlist=["TermProfile"]).TermProfile(
            (("A", 1), ("B", 1)))])
        # d=2: per pair: 2*(1) ext + 3*2 prod + 2 upd = 10; pairs = 2^mu - 1
        assert sumcheck_modmuls(p, 3) == 10 * 7

    def test_thread_scaling(self):
        p = poly(20)
        t4 = CpuModel(threads=4).sumcheck_seconds(p, 20)
        t32 = CpuModel(threads=32).sumcheck_seconds(p, 20)
        assert t32 < t4


class TestZkSpeed:
    def test_plus_faster_than_base(self):
        """§VI-B6: zkSpeed+ is ~10% faster than zkSpeed."""
        base = ZkSpeedSumCheckModel(plus=False).latency_s(poly(20), 24)
        plus = ZkSpeedSumCheckModel(plus=True).latency_s(poly(20), 24)
        assert plus < base
        assert 1.02 < base / plus < 1.6

    def test_rejects_high_degree(self):
        from repro.gates import high_degree_sweep_gate

        hi = PolyProfile.from_gate(high_degree_sweep_gate(20))
        with pytest.raises(ValueError):
            ZkSpeedSumCheckModel().run(hi, 20)

    def test_zkphire_competitive_at_iso_conditions(self):
        """§VI-A3: zkPHIRE within ~2x of zkSpeed+ on Vanilla SumChecks at
        iso-bandwidth (the paper reports 30% slower at iso-area)."""
        plus = ZkSpeedSumCheckModel(plus=True, bandwidth_gbps=2048)
        ours = SumCheckUnitModel(
            SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                               sram_bank_words=1024), 2048)
        t_plus = plus.latency_s(poly(20), 24)
        t_ours = ours.run(poly(20), 24).latency_s
        assert t_ours < 2.5 * t_plus
