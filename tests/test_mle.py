"""Unit and property tests for repro.mle."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import Fr, OpCounter
from repro.mle import (
    DenseMLE,
    Term,
    VirtualPolynomial,
    build_eq_mle,
    eq_eval,
    extend_pair,
)

P = Fr.modulus
small = st.integers(min_value=0, max_value=P - 1)


class TestDenseMLE:
    def test_length_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            DenseMLE(Fr, [1, 2, 3])
        with pytest.raises(ValueError):
            DenseMLE(Fr, [])

    def test_num_vars(self):
        assert DenseMLE(Fr, [1]).num_vars == 0
        assert DenseMLE(Fr, [1, 2]).num_vars == 1
        assert DenseMLE(Fr, list(range(8))).num_vars == 3

    def test_hypercube_evaluation_convention(self):
        """Index bit 0 is X_1: f(x1,x2) lives at index x1 + 2*x2."""
        f = DenseMLE(Fr, [10, 11, 12, 13])
        assert f.evaluate([0, 0]) == 10
        assert f.evaluate([1, 0]) == 11
        assert f.evaluate([0, 1]) == 12
        assert f.evaluate([1, 1]) == 13

    def test_fix_first_variable_at_bool_points(self):
        f = DenseMLE(Fr, [10, 11, 12, 13])
        f0 = f.fix_first_variable(0)
        f1 = f.fix_first_variable(1)
        assert f0.table == [10, 12]
        assert f1.table == [11, 13]

    def test_fix_first_is_linear_interpolation(self):
        f = DenseMLE(Fr, [3, 7])
        r = 5
        assert f.fix_first_variable(r).table[0] == (3 + r * (7 - 3)) % P

    def test_fix_zero_var_mle_rejected(self):
        with pytest.raises(ValueError):
            DenseMLE(Fr, [5]).fix_first_variable(1)

    def test_evaluate_multilinear_identity(self, rng):
        """MLE is the unique multilinear interpolant of its table."""
        f = DenseMLE.random(Fr, 3, rng)
        # at hypercube points, evaluate == table
        for idx in range(8):
            point = [(idx >> i) & 1 for i in range(3)]
            assert f.evaluate(point) == f.table[idx]

    def test_evaluate_wrong_arity(self):
        with pytest.raises(ValueError):
            DenseMLE(Fr, [1, 2]).evaluate([1, 2])

    def test_evaluate_is_multilinear_in_each_var(self, rng):
        f = DenseMLE.random(Fr, 2, rng)
        r2 = rng.randrange(P)
        # linear in X1: f(t, r2) = f(0,r2) + t*(f(1,r2)-f(0,r2))
        f0 = f.evaluate([0, r2])
        f1 = f.evaluate([1, r2])
        t = rng.randrange(P)
        assert f.evaluate([t, r2]) == (f0 + t * (f1 - f0)) % P

    def test_fix_variables_sequence_equals_evaluate(self, rng):
        f = DenseMLE.random(Fr, 4, rng)
        point = [rng.randrange(P) for _ in range(4)]
        assert f.fix_variables(point).table[0] == f.evaluate(point)

    def test_random_sparsity(self, rng):
        f = DenseMLE.random(Fr, 10, rng, sparsity=0.9)
        assert f.nonzero_fraction() < 0.2

    def test_pointwise_ops(self):
        a = DenseMLE(Fr, [1, 2])
        b = DenseMLE(Fr, [3, 4])
        assert a.pointwise_add(b).table == [4, 6]
        assert a.pointwise_mul(b).table == [3, 8]
        assert a.scaled(10).table == [10, 20]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DenseMLE(Fr, [1, 2]).pointwise_add(DenseMLE(Fr, [1, 2, 3, 4]))

    def test_update_counts_ee_muls(self):
        c = OpCounter()
        DenseMLE(Fr, list(range(8))).fix_first_variable(3, c)
        assert c.ee_mul == 4  # one mul per output entry

    def test_constructor_reduces_mod_p(self):
        f = DenseMLE(Fr, [P + 1, -1])
        assert f.table == [1, P - 1]


class TestExtendPair:
    def test_degree_one_is_identity(self):
        assert extend_pair(Fr, 5, 9, 1) == [5, 9]

    def test_line_extension(self):
        # line through (0,3),(1,7): slope 4
        assert extend_pair(Fr, 3, 7, 4) == [3, 7, 11, 15, 19]

    def test_matches_mle_fix(self, rng):
        """Extension at X=k equals folding the pair with challenge k."""
        lo, hi = rng.randrange(P), rng.randrange(P)
        ext = extend_pair(Fr, lo, hi, 5)
        f = DenseMLE(Fr, [lo, hi])
        for k in range(6):
            assert ext[k] == f.fix_first_variable(k).table[0]

    def test_counts_adds_only(self):
        c = OpCounter()
        extend_pair(Fr, 1, 2, 4, c)
        assert c.mul == 0 and c.add == 3

    @given(lo=small, hi=small, k=st.integers(min_value=0, max_value=30))
    @settings(max_examples=30)
    def test_extension_formula(self, lo, hi, k):
        ext = extend_pair(Fr, lo, hi, max(k, 1))
        assert ext[k if k <= len(ext) - 1 else -1] == (
            (lo + (hi - lo) * min(k, len(ext) - 1)) % P
        )


class TestEq:
    def test_eq_table_is_indicator_on_hypercube(self, rng):
        r = [rng.randrange(2) for _ in range(3)]  # boolean r
        eq = build_eq_mle(Fr, r)
        idx_r = sum(b << i for i, b in enumerate(r))
        for idx in range(8):
            assert eq.table[idx] == (1 if idx == idx_r else 0)

    def test_eq_table_matches_closed_form(self, rng):
        r = [rng.randrange(P) for _ in range(4)]
        eq = build_eq_mle(Fr, r)
        for idx in range(16):
            x = [(idx >> i) & 1 for i in range(4)]
            assert eq.table[idx] == eq_eval(Fr, x, r)

    def test_eq_table_sums_to_one(self, rng):
        """sum_x eq(x, r) = 1 for any r."""
        r = [rng.randrange(P) for _ in range(5)]
        eq = build_eq_mle(Fr, r)
        assert sum(eq.table) % P == 1

    def test_eq_eval_symmetric(self, rng):
        x = [rng.randrange(P) for _ in range(4)]
        r = [rng.randrange(P) for _ in range(4)]
        assert eq_eval(Fr, x, r) == eq_eval(Fr, r, x)

    def test_eq_eval_length_mismatch(self):
        with pytest.raises(ValueError):
            eq_eval(Fr, [1], [1, 2])

    def test_build_counts_muls(self):
        c = OpCounter()
        build_eq_mle(Fr, [3, 5, 7], c)
        assert c.mul == 2 + 4 + 8  # doubling construction


class TestVirtualPolynomial:
    def _plonk_like(self, rng, num_vars=3):
        mles = {
            name: DenseMLE.random(Fr, num_vars, rng)
            for name in ("qL", "w1", "w2", "qM")
        }
        terms = [
            Term(1, (("qL", 1), ("w1", 1))),
            Term(1, (("qM", 1), ("w1", 1), ("w2", 1))),
        ]
        return VirtualPolynomial(Fr, terms, mles)

    def test_degree_and_names(self, rng):
        vp = self._plonk_like(rng)
        assert vp.degree == 3
        assert vp.unique_mle_names == ["qL", "w1", "qM", "w2"]

    def test_evaluate_at_index(self, rng):
        vp = self._plonk_like(rng)
        idx = 5
        expected = (
            vp.mles["qL"].table[idx] * vp.mles["w1"].table[idx]
            + vp.mles["qM"].table[idx]
            * vp.mles["w1"].table[idx]
            * vp.mles["w2"].table[idx]
        ) % P
        assert vp.evaluate_at_index(idx) == expected

    def test_sum_over_hypercube(self, rng):
        vp = self._plonk_like(rng)
        assert vp.sum_over_hypercube() == (
            sum(vp.evaluate_at_index(i) for i in range(8)) % P
        )

    def test_evaluate_extends_hypercube(self, rng):
        vp = self._plonk_like(rng)
        for idx in range(8):
            point = [(idx >> i) & 1 for i in range(3)]
            assert vp.evaluate(point) == vp.evaluate_at_index(idx)

    def test_powers(self, rng):
        w = DenseMLE.random(Fr, 2, rng)
        vp = VirtualPolynomial(Fr, [Term(1, (("w", 5),))], {"w": w})
        assert vp.degree == 5
        for idx in range(4):
            assert vp.evaluate_at_index(idx) == pow(w.table[idx], 5, P)

    def test_fix_first_variable_commutes_with_eval(self, rng):
        vp = self._plonk_like(rng)
        r = rng.randrange(P)
        fixed = vp.fix_first_variable(r)
        rest = [rng.randrange(P) for _ in range(2)]
        assert fixed.evaluate(rest) == vp.evaluate([r] + rest)

    def test_validation_errors(self, rng):
        w = DenseMLE.random(Fr, 2, rng)
        with pytest.raises(KeyError):
            VirtualPolynomial(Fr, [Term(1, (("missing", 1),))], {"w": w})
        with pytest.raises(ValueError):
            VirtualPolynomial(Fr, [], {"w": w})
        with pytest.raises(ValueError):
            Term(1, (("w", 1), ("w", 2))).validate()
        with pytest.raises(ValueError):
            Term(1, (("w", 0),)).validate()
        with pytest.raises(ValueError):
            VirtualPolynomial(
                Fr,
                [Term(1, (("w", 1),))],
                {"w": w, "v": DenseMLE.random(Fr, 3, rng)},
            )

    def test_combine_matches_evaluate(self, rng):
        vp = self._plonk_like(rng)
        point = [rng.randrange(P) for _ in range(3)]
        evals = {n: vp.mles[n].evaluate(point) for n in vp.mles}
        assert vp.combine(evals) == vp.evaluate(point)
