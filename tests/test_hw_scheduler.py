"""Tests for the Figure-2 graph-decomposition scheduler."""

import pytest

from repro.gates import gate_by_id, high_degree_sweep_gate
from repro.hw.scheduler import (
    PolyProfile,
    TermProfile,
    nodes_for_degree,
    schedule_polynomial,
)


def profile_for(gate_id):
    return PolyProfile.from_gate(gate_by_id(gate_id))


class TestNodesForDegree:
    def test_single_node_up_to_capacity(self):
        for d in range(1, 7):
            assert nodes_for_degree(d, ees=6) == 1

    def test_paper_example_six_ees(self):
        """§VI-A2: with 6 EEs, degree 1-6 -> 1 node, degree 7-11 -> 2."""
        for d in range(7, 12):
            assert nodes_for_degree(d, ees=6) == 2
        assert nodes_for_degree(12, ees=6) == 3

    def test_three_ees_figure2(self):
        """Figure 2: degree-6 term with 3 EEs needs 3 nodes (3+2+1... the
        accumulation schedule covers 3, then 2+tmp, then 1+tmp)."""
        assert nodes_for_degree(6, ees=3) == 3
        assert nodes_for_degree(3, ees=3) == 1
        assert nodes_for_degree(4, ees=3) == 2

    def test_two_ees(self):
        # each extra factor beyond the first two needs its own node
        assert nodes_for_degree(2, ees=2) == 1
        assert nodes_for_degree(5, ees=2) == 4


class TestSchedule:
    def test_figure2_shape(self):
        """The Figure-2 polynomial: degree-6 term + degree-3 term, 3 EEs
        -> 4 steps total, one Tmp buffer."""
        poly = PolyProfile(
            name="fig2",
            terms=[
                TermProfile(tuple((c, 1) for c in "abcdef")),
                TermProfile((("h", 1), ("k", 1), ("n", 1))),
            ],
        )
        sched = schedule_polynomial(poly, ees=3, pls=3)
        assert sched.num_steps == 4
        assert sched.tmp_buffers_required() == 1
        # term 2 fits one node
        term2_nodes = [n for n in sched.nodes if n.term_index == 1]
        assert len(term2_nodes) == 1
        assert not term2_nodes[0].uses_tmp

    def test_multiplicity_occupies_slots(self):
        """w^5 occupies five lane ports -> splits across nodes at E=3."""
        poly = PolyProfile(name="p", terms=[TermProfile((("w", 5),))])
        sched = schedule_polynomial(poly, ees=3, pls=3)
        assert sched.num_steps == nodes_for_degree(5, 3) == 2

    def test_repeated_mle_fetched_once(self):
        """An MLE used in several terms appears in new_names only once."""
        poly = PolyProfile(
            name="p",
            terms=[
                TermProfile((("a", 1), ("e", 1))),
                TermProfile((("c", 1), ("e", 1))),
            ],
        )
        sched = schedule_polynomial(poly, ees=4, pls=3)
        fetches = [n for node in sched.nodes for n in node.new_names]
        assert fetches.count("e") == 1

    def test_initiation_interval(self):
        poly = profile_for(22)  # degree 7 -> 8 extensions
        sched = schedule_polynomial(poly, ees=7, pls=5)
        assert sched.extensions == 8
        assert sched.initiation_interval() == 2  # ceil(8/5)
        assert sched.initiation_interval(8) == 1
        with pytest.raises(ValueError):
            sched.initiation_interval(0)

    def test_cycles_per_pair_scales_with_steps(self):
        lo = schedule_polynomial(profile_for(20), ees=7, pls=5)
        hi = schedule_polynomial(profile_for(20), ees=2, pls=5)
        assert hi.cycles_per_pair() >= lo.cycles_per_pair()

    def test_sweep_gate_monotone_steps(self):
        """Scheduler-induced jumps (Fig 8): steps grow stepwise with
        degree at fixed EEs."""
        steps = []
        for d in range(2, 31):
            poly = PolyProfile.from_gate(high_degree_sweep_gate(d))
            steps.append(schedule_polynomial(poly, ees=6, pls=5).num_steps)
        assert steps == sorted(steps)
        assert len(set(steps)) > 3  # several jumps across the sweep

    def test_min_ees_validated(self):
        with pytest.raises(ValueError):
            schedule_polynomial(profile_for(20), ees=1, pls=3)

    def test_all_table1_gates_schedulable(self):
        for gid in range(25):
            for ees in (2, 4, 7):
                sched = schedule_polynomial(profile_for(gid), ees=ees, pls=5)
                assert sched.num_steps >= len(profile_for(gid).terms)
                assert sched.tmp_buffers_required() <= 1


class TestPolyProfile:
    def test_from_gate_classes(self):
        poly = profile_for(22)
        assert poly.mle_classes["q1"] == "selector"
        assert poly.mle_classes["w1"] == "sparse"
        assert poly.mle_classes["fr"] == "dense"
        assert poly.has_fr

    def test_degree_and_uniques(self):
        poly = profile_for(20)
        assert poly.degree == 4
        assert len(poly.unique_mles) == 9

    def test_defaults_dense(self):
        poly = PolyProfile(name="p", terms=[TermProfile((("Z", 1),))])
        assert poly.mle_classes["Z"] == "dense"
        assert not poly.has_fr
