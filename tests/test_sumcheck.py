"""Unit, integration, and property tests for the SumCheck protocol."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import Fr, OpCounter
from repro.gates import gate_by_id, high_degree_sweep_gate
from repro.mle import DenseMLE, Term, VirtualPolynomial
from repro.sumcheck import (
    SumCheckError,
    Transcript,
    lagrange_eval_at,
    prove_sumcheck,
    prove_zerocheck,
    verify_sumcheck,
    verify_zerocheck,
)

P = Fr.modulus


def make_vp(rng, num_vars=3, gate_id=20):
    spec = gate_by_id(gate_id)
    scalars = {s: rng.randrange(1, P) for s in spec.compiled.scalar_names}
    terms = spec.compiled.bind(Fr, scalars)
    mles = {
        name: DenseMLE.random(Fr, num_vars, rng) for name in spec.compiled.mle_names
    }
    return VirtualPolynomial(Fr, terms, mles)


class TestTranscript:
    def test_determinism(self):
        t1, t2 = Transcript(Fr), Transcript(Fr)
        for t in (t1, t2):
            t.absorb_scalar(b"x", 42)
        assert t1.challenge(b"c") == t2.challenge(b"c")

    def test_divergence_on_different_data(self):
        t1, t2 = Transcript(Fr), Transcript(Fr)
        t1.absorb_scalar(b"x", 42)
        t2.absorb_scalar(b"x", 43)
        assert t1.challenge(b"c") != t2.challenge(b"c")

    def test_divergence_on_label(self):
        t1, t2 = Transcript(Fr), Transcript(Fr)
        t1.absorb_scalar(b"x", 42)
        t2.absorb_scalar(b"y", 42)
        assert t1.challenge(b"c") != t2.challenge(b"c")

    def test_challenges_advance_state(self):
        t = Transcript(Fr)
        assert t.challenge(b"c") != t.challenge(b"c")

    def test_challenges_list(self):
        t = Transcript(Fr)
        cs = t.challenges(b"r", 5)
        assert len(cs) == len(set(cs)) == 5
        assert all(0 <= c < P for c in cs)

    def test_fork_differs_from_parent(self):
        t = Transcript(Fr)
        child = t.fork(b"sub")
        assert child.challenge(b"c") != t.challenge(b"c")

    def test_point_absorption(self):
        from repro.curves import G1, G1_GENERATOR

        t1, t2 = Transcript(Fr), Transcript(Fr)
        t1.absorb_point(b"pt", G1_GENERATOR)
        t2.absorb_point(b"pt", G1.infinity)
        assert t1.challenge(b"c") != t2.challenge(b"c")


class TestLagrange:
    def test_constant(self):
        assert lagrange_eval_at(Fr, [7], 12345) == 7

    def test_interpolates_nodes(self, rng):
        evals = [rng.randrange(P) for _ in range(6)]
        for i, e in enumerate(evals):
            assert lagrange_eval_at(Fr, evals, i) == e

    def test_line(self):
        # s(x) = 3x + 2 via evals at 0,1
        assert lagrange_eval_at(Fr, [2, 5], 10) == 32

    def test_matches_explicit_polynomial(self, rng):
        # s(x) = 5x^3 - 2x + 9
        def s(x):
            return (5 * x**3 - 2 * x + 9) % P

        evals = [s(i) for i in range(4)]
        r = rng.randrange(P)
        assert lagrange_eval_at(Fr, evals, r) == s(r)

    @given(st.lists(st.integers(min_value=0, max_value=P - 1), min_size=2,
                    max_size=9))
    @settings(max_examples=25)
    def test_degree_bound_consistency(self, evals):
        """Interpolating d+1 samples of the interpolant reproduces it."""
        r = 1_000_003
        v = lagrange_eval_at(Fr, evals, r)
        resampled = [lagrange_eval_at(Fr, evals, i) for i in range(len(evals))]
        assert resampled == [e % P for e in evals]
        assert lagrange_eval_at(Fr, resampled, r) == v


class TestSumCheckHonest:
    @pytest.mark.parametrize("gate_id", [0, 1, 2, 3, 20, 22, 24])
    def test_roundtrip_table1_gates(self, rng, gate_id):
        vp = make_vp(rng, num_vars=3, gate_id=gate_id)
        proof = prove_sumcheck(vp, Transcript(Fr))
        challenges = verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))
        assert len(challenges) == 3

    def test_final_evals_match_tables(self, rng):
        vp = make_vp(rng, num_vars=4)
        proof = prove_sumcheck(vp, Transcript(Fr))
        for name, val in proof.final_evals.items():
            assert vp.mles[name].evaluate(proof.challenges) == val

    def test_oracle_checked_verification(self, rng):
        vp = make_vp(rng, num_vars=3)

        def oracle(name, point):
            return vp.mles[name].evaluate(point)

        proof = prove_sumcheck(vp, Transcript(Fr))
        verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr), oracle)

    def test_high_degree_gate(self, rng):
        spec = high_degree_sweep_gate(9)
        terms = spec.compiled.bind(Fr)
        mles = {
            n: DenseMLE.random(Fr, 3, rng) for n in spec.compiled.mle_names
        }
        vp = VirtualPolynomial(Fr, terms, mles)
        assert vp.degree == 10
        proof = prove_sumcheck(vp, Transcript(Fr))
        assert len(proof.round_evals[0]) == 11
        verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    def test_single_variable(self, rng):
        vp = make_vp(rng, num_vars=1)
        proof = prove_sumcheck(vp, Transcript(Fr))
        verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    def test_claim_equals_hypercube_sum(self, rng):
        vp = make_vp(rng, num_vars=3)
        proof = prove_sumcheck(vp, Transcript(Fr))
        assert proof.claim == vp.sum_over_hypercube()

    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_property_roundtrip_random_structures(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randrange(1, 4)
        names = [f"m{i}" for i in range(rng.randrange(1, 5))]
        mles = {n: DenseMLE.random(Fr, num_vars, rng) for n in names}
        terms = []
        for _ in range(rng.randrange(1, 4)):
            chosen = rng.sample(names, rng.randrange(1, len(names) + 1))
            factors = tuple((n, rng.randrange(1, 3)) for n in chosen)
            terms.append(Term(rng.randrange(1, P), factors))
        vp = VirtualPolynomial(Fr, terms, mles)
        proof = prove_sumcheck(vp, Transcript(Fr))
        verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))


class TestSumCheckSoundness:
    def _proof(self, rng, num_vars=3):
        vp = make_vp(rng, num_vars=num_vars)
        return vp, prove_sumcheck(vp, Transcript(Fr))

    def test_wrong_claim_rejected(self, rng):
        vp, proof = self._proof(rng)
        proof.claim = (proof.claim + 1) % P
        with pytest.raises(SumCheckError):
            verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    def test_tampered_round_eval_rejected(self, rng):
        vp, proof = self._proof(rng)
        proof.round_evals[1][0] = (proof.round_evals[1][0] + 1) % P
        with pytest.raises(SumCheckError):
            verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    def test_tampered_final_eval_rejected(self, rng):
        vp, proof = self._proof(rng)
        name = next(iter(proof.final_evals))
        proof.final_evals[name] = (proof.final_evals[name] + 1) % P
        with pytest.raises(SumCheckError):
            verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    def test_missing_round_rejected(self, rng):
        vp, proof = self._proof(rng)
        proof.round_evals.pop()
        with pytest.raises(SumCheckError):
            verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    def test_short_round_rejected(self, rng):
        vp, proof = self._proof(rng)
        proof.round_evals[0] = proof.round_evals[0][:-1]
        with pytest.raises(SumCheckError):
            verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    def test_missing_final_eval_rejected(self, rng):
        vp, proof = self._proof(rng)
        proof.final_evals.pop(next(iter(proof.final_evals)))
        with pytest.raises(SumCheckError):
            verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))

    def test_oracle_mismatch_rejected(self, rng):
        vp, proof = self._proof(rng)

        def bad_oracle(name, point):
            return vp.mles[name].evaluate(point) + 1

        with pytest.raises(SumCheckError):
            verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr), bad_oracle)

    def test_consistent_forgery_still_fails_final_check(self, rng):
        """A forged trailing round that satisfies s(0)+s(1) still trips
        the composition check — the soundness heart of the protocol."""
        vp, proof = self._proof(rng)
        last = proof.round_evals[-1]
        # craft evals summing to the same s(0)+s(1) but otherwise wrong
        forged = list(last)
        forged[0] = (forged[0] + 5) % P
        forged[1] = (forged[1] - 5) % P
        proof.round_evals[-1] = forged
        with pytest.raises(SumCheckError):
            verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))


class TestZeroCheck:
    def _zero_witness(self, rng, num_vars=3):
        """Build MLEs where q*(a - b) vanishes on the cube (a == b)."""
        a = DenseMLE.random(Fr, num_vars, rng)
        b = DenseMLE(Fr, list(a.table))
        q = DenseMLE.random(Fr, num_vars, rng)
        terms = [Term(1, (("q", 1), ("a", 1))), Term(-1, (("q", 1), ("b", 1)))]
        return terms, {"q": q, "a": a, "b": b}

    def test_honest_zerocheck_verifies(self, rng):
        terms, mles = self._zero_witness(rng)
        proof = prove_zerocheck(Fr, terms, mles, Transcript(Fr))
        challenges = verify_zerocheck(Fr, terms, proof, Transcript(Fr))
        assert len(challenges) == 3

    def test_zerocheck_with_oracle(self, rng):
        terms, mles = self._zero_witness(rng)
        proof = prove_zerocheck(Fr, terms, mles, Transcript(Fr))
        verify_zerocheck(
            Fr, terms, proof, Transcript(Fr),
            final_eval_oracle=lambda n, pt: mles[n].evaluate(pt),
        )

    def test_nonzero_witness_rejected(self, rng):
        """One bad gate: sum may still be 0, but ZeroCheck catches it."""
        terms, mles = self._zero_witness(rng)
        # corrupt two entries so the plain sum of q*(a-b) stays 0
        t = list(mles["a"].table)
        t[0] = (t[0] + 1) % P
        mles_bad = dict(mles)
        mles_bad["a"] = DenseMLE(Fr, t)
        # make q[0] nonzero to ensure the gate actually fires
        qt = list(mles["q"].table)
        qt[0] = 7
        mles_bad["q"] = DenseMLE(Fr, qt)
        proof = prove_zerocheck(Fr, terms, mles_bad, Transcript(Fr))
        with pytest.raises(SumCheckError):
            verify_zerocheck(Fr, terms, proof, Transcript(Fr))

    def test_reserved_fr_name_rejected(self, rng):
        terms, mles = self._zero_witness(rng)
        mles["fr"] = DenseMLE.random(Fr, 3, rng)
        with pytest.raises(ValueError):
            prove_zerocheck(Fr, terms, mles, Transcript(Fr))

    def test_nonzero_claim_rejected(self, rng):
        terms, mles = self._zero_witness(rng)
        proof = prove_zerocheck(Fr, terms, mles, Transcript(Fr))
        proof.claim = 1
        with pytest.raises(SumCheckError):
            verify_zerocheck(Fr, terms, proof, Transcript(Fr))

    def test_fr_final_eval_checked(self, rng):
        terms, mles = self._zero_witness(rng)
        proof = prove_zerocheck(Fr, terms, mles, Transcript(Fr))
        # Tamper fr's final evaluation AND fix up the composition check:
        # the public eq-evaluation check must still catch it.
        proof.final_evals["fr"] = (proof.final_evals["fr"] + 1) % P
        with pytest.raises(SumCheckError):
            verify_zerocheck(Fr, terms, proof, Transcript(Fr))

    def test_randomizer_degree_bump(self, rng):
        terms, mles = self._zero_witness(rng)
        proof = prove_zerocheck(Fr, terms, mles, Transcript(Fr))
        # base degree 2 (+1 for fr) -> 4 evaluations per round
        assert all(len(e) == 4 for e in proof.round_evals)


class TestOpCounting:
    def test_update_mul_count(self, rng):
        """Per round after the first fold: one EE mul per output entry per MLE."""
        vp = make_vp(rng, num_vars=3, gate_id=2)  # 2 MLEs
        counter = OpCounter()
        prove_sumcheck(vp, Transcript(Fr), counter=counter)
        # folds at sizes 8->4, 4->2, 2->1 for each of 2 MLEs
        assert counter.ee_mul == 2 * (4 + 2 + 1)

    def test_pl_mul_count_simple_product(self, rng):
        """Gate 2 (SumABC * Z): degree 2, 3 evals, 2 muls per eval-pair."""
        vp = make_vp(rng, num_vars=3, gate_id=2)
        counter = OpCounter()
        prove_sumcheck(vp, Transcript(Fr), counter=counter)
        # pairs per round: 4+2+1 = 7; per pair: 3 evals × 2 factor-muls
        assert counter.pl_mul == 7 * 3 * 2
