"""Unit and property tests for repro.curves."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import (
    G1,
    G1_GENERATOR,
    msm_naive,
    msm_pippenger,
)
from repro.curves.msm import optimal_window_bits
from repro.fields import FR_MODULUS


def rand_point(rng):
    return G1_GENERATOR.scalar_mul(rng.randrange(1, FR_MODULUS))


class TestGroupLaw:
    def test_generator_on_curve(self):
        assert G1.is_on_curve(G1_GENERATOR.x, G1_GENERATOR.y)

    def test_generator_has_order_r(self):
        assert G1_GENERATOR.scalar_mul(FR_MODULUS).inf

    def test_off_curve_rejected(self):
        with pytest.raises(ValueError):
            G1.affine(1, 1)

    def test_identity_laws(self):
        inf = G1.infinity
        g = G1_GENERATOR
        assert g.add(inf) == g
        assert inf.add(g) == g
        assert inf.add(inf) == inf

    def test_inverse_law(self):
        g = G1_GENERATOR
        assert g.add(g.neg()).inf

    def test_double_matches_add(self):
        g = G1_GENERATOR
        assert g.double() == g.add(g)

    def test_commutativity(self, rng):
        a, b = rand_point(rng), rand_point(rng)
        assert a.add(b) == b.add(a)

    def test_associativity(self, rng):
        a, b, c = (rand_point(rng) for _ in range(3))
        assert a.add(b).add(c) == a.add(b.add(c))

    def test_scalar_mul_distributes(self, rng):
        k1 = rng.randrange(1, 1 << 64)
        k2 = rng.randrange(1, 1 << 64)
        g = G1_GENERATOR
        assert g.scalar_mul(k1).add(g.scalar_mul(k2)) == g.scalar_mul(k1 + k2)

    def test_scalar_mul_small_cases(self):
        g = G1_GENERATOR
        assert g.scalar_mul(0).inf
        assert g.scalar_mul(1) == g
        assert g.scalar_mul(2) == g.double()
        assert g.scalar_mul(3) == g.double().add(g)

    def test_scalar_mul_mod_order(self):
        g = G1_GENERATOR
        k = 123456789
        assert g.scalar_mul(k + FR_MODULUS) == g.scalar_mul(k)

    def test_mixed_addition_matches_full(self, rng):
        a, b = rand_point(rng), rand_point(rng)
        full = a.to_jacobian().add(b.to_jacobian())
        mixed = a.to_jacobian().add_affine(b)
        assert full == mixed

    def test_mixed_addition_doubling_case(self):
        g = G1_GENERATOR
        assert g.to_jacobian().add_affine(g) == g.double().to_jacobian()

    def test_mixed_addition_inverse_case(self):
        g = G1_GENERATOR
        assert g.to_jacobian().add_affine(g.neg()).is_infinity

    def test_jacobian_equality_cross_mul(self):
        g = G1_GENERATOR.to_jacobian()
        doubled = g.double()
        # same point, different Z
        affine_again = doubled.to_affine().to_jacobian()
        assert doubled == affine_again

    def test_jacobian_roundtrip(self, rng):
        a = rand_point(rng)
        assert a.to_jacobian().to_affine() == a


class TestMSM:
    def test_window_heuristic_monotone(self):
        sizes = [optimal_window_bits(1 << i) for i in range(2, 21, 3)]
        assert all(b >= 2 for b in sizes)
        assert sizes == sorted(sizes)

    def test_pippenger_matches_naive(self, rng):
        points = [rand_point(rng) for _ in range(8)]
        scalars = [rng.randrange(FR_MODULUS) for _ in range(8)]
        assert msm_pippenger(scalars, points) == msm_naive(scalars, points)

    def test_pippenger_various_windows(self, rng):
        points = [rand_point(rng) for _ in range(5)]
        scalars = [rng.randrange(FR_MODULUS) for _ in range(5)]
        expected = msm_naive(scalars, points)
        for c in (2, 4, 8, 13):
            assert msm_pippenger(scalars, points, window_bits=c) == expected

    def test_sparse_scalars(self, rng):
        """90% of scalars zero/one — the witness-MSM regime (§IV-B1)."""
        points = [rand_point(rng) for _ in range(10)]
        scalars = [0, 1, 0, 0, 1, 0, 0, rng.randrange(FR_MODULUS), 0, 1]
        assert msm_pippenger(scalars, points) == msm_naive(scalars, points)

    def test_all_zero_scalars(self, rng):
        points = [rand_point(rng) for _ in range(3)]
        assert msm_pippenger([0, 0, 0], points).inf

    def test_single_term(self, rng):
        pt = rand_point(rng)
        k = rng.randrange(FR_MODULUS)
        assert msm_pippenger([k], [pt]) == pt.scalar_mul(k)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            msm_pippenger([1, 2], [G1_GENERATOR])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            msm_pippenger([], [])

    def test_infinity_points_skipped(self, rng):
        pts = [G1.infinity, rand_point(rng)]
        ks = [5, 7]
        assert msm_pippenger(ks, pts) == pts[1].scalar_mul(7)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_msm_is_linear_in_scalar(self, k):
        # k*G via MSM == scalar_mul
        assert msm_pippenger([k], [G1_GENERATOR]) == G1_GENERATOR.scalar_mul(k)
