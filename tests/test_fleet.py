"""Real-fleet contracts: parity with the sim, and the hard async paths.

ISSUE 7 coverage:

* **placement parity** — failure-free fleet runs route every job to the
  same node the cluster sim routes it to, for every policy (the
  foundation the predicted-vs-measured validation rests on);
* **byte identity** — proofs from N worker processes equal a single
  sync service's proofs bit for bit;
* **failure detection** — a frozen (wedged) worker misses heartbeats,
  is killed, and its in-flight job retries elsewhere;
* **cancellation** — killing a node mid-prove crashes the in-flight
  job, excludes the loser, and completes the retry on a peer;
* **double crash** — the same node killed twice (respawn between)
  keeps handles, monitor state, and the router coherent;
* **graceful drain** — a run cut off by ``run_timeout_s`` stops its
  workers cleanly with jobs still queued, no crash accounting;
* **build-once SRS** — a worker's final probe shows exactly one SRS
  construction however many jobs it proved.

Everything is seeded and event-driven — no sleeps in assertions; chaos
is injected through the fleet's deterministic action hooks.
"""

import asyncio

import pytest

from repro.cluster.core import ClusterConfig, ProvingCluster
from repro.cluster.nodes import NodeConfig
from repro.cluster.routing import ROUTING_POLICIES
from repro.fleet import EventLog
from repro.fleet.core import FleetConfig, ProvingFleet
from repro.fleet.validation import reference_proofs, significant_pairs
from repro.service.traffic import TrafficGenerator

SCENARIO = "zipf-mixed"
SEED = 7


def make_fleet(**kwargs) -> ProvingFleet:
    generator = TrafficGenerator(SCENARIO, seed=SEED)
    defaults = dict(
        num_nodes=2,
        policy="round_robin",
        time_model="functional",
        node=NodeConfig(max_vars=generator.max_vars()),
        run_timeout_s=180.0,
    )
    defaults.update(kwargs)
    return ProvingFleet(FleetConfig(**defaults))


def stream(n: int):
    return TrafficGenerator(SCENARIO, seed=SEED).jobs(n)


class TestParity:
    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_failure_free_placement_matches_sim(self, policy):
        generator = TrafficGenerator(SCENARIO, seed=SEED)
        config = ClusterConfig(
            num_nodes=3,
            policy=policy,
            time_model="functional",
            node=NodeConfig(max_vars=generator.max_vars()),
        )
        with ProvingCluster(config) as cluster:
            sim_records = cluster.run(generator.jobs(8))
        fleet = make_fleet(num_nodes=3, policy=policy)
        fleet_records = fleet.run(stream(8))
        sim_placement = {r.job_id: r.node_id for r in sim_records}
        fleet_placement = {r.job_id: r.node_id for r in fleet_records}
        assert fleet_placement == sim_placement
        # same placement must also mean same cache behavior per job
        assert {r.job_id: r.cache_hit for r in fleet_records} == {
            r.job_id: r.cache_hit for r in sim_records
        }

    def test_fleet_proofs_byte_identical_to_service(self):
        fleet = make_fleet(num_nodes=2, policy="affinity")
        fleet.run(stream(6))
        assert fleet.proofs == reference_proofs(SCENARIO, 6, seed=SEED)

    def test_significant_pairs_orders_and_filters(self):
        pairs = significant_pairs(
            {"a": 1.0, "b": 1.05, "c": 2.0}, significance=0.10
        )
        assert pairs == [("a", "c"), ("b", "c")]


class TestFailurePaths:
    def test_frozen_worker_misses_heartbeats_and_job_retries(self):
        fleet = make_fleet(
            num_nodes=2,
            policy="round_robin",
            heartbeat_s=0.05,
            heartbeat_misses=4.0,
            auto_respawn=False,
        )
        actions = [(0.0, lambda f: f.freeze("node-0", 30.0))]
        records = fleet.run(stream(4), actions=actions)
        assert len(records) == 4
        assert not fleet.failed_jobs
        assert fleet.crashes == 1
        assert fleet.retries == 1
        kinds = fleet.events.kinds()
        assert kinds["job_crashed"] == 1
        assert kinds["job_retried"] == 1
        downs = [e for e in fleet.events if e.kind == "node_down"]
        assert [e.node_id for e in downs] == ["node-0"]
        assert downs[0].detail["reason"] == "heartbeat"
        # the lost job finished on the surviving peer, attempt bumped
        (lost,) = [r for r in records if r.attempt == 1]
        assert lost.node_id == "node-1"

    def test_kill_cancels_in_flight_job_and_excludes_loser(self):
        fleet = make_fleet(
            num_nodes=2, policy="round_robin", auto_respawn=False
        )
        actions = [(0.02, lambda f: f.kill("node-0"))]
        records = fleet.run(stream(4), actions=actions)
        assert len(records) == 4
        assert not fleet.failed_jobs
        assert fleet.crashes == 1
        # round_robin sent job 0 to node-0; the kill caught it in flight
        crashed = [e for e in fleet.events if e.kind == "job_crashed"]
        assert [e.job_id for e in crashed] == [0]
        record = {r.job_id: r for r in records}[0]
        assert record.attempt == 1
        assert record.node_id == "node-1"
        assert fleet.lost_wall_s > 0.0

    def test_double_crash_of_same_node(self):
        fleet = make_fleet(
            num_nodes=2, policy="round_robin", max_retries=3
        )

        def kill_again(f):
            # wait for the respawned generation, then kill it for good
            if f._handles["node-0"].up:
                f.kill("node-0", respawn=False)
            elif not f._shutting_down:
                f._loop.call_later(0.05, kill_again, f)

        actions = [
            (0.02, lambda f: f.kill("node-0")),
            (0.1, kill_again),
        ]
        records = fleet.run(stream(10), actions=actions)
        assert len(records) == 10
        assert not fleet.failed_jobs
        assert fleet.crashes == 2
        downs = [e for e in fleet.events if e.kind == "node_down"]
        assert [e.node_id for e in downs] == ["node-0", "node-0"]
        # two generations of node-0 came up: initial + one respawn
        pids = [
            e.detail["pid"]
            for e in fleet.events
            if e.kind == "node_up" and e.node_id == "node-0"
        ]
        assert len(pids) == 2
        assert len(set(pids)) == 2

    def test_run_timeout_drains_gracefully_with_queued_jobs(self):
        fleet = make_fleet(num_nodes=1, run_timeout_s=0.25)
        # asyncio.TimeoutError: the builtin alias on 3.11+, its own
        # class on 3.10 — name the asyncio one so both match
        with pytest.raises(asyncio.TimeoutError):
            fleet.run(stream(16))
        # cut off early: work remained, but the stop was a drain, not a
        # crash — worker exited cleanly and reported its final snapshot
        assert len(fleet.records) < 16
        assert fleet.crashes == 0
        assert all(
            not h.process.is_alive() for h in fleet._handles.values()
        )
        assert fleet.worker_probes
        final = fleet.worker_probes[-1]
        assert final.srs_builds == 1
        assert final.jobs_proved >= len(fleet.records)

    def test_single_run_guard(self):
        fleet = make_fleet(num_nodes=1)
        fleet.run(stream(1))
        with pytest.raises(RuntimeError):
            fleet.run(stream(1))


class TestWorkerState:
    def test_worker_probe_shows_build_once_srs(self):
        fleet = make_fleet(num_nodes=1, policy="affinity")
        actions = [(0.1, lambda f: f.probe_workers())]
        records = fleet.run(stream(5), actions=actions)
        assert len(records) == 5
        # mid-run probe plus the final stop snapshot, same process
        assert len(fleet.worker_probes) >= 2
        assert {p.srs_builds for p in fleet.worker_probes} == {1}
        assert {p.pid for p in fleet.worker_probes} == {
            fleet.worker_probes[0].pid
        }
        final = fleet.worker_probes[-1]
        assert final.jobs_proved == 5
        assert final.cache_capacity == fleet.config.node.cache_capacity

    def test_fleet_event_log_is_structurally_complete(self):
        fleet = make_fleet(num_nodes=2, policy="round_robin")
        records = fleet.run(stream(4))
        kinds = fleet.events.kinds()
        assert kinds["node_up"] == 2
        assert kinds["job_accepted"] == 4
        assert kinds["job_assigned"] == 4
        assert kinds["job_completed"] == 4
        # per-job lifecycle is ordered accept -> assign -> complete
        for record in records:
            lifecycle = [
                e.kind for e in fleet.events.for_job(record.job_id)
            ]
            assert lifecycle == [
                "job_accepted",
                "job_assigned",
                "job_completed",
            ]
        # the log round-trips through JSONL
        replayed = EventLog.loads(fleet.events.to_jsonl())
        assert EventLog.replay_identical(fleet.events, replayed)
