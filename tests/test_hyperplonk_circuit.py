"""Tests for circuit building, arithmetization, and permutation tables."""

import pytest

from repro.fields import Fr
from repro.hyperplonk import JELLYFISH, VANILLA, CircuitBuilder
from repro.hyperplonk.permutation import build_permutation_data
from repro.mle import DenseMLE

P = Fr.modulus


def simple_vanilla():
    b = CircuitBuilder(VANILLA, Fr)
    x = b.new_wire(3)
    y = b.new_wire(5)
    s = b.add(x, y)
    m = b.mul(s, x)
    c = b.constant(24)
    b.assert_equal(m, c)
    return b, b.build()


class TestBuilder:
    def test_gate_count_padded_to_power_of_two(self):
        _, circuit = simple_vanilla()
        assert circuit.num_gates == 4
        assert circuit.num_vars == 2

    def test_min_gates(self):
        b, _ = simple_vanilla()
        assert b.build(min_gates=16).num_gates == 16

    def test_all_gates_satisfied(self):
        _, circuit = simple_vanilla()
        assert circuit.check_gates() == []

    def test_bad_witness_detected(self):
        b = CircuitBuilder(VANILLA, Fr)
        x = b.new_wire(3)
        y = b.new_wire(4)
        c = b.add(x, y)
        # corrupt the output wire value
        b._values[c.index] = 99
        circuit = b.build()
        assert 0 in circuit.check_gates()

    def test_unknown_selector_rejected(self):
        b = CircuitBuilder(VANILLA, Fr)
        with pytest.raises(ValueError):
            b.add_gate({"qZZ": 1}, [b.zero, b.zero, b.zero])

    def test_wrong_wire_arity_rejected(self):
        b = CircuitBuilder(VANILLA, Fr)
        with pytest.raises(ValueError):
            b.add_gate({"qL": 1}, [b.zero])

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            CircuitBuilder(VANILLA, Fr).build()

    def test_jellyfish_pow5_single_gate(self):
        b = CircuitBuilder(JELLYFISH, Fr)
        x = b.new_wire(7)
        h = b.pow5(x)
        assert b.value_of(h) == pow(7, 5, P)
        assert len(b.rows) == 1  # one gate, not three

    def test_vanilla_pow5_is_three_gates(self):
        b = CircuitBuilder(VANILLA, Fr)
        x = b.new_wire(7)
        h = b.pow5(x)
        assert b.value_of(h) == pow(7, 5, P)
        assert len(b.rows) == 3  # square, square, multiply

    def test_jellyfish_gates_satisfied(self):
        b = CircuitBuilder(JELLYFISH, Fr)
        x = b.new_wire(2)
        h = b.pow5(x)
        y = b.add(h, x)
        b.assert_equal(y, b.constant(34))
        circuit = b.build()
        assert circuit.check_gates() == []

    def test_constraint_value_helper(self):
        assert VANILLA.constraint_value(
            Fr, {"qM": 1, "qO": 1}, [6, 7, 42]
        ) == 0
        assert VANILLA.constraint_value(
            Fr, {"qM": 1, "qO": 1}, [6, 7, 41]
        ) != 0


class TestTables:
    def test_selector_tables_shapes(self):
        _, circuit = simple_vanilla()
        tables = circuit.selector_tables()
        assert set(tables) == set(VANILLA.selector_names)
        assert all(len(t) == 4 for t in tables.values())

    def test_witness_tables_values(self):
        _, circuit = simple_vanilla()
        w = circuit.witness_tables()
        # first gate is the addition: w1=3, w2=5, w3=8
        assert w["w1"].table[0] == 3
        assert w["w2"].table[0] == 5
        assert w["w3"].table[0] == 8

    def test_identity_tables_are_slot_labels(self):
        _, circuit = simple_vanilla()
        ids = circuit.identity_tables()
        n = circuit.num_gates
        for col in range(1, 4):
            assert ids[f"id{col}"].table == [
                ((col - 1) * n + r) % P for r in range(n)
            ]

    def test_sigma_is_a_permutation(self):
        _, circuit = simple_vanilla()
        sigmas = circuit.permutation_tables()
        n = circuit.num_gates
        all_labels = sorted(
            v for s in sigmas.values() for v in s.table
        )
        assert all_labels == list(range(3 * n))

    def test_sigma_respects_copy_constraints(self):
        """σ maps each slot within its wire class: the witness value at a
        slot equals the value at σ(slot)."""
        _, circuit = simple_vanilla()
        sigmas = circuit.permutation_tables()
        witness = circuit.witness_tables()
        n = circuit.num_gates
        flat = []
        for col in range(1, 4):
            flat.extend(witness[f"w{col}"].table)
        for col in range(1, 4):
            for row in range(n):
                dest = sigmas[f"sigma{col}"].table[row]
                assert flat[(col - 1) * n + row] == flat[dest]

    def test_sigma_nontrivial(self):
        """Shared wires must induce a non-identity permutation."""
        _, circuit = simple_vanilla()
        sigmas = circuit.permutation_tables()
        n = circuit.num_gates
        identity = True
        for col in range(1, 4):
            for row in range(n):
                if sigmas[f"sigma{col}"].table[row] != (col - 1) * n + row:
                    identity = False
        assert not identity


class TestPermutationData:
    def _perm(self, rng, tamper=False):
        _, circuit = simple_vanilla()
        witness = circuit.witness_tables()
        if tamper:
            t = list(witness["w1"].table)
            t[0] = (t[0] + 1) % P
            witness["w1"] = DenseMLE(Fr, t)
        return build_permutation_data(
            Fr, witness, circuit.identity_tables(),
            circuit.permutation_tables(),
            beta=rng.randrange(1, P), gamma=rng.randrange(1, P),
        )

    def test_valid_wiring_gives_root_one(self, rng):
        assert self._perm(rng).root == 1

    def test_tampered_wiring_breaks_root(self, rng):
        assert self._perm(rng, tamper=True).root != 1

    def test_tree_slices_consistent(self, rng):
        perm = self._perm(rng)
        tree = perm.prod_tree.table
        size = len(tree) // 2
        # constraint π(t) = p1(t)·p2(t) holds everywhere by construction
        for t in range(size):
            assert perm.pi.table[t] == (
                perm.p1.table[t] * perm.p2.table[t] % P
            )

    def test_phi_is_fraction(self, rng):
        perm = self._perm(rng)
        size = len(perm.phi.table)
        for i in range(size):
            num = den = 1
            for col in range(1, 4):
                num = num * perm.numerators[f"N{col}"].table[i] % P
                den = den * perm.denominators[f"D{col}"].table[i] % P
            assert perm.phi.table[i] * den % P == num

    def test_filler_slot_is_one(self, rng):
        assert self._perm(rng).prod_tree.table[-1] == 1
