"""Differential tests: fast-path backends vs the reference scalar prover.

The ``fused`` field-vector backend reorders arithmetic aggressively
(deferred modular reduction, column-level power chains, flat extension
layouts), so these tests pin down the only contract that matters: on the
same inputs, every backend must produce **bit-identical** round
evaluations, Fiat–Shamir challenges, final evaluations, and
:class:`~repro.fields.counters.OpCounter` tallies.  A second family
cross-checks the Montgomery REDC model against native field
multiplication.
"""

import random

import pytest

from repro.fields import (
    Fq,
    Fr,
    MontgomeryContext,
    OpCounter,
    available_backends,
    list_backends,
)
from repro.gates import gate_by_id, high_degree_sweep_gate
from repro.mle import DenseMLE, Term, VirtualPolynomial
from repro.sumcheck import (
    FastSumCheckProver,
    Transcript,
    prove_sumcheck,
    verify_sumcheck,
)

P = Fr.modulus

SEED = 0xD1FF

#: every registered backend inherits the full differential matrix —
#: hardcoding reference/fused here would silently exempt new backends
BACKENDS = list_backends()
FAST_BACKENDS = [b for b in BACKENDS if b != "reference"]


def counter_tuple(c: OpCounter) -> tuple:
    return (c.mul, c.add, c.inv, c.ee_mul, c.pl_mul, dict(c.labels))


def random_virtual_polynomial(
    rng: random.Random, num_vars: int, degree: int
) -> VirtualPolynomial:
    """A random multi-term composition of exact total degree ``degree``.

    Terms use random subsets of a shared MLE pool with random powers, so
    the sweep exercises single-factor, multi-factor, and multi-power
    (w^k) product lanes, plus a factorless constant term.
    """
    pool = [f"m{i}" for i in range(min(degree + 2, 6))]
    terms = []
    num_terms = rng.randrange(2, 5)
    for t in range(num_terms):
        target = degree if t == 0 else rng.randrange(1, degree + 1)
        names = rng.sample(pool, k=min(rng.randrange(1, 4), target))
        powers = [1] * len(names)
        for _ in range(target - len(names)):
            powers[rng.randrange(len(names))] += 1
        factors = tuple(zip(names, powers))
        terms.append(Term(rng.randrange(1, P), factors))
    terms.append(Term(rng.randrange(P), ()))  # constant term
    mles = {name: DenseMLE.random(Fr, num_vars, rng) for name in pool}
    return VirtualPolynomial(Fr, terms, mles)


def assert_equivalent(vp: VirtualPolynomial, backend: str) -> None:
    ref_counter = OpCounter()
    ref = prove_sumcheck(vp, Transcript(Fr), counter=ref_counter)

    fast_counter = OpCounter()
    fast = FastSumCheckProver(backend).prove(
        vp, Transcript(Fr), counter=fast_counter
    )

    assert fast.claim == ref.claim
    assert fast.round_evals == ref.round_evals
    assert fast.challenges == ref.challenges
    assert fast.final_evals == ref.final_evals
    assert counter_tuple(fast_counter) == counter_tuple(ref_counter)


class TestBackendDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("num_vars", range(2, 9))
    def test_random_compositions_sweep_num_vars(self, backend, num_vars):
        rng = random.Random(SEED + num_vars)
        degree = rng.randrange(1, 6)
        vp = random_virtual_polynomial(rng, num_vars, degree)
        assert_equivalent(vp, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("degree", range(1, 6))
    def test_random_compositions_sweep_degree(self, backend, degree):
        rng = random.Random(SEED * 31 + degree)
        vp = random_virtual_polynomial(rng, 4, degree)
        assert_equivalent(vp, backend)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("gate_id", [0, 20, 22, 24])
    def test_table1_gates(self, gate_id, backend, rng):
        spec = gate_by_id(gate_id)
        scalars = {
            s: rng.randrange(1, P) for s in spec.compiled.scalar_names
        }
        terms = spec.compiled.bind(Fr, scalars)
        mles = {
            n: DenseMLE.random(Fr, 4, rng) for n in spec.compiled.mle_names
        }
        assert_equivalent(VirtualPolynomial(Fr, terms, mles), backend)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("degree", [2, 4, 6, 9])
    def test_high_degree_sweep_gates(self, degree, backend, rng):
        spec = high_degree_sweep_gate(degree)
        scalars = {
            s: rng.randrange(1, P) for s in spec.compiled.scalar_names
        }
        terms = spec.compiled.bind(Fr, scalars)
        mles = {
            n: DenseMLE.random(Fr, 3, rng) for n in spec.compiled.mle_names
        }
        assert_equivalent(VirtualPolynomial(Fr, terms, mles), backend)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_sparse_tables(self, backend, rng):
        terms = [
            Term(rng.randrange(1, P), (("a", 2), ("b", 1))),
            Term(rng.randrange(1, P), (("c", 1),)),
        ]
        mles = {
            n: DenseMLE.random(Fr, 5, rng, sparsity=0.9) for n in "abc"
        }
        assert_equivalent(VirtualPolynomial(Fr, terms, mles), backend)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_unused_mles_still_folded_and_reported(self, backend, rng):
        """Tables not referenced by any term must appear in final_evals
        (and their fold ops in the counter) exactly as in the reference."""
        terms = [Term(3, (("a", 1),))]
        mles = {
            "a": DenseMLE.random(Fr, 3, rng),
            "zz_unused": DenseMLE.random(Fr, 3, rng),
        }
        assert_equivalent(VirtualPolynomial(Fr, terms, mles), backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_constant_terms(self, backend, rng):
        """Degenerate composition with no MLE factors at all (degree 0)."""
        terms = [Term(rng.randrange(1, P), ()), Term(rng.randrange(P), ())]
        mles = {"a": DenseMLE.random(Fr, 3, rng)}
        assert_equivalent(VirtualPolynomial(Fr, terms, mles), backend)

    def test_explicit_claim_and_backend_kwarg(self, rng):
        vp = random_virtual_polynomial(rng, 3, 3)
        claim = vp.sum_over_hypercube()
        ref = prove_sumcheck(vp, Transcript(Fr), claim=claim)
        via_kwarg = prove_sumcheck(
            vp, Transcript(Fr), claim=claim, backend="fused"
        )
        assert via_kwarg.round_evals == ref.round_evals
        assert via_kwarg.final_evals == ref.final_evals

    def test_fused_proof_verifies(self, rng):
        vp = random_virtual_polynomial(rng, 4, 3)
        proof = FastSumCheckProver("fused").prove(vp, Transcript(Fr))
        def oracle(name, point):
            return vp.mles[name].evaluate(point)

        challenges = verify_sumcheck(
            Fr, vp.terms, proof, Transcript(Fr), final_eval_oracle=oracle
        )
        assert challenges == proof.challenges

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown vector backend"):
            FastSumCheckProver("turbo")

    def test_registry_lists_both_backends(self):
        names = available_backends()
        assert "reference" in names and "fused" in names
        assert names == list_backends()  # the alias stays in sync


class TestHyperPlonkBackendDifferential:
    """Every fast backend threaded through the full HyperPlonk prover
    must emit a byte-identical proof (and verify)."""

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_end_to_end_proof_identical_and_verifies(self, backend):
        from repro.hyperplonk import (
            JELLYFISH,
            CircuitBuilder,
            HyperPlonkProver,
            HyperPlonkVerifier,
            MultilinearKZG,
            TrapdoorSRS,
            preprocess,
        )

        b = CircuitBuilder(JELLYFISH, Fr)
        x = b.new_wire(3)
        h = b.pow5(x)
        y = b.add(h, x)
        z = b.mul(y, h)
        b.assert_equal(z, b.constant(246 * 243 % P))
        circuit = b.build(min_gates=8)

        srs = TrapdoorSRS(circuit.num_vars + 1, random.Random(7))
        kzg = MultilinearKZG(srs)
        pidx, vidx = preprocess(circuit, kzg)

        ref_counter, fused_counter = OpCounter(), OpCounter()
        ref = HyperPlonkProver(circuit, pidx, kzg).prove(ref_counter)
        fused = HyperPlonkProver(circuit, pidx, kzg, backend=backend).prove(
            fused_counter
        )

        for sc_name in ("gate_zerocheck", "perm_zerocheck"):
            a, b2 = getattr(ref, sc_name), getattr(fused, sc_name)
            assert a.round_evals == b2.round_evals
            assert a.challenges == b2.challenges
            assert a.final_evals == b2.final_evals
        assert (
            ref.opencheck.sumcheck.round_evals
            == fused.opencheck.sumcheck.round_evals
        )
        assert (
            ref.opencheck.combined_opening.value
            == fused.opencheck.combined_opening.value
        )
        assert ref.perm_witness_evals == fused.perm_witness_evals
        assert counter_tuple(ref_counter) == counter_tuple(fused_counter)

        HyperPlonkVerifier(Fr, vidx, kzg).verify(fused)


class TestArrayLimbDifferential:
    """The numpy limb-plane reduction kernels vs native field arithmetic.

    Exercises the ``array`` backend's two reduction paths directly —
    pre-scaled Montgomery REDC (scalar products) and digit-level Barrett
    (vector products) — against ``field.mul`` on random and edge values,
    independently of any prover plumbing.
    """

    @pytest.mark.parametrize("field", [Fr, Fq], ids=["Fr", "Fq"])
    def test_limb_reductions_agree_with_field_mul(self, field):
        pytest.importorskip("numpy")
        from repro.fields.array_backend import (
            from_planes,
            get_plan,
            mont_mul_scalar,
            mul_mod,
            to_planes,
        )

        plan = get_plan(field)
        p = field.modulus
        rng = random.Random(SEED ^ p)
        edge = [0, 1, p - 1, plan.r % p, plan.r2]
        xs = edge + [rng.randrange(p) for _ in range(64)]
        ys = edge[::-1] + [rng.randrange(p) for _ in range(64)]
        a = to_planes(plan, xs)
        b = to_planes(plan, ys)
        barrett = from_planes(plan, mul_mod(plan, a, b))
        assert barrett == [field.mul(x, y) for x, y in zip(xs, ys)]
        for c in edge:
            redc = from_planes(
                plan, mont_mul_scalar(plan, a, plan.mont_scalar(c))
            )
            assert redc == [field.mul(x, c) for x in xs]

    def test_plan_rejects_even_and_oversized_moduli(self):
        pytest.importorskip("numpy")
        from types import SimpleNamespace

        from repro.fields.array_backend import LimbPlan

        # LimbPlan only reads .modulus, so a stand-in reaches the guards
        # that PrimeField's own constructor checks would otherwise shadow
        with pytest.raises(ValueError, match="odd modulus"):
            LimbPlan(SimpleNamespace(modulus=(1 << 61) - 2))
        with pytest.raises(ValueError, match="too wide"):
            LimbPlan(SimpleNamespace(modulus=(1 << 500) | 1))

    def test_roundtrip_planes(self):
        pytest.importorskip("numpy")
        from repro.fields.array_backend import (
            from_planes,
            get_plan,
            to_planes,
        )

        plan = get_plan(Fr)
        rng = random.Random(SEED)
        vals = [0, 1, P - 1] + [rng.randrange(P) for _ in range(33)]
        assert from_planes(plan, to_planes(plan, vals)) == vals


class TestMontgomeryDifferential:
    """REDC (to_mont → mont_mul → from_mont) vs native PrimeField.mul."""

    EDGE = (0, 1)

    @pytest.mark.parametrize(
        "field,limbs", [(Fr, 4), (Fq, 6)], ids=["Fr-4limb", "Fq-6limb"]
    )
    def test_redc_agrees_on_random_vectors(self, field, limbs):
        ctx = MontgomeryContext(field)
        assert ctx.limbs == limbs
        rng = random.Random(SEED ^ field.modulus)
        edge = [0, 1, field.modulus - 1]
        xs = edge + [rng.randrange(field.modulus) for _ in range(64)]
        ys = edge[::-1] + [rng.randrange(field.modulus) for _ in range(64)]
        for a, b in zip(xs, ys):
            assert ctx.mul(a, b) == field.mul(a, b)

    @pytest.mark.parametrize("field", [Fr, Fq], ids=["Fr", "Fq"])
    def test_edge_value_products(self, field):
        ctx = MontgomeryContext(field)
        edge = [0, 1, field.modulus - 1]
        for a in edge:
            for b in edge:
                assert ctx.mul(a, b) == field.mul(a, b)

    @pytest.mark.parametrize("field", [Fr, Fq], ids=["Fr", "Fq"])
    def test_mont_domain_roundtrip(self, field):
        ctx = MontgomeryContext(field)
        rng = random.Random(SEED)
        for a in [0, 1, field.modulus - 1] + [
            rng.randrange(field.modulus) for _ in range(32)
        ]:
            assert ctx.from_mont(ctx.to_mont(a)) == a
