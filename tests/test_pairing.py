"""Tests for the Fp12 tower, the ate pairing, and public KZG verification."""

import random

import pytest

from repro.curves import G1_GENERATOR
from repro.curves.pairing import (
    G2Point,
    multi_pairing,
    pairing,
    untwist,
)
from repro.curves.tower import Fp2, Fp6, Fp12, XI
from repro.fields import FR_MODULUS, Fr
from repro.hyperplonk.commitment import MultilinearKZG, Opening, TrapdoorSRS
from repro.mle import DenseMLE


class TestFp2:
    def test_ring_axioms(self, rng):
        xs = [Fp2(rng.randrange(1, 2**100), rng.randrange(1, 2**100))
              for _ in range(3)]
        a, b, c = xs
        assert (a + b) * c == a * c + b * c
        assert a * b == b * a
        assert (a * b) * c == a * (b * c)

    def test_u_squared_is_minus_one(self):
        u = Fp2(0, 1)
        assert u * u == Fp2(-1, 0)

    def test_inverse(self, rng):
        a = Fp2(rng.randrange(1, 2**100), rng.randrange(1, 2**100))
        assert a * a.inverse() == Fp2.ONE

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fp2.ZERO.inverse()

    def test_square_matches_mul(self, rng):
        a = Fp2(rng.randrange(2**90), rng.randrange(2**90))
        assert a.square() == a * a

    def test_frobenius_is_pth_power(self):
        a = Fp2(123456789, 987654321)
        # x^p for p ≡ 3 mod 4 is conjugation
        assert a.frobenius() == a.conjugate()


class TestFp6Fp12:
    def _rand6(self, rng):
        return Fp6(*(Fp2(rng.randrange(2**80), rng.randrange(2**80))
                     for _ in range(3)))

    def test_fp6_v_cubed_is_xi(self):
        v = Fp6(Fp2.ZERO, Fp2.ONE, Fp2.ZERO)
        v3 = v * v * v
        assert v3 == Fp6(XI, Fp2.ZERO, Fp2.ZERO)

    def test_fp6_inverse(self, rng):
        a = self._rand6(rng)
        assert a * a.inverse() == Fp6.ONE

    def test_fp6_mul_by_v(self, rng):
        a = self._rand6(rng)
        v = Fp6(Fp2.ZERO, Fp2.ONE, Fp2.ZERO)
        assert a.mul_by_v() == a * v

    def test_fp12_w_squared_is_v(self):
        w = Fp12(Fp6.ZERO, Fp6.ONE)
        v = Fp12(Fp6(Fp2.ZERO, Fp2.ONE, Fp2.ZERO), Fp6.ZERO)
        assert w * w == v

    def test_fp12_inverse_and_pow(self, rng):
        a = Fp12(self._rand6(rng), self._rand6(rng))
        assert a * a.inverse() == Fp12.ONE
        assert a.pow(5) == a * a * a * a * a
        assert a.pow(0) == Fp12.ONE
        assert a.pow(-1) == a.inverse()

    def test_fp12_frobenius_matches_pth_power(self, rng):
        """x.frobenius() == x^p — validates all Frobenius coefficients."""
        from repro.fields.bls12_381 import FQ_MODULUS

        a = Fp12(self._rand6(rng), self._rand6(rng))
        assert a.frobenius() == a.pow(FQ_MODULUS)


class TestG2:
    def test_generator_on_curve(self):
        assert G2Point.generator().is_on_curve()

    def test_generator_has_order_r(self):
        assert G2Point.generator().scalar_mul(FR_MODULUS).inf

    def test_group_laws(self, rng):
        g = G2Point.generator()
        a = g.scalar_mul(rng.randrange(1, 1 << 40))
        b = g.scalar_mul(rng.randrange(1, 1 << 40))
        assert a.add(b) == b.add(a)
        assert a.add(a.neg()).inf
        assert g.double() == g.add(g)

    def test_untwisted_point_on_e(self):
        """ψ(Q) satisfies y^2 = x^3 + 4 over Fp12."""
        from repro.curves.pairing import fp12_from_fp

        qx, qy = untwist(G2Point.generator())
        assert qy * qy == qx * qx * qx + fp12_from_fp(4)

    def test_untwist_infinity_rejected(self):
        with pytest.raises(ValueError):
            untwist(G2Point.infinity())


class TestPairing:
    @pytest.fixture(scope="class")
    def e_gg(self):
        return pairing(G1_GENERATOR, G2Point.generator())

    def test_nondegenerate(self, e_gg):
        assert not e_gg.is_one()

    def test_gt_has_order_r(self, e_gg):
        assert e_gg.pow(FR_MODULUS).is_one()

    def test_bilinear_left(self, e_gg):
        e2 = pairing(G1_GENERATOR.double(), G2Point.generator())
        assert e2 == e_gg.pow(2)

    def test_bilinear_right(self, e_gg):
        e2 = pairing(G1_GENERATOR, G2Point.generator().double())
        assert e2 == e_gg.pow(2)

    def test_bilinear_random_scalars(self, e_gg, rng):
        a = rng.randrange(2, 1 << 24)
        b = rng.randrange(2, 1 << 24)
        lhs = pairing(G1_GENERATOR.scalar_mul(a),
                      G2Point.generator().scalar_mul(b))
        assert lhs == e_gg.pow(a * b)

    def test_infinity_pairs_to_one(self):
        from repro.curves import G1

        assert pairing(G1.infinity(), G2Point.generator()).is_one() if callable(getattr(G1, "infinity", None)) else True
        assert pairing(G1.infinity, G2Point.generator()).is_one()

    def test_multi_pairing_cancellation(self, e_gg):
        """e(P, Q) · e(-P, Q) == 1."""
        g2 = G2Point.generator()
        out = multi_pairing([(G1_GENERATOR, g2), (G1_GENERATOR.neg(), g2)])
        assert out.is_one()

    def test_off_curve_q_rejected(self):
        bad = G2Point(Fp2(1, 2), Fp2(3, 4))
        with pytest.raises(ValueError):
            pairing(G1_GENERATOR, bad)


class TestPublicKZGVerification:
    """The pairing-based PST check agrees with the trapdoor simulation."""

    @pytest.fixture(scope="class")
    def kzg(self):
        return MultilinearKZG(TrapdoorSRS(2, random.Random(5)))

    def test_honest_opening_pairing_verifies(self, kzg, rng):
        f = DenseMLE.random(Fr, 2, rng)
        point = [rng.randrange(Fr.modulus) for _ in range(2)]
        opening = kzg.open(f, point)
        commitment = kzg.commit(f)
        assert kzg.verify(commitment, opening)          # trapdoor path
        assert kzg.verify_pairing(commitment, opening)  # public path

    def test_forged_value_pairing_rejected(self, kzg, rng):
        f = DenseMLE.random(Fr, 2, rng)
        point = [rng.randrange(Fr.modulus) for _ in range(2)]
        opening = kzg.open(f, point)
        bad = Opening(opening.point, (opening.value + 1) % Fr.modulus,
                      opening.quotients)
        assert not kzg.verify_pairing(kzg.commit(f), bad)

    def test_arity_mismatch(self, kzg, rng):
        f = DenseMLE.random(Fr, 2, rng)
        opening = kzg.open(f, [1, 2])
        from repro.hyperplonk.commitment import Commitment

        wrong = Commitment(kzg.commit(f).point, 1)
        assert not kzg.verify_pairing(wrong, opening)
