"""The shared event-log schema: replay determinism and round-trips.

ISSUE 7 satellite: both runtimes emit one :class:`FleetEvent` schema.
The sim engine's log is stamped in model time, so the determinism
contract is strong — same seed, same churn trace ⇒ **bit-identical**
JSONL, line for line.  These tests lock that down, plus the schema's
serialization round-trip and the emit-time validation.
"""

import pytest

from repro.cluster import ClusterConfig, NodeConfig, ProvingCluster
from repro.fleet.events import EVENT_KINDS, EventLog, FleetEvent
from repro.service.traffic import TrafficGenerator
from repro.workloads import ChurnEvent

CHURN = (
    ChurnEvent(0.6, 1, "crash"),
    ChurnEvent(1.2, 1, "recover"),
    ChurnEvent(1.35, 0, "crash"),
    ChurnEvent(2.0, 0, "recover"),
)


def scenario_log(seed: int = 11) -> EventLog:
    generator = TrafficGenerator("zipf-mixed", seed=seed)
    config = ClusterConfig(
        num_nodes=2,
        policy="affinity",
        time_model="functional",
        max_retries=3,
        node=NodeConfig(max_vars=generator.max_vars()),
    )
    with ProvingCluster(config) as cluster:
        cluster.run_scenario(generator.jobs(16), churn=CHURN)
        return cluster.events


class TestSimReplay:
    def test_same_seed_same_churn_replays_bit_identically(self):
        first, second = scenario_log(seed=11), scenario_log(seed=11)
        assert EventLog.replay_identical(first, second)
        assert first.to_jsonl() == second.to_jsonl()

    def test_different_seed_diverges(self):
        assert not EventLog.replay_identical(
            scenario_log(seed=11), scenario_log(seed=12)
        )

    def test_scenario_log_covers_failure_lifecycle(self):
        kinds = scenario_log(seed=11).kinds()
        assert kinds["node_down"] == 2
        assert kinds["node_up"] >= 2  # recoveries (+ initial fleet is sim-up)
        assert kinds["job_crashed"] >= 1
        assert kinds["job_retried"] >= 1
        assert kinds["job_accepted"] == 16
        assert kinds["job_completed"] + kinds.get("job_failed", 0) == 16

    def test_crashed_job_lifecycle_is_ordered(self):
        log = scenario_log(seed=11)
        crashed_ids = {
            e.job_id for e in log if e.kind == "job_crashed"
        }
        for job_id in crashed_ids:
            kinds = [e.kind for e in log.for_job(job_id)]
            assert kinds[0] == "job_accepted"
            assert kinds[-1] in ("job_completed", "job_failed")
            assert "job_crashed" in kinds


class TestSchema:
    def test_jsonl_round_trip(self):
        log = EventLog()
        log.emit("job_accepted", job_id=0, tag="t")
        log.emit("job_assigned", job_id=0, node_id="node-1", attempt=1)
        log.emit("node_down", node_id="node-1", reason="crash")
        replayed = EventLog.loads(log.to_jsonl())
        assert EventLog.replay_identical(log, replayed)
        assert replayed[1].detail == {}
        assert replayed[2].detail == {"reason": "crash"}

    def test_write_and_load(self, tmp_path):
        log = EventLog(clock=lambda: 2.5)
        log.emit("job_completed", job_id=3, node_id="node-0", cache_hit=True)
        path = tmp_path / "events.jsonl"
        log.write(path)
        (event,) = EventLog.load(path)
        assert event == FleetEvent(
            seq=0,
            at_s=2.5,
            kind="job_completed",
            job_id=3,
            node_id="node-0",
            detail={"cache_hit": True},
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventLog().emit("job_teleported")

    def test_sequence_numbers_total_order_equal_stamps(self):
        log = EventLog()  # default clock stamps everything 0.0
        for kind in EVENT_KINDS:
            log.emit(kind)
        assert [e.seq for e in log] == list(range(len(EVENT_KINDS)))


class TestSpeedKnobs:
    """ISSUE 8: disabled logs, streaming sinks, and dropped retention."""

    def test_disabled_log_emits_nothing(self):
        log = EventLog(enabled=False)
        assert log.emit("job_accepted", job_id=0) is None
        assert len(log.events) == 0
        assert log.emitted == 0

    def test_sink_streams_jsonl_without_keeping(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink=path, keep=False)
        log.emit("job_accepted", job_id=0, tag="t")
        log.emit("job_shed", job_id=1, tenant="tenant-2")
        assert len(log.events) == 0  # retention dropped
        assert log.emitted == 2
        log.close()
        first, second = EventLog.load(path)
        assert first.kind == "job_accepted"
        assert second.kind == "job_shed"
        assert second.detail == {"tenant": "tenant-2"}
        assert second.seq == 1

    def test_sink_plus_keep_matches_memory(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink=path)
        log.emit("node_down", node_id="node-0", reason="crash")
        log.close()
        assert EventLog.replay_identical(log, EventLog.load(path))

    def test_close_is_idempotent_and_never_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink=path, keep=False)
        log.emit("job_accepted", job_id=0)
        log.close()
        log.close()  # second close must not rewrite an empty file
        (event,) = EventLog.load(path)
        assert event.kind == "job_accepted"

    def test_empty_sink_materializes_empty_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink=path, keep=False)
        log.close()
        assert path.exists() and path.read_text() == ""
        assert EventLog.load(path) == []

    def test_keep_false_without_sink_rejected(self):
        with pytest.raises(ValueError, match="sink"):
            EventLog(keep=False)

    def test_job_shed_is_a_valid_kind(self):
        assert "job_shed" in EVENT_KINDS
        event = EventLog().emit("job_shed", job_id=7, tenant="tenant-1")
        assert event.kind == "job_shed"
