"""Integration tests over the experiment harness (fast mode).

The benchmarks in ``benchmarks/`` assert the headline claims; these
tests cover harness mechanics (row schemas, formatting, reuse paths).
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import table01, fig08, fig12, fig13, fig14
from repro.experiments import table05, table06, table07, table08, table09
from repro.experiments.__main__ import main as experiments_cli
from repro.experiments.common import ExperimentResult, geomean


class TestCLI:
    def test_list_flag_prints_valid_names(self, capsys):
        assert experiments_cli(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == ALL_EXPERIMENTS

    def test_unknown_name_fails_with_valid_names(self, capsys):
        rc = experiments_cli(["fig99", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown experiment(s): fig99, nope" in err
        assert "table01" in err and "fig12" in err

    def test_known_name_still_runs(self, capsys):
        assert experiments_cli(["table01"]) == 0
        assert "Table I" in capsys.readouterr().out


class TestCommon:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])

    def test_format_table_rounding_and_private_keys(self):
        r = ExperimentResult("x", "A title",
                             rows=[{"a": 1.23456, "b": "text"}],
                             summary={"ok": 2.0, "_hidden": object()})
        text = r.format_table()
        assert "A title" in text and "1.235" in text
        assert "_hidden" not in text

    def test_max_rows_elision(self):
        r = ExperimentResult("x", "t", rows=[{"i": i} for i in range(10)])
        assert "more rows" in r.format_table(max_rows=3)

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult("x", "t").format_table()


class TestSchemas:
    def test_table01_row_schema(self):
        rows = table01.run().rows
        assert len(rows) == 25
        assert {"id", "name", "degree", "terms"} <= set(rows[0])

    def test_fig08_steps_monotone_in_ees(self):
        rows = fig08.run().rows
        for row in rows:
            assert row["steps@2"] >= row["steps@7"]

    def test_fig12_shares_sum_to_100(self):
        result = fig12.run()
        cpu_rows = [r for r in result.rows if r["platform"] == "CPU"]
        zk_rows = [r for r in result.rows if r["platform"] == "zkPHIRE"]
        assert sum(r["share %"] for r in cpu_rows) == pytest.approx(100, abs=1)
        assert sum(r["share %"] for r in zk_rows) == pytest.approx(100, abs=1)

    def test_fig13_vanilla_baseline_is_one(self):
        assert all(r["Vanilla"] == 1.0 for r in fig13.run().rows)

    def test_fig14_monotone_sumcheck(self):
        rows = fig14.run().rows
        sc = [r["SumCheck (ms)"] for r in rows]
        assert sc == sorted(sc)

    def test_table05_has_total_row(self):
        rows = table05.run().rows
        assert rows[-1]["module"] == "TOTAL"

    def test_table06_skips_workloads_without_vanilla(self):
        names = [r["workload"] for r in table06.run().rows]
        assert "zkEVM" not in names
        assert "Rollup 1600 Pvt Tx" not in names

    def test_table07_covers_2_30(self):
        rows = table07.run().rows
        assert any(r["workload"] == "Rollup 1600 Pvt Tx" for r in rows)

    def test_table08_five_workloads(self):
        assert len(table08.run().rows) == 5

    def test_table09_four_accelerators(self):
        rows = table09.run().rows
        assert [r["accelerator"] for r in rows] == [
            "NoCap", "SZKP+", "zkSpeed+", "zkPHIRE (ours)"]
