"""Unit tests for the gate-expression language and Table I library."""


import pytest

from repro.fields import Fr
from repro.gates import (
    TABLE1,
    Const,
    Scalar,
    Var,
    compile_expr,
    gate_by_id,
    high_degree_sweep_gate,
)
from repro.mle import DenseMLE, VirtualPolynomial

P = Fr.modulus


class TestCompiler:
    def test_simple_sum_of_products(self):
        a, b, q = Var("a"), Var("b"), Var("q")
        g = compile_expr("g", q * (a + b))
        assert g.num_terms == 2
        assert g.degree == 2
        assert set(g.mle_names) == {"q", "a", "b"}

    def test_distribution_and_like_terms(self):
        a = Var("a")
        g = compile_expr("g", (a + 1) * (a - 1))  # a^2 - 1
        assert g.degree == 2
        assert g.num_terms == 2
        coeffs = {m.factors: m.coeff for m in g.monomials}
        assert coeffs[(("a", 2),)] == 1
        assert coeffs[()] == -1

    def test_cancellation(self):
        a = Var("a")
        with pytest.raises(ValueError):
            compile_expr("zero", a - a)

    def test_powers(self):
        w = Var("w")
        g = compile_expr("g", w**5)
        assert g.degree == 5
        assert g.monomials[0].factors == (("w", 5),)

    def test_pow_zero(self):
        w = Var("w")
        g = compile_expr("g", w**0 + w)
        assert g.degree == 1
        assert g.num_terms == 2

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Var("w") ** -1

    def test_scalars_stay_symbolic(self):
        alpha, w = Scalar("alpha"), Var("w")
        g = compile_expr("g", alpha * w + w)
        assert g.scalar_names == ["alpha"]
        assert g.degree == 1

    def test_bind_resolves_scalars(self):
        alpha, w = Scalar("alpha"), Var("w")
        g = compile_expr("g", alpha * w)
        terms = g.bind(Fr, {"alpha": 7})
        assert len(terms) == 1
        assert terms[0].coeff == 7

    def test_bind_missing_scalar_raises(self):
        g = compile_expr("g", Scalar("alpha") * Var("w"))
        with pytest.raises(KeyError):
            g.bind(Fr)

    def test_bind_zero_coefficient_dropped(self):
        g = compile_expr("g", Scalar("alpha") * Var("w") + Var("v"))
        terms = g.bind(Fr, {"alpha": 0})
        assert len(terms) == 1
        assert terms[0].factors == (("v", 1),)

    def test_compiled_evaluation_matches_tree(self, rng):
        """Compiled sum-of-products equals direct expression evaluation."""
        a, b, c = Var("a"), Var("b"), Var("c")
        expr = (a + 2 * b) * (c - a) * (b + 3) - c**2
        g = compile_expr("g", expr)
        vals = {"a": rng.randrange(P), "b": rng.randrange(P), "c": rng.randrange(P)}
        direct = (
            (vals["a"] + 2 * vals["b"])
            * (vals["c"] - vals["a"])
            * (vals["b"] + 3)
            - vals["c"] ** 2
        ) % P
        total = 0
        for t in g.bind(Fr):
            prod = t.coeff
            for name, power in t.factors:
                prod = prod * pow(vals[name], power, P) % P
            total = (total + prod) % P
        assert total == direct

    def test_const_expression(self):
        g = compile_expr("g", Const(5) + Var("a"))
        assert any(m.factors == () and m.coeff == 5 for m in g.monomials)

    def test_repr_forms(self):
        e = (Var("a") + Scalar("s")) * Const(2) ** 1
        assert "a" in repr(e)


# Hand-verified from Table I.  Degree counts every multilinear factor
# including selectors and (for IDs 20-23) the fr randomizer; e.g. the
# Vanilla gate's qM*w1*w2 term has degree 3, so ZeroCheck poly 20 is
# degree 4 with fr.
EXPECTED_TABLE1_SHAPES = {
    # gate_id: (degree, num_unique_mles)
    0: (3, 4),
    1: (3, 4),
    2: (2, 2),
    3: (4, 3),
    4: (5, 3),
    5: (5, 3),
    6: (4, 6),
    7: (3, 7),
    8: (4, 6),
    9: (5, 6),
    10: (6, 5),
    11: (6, 7),
    12: (6, 7),
    13: (6, 8),
    14: (4, 5),
    15: (4, 5),
    16: (4, 5),
    17: (4, 5),
    18: (4, 8),
    19: (4, 8),
    20: (4, 9),
    21: (5, 11),
    22: (7, 19),
    23: (7, 15),
    24: (2, 12),
}


class TestTable1Library:
    def test_has_25_polynomials(self):
        assert len(TABLE1) == 25
        assert [g.gate_id for g in TABLE1] == list(range(25))

    def test_gate_by_id(self):
        assert gate_by_id(22).name == "Jellyfish ZeroCheck"

    @pytest.mark.parametrize("gate_id", range(25))
    def test_shapes(self, gate_id):
        spec = gate_by_id(gate_id)
        degree, uniq = EXPECTED_TABLE1_SHAPES[gate_id]
        assert spec.degree == degree, f"{spec.name}: degree {spec.degree}"
        assert spec.num_unique_mles == uniq, (
            f"{spec.name}: {spec.num_unique_mles} unique MLEs "
            f"({spec.compiled.mle_names})"
        )

    def test_vanilla_zerocheck_structure(self):
        """f_plonk * fr: 5 terms, 8 constituent polys + fr (§II-C1)."""
        spec = gate_by_id(20)
        assert spec.num_terms == 5
        assert spec.degree == 4  # degree-3 gate × fr
        assert "fr" in spec.compiled.mle_names

    def test_jellyfish_has_degree_7_and_quintic_terms(self):
        spec = gate_by_id(22)
        assert spec.degree == 7
        quintics = [
            m for m in spec.compiled.monomials
            if any(p == 5 for _, p in m.factors)
        ]
        assert len(quintics) == 4  # qH1..qH4 hash terms

    def test_permcheck_scalars(self):
        assert gate_by_id(21).compiled.scalar_names == ["alpha"]
        assert gate_by_id(23).compiled.scalar_names == ["alpha"]

    def test_icicle_limit_motivation(self):
        """Polys 21-24 exceed ICICLE's 8-unique-MLE limit (§VI-A4)."""
        for gate_id in (21, 22, 23, 24):
            assert gate_by_id(gate_id).num_unique_mles > 8
        # while poly 20 (minus fr) fits
        assert gate_by_id(20).num_unique_mles - 1 <= 8

    @pytest.mark.parametrize("gate_id", range(25))
    def test_all_gates_bind_and_evaluate(self, gate_id, rng):
        """Every Table I gate binds into a working VirtualPolynomial."""
        spec = gate_by_id(gate_id)
        scalars = {s: rng.randrange(1, P) for s in spec.compiled.scalar_names}
        terms = spec.compiled.bind(Fr, scalars)
        mles = {
            name: DenseMLE.random(Fr, 2, rng)
            for name in spec.compiled.mle_names
        }
        vp = VirtualPolynomial(Fr, terms, mles)
        assert vp.degree == spec.degree
        vp.sum_over_hypercube()  # smoke: evaluates without error


class TestSweepFamily:
    @pytest.mark.parametrize("d", [2, 5, 18, 30])
    def test_sweep_gate_degree(self, d):
        spec = high_degree_sweep_gate(d)
        # q3 * w1^(d-1) * w2 has total degree d+1
        assert spec.degree == d + 1
        assert spec.num_terms == 4

    def test_sweep_gate_with_fr(self):
        spec = high_degree_sweep_gate(5, with_fr=True)
        assert spec.degree == 7  # +1 selector +1 fr
        assert "fr" in spec.compiled.mle_names

    def test_degree_too_small_rejected(self):
        with pytest.raises(ValueError):
            high_degree_sweep_gate(1)
