"""Shared fixtures and helpers for the test suite.

Tests default to BLS12-381 Fr for fidelity; a small 61-bit prime field is
also provided for hypothesis-heavy property tests where throughput matters
more than bit-width.
"""

import random

import pytest

from repro.fields import Fr, PrimeField

#: a 61-bit Mersenne prime field for fast property tests
SMALL_PRIME = (1 << 61) - 1


@pytest.fixture
def fr():
    return Fr


@pytest.fixture
def small_field():
    return PrimeField(SMALL_PRIME, "F61")


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)
