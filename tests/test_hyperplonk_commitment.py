"""Tests for the multilinear KZG commitment scheme."""

import random

import pytest

from repro.fields import Fr
from repro.hyperplonk.commitment import (
    Commitment,
    MultilinearKZG,
    Opening,
    TrapdoorSRS,
)
from repro.mle import DenseMLE

P = Fr.modulus


@pytest.fixture(scope="module")
def kzg():
    return MultilinearKZG(TrapdoorSRS(4, random.Random(0xABCD)))


@pytest.fixture
def mle(rng):
    return DenseMLE.random(Fr, 3, rng)


class TestCommit:
    def test_commit_is_deterministic(self, kzg, mle):
        assert kzg.commit(mle).point == kzg.commit(mle).point

    def test_commit_binds_to_table(self, kzg, mle, rng):
        other = DenseMLE.random(Fr, 3, rng)
        assert kzg.commit(mle).point != kzg.commit(other).point

    def test_commit_zero_polynomial(self, kzg):
        assert kzg.commit(DenseMLE.zeros(Fr, 3)).point.inf

    def test_commit_is_linear(self, kzg, rng):
        """C(f + g) = C(f) + C(g) — homomorphism used by the RLC opening."""
        f = DenseMLE.random(Fr, 3, rng)
        g = DenseMLE.random(Fr, 3, rng)
        fg = f.pointwise_add(g)
        assert kzg.commit(fg).point == kzg.commit(f).point.add(kzg.commit(g).point)

    def test_commit_scale(self, kzg, rng):
        f = DenseMLE.random(Fr, 3, rng)
        k = rng.randrange(2, P)
        assert kzg.commit(f.scaled(k)).point == kzg.commit(f).scale(k).point

    def test_arity_above_srs_rejected(self, kzg, rng):
        with pytest.raises(ValueError):
            kzg.commit(DenseMLE.random(Fr, 5, rng))


class TestOpenVerify:
    def test_honest_opening_verifies(self, kzg, mle, rng):
        point = [rng.randrange(P) for _ in range(3)]
        opening = kzg.open(mle, point)
        assert opening.value == mle.evaluate(point)
        assert kzg.verify(kzg.commit(mle), opening)

    def test_opening_at_hypercube_point(self, kzg, mle):
        opening = kzg.open(mle, [1, 0, 1])
        assert opening.value == mle.table[0b101]
        assert kzg.verify(kzg.commit(mle), opening)

    def test_lower_arity_opening(self, kzg, rng):
        """Suffix-secret SRS serves smaller polynomials too."""
        f = DenseMLE.random(Fr, 2, rng)
        point = [rng.randrange(P) for _ in range(2)]
        assert kzg.verify(kzg.commit(f), kzg.open(f, point))

    def test_max_arity_opening(self, kzg, rng):
        f = DenseMLE.random(Fr, 4, rng)
        point = [rng.randrange(P) for _ in range(4)]
        assert kzg.verify(kzg.commit(f), kzg.open(f, point))

    def test_wrong_value_rejected(self, kzg, mle, rng):
        point = [rng.randrange(P) for _ in range(3)]
        opening = kzg.open(mle, point)
        bad = Opening(opening.point, (opening.value + 1) % P, opening.quotients)
        assert not kzg.verify(kzg.commit(mle), bad)

    def test_wrong_commitment_rejected(self, kzg, mle, rng):
        point = [rng.randrange(P) for _ in range(3)]
        opening = kzg.open(mle, point)
        other = kzg.commit(DenseMLE.random(Fr, 3, rng))
        assert not kzg.verify(other, opening)

    def test_swapped_quotients_rejected(self, kzg, mle, rng):
        point = [rng.randrange(P) for _ in range(3)]
        opening = kzg.open(mle, point)
        qs = list(opening.quotients)
        qs[0], qs[1] = qs[1], qs[0]
        bad = Opening(opening.point, opening.value, tuple(qs))
        # quotient order matters (distinct secrets per variable)
        assert not kzg.verify(kzg.commit(mle), bad)

    def test_arity_mismatch_rejected(self, kzg, mle, rng):
        opening = kzg.open(mle, [1, 2, 3])
        wrong = Commitment(kzg.commit(mle).point, 4)
        assert not kzg.verify(wrong, opening)

    def test_point_arity_check(self, kzg, mle):
        with pytest.raises(ValueError):
            kzg.open(mle, [1, 2])

    def test_quotient_count(self, kzg, mle):
        opening = kzg.open(mle, [5, 6, 7])
        assert len(opening.quotients) == 3
        assert opening.size_bytes == 32 + 3 * 48

    def test_opening_of_constant_shift(self, kzg, rng):
        """f and f + c open consistently (homomorphic shift)."""
        f = DenseMLE.random(Fr, 3, rng)
        c = rng.randrange(P)
        g = DenseMLE(Fr, [(v + c) % P for v in f.table])
        point = [rng.randrange(P) for _ in range(3)]
        assert (kzg.open(g, point).value - kzg.open(f, point).value) % P == c


class TestCommitmentAlgebra:
    def test_add_arity_mismatch(self, kzg, rng):
        c1 = kzg.commit(DenseMLE.random(Fr, 3, rng))
        c2 = kzg.commit(DenseMLE.random(Fr, 2, rng))
        with pytest.raises(ValueError):
            c1.add(c2)

    def test_size_constant(self):
        assert Commitment.SIZE_BYTES == 48
