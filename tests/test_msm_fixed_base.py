"""Fixed-base MSM path: bit-equality with Pippenger and scalar_mul.

The serving layer enables precomputed fixed-base tables on its shared
KZG (repro.curves.msm.FixedBaseTable); every result must be the exact
group element — hence identical affine coordinates — that the existing
Pippenger/double-and-add paths produce.
"""

import random

import pytest

from repro.curves import (
    G1,
    G1_GENERATOR,
    FixedBaseTable,
    batch_normalize,
    msm_fixed_base,
    msm_naive,
    msm_pippenger,
)
from repro.fields import Fr
from repro.hyperplonk import MultilinearKZG, TrapdoorSRS
from repro.mle import DenseMLE

R = Fr.modulus


@pytest.fixture(scope="module")
def points():
    rng = random.Random(0xF1BA5E)
    return [G1_GENERATOR.scalar_mul(rng.randrange(1, R)) for _ in range(4)]


@pytest.fixture(scope="module")
def tables(points):
    return [FixedBaseTable(pt) for pt in points]


class TestFixedBaseTable:
    def test_matches_scalar_mul(self, points, tables):
        rng = random.Random(7)
        for _ in range(5):
            k = rng.randrange(R)
            assert tables[0].scalar_mul(k) == points[0].scalar_mul(k)

    @pytest.mark.parametrize("k", [0, 1, 2, 15, 16, 17, 1 << 64, R - 1, R,
                                   R + 5])
    def test_edge_scalars(self, points, tables, k):
        """Zero digits, single digits, and order wraparound."""
        assert tables[1].scalar_mul(k) == points[1].scalar_mul(k)

    def test_infinity_base(self):
        table = FixedBaseTable(G1.infinity)
        assert table.scalar_mul(12345) == G1.infinity

    def test_narrow_table_rejects_wide_scalar(self, points):
        narrow = FixedBaseTable(points[0], num_bits=64)
        assert narrow.scalar_mul(1 << 63) == points[0].scalar_mul(1 << 63)
        with pytest.raises(ValueError, match="only covers 64"):
            narrow.mul(1 << 65)
        with pytest.raises(ValueError, match="num_bits"):
            FixedBaseTable(points[0], num_bits=0)

    def test_generator_table(self):
        table = FixedBaseTable(G1_GENERATOR)
        for k in (3, 0xDEADBEEF, R - 2):
            assert table.scalar_mul(k) == G1_GENERATOR.scalar_mul(k)


class TestFixedBaseMSM:
    def test_matches_pippenger_and_naive(self, points, tables):
        rng = random.Random(42)
        for _ in range(3):
            scalars = [rng.randrange(R) for _ in points]
            expected = msm_pippenger(scalars, points)
            assert msm_fixed_base(scalars, tables) == expected
            assert msm_naive(scalars, points) == expected

    def test_zero_scalars(self, points, tables):
        assert msm_fixed_base([0] * len(points), tables) == G1.infinity

    def test_length_mismatch(self, tables):
        with pytest.raises(ValueError):
            msm_fixed_base([1], tables)

    def test_empty(self):
        with pytest.raises(ValueError):
            msm_fixed_base([], [])


class TestBatchNormalize:
    def test_matches_to_affine(self, points):
        rng = random.Random(3)
        jacs = [pt.to_jacobian().scalar_mul(rng.randrange(1, R))
                for pt in points]
        jacs.insert(1, G1.jacobian_infinity)  # infinity passes through
        normalized = batch_normalize(jacs)
        assert normalized == [j.to_affine() for j in jacs]

    def test_empty(self):
        assert batch_normalize([]) == []


class TestFixedBaseKZG:
    """A fixed-base KZG must emit byte-identical commitments/openings."""

    def test_commit_open_verify_identical(self):
        rng = random.Random(0xC0DE)
        srs_plain = TrapdoorSRS(3, random.Random(11))
        srs_fb = TrapdoorSRS(3, random.Random(11))
        plain = MultilinearKZG(srs_plain)
        fb = MultilinearKZG(srs_fb, fixed_base=True)
        for _ in range(2):
            mle = DenseMLE.random(Fr, 3, rng)
            point = [rng.randrange(R) for _ in range(3)]
            c_plain, c_fb = plain.commit(mle), fb.commit(mle)
            assert c_plain == c_fb
            o_plain, o_fb = plain.open(mle, point), fb.open(mle, point)
            assert o_plain == o_fb  # covers quotient + generator paths
            assert fb.verify(c_fb, o_fb)
            assert plain.verify(c_plain, o_fb)

    def test_oversized_mle_rejected_even_when_zero(self):
        """commit() must reject an over-arity MLE at the call site,
        including the all-zero shortcut path."""
        kzg = MultilinearKZG(TrapdoorSRS(3, random.Random(5)))
        with pytest.raises(ValueError, match="SRS supports up to 3"):
            kzg.commit(DenseMLE(Fr, [0] * 32))
        with pytest.raises(ValueError, match="SRS supports up to 3"):
            kzg.commit(DenseMLE.random(Fr, 5, random.Random(6)))
