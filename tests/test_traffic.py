"""Open-loop traffic, tenancy, and admission control (``repro.traffic``).

ISSUE 8 contracts: the seeded arrival stream is a pure function of its
constructor arguments; the open-loop engine conserves every offered
job (offered = shed + completed + failed); the admission controller
sheds bronze before gold, caps tenants at their quotas, and drives
backpressure when the budget collapses under it; and the ``repro-
cluster --open-loop`` flags validate with argparse's exit status 2.
"""

import math
from types import SimpleNamespace

import pytest

from repro.cluster import ClusterConfig, NodeConfig, ProvingCluster
from repro.cluster.admission import AdmissionController, AdmissionPolicy
from repro.cluster.__main__ import build_parser, main as cluster_main
from repro.service.jobs import RequestClass
from repro.service.metrics import percentile, percentiles
from repro.traffic import (
    SLO_TIERS,
    OpenLoopEngine,
    OpenLoopTraffic,
    SLOTier,
    TenantSpec,
    default_tenants,
    jain_fairness,
    make_admission,
    traffic_summary,
)
from repro.workloads import ChurnEvent

SCENARIO = "zipf-mixed"
#: ~6x the 4-node fleet's install-bound capacity (overload regime)
OVERLOAD_RPS = 40.0


def run_open_loop(
    *,
    with_admission: bool,
    jobs: int = 1_000,
    rate_rps: float = OVERLOAD_RPS,
    nodes: int = 4,
    window_s: float = 10.0,
    churn: tuple = (),
):
    """One small seeded open-loop run; returns the engine."""
    traffic = OpenLoopTraffic(
        SCENARIO, seed=0, max_jobs=jobs, rate_rps=rate_rps
    )
    cluster = ProvingCluster(
        ClusterConfig(
            num_nodes=nodes,
            policy="least_loaded",
            node=NodeConfig(max_vars=traffic.max_vars()),
        )
    )
    admission = None
    if with_admission:
        admission = make_admission(
            cluster, AdmissionPolicy(window_s=window_s), traffic.tenants
        )
    engine = OpenLoopEngine(cluster, traffic, admission=admission)
    engine.run_open_loop(churn=churn)
    return engine


def stub_job(job_id: int, tenant: str):
    """The minimal surface AdmissionController reads from a job."""
    return SimpleNamespace(job_id=job_id, tenant=tenant)


def make_controller(
    *,
    cost: float = 1.0,
    up_nodes: int = 4,
    window_s: float = 10.0,
    tenants=None,
):
    """A controller with constant job cost and a mutable node count."""
    nodes = [up_nodes]
    controller = AdmissionController(
        AdmissionPolicy(window_s=window_s),
        tenants if tenants is not None else default_tenants(3),
        cost_of=lambda job: cost,
        up_nodes=lambda: nodes[0],
    )
    return controller, nodes


class TestOpenLoopTraffic:
    def test_stream_is_deterministic_and_restartable(self):
        traffic = OpenLoopTraffic(SCENARIO, seed=3, max_jobs=50)
        first = [
            (j.arrival_s, j.tenant, j.circuit_key, j.deadline_s)
            for j in traffic.jobs()
        ]
        second = [
            (j.arrival_s, j.tenant, j.circuit_key, j.deadline_s)
            for j in traffic.jobs()
        ]
        other = [
            (j.arrival_s, j.tenant, j.circuit_key, j.deadline_s)
            for j in OpenLoopTraffic(SCENARIO, seed=4, max_jobs=50).jobs()
        ]
        assert len(first) == 50
        assert first == second, "every jobs() call must restart the seed"
        assert first != other
        arrivals = [a for a, *_ in first]
        assert arrivals == sorted(arrivals)

    def test_rate_envelope_and_burst_windows(self):
        traffic = OpenLoopTraffic(
            SCENARIO,
            rate_rps=10.0,
            diurnal_amplitude=0.5,
            burst_mult=3.0,
            burst_fraction=0.1,
            burst_duration_s=5.0,
            max_jobs=1,
        )
        assert traffic.in_burst(0.0) and traffic.in_burst(4.9)
        assert not traffic.in_burst(5.0) and not traffic.in_burst(49.9)
        assert traffic.in_burst(50.0)
        assert traffic.peak_rate_rps == pytest.approx(10.0 * 1.5 * 3.0)
        for t in (0.0, 1.7, 23.0, 60.0, 119.5):
            assert 0.0 < traffic.rate_at(t) <= traffic.peak_rate_rps

    def test_horizon_bounds_the_stream(self):
        traffic = OpenLoopTraffic(SCENARIO, seed=0, horizon_s=5.0)
        jobs = list(traffic.jobs())
        assert jobs
        assert all(j.arrival_s <= 5.0 for j in jobs)

    def test_arrival_trace_replayed_verbatim(self):
        trace = [0.5, 0.1, 2.0]
        traffic = OpenLoopTraffic(SCENARIO, arrival_trace=trace)
        assert [j.arrival_s for j in traffic.jobs()] == sorted(trace)

    def test_shape_cache_shares_circuits(self):
        traffic = OpenLoopTraffic(SCENARIO, seed=0, max_jobs=200)
        jobs = list(traffic.jobs())
        by_key = {}
        for job in jobs:
            by_key.setdefault(job.circuit_key, job.circuit)
            assert job.circuit is by_key[job.circuit_key]
        assert len(traffic.shapes) == len(by_key)
        assert len(by_key) < len(jobs)

    def test_validation(self):
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            OpenLoopTraffic(SCENARIO, diurnal_amplitude=1.0, max_jobs=1)
        with pytest.raises(ValueError, match="burst_mult"):
            OpenLoopTraffic(SCENARIO, burst_mult=0.5, max_jobs=1)
        with pytest.raises(ValueError, match="burst_fraction"):
            OpenLoopTraffic(SCENARIO, burst_fraction=0.0, max_jobs=1)
        with pytest.raises(ValueError, match="max_jobs"):
            OpenLoopTraffic(SCENARIO)
        with pytest.raises(ValueError, match="rate_rps"):
            OpenLoopTraffic(SCENARIO, rate_rps=0.0, max_jobs=1)


class TestTenants:
    def test_default_tenants_zipf_weights_and_tiers(self):
        tenants = default_tenants(4)
        assert [t.name for t in tenants] == [
            "tenant-0",
            "tenant-1",
            "tenant-2",
            "tenant-3",
        ]
        weights = [t.weight for t in tenants]
        assert weights == sorted(weights, reverse=True)
        assert [t.tier.name for t in tenants] == [
            "gold",
            "silver",
            "bronze",
            "gold",
        ]
        assert all(0.0 < t.quota_fraction <= 1.0 for t in tenants)

    def test_tier_ordering_and_classes(self):
        gold, silver, bronze = (
            SLO_TIERS["gold"],
            SLO_TIERS["silver"],
            SLO_TIERS["bronze"],
        )
        assert gold.deadline_slack_s < silver.deadline_slack_s
        assert silver.deadline_slack_s < bronze.deadline_slack_s
        # lower tiers cap out earlier, so they shed first
        assert gold.admission_factor > silver.admission_factor
        assert silver.admission_factor > bronze.admission_factor
        assert bronze.request_class is RequestClass.DEFERRABLE

    def test_validation(self):
        with pytest.raises(ValueError, match="admission_factor"):
            SLOTier("bad", 1.0, 1.5, RequestClass.REALTIME)
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("t", 0.0, SLO_TIERS["gold"], 0.5)
        with pytest.raises(ValueError, match="quota_fraction"):
            TenantSpec("t", 1.0, SLO_TIERS["gold"], 0.0)


class TestAdmissionController:
    def test_budget_tracks_up_nodes(self):
        controller, nodes = make_controller(window_s=10.0, up_nodes=4)
        assert controller.budget_s() == 40.0
        nodes[0] = 1
        assert controller.budget_s() == 10.0
        nodes[0] = 0  # a fully-down fleet still budgets one node
        assert controller.budget_s() == 10.0

    def test_tier_cap_sheds_lower_tiers_first(self):
        # equal quotas so only the tier factor differentiates
        tiers = ["gold", "silver", "bronze"]
        tenants = [
            TenantSpec(f"tenant-{i}", 1.0, SLO_TIERS[t], 1.0)
            for i, t in enumerate(tiers)
        ]
        controller, _ = make_controller(
            cost=1.0, up_nodes=1, window_s=10.0, tenants=tenants
        )
        # fill fleet-wide outstanding to 8s: bronze caps at 7.0,
        # silver at 8.5, gold at 10.0
        for job_id in range(8):
            assert controller.admit(stub_job(job_id, "tenant-0"))
        assert not controller.admit(stub_job(101, "tenant-2"))  # 9 > 7.0
        assert not controller.admit(stub_job(102, "tenant-1"))  # 9 > 8.5
        assert controller.admit(stub_job(103, "tenant-0"))  # 9 <= 10
        assert controller.shed_by_tenant == {
            "tenant-0": 0,
            "tenant-1": 1,
            "tenant-2": 1,
        }

    def test_quota_caps_one_tenant_inside_its_tier(self):
        tenants = [
            TenantSpec("big", 1.0, SLO_TIERS["gold"], 1.0),
            TenantSpec("small", 1.0, SLO_TIERS["gold"], 0.2),
        ]
        controller, _ = make_controller(
            cost=1.0, up_nodes=1, window_s=10.0, tenants=tenants
        )
        assert controller.admit(stub_job(0, "small"))
        assert controller.admit(stub_job(1, "small"))
        # small's quota is 2.0s; the fleet budget still has 8s of room
        assert not controller.admit(stub_job(2, "small"))
        assert controller.admit(stub_job(3, "big"))
        assert controller.tenant_outstanding_s("small") == 2.0

    def test_settle_releases_and_is_idempotent(self):
        controller, _ = make_controller(cost=2.0, up_nodes=4)
        job = stub_job(0, "tenant-0")
        assert controller.admit(job)
        assert controller.outstanding_s == 2.0
        controller.settle(job)
        assert controller.outstanding_s == 0.0
        controller.settle(job)  # idempotent
        controller.settle(stub_job(99, "tenant-0"))  # never admitted
        assert controller.outstanding_s == 0.0

    def test_unknown_tenant_rejected(self):
        controller, _ = make_controller()
        with pytest.raises(KeyError, match="unknown tenant"):
            controller.admit(stub_job(0, "nobody"))
        with pytest.raises(KeyError, match="unknown tenant"):
            controller.admit(stub_job(0, None))

    def test_backpressure_when_budget_collapses(self):
        controller, nodes = make_controller(
            cost=1.0, up_nodes=4, window_s=10.0
        )
        jobs = [stub_job(i, "tenant-0") for i in range(20)]
        for job in jobs:
            assert controller.admit(job)
        assert not controller.overloaded()  # 20s of a 40s budget
        nodes[0] = 1  # the fleet crashes down to one node
        assert controller.overloaded()  # 20s > 1.5 x 10s
        assert not controller.relieved()
        for job in jobs[:13]:
            controller.settle(job)
        assert controller.relieved()  # 7s < 0.75 x 10s

    def test_as_dict_reports_policy_and_counters(self):
        controller, _ = make_controller(cost=100.0, up_nodes=1)
        controller.admit(stub_job(0, "tenant-0"))
        doc = controller.as_dict()
        assert doc["policy"]["window_s"] == 10.0
        assert doc["offered"] == 1
        assert doc["shed"] == 1
        assert doc["shed_rate"] == 1.0


class TestOpenLoopEngine:
    def test_runs_are_deterministic(self):
        first = traffic_summary(run_open_loop(with_admission=True))
        second = traffic_summary(run_open_loop(with_admission=True))
        assert first == second

    def test_conservation_offered_equals_shed_plus_resolved(self):
        for with_admission in (False, True):
            engine = run_open_loop(with_admission=with_admission)
            summary = traffic_summary(engine)
            assert summary["offered"] == 1_000
            assert (
                summary["offered"]
                == summary["shed"]
                + summary["completed"]
                + summary["failed"]
            )
            assert engine.admitted == summary["completed"] + summary["failed"]

    def test_admission_beats_no_admission_on_goodput(self):
        protected = traffic_summary(run_open_loop(with_admission=True))
        unprotected = traffic_summary(run_open_loop(with_admission=False))
        assert protected["shed"] > 0
        assert unprotected["shed"] == 0
        assert (
            protected["model"]["goodput_jobs_per_s"]
            > unprotected["model"]["goodput_jobs_per_s"]
        )
        assert (
            protected["model"]["latency_s"]["p99"]
            < unprotected["model"]["latency_s"]["p99"]
        )
        assert protected["jain_fairness"] > unprotected["jain_fairness"]

    def test_shed_events_logged_per_tenant(self):
        engine = run_open_loop(with_admission=True)
        shed_events = [e for e in engine.events if e.kind == "job_shed"]
        assert len(shed_events) == traffic_summary(engine)["shed"]
        by_tenant = {}
        for event in shed_events:
            by_tenant[event.detail["tenant"]] = (
                by_tenant.get(event.detail["tenant"], 0) + 1
            )
        assert by_tenant == engine.admission.shed_by_tenant

    def test_churn_triggers_backpressure_and_lag(self):
        # crash half the fleet mid-stream: the budget halves, the pump
        # pauses, and resumed arrivals carry the accumulated lag
        churn = (
            ChurnEvent(2.0, 0, "crash"),
            ChurnEvent(20.0, 0, "recover"),
        )
        engine = run_open_loop(
            with_admission=True,
            jobs=800,
            nodes=2,
            window_s=4.0,
            churn=churn,
        )
        summary = traffic_summary(engine)
        assert engine.pauses >= 1
        assert engine.lag_s > 0.0
        assert (
            summary["offered"]
            == summary["shed"] + summary["completed"] + summary["failed"]
        )

    def test_untenanted_jobs_need_no_admission(self):
        # a bare trace with no admission controller: tenancy is still
        # stamped by the stream, but nothing reads it
        engine = run_open_loop(with_admission=False, jobs=50)
        assert engine.offered == 50
        assert set(engine.tenant_of.values()) <= {
            t.name for t in engine.traffic.tenants
        }


class TestTrafficMetrics:
    def test_jain_fairness_bounds(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert 0.0 < jain_fairness([3.0, 1.0]) < 1.0

    def test_percentiles_sort_once_matches_percentile(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        qs = (50, 95, 99, 99.9)
        assert percentiles(values, qs) == [
            percentile(values, q) for q in qs
        ]
        assert percentiles([], qs) == [0.0] * len(qs)
        assert percentiles([2.5], qs) == [2.5] * len(qs)
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_summary_tenant_rows_join_records(self):
        engine = run_open_loop(with_admission=True)
        summary = traffic_summary(engine)
        rows = {row["tenant"]: row for row in summary["tenants"]}
        assert sum(r["offered"] for r in rows.values()) == summary["offered"]
        assert sum(r["shed"] for r in rows.values()) == summary["shed"]
        assert (
            sum(r["completed"] for r in rows.values()) == summary["completed"]
        )
        for row in rows.values():
            assert row["slo_met"] <= row["completed"]
        assert 0.0 < summary["jain_fairness"] <= 1.0


class TestOpenLoopCli:
    def test_open_loop_flags_parse(self):
        args = build_parser().parse_args(
            [
                "--open-loop",
                "--rate-rps",
                "12.5",
                "--tenants",
                "5",
                "--admission",
                "--admission-window",
                "2.0",
                "--diurnal-amplitude",
                "0.25",
                "--burst-mult",
                "2.0",
            ]
        )
        assert args.open_loop and args.admission
        assert args.rate_rps == 12.5
        assert args.tenants == 5
        assert math.isclose(args.diurnal_amplitude, 0.25)

    def test_carbon_flags_parse(self):
        args = build_parser().parse_args(
            [
                "--carbon-trace",
                "diurnal:300:0.8:240",
                "--carbon-policy",
                "carbon_waiting",
                "--power-cap",
                "600",
                "--carbon-threshold",
                "180",
            ]
        )
        assert args.carbon_trace == {
            "base_g_per_kwh": 300.0,
            "amplitude": 0.8,
            "period_s": 240.0,
        }
        assert args.carbon_policy == "carbon_waiting"
        assert args.power_cap == 600.0
        assert args.carbon_threshold == 180.0
        # bare "diurnal" means the trace defaults
        assert build_parser().parse_args(
            ["--carbon-trace", "diurnal"]
        ).carbon_trace == {}

    @pytest.mark.parametrize(
        "argv",
        [
            ["--admission"],  # requires --open-loop
            ["--open-loop", "--execute"],
            ["--open-loop", "--autoscale"],
            ["--open-loop", "--churn-rate", "0.2"],  # needs --horizon-s
            ["--open-loop", "--tenants", "0"],
            ["--open-loop", "--rate-rps", "0"],
            ["--open-loop", "--horizon-s", "-1"],
            ["--open-loop", "--diurnal-amplitude", "1.0"],
            ["--open-loop", "--burst-mult", "0.9"],
            ["--open-loop", "--admission-window", "nan"],
            # carbon flags require --carbon-trace
            ["--carbon-policy", "carbon_waiting"],
            ["--power-cap", "500"],
            ["--carbon-threshold", "180"],
            # malformed trace specs
            ["--carbon-trace", "sinusoid"],
            ["--carbon-trace", "diurnal:300:0.8"],
            ["--carbon-trace", "diurnal:300:1.5:240"],
            ["--carbon-trace", "diurnal:-5:0.5:240"],
            ["--carbon-trace", "diurnal:300:0.5:nan"],
            # cap below one busy node's draw / non-positive cap
            ["--carbon-trace", "diurnal", "--power-cap", "100"],
            ["--carbon-trace", "diurnal", "--power-cap", "0"],
            ["--carbon-trace", "diurnal", "--carbon-policy", "bogus"],
        ],
    )
    def test_bad_values_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cluster_main(argv)
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_small_open_loop_run_end_to_end(self, capsys):
        code = cluster_main(
            [
                "--open-loop",
                "--jobs",
                "60",
                "--nodes",
                "2",
                "--policies",
                "least_loaded",
                "--admission",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "open loop" in out
        assert "goodput" in out
