"""Refactor lock (ISSUE 3 acceptance): ``ZkPhireModel`` and ``CpuModel``
latencies are **bit-identical** to the pre-plan inventory code.

The golden side re-derives each latency exactly the way the pre-refactor
``hw.accelerator.ZkPhireModel.breakdown`` / ``hw.cpu_baseline`` code did
— composing the per-module models inline with the hard-coded MSM
inventory and phase sequencing — and asserts ``==`` (no tolerance)
against the plan-priced path for every ``repro.workloads`` entry.
"""

import pytest

from repro.gates import gate_by_id
from repro.hw.accelerator import ZkPhireModel, opencheck_profile
from repro.hw.config import AcceleratorConfig
from repro.hw.cpu_baseline import (
    CPU_PHASE_FRACTIONS,
    CpuModel,
    sumcheck_modmuls,
)
from repro.hw.scheduler import PolyProfile
from repro.plan import gate_type_by_name, hyperplonk_plan
from repro.workloads import WORKLOADS


def golden_breakdown_total(model: ZkPhireModel, gate_type_name: str,
                           num_vars: int) -> float:
    """The pre-refactor composition, verbatim (inventory hard-coded)."""
    gate_type = gate_type_by_name(gate_type_name)
    n = 1 << num_vars
    k = gate_type.num_witnesses

    witness_msm = sum(model.msm.latency_s(n, sparse=True) for _ in range(k))
    zc_profile = PolyProfile.from_gate(gate_by_id(gate_type.zerocheck_gate_id))
    zerocheck = model.sumcheck.run(zc_profile, num_vars).latency_s
    pq = model.permquot.run(n, k)
    tree = model.forest.product_tree(n)
    wiring_msm = (model.msm.latency_s(n, sparse=False)
                  + model.msm.latency_s(2 * n, sparse=False))
    permcheck = model.sumcheck.run(
        PolyProfile.from_gate(gate_by_id(gate_type.permcheck_gate_id)),
        num_vars).latency_s
    claims = (len(gate_type.selector_names) + k + (2 * k + 1))
    batch = model.forest.batch_eval(claims, n)
    combine = model.mle_combine.run(n, streams=claims)
    opencheck = model.sumcheck.run(opencheck_profile(), num_vars,
                                   fuse_fr=False).latency_s
    opening_msm = (model.msm.latency_s(n, sparse=False)
                   + model.msm.latency_s(2 * n, sparse=False))

    wire_msm_phase = max(pq.latency_s + tree.latency_s, wiring_msm)
    wire_identity = wire_msm_phase + permcheck
    batch_and_open = (batch.latency_s + combine.latency_s
                      + max(opencheck, opening_msm))
    serial = witness_msm + wire_identity + batch_and_open
    if model.config.mask_zerocheck:
        return serial + max(0.0, zerocheck - wire_msm_phase)
    return serial + zerocheck


def workload_shapes():
    """Every (gate, μ) the workload catalog names."""
    shapes = []
    for w in WORKLOADS:
        if w.vanilla_log2 is not None:
            shapes.append(("vanilla", w.vanilla_log2))
        if w.jellyfish_log2 is not None:
            shapes.append(("jellyfish", w.jellyfish_log2))
    return sorted(set(shapes))


class TestZkPhireBitIdentical:
    @pytest.mark.parametrize("masked", [True, False])
    def test_all_workload_entries(self, masked):
        cfg = AcceleratorConfig.exemplar()
        if not masked:
            cfg = AcceleratorConfig(sumcheck=cfg.sumcheck, msm=cfg.msm,
                                    forest=cfg.forest,
                                    bandwidth_gbps=cfg.bandwidth_gbps,
                                    mask_zerocheck=False)
        model = ZkPhireModel(cfg)
        for gate, mu in workload_shapes():
            golden = golden_breakdown_total(model, gate, mu)
            assert model.prove_latency_s(gate, mu) == golden, (gate, mu)

    def test_price_equals_breakdown(self):
        model = ZkPhireModel(AcceleratorConfig.exemplar())
        for gate, mu in [("vanilla", 17), ("jellyfish", 24)]:
            plan = hyperplonk_plan(gate, mu)
            assert model.price(plan).total == model.breakdown(gate, mu).total

    def test_breakdown_fields_identical(self):
        """Not just the total: every per-phase latency field."""
        model = ZkPhireModel(AcceleratorConfig.exemplar())
        bd = model.breakdown("jellyfish", 24)
        n, k = 1 << 24, 5
        assert bd.witness_msm == sum(
            model.msm.latency_s(n, sparse=True) for _ in range(k))
        assert bd.wiring_msm == (model.msm.latency_s(n, sparse=False)
                                 + model.msm.latency_s(2 * n, sparse=False))
        assert bd.opening_msm == bd.wiring_msm
        assert bd.permquot == model.permquot.run(n, k).latency_s
        assert bd.prod_tree == model.forest.product_tree(n).latency_s
        assert bd.batch_evals == model.forest.batch_eval(29, n).latency_s


class TestCpuBitIdentical:
    def test_phase_breakdown_exact(self):
        """Figure 12a's measured-share split is untouched by the
        refactor: fractions × total, exactly."""
        cpu = CpuModel(threads=32)
        for w in WORKLOADS:
            for total in (w.cpu_vanilla_s, w.cpu_jellyfish_s):
                if total is None:
                    continue
                split = cpu.phase_breakdown(total)
                assert split == {k: v * total
                                 for k, v in CPU_PHASE_FRACTIONS.items()}

    def test_sumcheck_seconds_exact(self):
        """The calibrated SumCheck path still computes muls × ns."""
        cpu = CpuModel(threads=4)
        for gate, mu in workload_shapes():
            gt = gate_type_by_name(gate)
            poly = PolyProfile.from_gate(gate_by_id(gt.zerocheck_gate_id))
            expected = sumcheck_modmuls(poly, mu) * 11.5 * 1e-9
            assert cpu.sumcheck_seconds(poly, mu) == expected, (gate, mu)
