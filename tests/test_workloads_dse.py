"""Tests for the workload catalog and the DSE machinery."""

import pytest

from repro.experiments import setups
from repro.hw.config import MSMUnitConfig, SumCheckUnitConfig
from repro.hw.dse import (
    DesignPoint,
    accelerator_dse,
    enumerate_sumcheck_configs,
    geomean,
    pareto_frontier,
    sumcheck_dse,
)
from repro.workloads import WORKLOADS, workload_by_name


class TestCatalog:
    def test_all_paper_workloads_present(self):
        names = {w.name for w in WORKLOADS}
        for expected in ("ZCash", "Zexe", "Rollup 25 Pvt Tx",
                         "Rollup 1600 Pvt Tx", "zkEVM"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert workload_by_name("zcash").name == "ZCash"
        with pytest.raises(KeyError):
            workload_by_name("nonexistent")

    def test_gate_counts(self):
        w = workload_by_name("Rollup 25 Pvt Tx")
        assert w.vanilla_gates == 1 << 24
        assert w.jellyfish_gates == 1 << 19
        assert w.jellyfish_reduction == 32.0

    def test_zkevm_has_no_vanilla_count(self):
        w = workload_by_name("zkEVM")
        assert w.vanilla_gates is None
        assert w.jellyfish_reduction is None

    def test_cpu_baselines_scale_with_size(self):
        """Bigger circuits take longer on CPU (Table VI sanity)."""
        timed = [(w.vanilla_log2, w.cpu_vanilla_s) for w in WORKLOADS
                 if w.vanilla_log2 is not None and w.cpu_vanilla_s]
        timed.sort()
        times = [t for _, t in timed]
        assert times == sorted(times)


class TestParetoFrontier:
    def _pt(self, runtime, area):
        cfg = __import__("repro.hw.config", fromlist=["AcceleratorConfig"])
        return DesignPoint(config=None, runtime_s=runtime, area_mm2=area)

    def test_dominated_points_removed(self):
        pts = [self._pt(1.0, 100), self._pt(2.0, 50), self._pt(1.5, 120),
               self._pt(3.0, 40)]
        front = pareto_frontier(pts)
        assert [(p.runtime_s, p.area_mm2) for p in front] == [
            (1.0, 100), (2.0, 50), (3.0, 40)]

    def test_single_point(self):
        front = pareto_frontier([self._pt(1.0, 1.0)])
        assert len(front) == 1

    def test_geomean(self):
        assert geomean([1.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geomean([])


class TestSumCheckDSE:
    def test_area_budget_respected(self):
        configs = enumerate_sumcheck_configs(10.0)
        assert configs
        from repro.hw.area import standalone_sumcheck_area

        assert all(standalone_sumcheck_area(c, 0.0) <= 10.0 for c in configs)

    def test_no_configs_raises(self):
        polys = setups.training_set(num_vars=10)[:2]
        with pytest.raises(ValueError):
            sumcheck_dse(polys, area_budget_mm2=0.001, bandwidth_gbps=512)

    def test_objective_prefers_utilization_at_high_lambda(self):
        polys = setups.training_set(num_vars=12)[:4]
        grid = [SumCheckUnitConfig(pes=p, ees_per_pe=e, pls_per_pe=5,
                                   sram_bank_words=1024)
                for p in (2, 16) for e in (2, 7)]
        util_pick = sumcheck_dse(polys, 40.0, 1024, lam=0.99, configs=grid)
        perf_pick = sumcheck_dse(polys, 40.0, 1024, lam=0.0, configs=grid)
        assert util_pick.mean_utilization >= perf_pick.mean_utilization - 1e-9

    def test_best_design_has_objective_set(self):
        polys = setups.training_set(num_vars=10)[:3]
        grid = [SumCheckUnitConfig(pes=4, ees_per_pe=3, pls_per_pe=5)]
        best = sumcheck_dse(polys, 50.0, 512, configs=grid)
        assert best.objective > 0
        assert set(best.latencies) == {n for n, _, _ in polys}


class TestAcceleratorDSE:
    def test_small_sweep_produces_points(self):
        sc_grid = [SumCheckUnitConfig(pes=p, ees_per_pe=4, pls_per_pe=5,
                                      sram_bank_words=1024) for p in (4, 16)]
        msm_grid = [MSMUnitConfig(pes=p, window_bits=9) for p in (8, 32)]
        points = accelerator_dse("jellyfish", 20, 1024,
                                 sc_grid=sc_grid, msm_grid=msm_grid)
        assert points
        for p in points:
            assert p.runtime_s > 0 and p.area_mm2 > 0

    def test_pareto_of_sweep_is_subset(self):
        sc_grid = [SumCheckUnitConfig(pes=4, ees_per_pe=4, pls_per_pe=5)]
        msm_grid = [MSMUnitConfig(pes=p, window_bits=9) for p in (8, 32)]
        points = accelerator_dse("vanilla", 18, 512,
                                 sc_grid=sc_grid, msm_grid=msm_grid)
        front = pareto_frontier(points)
        assert 0 < len(front) <= len(points)

    def test_masking_flag_propagates(self):
        sc_grid = [SumCheckUnitConfig(pes=4, ees_per_pe=4, pls_per_pe=5)]
        msm_grid = [MSMUnitConfig(pes=8, window_bits=9)]
        masked = accelerator_dse("jellyfish", 18, 1024, sc_grid=sc_grid,
                                 msm_grid=msm_grid, mask_zerocheck=True)
        unmasked = accelerator_dse("jellyfish", 18, 1024, sc_grid=sc_grid,
                                   msm_grid=msm_grid, mask_zerocheck=False)
        assert masked[0].runtime_s <= unmasked[0].runtime_s
