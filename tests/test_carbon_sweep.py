"""A 10⁵-job carbon sweep (slow; gated behind ``RUN_SLOW_CARBON=1``).

Scale check for the carbon stack: one hundred thousand open-loop jobs
priced against a diurnal trace, carbon-blind vs carbon-aware at the
same seed.  Guards the invariants that matter at volume — conservation
(every offered job sheds, completes, or fails), gram accounting that
stays finite and positive, and the aware policy never pricing *worse*
than blind — without pinning the headline ratio (that is
``BENCH_carbon.json``'s job at a calibrated size).

Marked ``slow`` *and* env-gated: the tier-1 suite runs other slow
tests, so the marker alone would not keep a multi-minute sweep (~3 min
wall) out of the default run.
"""

import os
from itertools import islice

import pytest

from repro.carbon import CarbonConfig, CarbonIntensityTrace
from repro.cluster import ClusterConfig, NodeConfig, ProvingCluster
from repro.service.jobs import RequestClass
from repro.traffic import SLO_TIERS, OpenLoopTraffic, SLOTier, TenantSpec

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        os.environ.get("RUN_SLOW_CARBON") != "1",
        reason="set RUN_SLOW_CARBON=1 to run the 10^5-job carbon sweep",
    ),
]

SWEEP_JOBS = 100_000


def make_jobs() -> list:
    tenants = [
        TenantSpec(
            "gold-rt", weight=0.3, tier=SLO_TIERS["gold"], quota_fraction=1.0
        ),
        TenantSpec(
            "bronze-batch",
            weight=0.7,
            tier=SLOTier(
                # tight-ish slack bounds the held backlog (and so the
                # per-kick queue scans) at this volume
                name="batch",
                deadline_slack_s=30.0,
                admission_factor=0.7,
                request_class=RequestClass.DEFERRABLE,
            ),
            quota_fraction=1.0,
        ),
    ]
    traffic = OpenLoopTraffic(
        "uniform-small",
        seed=11,
        tenants=tenants,
        rate_rps=40.0,
        max_jobs=SWEEP_JOBS,
        burst_mult=1.0,
    )
    return list(islice(traffic.jobs(), SWEEP_JOBS))


def run_cell(policy: str, threshold: float | None) -> dict:
    config = ClusterConfig(
        num_nodes=4,
        time_model="accelerator",
        node=NodeConfig(max_vars=6),
        carbon=CarbonConfig(
            trace=CarbonIntensityTrace(
                amplitude=0.8, noise=0.05, seed=7
            ),
            policy=policy,
            low_threshold_g_per_kwh=threshold,
        ),
    )
    with ProvingCluster(config) as cluster:
        records = cluster.run_scenario(make_jobs())
        summary = cluster.summary()
        return {
            "completed": len(records),
            "failed": len(cluster.failed_jobs),
            "carbon": summary["carbon"],
        }


def test_hundred_thousand_job_sweep():
    blind = run_cell("none", None)
    aware = run_cell("carbon_waiting", 250.0)
    for cell in (blind, aware):
        assert cell["completed"] + cell["failed"] == SWEEP_JOBS
        assert cell["failed"] == 0
        carbon = cell["carbon"]
        assert carbon["energy_j"] > 0.0
        assert 0.0 < carbon["carbon_g"] < float("inf")
        assert carbon["carbon_per_proof_g"] > 0.0
    assert (
        aware["carbon"]["carbon_per_proof_g"]
        <= blind["carbon"]["carbon_per_proof_g"] * 1.001
    ), "carbon_waiting must never price worse than carbon-blind"
