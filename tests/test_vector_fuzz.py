"""Seeded cross-backend fuzz: every backend vs the reference oracle.

Random tables are mixed with adversarial boundary values — 0, 1, p-1,
the Montgomery radix R and R² mod p (values whose limb patterns stress
REDC's carry chain), and all-ones 64-bit words (worst-case limb planes)
— across empty, length-1, odd-length, and power-of-two tables, and
extension degrees 0/1/max.  Per the :class:`VectorBackend` contract,
elementwise kernels receive canonical ``[0, p)`` inputs (boundary
values are reduced mod p first) while ``fold``/``extend_columns`` are
also fuzzed with raw out-of-range integers, which they must normalize
bit-identically to the reference backend.  OpCounter tallies must match
everywhere too.
"""

import random

import pytest

from repro.fields import Fq, Fr, OpCounter, PrimeField, get_backend, list_backends

SEED = 0xF055
MAX_DEGREE = 9

F61 = PrimeField((1 << 61) - 1, "F61")
FIELDS = [Fr, Fq, F61]
BACKENDS = list_backends()
FAST_BACKENDS = [b for b in BACKENDS if b != "reference"]
TABLE_SIZES = [0, 1, 2, 3, 7, 16, 33, 64]


def limb_radix(p: int) -> int:
    """The array backend's Montgomery radix R = 2^(30L) for modulus p.

    Recomputed here in pure Python (mirroring ``LimbPlan``'s padding
    rule) so the fuzz corpus stresses REDC carry chains even when numpy
    is absent and the plan itself cannot be imported.
    """
    limbs = max(2, -(-(p.bit_length() + 2) // 30))
    while 4 * p >= 1 << (30 * limbs):
        limbs += 1
    return 1 << (30 * limbs)


def boundary_values(p: int) -> list[int]:
    """Adversarial field elements (canonical) for modulus ``p``."""
    r = limb_radix(p)
    return [
        0,
        1,
        p - 1,
        r % p,
        r * r % p,
        ((1 << 64) - 1) % p,
        int.from_bytes(b"\xff" * 32, "little") % p,
    ]


def fuzz_table(rng: random.Random, p: int, n: int) -> list[int]:
    """``n`` canonical elements: boundaries sprinkled into random data."""
    bounds = boundary_values(p)
    return [
        rng.choice(bounds) if rng.random() < 0.3 else rng.randrange(p)
        for _ in range(n)
    ]


def raw_fuzz_table(rng: random.Random, p: int, n: int) -> list[int]:
    """``n`` possibly out-of-range integers (for fold/extend only)."""
    bounds = boundary_values(p)
    out = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.2:
            out.append(rng.choice(bounds) + rng.choice([0, p, -p]))
        elif roll < 0.3:
            out.append(rng.randrange(-p, 2 * p))
        else:
            out.append(rng.randrange(p))
    return out


def counter_tuple(c: OpCounter) -> tuple:
    return (c.mul, c.add, c.inv, c.ee_mul, c.pl_mul)


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestElementwiseFuzz:
    def test_binary_ops_agree_with_reference(self, backend, field):
        rng = random.Random(SEED ^ field.modulus)
        ref, fast = get_backend("reference"), get_backend(backend)
        p = field.modulus
        for n in TABLE_SIZES:
            a = fuzz_table(rng, p, n)
            b = fuzz_table(rng, p, n)
            for op in ("add", "sub", "mul"):
                c1, c2 = OpCounter(), OpCounter()
                want = getattr(ref, op)(field, a, b, c1)
                got = getattr(fast, op)(field, a, b, c2)
                assert list(got) == want, (field.name, op, n)
                assert counter_tuple(c1) == counter_tuple(c2), (op, n)

    def test_scalar_ops_agree_with_reference(self, backend, field):
        rng = random.Random(SEED * 3 ^ field.modulus)
        ref, fast = get_backend("reference"), get_backend(backend)
        p = field.modulus
        scalars = boundary_values(p) + [rng.randrange(p)]
        for n in (0, 1, 5, 32):
            a = fuzz_table(rng, p, n)
            x = fuzz_table(rng, p, n)
            for c in scalars:
                c1, c2 = OpCounter(), OpCounter()
                assert list(fast.scale(field, a, c, c2)) == ref.scale(
                    field, a, c, c1
                ), (field.name, "scale", n, c)
                assert counter_tuple(c1) == counter_tuple(c2)
                c1, c2 = OpCounter(), OpCounter()
                assert list(fast.axpy(field, a, c, x, c2)) == ref.axpy(
                    field, a, c, x, c1
                ), (field.name, "axpy", n, c)
                assert counter_tuple(c1) == counter_tuple(c2)


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestFoldExtendFuzz:
    def test_fold_agrees_on_raw_tables(self, backend, field):
        rng = random.Random(SEED * 5 ^ field.modulus)
        ref, fast = get_backend("reference"), get_backend(backend)
        p = field.modulus
        challenges = boundary_values(p)
        for n in (2, 3, 7, 16, 33, 64):
            t = raw_fuzz_table(rng, p, n)
            for r in challenges + [rng.randrange(p)]:
                c1, c2 = OpCounter(), OpCounter()
                want = ref.fold(field, t, r, c1)
                got = fast.fold(field, t, r, c2)
                assert list(got) == want, (field.name, n, r)
                assert counter_tuple(c1) == counter_tuple(c2)
                assert all(0 <= v < p for v in got)

    @pytest.mark.parametrize("degree", [0, 1, MAX_DEGREE])
    def test_extend_agrees_on_raw_tables(self, backend, field, degree):
        rng = random.Random(SEED * 7 ^ field.modulus ^ degree)
        ref, fast = get_backend("reference"), get_backend(backend)
        p = field.modulus
        for n in (2, 3, 7, 16, 64):
            t = raw_fuzz_table(rng, p, n)
            c1, c2 = OpCounter(), OpCounter()
            want = ref.extend_columns(field, t, degree, c1)
            got = fast.extend_columns(field, t, degree, c2)
            assert [list(col) for col in got] == want, (field.name, n)
            assert counter_tuple(c1) == counter_tuple(c2)
            assert all(0 <= v < p for col in got for v in col)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestRoundEvaluationsFuzz:
    """The fused round kernel on boundary-heavy tables, every backend."""

    def test_round_evaluations_agree(self, backend):
        from repro.mle import Term

        rng = random.Random(SEED * 11)
        ref, fast = get_backend("reference"), get_backend(backend)
        p = Fr.modulus
        for n in (2, 8, 32):
            tables = {
                name: fuzz_table(rng, p, n) for name in ("a", "b", "c")
            }
            terms = [
                Term(rng.randrange(1, p), (("a", 1), ("b", 1))),
                Term(rng.randrange(1, p), (("c", MAX_DEGREE),)),
                Term(rng.randrange(p), ()),
            ]
            degree = MAX_DEGREE
            c1, c2 = OpCounter(), OpCounter()
            want = ref.round_evaluations(Fr, terms, tables, degree, c1)
            got = fast.round_evaluations(Fr, terms, tables, degree, c2)
            assert list(got) == want, n
            assert counter_tuple(c1) == counter_tuple(c2)
