"""The proof-cost plan layer: structure, DAG validity, constructors,
and the canonical HyperPlonk inventory (ISSUE 3 tentpole)."""

import pytest

from repro.hyperplonk.preprocess import preprocess
from repro.plan import (
    AcceleratorCostModel,
    CpuCostModel,
    FunctionalProverCostModel,
    HYPERPLONK_PHASES,
    MSMTask,
    PhaseCost,
    PolyProfile,
    ProofPlan,
    TermProfile,
    gate_type_by_name,
    hyperplonk_plan,
    phase_modmuls,
    plan_modmuls,
)
from repro.service.traffic import GATE_TYPES, synthesize_circuit


class TestPlanStructure:
    @pytest.mark.parametrize("gate,k,s", [("vanilla", 3, 5),
                                          ("jellyfish", 5, 13)])
    def test_canonical_phase_list(self, gate, k, s):
        plan = hyperplonk_plan(gate, 10)
        assert tuple(p.name for p in plan.phases) == HYPERPLONK_PHASES
        assert plan.num_witnesses == k
        assert plan.num_selectors == s
        assert plan.num_claims == s + k + (2 * k + 1)
        assert plan.num_gates == 1 << 10

    @pytest.mark.parametrize("gate", ["vanilla", "jellyfish"])
    def test_msm_inventory_matches_paper(self, gate):
        """§IV-B3: one sparse MSM per witness column; wiring and opening
        each contribute an N-point and a 2N-point dense MSM."""
        plan = hyperplonk_plan(gate, 8)
        n = 1 << 8
        k = plan.num_witnesses
        witness = plan.phase("witness_msm").msms
        assert witness == tuple(MSMTask(n, sparse=True) for _ in range(k))
        for name in ("wiring_msm", "opening_msm"):
            assert plan.phase(name).msms == (MSMTask(n), MSMTask(2 * n))
        assert len(plan.msm_tasks()) == k + 4

    def test_dag_edges_reference_earlier_phases(self):
        plan = hyperplonk_plan("vanilla", 6)
        seen = set()
        for phase in plan:
            assert set(phase.after) <= seen
            seen.add(phase.name)
        # the two identities must both precede the batched opening
        assert set(plan.phase("batch_evals").after) == {
            "zerocheck", "permcheck"}

    def test_sumcheck_profiles_come_from_gate_library(self):
        plan = hyperplonk_plan("vanilla", 6)
        zc = plan.sumcheck_profile("zerocheck")
        pc = plan.sumcheck_profile("permcheck")
        assert zc.has_fr and pc.has_fr
        assert plan.sumcheck_profile("opencheck").degree == 2
        with pytest.raises(ValueError, match="not a sumcheck phase"):
            plan.sumcheck_profile("witness_msm")

    def test_custom_zerocheck_substitution(self):
        custom = PolyProfile("hi", [TermProfile((("a", 9), ("fr", 1)))])
        plan = hyperplonk_plan("vanilla", 6, custom_zerocheck=custom)
        assert plan.sumcheck_profile("zerocheck") is custom
        # everything else keeps the vanilla structure
        assert plan.num_claims == hyperplonk_plan("vanilla", 6).num_claims

    def test_shape_key_and_phase_lookup(self):
        plan = hyperplonk_plan("jellyfish", 5)
        assert plan.shape_key == ("jellyfish", 5)
        with pytest.raises(KeyError, match="no phase"):
            plan.phase("nonexistent")

    def test_invalid_shapes(self):
        with pytest.raises(ValueError, match="unknown gate type"):
            hyperplonk_plan("plonkish", 10)
        with pytest.raises(ValueError, match="num_vars"):
            hyperplonk_plan("vanilla", 0)
        assert gate_type_by_name("vanilla").num_witnesses == 3

    def test_phase_validation(self):
        with pytest.raises(ValueError, match="unknown kind"):
            PhaseCost("x", "quantum")
        with pytest.raises(ValueError, match="no MSMTasks"):
            PhaseCost("x", "msm")
        with pytest.raises(ValueError, match="no profile"):
            PhaseCost("x", "sumcheck")

    def test_plan_rejects_bad_dags(self):
        ok = hyperplonk_plan("vanilla", 4)
        with pytest.raises(ValueError, match="duplicate phase"):
            ProofPlan("vanilla", 4, ok.phases + (ok.phases[0],))
        forward = (PhaseCost("a", "product_tree", after=("b",), rows=4),
                   PhaseCost("b", "product_tree", rows=4))
        with pytest.raises(ValueError, match="do not precede"):
            ProofPlan("vanilla", 4, forward)


class TestPlanConstructors:
    def test_from_circuit_and_index_agree(self):
        import random
        from repro.hyperplonk.commitment import MultilinearKZG, TrapdoorSRS

        circuit = synthesize_circuit(GATE_TYPES["vanilla"], 3, witness_seed=2)
        kzg = MultilinearKZG(TrapdoorSRS(4, random.Random(3)))
        pidx, _ = preprocess(circuit, kzg)
        a = ProofPlan.from_circuit(circuit)
        b = ProofPlan.from_index(pidx)
        c = ProofPlan.for_shape("vanilla", 3)
        assert a.shape_key == b.shape_key == c.shape_key
        assert a.phases == b.phases == c.phases

    def test_same_field_circuit_other_witness_same_plan(self):
        a = ProofPlan.from_circuit(
            synthesize_circuit(GATE_TYPES["jellyfish"], 4, witness_seed=1))
        b = ProofPlan.from_circuit(
            synthesize_circuit(GATE_TYPES["jellyfish"], 4, witness_seed=9))
        assert a == b


class TestCostModels:
    def test_plan_modmuls_covers_every_phase(self):
        plan = hyperplonk_plan("vanilla", 8)
        muls = plan_modmuls(plan)
        assert set(muls) == set(HYPERPLONK_PHASES)
        assert all(m > 0 for m in muls.values())

    def test_phase_modmuls_product_tree_closed_form(self):
        phase = PhaseCost("t", "product_tree", rows=8)
        assert phase_modmuls(phase, 3) == 7.0  # N - 1 tree multiplies

    def test_functional_cost_monotone_in_size_and_cached(self):
        model = FunctionalProverCostModel()
        costs = [model.shape_cost_s("vanilla", mu) for mu in (3, 4, 5, 6)]
        assert costs == sorted(costs) and costs[0] > 0
        assert model.shape_cost_s("vanilla", 3) == costs[0]  # cache hit

    def test_functional_cost_calibration(self):
        base = FunctionalProverCostModel()
        fitted = base.calibrated([("vanilla", 4, 0.5), ("vanilla", 5, 1.0)])
        assert fitted.s_per_modmul > 0
        with pytest.raises(ValueError):
            base.calibrated([])

    def test_accelerator_cost_model_matches_breakdown(self):
        from repro.hw.accelerator import ZkPhireModel
        from repro.hw.config import AcceleratorConfig

        hw = ZkPhireModel(AcceleratorConfig.exemplar())
        model = AcceleratorCostModel(hw)
        assert (model.shape_cost_s("jellyfish", 20)
                == hw.prove_latency_s("jellyfish", 20))

    def test_cpu_cost_model_price_is_phase_sum(self):
        model = CpuCostModel()
        plan = hyperplonk_plan("vanilla", 12)
        price = model.model.price(plan)
        assert price.total_s == pytest.approx(sum(price.seconds.values()))
        assert model.shape_cost_s("vanilla", 12) == price.total_s


class TestWorkloadAnnotations:
    def test_scenario_expected_cost_weighted_mean(self):
        from repro.workloads import SCENARIOS, scenario_cost_annotations

        model = FunctionalProverCostModel()
        ann = scenario_cost_annotations(model)
        assert set(ann) == set(SCENARIOS)
        for name, scenario in SCENARIOS.items():
            lo = min(model.shape_cost_s(g, s) for g, _ in scenario.gate_mix
                     for s, _ in scenario.size_weights)
            hi = max(model.shape_cost_s(g, s) for g, _ in scenario.gate_mix
                     for s, _ in scenario.size_weights)
            assert lo <= ann[name] <= hi
