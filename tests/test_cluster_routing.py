"""Routing-layer contracts: determinism, consistency, balance.

Satellite coverage for the cluster layer (ISSUE 4):

* affinity hashing is deterministic across router instances, runs, and
  *process boundaries* (the ring hashes with SHA-256, never the
  interpreter-salted ``hash()``);
* adding/removing a ring node only moves ~K/N keys, and every moved key
  moves to (or from) the changed node — the consistent-hashing contract;
* ``least_loaded`` is greedy-argmin on predicted outstanding cost: it
  never assigns to a node whose outstanding cost exceeds another's at
  assignment time, so no node ends more than one job over the minimum.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster import ClusterRouter, HashRing, stable_hash
from repro.service.jobs import ProofJob
from repro.service.traffic import GATE_TYPES, synthesize_circuit

NODE_IDS = ["node-0", "node-1", "node-2", "node-3"]
KEYS = [f"fingerprint-{i:04d}" for i in range(300)]

RING_SCRIPT = """\
import json
from repro.cluster import HashRing

ring = HashRing({node_ids!r})
keys = {keys!r}
print(json.dumps({{key: ring.node_for(key) for key in keys}}))
"""


def make_job(job_id: int, *, log2: int = 3, gate: str = "vanilla") -> ProofJob:
    circuit = synthesize_circuit(GATE_TYPES[gate], log2, witness_seed=job_id)
    return ProofJob(job_id=job_id, circuit=circuit)


class TestHashRing:
    def test_rejects_empty_and_duplicates(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")
        with pytest.raises(KeyError):
            ring.remove_node("b")
        with pytest.raises(ValueError):
            HashRing([], replicas=4).node_for("k")

    def test_deterministic_across_instances(self):
        first = HashRing(NODE_IDS)
        second = HashRing(list(reversed(NODE_IDS)))
        assert {k: first.node_for(k) for k in KEYS} == {
            k: second.node_for(k) for k in KEYS
        }

    def test_deterministic_across_process_boundary(self):
        """A fresh interpreter places every key identically."""
        script = RING_SCRIPT.format(node_ids=NODE_IDS, keys=KEYS[:64])
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        ring = HashRing(NODE_IDS)
        expected = {key: ring.node_for(key) for key in KEYS[:64]}
        assert json.loads(out.stdout) == expected

    def test_stable_hash_is_sha256_based(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")
        # a known vector, so any change to the scheme is loud
        assert stable_hash("node-0#0") == 0xB66BB0A30B8A176B

    def test_add_node_moves_only_keys_onto_it(self):
        ring = HashRing(NODE_IDS)
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node("node-4")
        after = {key: ring.node_for(key) for key in KEYS}
        moved = [key for key in KEYS if before[key] != after[key]]
        assert moved, "adding a node must take over some keys"
        assert all(after[key] == "node-4" for key in moved)
        # ~K/N expected; allow generous spread around 300/5 = 60
        assert len(moved) <= 2.5 * len(KEYS) / 5

    def test_remove_node_moves_only_its_keys(self):
        ring = HashRing(NODE_IDS + ["node-4"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove_node("node-4")
        after = {key: ring.node_for(key) for key in KEYS}
        for key in KEYS:
            if before[key] == "node-4":
                assert after[key] != "node-4"
            else:
                assert after[key] == before[key]

    def test_replicas_spread_keys(self):
        ring = HashRing(NODE_IDS)
        counts = {node_id: 0 for node_id in NODE_IDS}
        for key in KEYS:
            counts[ring.node_for(key)] += 1
        assert all(count > 0 for count in counts.values())

    def test_exclude_only_diverts_the_excluded_nodes_keys(self):
        """Consistent-hash failover: excluding a node mid-stream moves
        exactly its keys, each to the key's next clockwise owner —
        identical to the placement with the node removed outright."""
        ring = HashRing(NODE_IDS)
        before = {key: ring.node_for(key) for key in KEYS}
        failed = "node-2"
        with_exclude = {
            key: ring.node_for(key, exclude={failed}) for key in KEYS
        }
        removed_ring = HashRing(NODE_IDS)
        removed_ring.remove_node(failed)
        removed = {key: removed_ring.node_for(key) for key in KEYS}
        assert with_exclude == removed
        for key in KEYS:
            if before[key] != failed:
                assert with_exclude[key] == before[key]
            else:
                assert with_exclude[key] != failed

    def test_exclude_everything_raises(self):
        from repro.cluster import NoRoutableNodeError

        ring = HashRing(NODE_IDS)
        with pytest.raises(NoRoutableNodeError):
            ring.node_for("k", exclude=set(NODE_IDS))


class TestClusterRouter:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="round_robin"):
            ClusterRouter("nope", NODE_IDS)

    def test_round_robin_cycles_evenly(self):
        router = ClusterRouter("round_robin", NODE_IDS)
        counts = {node_id: 0 for node_id in NODE_IDS}
        for i in range(41):
            counts[router.assign(make_job(i))] += 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_affinity_groups_same_fingerprint(self):
        router = ClusterRouter("affinity", NODE_IDS)
        placements = {}
        for i in range(24):
            job = make_job(i, log2=3 + i % 4)
            node_id = router.assign(job)
            placements.setdefault(job.circuit_key, set()).add(node_id)
        assert all(len(nodes) == 1 for nodes in placements.values())

    def test_affinity_matches_ring(self):
        router = ClusterRouter("affinity", NODE_IDS)
        for i in range(12):
            job = make_job(i, log2=3 + i % 4)
            assert router.select(job) == router.ring.node_for(job.circuit_key)

    def test_least_loaded_is_greedy_argmin(self):
        """Each assignment goes to a currently-least-loaded node, so no
        node's predicted outstanding cost ever exceeds another's by more
        than the one job just placed there."""
        router = ClusterRouter("least_loaded", NODE_IDS)
        jobs = [
            make_job(i, log2=3 + i % 4, gate="vanilla" if i % 3 else "jellyfish")
            for i in range(32)
        ]
        max_job_cost = 0.0
        for job in jobs:
            before = dict(router.outstanding_s)
            chosen = router.assign(job)
            assert before[chosen] == min(before.values())
            # routing must never stamp the job: predicted_cost_s belongs
            # to the node's own service cost model
            assert job.predicted_cost_s is None
            max_job_cost = max(max_job_cost, router.job_cost_s(job))
        outstanding = router.outstanding_s.values()
        assert max(outstanding) - min(outstanding) <= max_job_cost + 1e-12

    def test_release_resets_outstanding(self):
        router = ClusterRouter("least_loaded", NODE_IDS)
        node_id = router.assign(make_job(0))
        assert router.outstanding_s[node_id] > 0
        router.release(node_id)
        assert router.outstanding_s[node_id] == 0.0

    def test_mark_down_skips_node_and_mark_up_restores_placement(self):
        """A down node receives nothing under any policy, only its ~K/N
        keys remap, and recovery restores the original placement."""
        for policy in ("round_robin", "least_loaded", "affinity"):
            router = ClusterRouter(policy, NODE_IDS)
            before = {
                i: router.ring.node_for(f"key-{i}") for i in range(64)
            }
            router.mark_down("node-1")
            assert router.up_node_ids == ["node-0", "node-2", "node-3"]
            assert router.down_node_ids == ["node-1"]
            for i in range(24):
                assert router.assign(make_job(i, log2=3 + i % 4)) != "node-1"
            router.mark_up("node-1")
            after = {i: router.ring.node_for(f"key-{i}") for i in range(64)}
            assert after == before

    def test_mark_down_twice_and_unknown_rejected(self):
        router = ClusterRouter("affinity", NODE_IDS)
        router.mark_down("node-0")
        with pytest.raises(ValueError):
            router.mark_down("node-0")
        with pytest.raises(KeyError):
            router.mark_down("ghost")
        with pytest.raises(ValueError):
            router.mark_up("node-1")
        router.mark_up("node-0")

    def test_assign_exclude_respected(self):
        from repro.cluster import NoRoutableNodeError

        for policy in ("round_robin", "least_loaded", "affinity"):
            router = ClusterRouter(policy, NODE_IDS)
            for i in range(16):
                job = make_job(i, log2=3 + i % 4)
                chosen = router.assign(job, exclude=("node-0", "node-2"))
                assert chosen in ("node-1", "node-3")
            with pytest.raises(NoRoutableNodeError):
                router.assign(make_job(99), exclude=tuple(NODE_IDS))

    def test_whole_fleet_may_be_down(self):
        from repro.cluster import NoRoutableNodeError

        router = ClusterRouter("affinity", ["node-0", "node-1"])
        router.mark_down("node-0")
        router.mark_down("node-1")
        with pytest.raises(NoRoutableNodeError):
            router.select(make_job(0))
        router.mark_up("node-0")
        assert router.select(make_job(0)) == "node-0"

    def test_membership_changes(self):
        router = ClusterRouter("affinity", ["node-0"])
        with pytest.raises(ValueError):
            router.remove_node("node-0")
        router.add_node("node-1")
        with pytest.raises(ValueError):
            router.add_node("node-1")
        router.remove_node("node-0")
        assert router.node_ids == ["node-1"]
        with pytest.raises(KeyError):
            router.release("node-0")
