"""The numpy ``array`` backend's own surface: LimbVector semantics,
plan invariants, registry degradation, and CLI choice sourcing.

The cross-backend *semantics* (bit-identical kernels, counter parity)
live in ``test_fastpath_differential.py`` / ``test_vector_fuzz.py``;
this file covers what those matrices cannot: the lazy list-like wrapper
type, the limb-plan preconditions, how the registry degrades when numpy
or gmpy2 is missing, and that every ``--backend`` CLI sources its
choices from the live registry.
"""

import random

import pytest

from repro.fields import (
    BackendUnavailable,
    Fq,
    Fr,
    get_backend,
    list_backends,
    set_default_backend,
    unavailable_backends,
)
from repro.fields import vector as vector_mod

SEED = 0xA44A1
P = Fr.modulus

np = pytest.importorskip("numpy")
HAVE_ARRAY = "array" in list_backends()


@pytest.mark.skipif(not HAVE_ARRAY, reason="array backend not registered")
class TestLimbVector:
    def make(self, n=17):
        from repro.fields.array_backend import LimbVector, get_plan, to_planes

        rng = random.Random(SEED + n)
        vals = [rng.randrange(P) for _ in range(n)]
        plan = get_plan(Fr)
        return vals, LimbVector(plan, to_planes(plan, vals))

    def test_sequence_protocol(self):
        vals, vec = self.make()
        assert len(vec) == len(vals)
        assert list(vec) == vals
        assert vec.to_list() == vals
        assert vec[0] == vals[0]
        assert vec[-1] == vals[-1]
        assert vec[3:9] == vals[3:9]
        with pytest.raises(IndexError):
            vec[len(vals)]

    def test_indexing_before_and_after_materialization(self):
        vals, vec = self.make()
        # pre-materialization: column reconstruction path
        assert vec[5] == vals[5]
        assert vec._materialized is None
        # slicing materializes; indexing then uses the cached list
        assert vec[:] == vals
        assert vec._materialized is not None
        assert vec[5] == vals[5]

    def test_equality(self):
        vals, vec = self.make()
        _, same = self.make()
        _, other = self.make(n=5)
        assert vec == vals
        assert vec == tuple(vals)
        assert vec == same
        assert not vec == other
        assert vec.__eq__(42) is NotImplemented

    def test_repr_mentions_shape(self):
        _, vec = self.make(n=17)
        assert "17" in repr(vec)

    def test_plan_invariants(self):
        from repro.fields.array_backend import get_plan

        for field in (Fr, Fq):
            plan = get_plan(field)
            assert plan.r == 1 << (30 * plan.limbs)
            assert 4 * field.modulus < plan.r  # cond-sub headroom
            assert plan.mont_scalar(1) == plan.mont_scalar(1)  # cached
            assert get_plan(field) is plan  # plan cache

    def test_wrap_table_passthrough(self):
        be = get_backend("array")
        vals, vec = self.make()
        wrapped = be.wrap_table(Fr, vec)
        assert wrapped is vec  # same-plan LimbVector is not re-converted
        rewrapped = be.wrap_table(Fr, vals)
        assert list(rewrapped) == vals

    def test_fold_tables_matches_per_table_fold(self):
        be = get_backend("array")
        rng = random.Random(SEED)
        tables = {
            name: [rng.randrange(P) for _ in range(16)] for name in "abc"
        }
        r = rng.randrange(P)
        batched = be.fold_tables(Fr, tables, r)
        assert list(batched) == list(tables)  # insertion order kept
        for name, t in tables.items():
            assert list(batched[name]) == list(be.fold(Fr, t, r))

    def test_fold_tables_mixed_lengths_falls_back(self):
        be = get_backend("array")
        rng = random.Random(SEED + 9)
        tables = {
            "a": [rng.randrange(P) for _ in range(16)],
            "b": [rng.randrange(P) for _ in range(8)],
        }
        r = rng.randrange(P)
        batched = be.fold_tables(Fr, tables, r)
        for name, t in tables.items():
            assert list(batched[name]) == list(be.fold(Fr, t, r))


class TestRegistryDegradation:
    def test_unavailable_backend_raises_clean_error(self, monkeypatch):
        monkeypatch.setitem(
            vector_mod._UNAVAILABLE, "phantom", "requires a unicorn"
        )
        with pytest.raises(BackendUnavailable, match="unicorn"):
            get_backend("phantom")
        # unavailable backends are reported but never listed as live
        assert "phantom" in unavailable_backends()
        assert "phantom" not in list_backends()

    def test_unknown_backend_still_a_value_error(self):
        with pytest.raises(ValueError, match="unknown vector backend"):
            get_backend("turbo")

    def test_backend_unavailable_is_a_runtime_error(self):
        assert issubclass(BackendUnavailable, RuntimeError)

    def test_registration_clears_unavailability(self):
        vector_mod._UNAVAILABLE["phantom"] = "requires a unicorn"
        try:
            vector_mod.register_backend("phantom", vector_mod.FusedBackend())
            assert "phantom" not in unavailable_backends()
            assert "phantom" in list_backends()
        finally:
            vector_mod._BACKENDS.pop("phantom", None)
            vector_mod._UNAVAILABLE.pop("phantom", None)

    def test_gmp_reported_when_gmpy2_missing(self):
        try:
            import gmpy2  # noqa: F401
        except ImportError:
            assert "gmp" in unavailable_backends()
            assert "gmp" not in list_backends()
        else:
            assert "gmp" in list_backends()

    def test_set_default_backend(self):
        previous = vector_mod.DEFAULT_BACKEND
        try:
            assert set_default_backend("fused") == "fused"
            assert vector_mod.DEFAULT_BACKEND == "fused"
            assert get_backend(None).name == "fused"
        finally:
            set_default_backend(previous)


class TestCliBackendChoices:
    """Every ``--backend`` CLI must source choices from the registry."""

    def _choices(self, parser):
        for action in parser._actions:
            if "--backend" in getattr(action, "option_strings", ()):
                return list(action.choices)
        raise AssertionError("parser has no --backend option")

    def test_backend_choices_helper_matches_registry(self):
        from repro.cli import backend_choices

        assert backend_choices() == list_backends()

    def test_serve_parser_sources_registry(self):
        from repro.service.__main__ import build_parser

        assert self._choices(build_parser()) == list_backends()

    def test_cluster_parser_sources_registry(self):
        from repro.cluster.__main__ import build_parser

        assert self._choices(build_parser()) == list_backends()

    @pytest.mark.parametrize("module", ["repro.service", "repro.cluster"])
    def test_bad_backend_exits_2(self, module, capsys):
        import importlib

        main = importlib.import_module(f"{module}.__main__").main
        with pytest.raises(SystemExit) as exc:
            main(["--backend", "nope"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_experiments_bad_backend_exits_2(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--backend", "nope"]) == 2
        assert "unknown backend" in capsys.readouterr().err
        assert main(["--backend"]) == 2  # missing value

    def test_experiments_backend_sets_default(self):
        from repro.experiments.__main__ import _extract_backend

        rest, backend, err = _extract_backend(["--backend", "fused", "x"])
        assert (rest, backend, err) == (["x"], "fused", "")
        rest, backend, err = _extract_backend(["--backend=fused"])
        assert (rest, backend, err) == ([], "fused", "")
