"""The fast-path rework is arithmetically invisible (ISSUE 8).

The sim-core fast path (threshold compaction, ``schedule_fast``), the
router's lazy-invalidation load heap, and the nodes' heap-indexed
pending queues are *performance* changes: every model number the
committed ``BENCH_cluster.json`` / ``BENCH_resilience.json`` baselines
pin must come out bit-identical.  These tests re-run a slice of each
benchmark's cells through the public recipes
(``benchmarks/test_cluster_scaling.py`` /
``test_cluster_resilience.py``) and compare against the committed
records — if a "fast path" ever changes a routing decision, a finish
time, or a deadline verdict, this fails before the bench gate does.
"""

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "benchmarks"))

from test_cluster_resilience import run_churn_cell  # noqa: E402
from test_cluster_scaling import run_cell, sweep_row  # noqa: E402

CLUSTER_RECORD = REPO / "BENCH_cluster.json"
RESILIENCE_RECORD = REPO / "BENCH_resilience.json"

#: the sim-mode sweep slice replayed here (all policies at both sizes)
PARITY_NODES = (1, 4)


class TestClusterSweepParity:
    def test_sim_sweep_rows_match_committed_record(self):
        committed = json.loads(CLUSTER_RECORD.read_text())
        by_key = {
            (row["nodes"], row["policy"]): row for row in committed["sweep"]
        }
        for num_nodes in PARITY_NODES:
            for policy in ("round_robin", "least_loaded", "affinity"):
                fresh = sweep_row(
                    run_cell(policy, num_nodes, execute=False)
                )
                assert fresh == by_key[(num_nodes, policy)], (
                    f"model numbers drifted at nodes={num_nodes} "
                    f"policy={policy}: the engine rework must be "
                    f"arithmetically invisible"
                )


class TestResilienceParity:
    def test_churn_replication_matches_committed_record(self):
        committed = json.loads(RESILIENCE_RECORD.read_text())
        baseline = committed["replications"][0]
        seed = baseline["traffic_seed"]

        retry = run_churn_cell("affinity", max_retries=3, seed=seed)
        no_retry = run_churn_cell("round_robin", max_retries=0, seed=seed)
        fresh = {
            "traffic_seed": seed,
            "churn_seed": seed + committed["churn"]["seed_offset"],
            "retry_missed": retry["deadlines"]["missed"],
            "retry_retries": retry["resilience"]["retries"],
            "no_retry_missed": no_retry["deadlines"]["missed"],
            "no_retry_failed": no_retry["resilience"]["failed_jobs"],
            "crashes": no_retry["resilience"]["crashes"],
        }
        assert fresh == baseline, (
            "churn-replication counters drifted: the fast-path rework "
            "changed a failure-path decision"
        )
