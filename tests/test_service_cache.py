"""IndexCache semantics: content addressing, LRU eviction, bit-equality.

The ISSUE 2 contract: proofs produced from a cached index must be
bit-identical to proofs from a freshly preprocessed one.
"""

import random

import pytest

from repro.fields import Fr
from repro.hyperplonk import (
    HyperPlonkProver,
    HyperPlonkVerifier,
    MultilinearKZG,
    TrapdoorSRS,
    circuit_fingerprint,
    preprocess,
)
from repro.hyperplonk.circuit import CircuitBuilder, VANILLA
from repro.service import IndexCache
from repro.service.traffic import GATE_TYPES, synthesize_circuit


@pytest.fixture()
def kzg():
    return MultilinearKZG(TrapdoorSRS(5, random.Random(0xCACE)))


def circuit(mu=3, witness_seed=0):
    return synthesize_circuit(GATE_TYPES["vanilla"], mu,
                              witness_seed=witness_seed)


class TestFingerprint:
    def test_witness_independent(self):
        """Same structure, different witness -> same key."""
        a = circuit(witness_seed=1)
        b = circuit(witness_seed=2)
        assert a.witness_tables() != b.witness_tables()
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_structure_sensitive(self):
        assert (circuit_fingerprint(circuit(mu=3))
                != circuit_fingerprint(circuit(mu=4)))

    def test_selector_sensitive(self):
        b1 = CircuitBuilder(VANILLA, Fr)
        x = b1.new_wire(2)
        b1.add(x, x)
        b2 = CircuitBuilder(VANILLA, Fr)
        y = b2.new_wire(2)
        b2.mul(y, y)
        assert (circuit_fingerprint(b1.build())
                != circuit_fingerprint(b2.build()))

    def test_wiring_sensitive(self):
        b1 = CircuitBuilder(VANILLA, Fr)
        x = b1.new_wire(2)
        b1.add(x, x)  # both inputs share one wire
        b2 = CircuitBuilder(VANILLA, Fr)
        y = b2.new_wire(2)
        z = b2.new_wire(2)
        b2.add(y, z)  # same values, distinct wires
        assert (circuit_fingerprint(b1.build())
                != circuit_fingerprint(b2.build()))


class TestCacheSemantics:
    def test_hit_miss_counts(self, kzg):
        cache = IndexCache(kzg)
        c1, c2 = circuit(witness_seed=1), circuit(witness_seed=2)
        _, _, hit = cache.get(c1)
        assert not hit and cache.stats.misses == 1
        _, _, hit = cache.get(c2)  # same structure -> hit
        assert hit and cache.stats.hits == 1
        _, _, hit = cache.get(circuit(mu=4))
        assert not hit and cache.stats.misses == 2
        assert len(cache) == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_cached_index_is_same_object(self, kzg):
        cache = IndexCache(kzg)
        c = circuit()
        pidx1, vidx1, _ = cache.get(c)
        pidx2, vidx2, _ = cache.get(c)
        assert pidx1 is pidx2 and vidx1 is vidx2

    def test_lru_eviction(self, kzg):
        cache = IndexCache(kzg, capacity=2)
        c3, c4, c5 = circuit(mu=3), circuit(mu=4), circuit(mu=2)
        k3, k4 = cache.warm(c3), cache.warm(c4)
        cache.get(c3)  # refresh c3 -> c4 is now least recent
        cache.get(c5)  # evicts c4
        assert cache.stats.evictions == 1
        assert k3 in cache and k4 not in cache

    def test_capacity_validation(self, kzg):
        with pytest.raises(ValueError):
            IndexCache(kzg, capacity=0)

    def test_clear(self, kzg):
        cache = IndexCache(kzg)
        cache.warm(circuit())
        cache.clear()
        assert len(cache) == 0
        _, _, hit = cache.get(circuit())
        assert not hit

    def test_preprocess_time_recorded(self, kzg):
        cache = IndexCache(kzg)
        cache.warm(circuit())
        assert cache.stats.preprocess_s > 0


class TestCachedProofBitEquality:
    def test_cached_vs_fresh_index(self, kzg):
        """ISSUE 2 acceptance: cached-index proofs == fresh-index proofs."""
        cache = IndexCache(kzg)
        template = circuit(witness_seed=1)
        cache.warm(template)
        request = circuit(witness_seed=9)  # different witness, same shape
        pidx_cached, vidx_cached, hit = cache.get(request)
        assert hit
        pidx_fresh, vidx_fresh = preprocess(request, kzg)
        assert pidx_fresh.commitments == pidx_cached.commitments
        proof_cached = HyperPlonkProver(request, pidx_cached, kzg).prove()
        proof_fresh = HyperPlonkProver(request, pidx_fresh, kzg).prove()
        assert proof_cached == proof_fresh
        HyperPlonkVerifier(Fr, vidx_cached, kzg).verify(proof_cached)
        HyperPlonkVerifier(Fr, vidx_fresh, kzg).verify(proof_cached)
