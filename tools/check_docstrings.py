#!/usr/bin/env python
"""Docstring-coverage ratchet for the documented packages.

Walks the given source trees with :mod:`ast` (no imports, so it runs
anywhere) and counts docstrings on every *public* definition: modules,
classes, functions, and methods whose names don't start with ``_``
(dunders excluded, ``__init__`` exempted — its contract belongs on the
class).  CI fails the build when coverage on the ratcheted packages
(``repro.cluster``, ``repro.plan``, ``repro.sim`` — see the docs job)
drops below ``--min``.

Usage::

    python tools/check_docstrings.py src/repro/cluster src/repro/plan \
        src/repro/sim --min 100
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: statement containers whose bodies still count as module/class level
#: (a public def under ``if sys.version_info`` or ``try/except
#: ImportError`` is public API and must not slip past the ratchet)
BLOCKS = (ast.If, ast.Try, ast.With, ast.For, ast.While)


def is_public(name: str) -> bool:
    """Public = no leading underscore (``__init__`` is class-covered)."""
    return not name.startswith("_")


def walk_definitions(tree: ast.Module, module_label: str):
    """Yield ``(label, node)`` for the module and each public def.

    Descends through conditional/try blocks at module and class level
    but never into function bodies — nested functions are
    implementation detail, not public API.
    """
    yield module_label, tree

    def visit(node, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, BLOCKS):
                yield from visit(child, prefix)
                continue
            if not isinstance(child, DEFS):
                continue
            if not is_public(child.name):
                continue
            label = f"{prefix}.{child.name}"
            yield label, child
            if isinstance(child, ast.ClassDef):
                yield from visit(child, label)

    yield from visit(tree, module_label)


def scan(paths: list[Path]) -> tuple[list[str], int]:
    """Return (undocumented labels, total public definitions)."""
    missing: list[str] = []
    total = 0
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            tree = ast.parse(path.read_text(), filename=str(path))
            module_label = str(path)
            for label, node in walk_definitions(tree, module_label):
                total += 1
                if ast.get_docstring(node) is None:
                    missing.append(label)
    return missing, total


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when public-API docstring coverage drops "
        "below the ratchet."
    )
    parser.add_argument("paths", nargs="+", type=Path, help="files or trees")
    parser.add_argument(
        "--min",
        type=float,
        default=100.0,
        help="minimum coverage percent (default 100)",
    )
    args = parser.parse_args(argv)
    for path in args.paths:
        if not path.exists():
            parser.error(f"no such path: {path}")
    missing, total = scan(args.paths)
    documented = total - len(missing)
    coverage = 100.0 * documented / total if total else 100.0
    print(f"docstring coverage: {documented}/{total} ({coverage:.1f}%)")
    if coverage < args.min:
        print(f"\nbelow the {args.min:.1f}% ratchet; undocumented:")
        for label in missing:
            print(f"  - {label}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
