#!/usr/bin/env python
"""cProfile harness for the discrete-event sim core's hot loop.

Drives :func:`churn_heavy` — the canonical cancellation-heavy workload
shared with ``benchmarks/test_traffic_openloop.py`` — under cProfile
and prints the top functions, so a change to
:mod:`repro.sim.engine` can be profiled in one command::

    PYTHONPATH=src python tools/profile_sim.py --events 1000000
    PYTHONPATH=src python tools/profile_sim.py --legacy --events 200000

``--legacy`` profiles the vendored pre-fast-path engine
(``benchmarks/legacy_sim.py``) for before/after comparison, and
``--no-profile`` times the run without profiler overhead (what the
benchmark measures).

The workload models what a 10⁶-event open-loop cluster run does to the
engine: a handful of periodic "server" chains that each reschedule
themselves (the arrival pump / finish events), a cancel-and-rearm
watchdog per chain (retry timers — almost every watchdog dies
unfired), a standing pool of far-future cancelled events (parked
long-horizon churn), and periodic ``len(sim)`` polls (the autoscaler
tick asking whether work remains).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: periodic server chains (self-rescheduling event sources)
SERVERS = 8

#: far-future events scheduled then immediately cancelled at startup
CANCELLED_POOL = 5_000

#: fire one ``len(sim)`` poll every this many events
LEN_POLL_EVERY = 256

#: watchdog horizon: rearmed this far ahead on every server event
WATCHDOG_S = 10.0


def churn_heavy(sim, num_events: int, *, fast: bool = False) -> tuple:
    """Run the cancellation-heavy workload; returns ``(fired, now, probe)``.

    ``sim`` is anything with the ``Simulator`` scheduling surface
    (``schedule`` / ``cancel`` / ``run`` / ``__len__``); ``fast=True``
    additionally routes the never-cancelled server chains through
    ``schedule_fast``.  The returned tuple is pure model time and
    therefore bit-deterministic: ``fired`` counts server events,
    ``now`` is the final clock, ``probe`` sums the ``len(sim)`` polls.
    """
    fired = [0]
    len_probe = [0]
    stash = [sim.schedule(1.0e9 + i, lambda: None) for i in range(CANCELLED_POOL)]
    for handle in stash:
        handle.cancel()

    def make_server(idx: int):
        period = 0.001 + idx * 0.0001
        watchdog = [None]

        def work():
            fired[0] += 1
            if watchdog[0] is not None:
                watchdog[0].cancel()
            if fired[0] >= num_events:
                return
            watchdog[0] = sim.schedule(sim.now + WATCHDOG_S, lambda: None)
            if fired[0] % LEN_POLL_EVERY == 0:
                len_probe[0] += len(sim)
            if fast:
                sim.schedule_fast(sim.now + period, work)
            else:
                sim.schedule(sim.now + period, work)

        return work

    for idx in range(SERVERS):
        start = 0.001 * (idx + 1)
        if fast:
            sim.schedule_fast(start, make_server(idx))
        else:
            sim.schedule(start, make_server(idx))
    sim.run()
    return fired[0], sim.now, len_probe[0]


def make_sim(legacy: bool):
    """The current engine, or the vendored pre-fast-path baseline."""
    if legacy:
        sys.path.insert(0, str(REPO / "benchmarks"))
        from legacy_sim import LegacySimulator

        return LegacySimulator(), False
    from repro.sim.engine import Simulator

    return Simulator(), True


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events", type=int, default=1_000_000, help="server events to fire"
    )
    parser.add_argument(
        "--legacy",
        action="store_true",
        help="profile benchmarks/legacy_sim.py instead of repro.sim",
    )
    parser.add_argument(
        "--no-profile",
        action="store_true",
        help="time the run without cProfile overhead",
    )
    parser.add_argument(
        "--sort", default="cumtime", help="pstats sort key (default cumtime)"
    )
    parser.add_argument(
        "--top", type=int, default=20, help="rows of stats to print"
    )
    args = parser.parse_args(argv)
    if args.events < 1:
        parser.error(f"--events must be >= 1; got {args.events}")

    sim, fast = make_sim(args.legacy)
    label = "legacy" if args.legacy else "fast-path"
    if args.no_profile:
        started = time.perf_counter()
        fired, now, probe = churn_heavy(sim, args.events, fast=fast)
        elapsed = time.perf_counter() - started
    else:
        profiler = cProfile.Profile()
        started = time.perf_counter()
        fired, now, probe = profiler.runcall(
            churn_heavy, sim, args.events, fast=fast
        )
        elapsed = time.perf_counter() - started
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort).print_stats(args.top)
    print(
        f"{label}: fired={fired} final_clock_s={now:.6f} len_probe={probe} "
        f"wall={elapsed:.3f}s ({fired / elapsed:,.0f} events/s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
