"""Benchmarks regenerating every table and figure of the paper's §VI.

Run with ``pytest benchmarks/ --benchmark-only``.  Each test times the
experiment and prints the regenerated rows; headline assertions check
the paper's qualitative claims (who wins, approximate factors,
crossovers) — see EXPERIMENTS.md for the full paper-vs-measured record.
"""


from repro.experiments import (  # noqa: F401 (imported for names)
    common,
)
from repro.experiments import (
    fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14,
    table01, table02, table04, table05, table06, table07, table08, table09,
)


class TestTableI:
    def test_table01_library(self, benchmark, show):
        result = benchmark(table01.run)
        show(result)
        assert result.summary["polynomials"] == 25
        assert result.summary["max degree"] == 7  # Jellyfish polys


class TestFig6:
    def test_fig06_sumcheck_speedups(self, benchmark, show):
        result = benchmark.pedantic(fig06.run, rounds=1, iterations=1)
        show(result)
        # paper: geomean grows monotonically 61x .. 2209x across tiers
        gms = [r["geomean speedup"] for r in result.rows]
        assert gms == sorted(gms)
        assert gms[0] > 30
        # ~1000x-class speedup by 1 TB/s (paper: 955x)
        assert result.summary["geomean@1024"] > 500
        # utilization in the moderate band the paper reports
        assert all(0.25 < r["mean util"] < 0.8 for r in result.rows)


class TestFig7:
    def test_fig07_degree_sweep(self, benchmark, show):
        result = benchmark.pedantic(fig07.run, rounds=1, iterations=1)
        show(result)
        # low-degree speedup is bandwidth-starved; high-degree is not
        assert (result.summary["low-degree BW sensitivity"]
                > 2 * result.summary["high-degree BW sensitivity"])
        # high-degree reaches ~1000x at DDR5-class bandwidth
        assert result.summary["speedup@256GB/s, max degree"] > 1000


class TestFig8:
    def test_fig08_scheduler_jumps(self, benchmark, show):
        result = benchmark.pedantic(fig08.run, rounds=1, iterations=1)
        show(result, max_rows=10)
        # more EEs -> first scheduler jump at higher degree
        jumps = [result.summary[f"first jump @{e} EEs"] for e in (3, 4, 5, 6, 7)]
        assert jumps == sorted(jumps)
        # latency decreases with EE count at fixed degree
        last = result.rows[-1]
        assert last["2 EEs"] > last["4 EEs"] > last["7 EEs"]


class TestFig9:
    def test_fig09_prior_asics(self, benchmark, show):
        result = benchmark(fig09.run)
        show(result)
        ratio = result.summary["zkPHIRE/zkSpeed+ (Vanilla total)"]
        # paper: zkPHIRE within ~1.3x of zkSpeed+ at iso-area/iso-BW
        assert 0.7 < ratio < 1.7
        # Jellyfish 4x and 8x beat Vanilla zkSpeed+ (2x does not clearly)
        assert result.summary["Jellyfish4x vs zkSpeed+ speedup"] > 1.0
        assert (result.summary["Jellyfish8x vs zkSpeed+ speedup"]
                > result.summary["Jellyfish4x vs zkSpeed+ speedup"])


class TestTableII:
    def test_table02_cpu_gpu(self, benchmark, show):
        result = benchmark(table02.run)
        show(result)
        # paper: ~70x over GPU, 600-1100x over CPU
        assert 40 < result.summary["geomean vs GPU"] < 160
        assert 500 < result.summary["geomean vs CPU"] < 2500
        # ICICLE cannot express polys 21-24
        unsupported = [r for r in result.rows if not r["ICICLE ok"]]
        assert len(unsupported) == 4


class TestFig10TableIV:
    def test_fig10_pareto(self, benchmark, show):
        result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
        show(result)
        # speedup grows with bandwidth tier; ~1000x reachable at 1 TB/s
        spd = [r["speedup"] for r in result.rows]
        assert spd == sorted(spd)
        at_1tb = next(r for r in result.rows if r["BW (GB/s)"] == 1024)
        assert at_1tb["speedup"] > 700

    def test_table04_global_designs(self, benchmark, show):
        result = benchmark.pedantic(table04.run, rounds=1, iterations=1)
        show(result)
        rows = result.rows
        assert len(rows) >= 5
        # Pareto: runtime increases, area decreases down the table
        runtimes = [r["runtime (ms)"] for r in rows]
        areas = [r["area (mm2)"] for r in rows]
        assert runtimes == sorted(runtimes)
        assert areas == sorted(areas, reverse=True)
        # two-order-of-magnitude speedup at the small end (paper: 107x)
        assert rows[-1]["CPU speedup"] > 80


class TestFig11:
    def test_fig11_breakdowns(self, benchmark, show):
        result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
        show(result)
        # MSM dominates area at every Pareto point (paper)
        for row in result.rows:
            assert row["area: MSM %"] > row["area: SumCheck %"]
        # SumCheck runtime share shrinks from A to D (less bandwidth)
        assert (result.rows[0]["rt: SumCheck %"]
                >= result.rows[-1]["rt: SumCheck %"])


class TestFig12:
    def test_fig12_breakdown(self, benchmark, show):
        result = benchmark(fig12.run)
        show(result, max_rows=15)
        # paper zkPHIRE shares: 7.8 / 21.4 / 37.9 / 33.0 (±12 points)
        targets = {
            "Witness MSMs": 7.8, "Gate Identity": 21.4,
            "Wire Identity": 37.9, "Batch Evals & Poly Open": 33.0,
        }
        for phase, target in targets.items():
            ours = result.summary[f"zkPHIRE {phase} %"]
            assert abs(ours - target) < 12, (phase, ours)


class TestTableV:
    def test_table05_area_power(self, benchmark, show):
        result = benchmark(table05.run)
        show(result)
        assert abs(result.summary["area delta %"]) < 8
        assert abs(result.summary["power delta %"]) < 8


class TestFig13:
    def test_fig13_workload_speedups(self, benchmark, show):
        result = benchmark(fig13.run)
        show(result)
        for row in result.rows:
            # Jellyfish always wins; masking adds on top (paper: ~25%)
            assert row["Jellyfish"] > 1.0
            assert row["Jellyfish+MskZC"] > row["Jellyfish"]
        # large workloads approach the gate-reduction factor
        big = next(r for r in result.rows if r["workload"] == "Rollup 1600")
        assert big["Jellyfish+MskZC"] > 16  # paper: 31.93 for 32x reduction


class TestFig14:
    def test_fig14_crossover(self, benchmark, show):
        result = benchmark(fig14.run)
        show(result, max_rows=20)
        # MSM constant across the sweep; SumCheck share rises
        assert result.summary["MSM constant?"]
        shares = [r["SumCheck share %"] for r in result.rows]
        assert shares[-1] > shares[0]
        # SumCheck approaches/overtakes MSM at high degree (paper: d=18)
        assert shares[-1] > 45


class TestTableVI:
    def test_table06_vanilla(self, benchmark, show):
        result = benchmark(table06.run)
        show(result)
        # paper: 700-1000x over CPU; within ~2x of zkSpeed+
        assert 600 < result.summary["geomean vs CPU"] < 2200
        assert 0.5 < result.summary["zkPHIRE/zkSpeed+ geomean"] < 1.5


class TestTableVII:
    def test_table07_jellyfish(self, benchmark, show):
        result = benchmark(table07.run)
        show(result)
        # paper: 1486x geomean, scaling to 2^30 nominal gates
        assert 900 < result.summary["geomean speedup"] < 2500
        assert any(r["vanilla gates"] == "2^30" for r in result.rows)


class TestTableVIII:
    def test_table08_iso_application(self, benchmark, show):
        result = benchmark(table08.run)
        show(result)
        # paper: 11.87x geomean (2.43x .. 39.23x)
        assert 6 < result.summary["geomean speedup"] < 25
        spd = {r["workload"]: r["speedup"] for r in result.rows}
        assert spd["Rollup 25 Pvt Tx"] > spd["ZCash"]


class TestTableIX:
    def test_table09_cross_accelerator(self, benchmark, show):
        result = benchmark(table09.run)
        show(result)
        # paper: 39x / 7x / 39x over NoCap / SZKP+ / zkSpeed+
        assert 20 < result.summary["vs NoCap"] < 70
        assert 4 < result.summary["vs SZKP+"] < 12
        assert 20 < result.summary["vs zkSpeed+"] < 70
        ours = result.rows[-1]
        assert ours["setup"] == "universal"
        assert "KB" in ours["proof"]
