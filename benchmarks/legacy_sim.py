"""The pre-fast-path discrete-event engine, vendored as a bench baseline.

This is a verbatim copy of ``repro.sim.engine`` as it stood before the
million-event fast path landed (PR 8): ``__len__`` scans the whole heap,
cancelled entries linger until popped, every ``schedule`` allocates an
:class:`EventHandle`, and ``run`` performs a ``peek_time`` pass plus a
``step`` pass per event.  ``benchmarks/test_traffic_openloop.py`` drives
the same churn-heavy scenario through this engine and the live one to
record the events/sec speedup in ``BENCH_traffic.json`` — the baseline
must stay frozen so the ratio keeps measuring the same thing.

Never import this from ``src/``; it exists only for the benchmark.
"""

from __future__ import annotations

import heapq
from typing import Callable

#: default event priority; lower fires first among same-time events
DEFAULT_PRIORITY = 0


class LegacyEventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "priority", "seq", "action", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[[], None],
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Void the event; it stays in the heap but will not fire."""
        self.cancelled = True

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"LegacyEventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class LegacySimulator:
    """The pre-PR discrete-event loop (see the module docstring)."""

    def __init__(self, start_s: float = 0.0):
        self.now = start_s
        self._heap: list[tuple[float, int, int, LegacyEventHandle]] = []
        self._seq = 0
        #: events fired so far (cancelled events excluded)
        self.fired = 0

    def __len__(self) -> int:
        return sum(1 for *_, h in self._heap if not h.cancelled)

    def schedule(
        self,
        at_s: float,
        action: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
    ) -> LegacyEventHandle:
        """Schedule ``action`` at absolute model time ``at_s``."""
        if at_s < self.now:
            raise ValueError(
                f"cannot schedule into the past (now={self.now}, at={at_s})"
            )
        handle = LegacyEventHandle(at_s, priority, self._seq, action)
        heapq.heappush(self._heap, (at_s, priority, self._seq, handle))
        self._seq += 1
        return handle

    def schedule_after(
        self,
        delay_s: float,
        action: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
    ) -> LegacyEventHandle:
        """Schedule ``action`` ``delay_s`` model seconds from now."""
        if delay_s < 0:
            raise ValueError(f"delay must be >= 0, got {delay_s}")
        return self.schedule(self.now + delay_s, action, priority=priority)

    def peek_time(self) -> float | None:
        """Model time of the next live event (None if the heap is empty)."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Fire the next live event; False when nothing is left."""
        while self._heap:
            _, _, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = handle.time
            self.fired += 1
            handle.action()
            return True
        return False

    def run(self, until_s: float | None = None) -> float:
        """Fire events until the heap drains (or past ``until_s``)."""
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return self.now
            if until_s is not None and next_time > until_s:
                self.now = until_s
                return self.now
            self.step()
