"""Model-vs-reality benchmark + ``BENCH_fleet.json`` emitter.

ISSUE 7 acceptance: the discrete-event cluster sim must rank routing
policies the way the *real* fleet's wall clock ranks them.
:func:`repro.fleet.validation.run_validation` runs the same seeded
zipf-mixed stream through the sim and through real worker processes
for every routing policy, and the record asserts:

* ``rank_agreement`` — every significantly-separated predicted pair
  ordered the same by measured wall-clock makespans;
* ``proofs_identical`` — the fleet's proofs byte-equal a single sync
  service's (N processes, one proof stream);
* ``calibration_spread`` — the per-policy measured/predicted ratio
  stays consistent (the quantity rank agreement actually rests on).

Wall-clock numbers are machine-dependent by nature, so the bench gate
(``benchmarks/check_regression.py``) pins only the machine-independent
structure — the verdicts and the run configuration — and rate-limits
``calibration_spread``; rankings, pair lists, and absolute seconds are
recorded for humans, not gated.  The prediction itself is core-aware
(see :mod:`repro.fleet.validation`), so the record reproduces on
1-core CI runners and many-core laptops alike.

Like the other ``BENCH_*.json`` artifacts, the record is only
(re)written when missing or ``BENCH_FLEET_EMIT=1`` is set (as CI
does), and ``benchmarks/check_regression.py`` gates it.
"""

import json
import os
from pathlib import Path

from repro.fleet.validation import run_validation

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

SCENARIO = "zipf-mixed"
JOBS = 24
NODES = 3
SEED = 7
#: max tolerated max/min spread of measured-over-predicted ratios —
#: generous because a loaded CI box skews per-policy overheads, while
#: genuine model breakage (e.g. ignoring the core budget again) shows
#: up as a 2x+ spread
CALIBRATION_SPREAD_CEILING = 1.75


class TestFleetValidation:
    def test_smoke_cell_agrees_and_proves_identically(self, benchmark):
        """A small cell wired exactly like the record (fast CI lane)."""
        doc = benchmark.pedantic(
            lambda: run_validation(SCENARIO, 8, 2, seed=SEED),
            rounds=1,
            iterations=1,
        )
        assert doc["rank_agreement"] is True
        assert doc["proofs_identical"] is True
        assert len(doc["policies"]) == 3

    def test_fleet_record(self, benchmark):
        doc = benchmark.pedantic(
            lambda: run_validation(SCENARIO, JOBS, NODES, seed=SEED),
            rounds=1,
            iterations=1,
        )
        assert doc["rank_agreement"] is True
        assert doc["proofs_identical"] is True
        assert len(doc["policies"]) == 3
        assert doc["calibration_spread"] < CALIBRATION_SPREAD_CEILING
        emit = os.environ.get("BENCH_FLEET_EMIT") == "1"
        if emit or not BENCH_PATH.exists():
            BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")
        print(json.dumps(doc, indent=2))
