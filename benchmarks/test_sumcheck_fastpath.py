"""Fast-path SumCheck benchmark + ``BENCH_sumcheck.json`` emitter.

Times the reference scalar prover against every registered fast backend
(``fused``, and ``array`` when numpy is present) on paper gates at
increasing μ, asserts the proofs stay bit-identical, and records the
measured trajectory into ``BENCH_sumcheck.json`` at the repo root so
every future PR can see whether the fast path regressed.

The acceptance row is the vanilla-PLONK gate at μ = 12, which must show
at least a 2× speedup for ``fused`` (ISSUE 1; currently ~3×) and at
least 1.5× for ``array`` (ISSUE 6's 10× target over fused is not
reachable in pure Python — the 255-bit modmul floor dominates; the
array backend lands ~2.4× over reference, i.e. roughly fused parity at
μ = 12 and ~0.75× fused at μ = 16, recorded honestly here and discussed
in DESIGN.md §9).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.fields import Fr, list_backends
from repro.gates import gate_by_id
from repro.mle import DenseMLE, VirtualPolynomial
from repro.sumcheck import FastSumCheckProver, Transcript, prove_sumcheck

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sumcheck.json"

SPEEDUP_FLOOR_MU12 = 2.0
ARRAY_SPEEDUP_FLOOR_MU12 = 1.5

HAVE_ARRAY = "array" in list_backends()

#: (row name, gate id, μ, whether the acceptance floors apply)
BENCH_MATRIX = [
    ("vanilla-mu8", 20, 8, False),
    ("vanilla-mu10", 20, 10, False),
    ("vanilla-mu12", 20, 12, True),
    ("jellyfish-mu12", 22, 12, False),
    ("vanilla-mu16", 20, 16, False),
]


def build_gate_vp(gate_id: int, num_vars: int, seed: int = 0xFA57):
    import random

    rng = random.Random(seed)
    spec = gate_by_id(gate_id)
    scalars = {s: rng.randrange(1, Fr.modulus) for s in spec.compiled.scalar_names}
    terms = spec.compiled.bind(Fr, scalars)
    mles = {
        name: DenseMLE.random(Fr, num_vars, rng)
        for name in spec.compiled.mle_names
    }
    return VirtualPolynomial(Fr, terms, mles)


def time_best(fn, repeats: int = 2) -> tuple[float, object]:
    """Best-of-N wall time plus the last result (for equality checks)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_fastpath_benchmark(matrix=BENCH_MATRIX, repeats: int = 2) -> list[dict]:
    rows = []
    for name, gate_id, mu, is_acceptance in matrix:
        vp = build_gate_vp(gate_id, mu)
        # the claim only feeds the transcript (every prover absorbs the
        # same value), so large rows pin it to 0 rather than paying a
        # 2^μ hypercube sum, and time the slow reference prover
        # best-of-1 to bound suite runtime (the fast backends keep full
        # repeats: their mutual ratio is what the bench gate compares)
        big = mu >= 16
        claim = 0 if big else vp.sum_over_hypercube()
        n = 1 if big else repeats
        ref_s, ref_proof = time_best(
            lambda: prove_sumcheck(vp, Transcript(Fr), claim=claim), n
        )
        fused_s, fused_proof = time_best(
            lambda: FastSumCheckProver("fused").prove(
                vp, Transcript(Fr), claim=claim
            ),
            repeats,
        )
        assert fused_proof.round_evals == ref_proof.round_evals
        assert fused_proof.challenges == ref_proof.challenges
        assert fused_proof.final_evals == ref_proof.final_evals
        row = {
            "name": name,
            "gate_id": gate_id,
            "mu": mu,
            "degree": vp.degree,
            "num_mles": len(vp.mles),
            "num_terms": len(vp.terms),
            "reference_s": round(ref_s, 6),
            "fused_s": round(fused_s, 6),
            "speedup": round(ref_s / fused_s, 3),
            "acceptance_row": is_acceptance,
        }
        if HAVE_ARRAY:
            array_s, array_proof = time_best(
                lambda: FastSumCheckProver("array").prove(
                    vp, Transcript(Fr), claim=claim
                ),
                repeats,
            )
            assert array_proof.round_evals == ref_proof.round_evals
            assert array_proof.challenges == ref_proof.challenges
            assert array_proof.final_evals == ref_proof.final_evals
            row["array_s"] = round(array_s, 6)
            row["array_speedup"] = round(ref_s / array_s, 3)
            row["array_vs_fused"] = round(fused_s / array_s, 3)
        rows.append(row)
    return rows


def emit_bench_json(rows: list[dict], path: Path = BENCH_PATH) -> dict:
    """Write the perf record consumed by future PRs' trend checks.

    To keep the committed artifact from churning with machine-local
    timings on every test run, the file is only (re)written when it does
    not exist yet or ``BENCH_SUMCHECK_EMIT=1`` is set (as CI does).
    """
    doc = {
        "benchmark": "sumcheck_fastpath",
        "unit": "seconds",
        "backend": "fused",
        "speedup_floor_mu12": SPEEDUP_FLOOR_MU12,
        "array_speedup_floor_mu12": ARRAY_SPEEDUP_FLOOR_MU12,
        "rows": rows,
    }
    if not path.exists() or os.environ.get("BENCH_SUMCHECK_EMIT") == "1":
        path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


class TestSumCheckFastPath:
    def test_fastpath_speedup_and_emit(self):
        """The headline run: μ-sweep both gates, emit BENCH_sumcheck.json,
        enforce the ≥2× floor on the μ = 12 vanilla acceptance row."""
        rows = run_fastpath_benchmark()
        emit_bench_json(rows)
        acceptance = [r for r in rows if r["acceptance_row"]]
        assert acceptance, "benchmark matrix lost its acceptance row"
        floors = [("speedup", SPEEDUP_FLOOR_MU12)]
        if HAVE_ARRAY:
            floors.append(("array_speedup", ARRAY_SPEEDUP_FLOOR_MU12))
        for row in acceptance:
            if all(row[key] >= floor for key, floor in floors):
                continue
            # wall-clock ratios can wobble on loaded machines; re-measure
            # the failing row once with more repeats before declaring a
            # regression
            retry = run_fastpath_benchmark(
                matrix=[
                    (row["name"], row["gate_id"], row["mu"], True)
                ],
                repeats=4,
            )[0]
            for key, floor in floors:
                assert retry[key] >= floor, (
                    f"fast path regressed: {retry['name']} {key} "
                    f"{retry[key]}x < {floor}x "
                    f"(first attempt {row[key]}x)"
                )

    def test_smoke_small_mu(self):
        """Cheap CI smoke: one small instance end-to-end, no JSON write."""
        rows = run_fastpath_benchmark(
            matrix=[("vanilla-mu6-smoke", 20, 6, False)], repeats=1
        )
        assert rows[0]["speedup"] > 0


@pytest.mark.parametrize("gate_id", [20, 22])
@pytest.mark.parametrize(
    "backend", [b for b in list_backends() if b != "reference"]
)
def test_bench_fast_sumcheck(benchmark, backend, gate_id):
    """pytest-benchmark row per fast backend (mirrors the reference
    rows in test_kernel_benchmarks.py, small μ to keep the suite quick)."""
    vp = build_gate_vp(gate_id, 6)
    claim = vp.sum_over_hypercube()
    prover = FastSumCheckProver(backend)
    benchmark.pedantic(
        lambda: prover.prove(vp, Transcript(Fr), claim=claim),
        rounds=1,
        iterations=1,
    )
