"""Fast-path SumCheck benchmark + ``BENCH_sumcheck.json`` emitter.

Times the reference scalar prover against the ``fused`` field-vector
backend on paper gates at increasing μ, asserts the proofs stay
bit-identical, and records the measured trajectory into
``BENCH_sumcheck.json`` at the repo root so every future PR can see
whether the fast path regressed.

The acceptance row is the vanilla-PLONK gate at μ = 12, which must show
at least a 2× speedup (ISSUE 1; the fused backend currently lands ~3×,
and the high-degree Jellyfish gate ~2×).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.fields import Fr
from repro.gates import gate_by_id
from repro.mle import DenseMLE, VirtualPolynomial
from repro.sumcheck import FastSumCheckProver, Transcript, prove_sumcheck

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sumcheck.json"

SPEEDUP_FLOOR_MU12 = 2.0

#: (row name, gate id, μ, whether the ≥2× acceptance floor applies)
BENCH_MATRIX = [
    ("vanilla-mu8", 20, 8, False),
    ("vanilla-mu10", 20, 10, False),
    ("vanilla-mu12", 20, 12, True),
    ("jellyfish-mu12", 22, 12, False),
]


def build_gate_vp(gate_id: int, num_vars: int, seed: int = 0xFA57):
    import random

    rng = random.Random(seed)
    spec = gate_by_id(gate_id)
    scalars = {s: rng.randrange(1, Fr.modulus) for s in spec.compiled.scalar_names}
    terms = spec.compiled.bind(Fr, scalars)
    mles = {
        name: DenseMLE.random(Fr, num_vars, rng)
        for name in spec.compiled.mle_names
    }
    return VirtualPolynomial(Fr, terms, mles)


def time_best(fn, repeats: int = 2) -> tuple[float, object]:
    """Best-of-N wall time plus the last result (for equality checks)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_fastpath_benchmark(matrix=BENCH_MATRIX, repeats: int = 2) -> list[dict]:
    rows = []
    for name, gate_id, mu, is_acceptance in matrix:
        vp = build_gate_vp(gate_id, mu)
        claim = vp.sum_over_hypercube()
        ref_s, ref_proof = time_best(
            lambda: prove_sumcheck(vp, Transcript(Fr), claim=claim), repeats
        )
        fused_s, fused_proof = time_best(
            lambda: FastSumCheckProver("fused").prove(
                vp, Transcript(Fr), claim=claim
            ),
            repeats,
        )
        assert fused_proof.round_evals == ref_proof.round_evals
        assert fused_proof.challenges == ref_proof.challenges
        assert fused_proof.final_evals == ref_proof.final_evals
        rows.append(
            {
                "name": name,
                "gate_id": gate_id,
                "mu": mu,
                "degree": vp.degree,
                "num_mles": len(vp.mles),
                "num_terms": len(vp.terms),
                "reference_s": round(ref_s, 6),
                "fused_s": round(fused_s, 6),
                "speedup": round(ref_s / fused_s, 3),
                "acceptance_row": is_acceptance,
            }
        )
    return rows


def emit_bench_json(rows: list[dict], path: Path = BENCH_PATH) -> dict:
    """Write the perf record consumed by future PRs' trend checks.

    To keep the committed artifact from churning with machine-local
    timings on every test run, the file is only (re)written when it does
    not exist yet or ``BENCH_SUMCHECK_EMIT=1`` is set (as CI does).
    """
    doc = {
        "benchmark": "sumcheck_fastpath",
        "unit": "seconds",
        "backend": "fused",
        "speedup_floor_mu12": SPEEDUP_FLOOR_MU12,
        "rows": rows,
    }
    if not path.exists() or os.environ.get("BENCH_SUMCHECK_EMIT") == "1":
        path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


class TestSumCheckFastPath:
    def test_fastpath_speedup_and_emit(self):
        """The headline run: μ-sweep both gates, emit BENCH_sumcheck.json,
        enforce the ≥2× floor on the μ = 12 vanilla acceptance row."""
        rows = run_fastpath_benchmark()
        emit_bench_json(rows)
        acceptance = [r for r in rows if r["acceptance_row"]]
        assert acceptance, "benchmark matrix lost its acceptance row"
        for row in acceptance:
            if row["speedup"] >= SPEEDUP_FLOOR_MU12:
                continue
            # wall-clock ratios can wobble on loaded machines; re-measure
            # the failing row once with more repeats before declaring a
            # regression
            retry = run_fastpath_benchmark(
                matrix=[
                    (row["name"], row["gate_id"], row["mu"], True)
                ],
                repeats=4,
            )[0]
            assert retry["speedup"] >= SPEEDUP_FLOOR_MU12, (
                f"fast path regressed: {retry['name']} speedup "
                f"{retry['speedup']}x < {SPEEDUP_FLOOR_MU12}x "
                f"(first attempt {row['speedup']}x)"
            )

    def test_smoke_small_mu(self):
        """Cheap CI smoke: one small instance end-to-end, no JSON write."""
        rows = run_fastpath_benchmark(
            matrix=[("vanilla-mu6-smoke", 20, 6, False)], repeats=1
        )
        assert rows[0]["speedup"] > 0


@pytest.mark.parametrize("gate_id", [20, 22])
def test_bench_fused_sumcheck(benchmark, gate_id):
    """pytest-benchmark row for the fused prover (mirrors the reference
    rows in test_kernel_benchmarks.py, small μ to keep the suite quick)."""
    vp = build_gate_vp(gate_id, 6)
    claim = vp.sum_over_hypercube()
    prover = FastSumCheckProver("fused")
    benchmark.pedantic(
        lambda: prover.prove(vp, Transcript(Fr), claim=claim),
        rounds=1,
        iterations=1,
    )
