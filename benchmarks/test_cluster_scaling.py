"""Affinity vs cost-blind sharding + ``BENCH_cluster.json`` emitter.

ISSUE 4 acceptance: on the zipf-mixed scenario at 4 nodes, consistent
hashing on the circuit fingerprint must deliver ≥ 1.2× the round-robin
fleet throughput.  The mechanism is index locality: round-robin spreads
every circuit structure across the fleet, so each node's bounded
:class:`~repro.service.cache.IndexCache` keeps re-installing indexes it
just evicted, while affinity pins each structure to one node and the
install cost is paid ~once per structure.

The acceptance cells run in *execute* mode — every proof is really
produced on a per-node proving service — so the recorded cache hit
rates and preprocess seconds are measured, and the model-time
throughput gate rides on real cache behaviour.  The node-count sweep
rows run in pure simulation (identical model-time arithmetic, locked by
``tests/test_cluster.py``).  Like the other ``BENCH_*.json`` artifacts,
the record is only (re)written when missing or ``BENCH_CLUSTER_EMIT=1``
is set (as CI does).
"""

import json
import os
from pathlib import Path

from repro.cluster import ClusterConfig, NodeConfig, ProvingCluster
from repro.cluster.routing import ROUTING_POLICIES
from repro.service.traffic import TrafficGenerator

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"

SCENARIO = "zipf-mixed"
#: seed 0 is a conservative draw: its affinity/round-robin ratio sits at
#: the low end of the seed distribution (most seeds land higher)
SEED = 0
JOBS = 96
NODES = 4
SPEEDUP_FLOOR = 1.2
SWEEP_NODES = (1, 2, 4, 8)


def run_cell(policy: str, num_nodes: int, *, execute: bool) -> dict:
    generator = TrafficGenerator(SCENARIO, seed=SEED)
    config = ClusterConfig(
        num_nodes=num_nodes,
        policy=policy,
        execute=execute,
        node=NodeConfig(max_vars=generator.max_vars(), wave_s=1.0),
    )
    with ProvingCluster(config) as cluster:
        cluster.run(generator.jobs(JOBS))
        return cluster.summary()


def acceptance_row(summary: dict) -> dict:
    model = summary["model"]
    return {
        "policy": summary["policy"],
        "jobs": summary["jobs"],
        "model_jobs_per_s": model["throughput_jobs_per_s"],
        "model_makespan_s": model["makespan_s"],
        "load_imbalance": model["load_imbalance"],
        "install_share": model["install_share"],
        "shape_spread": summary["routing"]["shape_spread"],
        "sim_cache_hit_rate": summary["cache"]["sim"]["hit_rate"],
        "real_cache_hit_rate": summary["cache"]["real"]["hit_rate"],
        "real_preprocess_s": summary["cache"]["real"]["preprocess_s"],
        "measured_makespan_s": summary["measured"]["makespan_s"],
    }


def sweep_row(summary: dict) -> dict:
    model = summary["model"]
    return {
        "nodes": summary["nodes"],
        "policy": summary["policy"],
        "model_jobs_per_s": model["throughput_jobs_per_s"],
        "load_imbalance": model["load_imbalance"],
        "install_share": model["install_share"],
        "cache_hit_rate": summary["cache"]["sim"]["hit_rate"],
        "shape_spread": summary["routing"]["shape_spread"],
    }


class TestClusterScaling:
    def test_smoke_sim_small(self):
        """Fast sanity: a small simulated sweep completes and reports."""
        generator = TrafficGenerator(SCENARIO, seed=1)
        config = ClusterConfig(
            num_nodes=2,
            policy="affinity",
            node=NodeConfig(max_vars=generator.max_vars()),
        )
        with ProvingCluster(config) as cluster:
            records = cluster.run(generator.jobs(6))
            summary = cluster.summary()
        assert len(records) == 6
        assert summary["model"]["throughput_jobs_per_s"] > 0
        assert summary["routing"]["shape_spread"] == 1.0

    def test_affinity_beats_round_robin_and_emit(self):
        cells = {
            policy: run_cell(policy, NODES, execute=True)
            for policy in ("round_robin", "affinity")
        }
        rows = {p: acceptance_row(s) for p, s in cells.items()}
        ratio = (
            rows["affinity"]["model_jobs_per_s"]
            / rows["round_robin"]["model_jobs_per_s"]
        )
        assert ratio >= SPEEDUP_FLOOR, (
            f"affinity must beat round_robin by >= {SPEEDUP_FLOOR}x on "
            f"{SCENARIO} at {NODES} nodes; got {ratio:.3f}x"
        )
        assert (
            rows["affinity"]["real_cache_hit_rate"]
            > rows["round_robin"]["real_cache_hit_rate"]
        ), "affinity must improve the measured index-cache hit rate"

        sweep = [
            sweep_row(run_cell(policy, num_nodes, execute=False))
            for num_nodes in SWEEP_NODES
            for policy in ROUTING_POLICIES
        ]
        record = {
            "benchmark": "cluster_scaling",
            "unit": "model_jobs_per_s",
            "scenario": SCENARIO,
            "seed": SEED,
            "jobs": JOBS,
            "nodes": NODES,
            "time_model": "accelerator",
            "speedup_floor_affinity_vs_round_robin": SPEEDUP_FLOOR,
            "affinity_vs_round_robin": round(ratio, 3),
            "acceptance": [rows["round_robin"], rows["affinity"]],
            "sweep": sweep,
        }
        emit = os.environ.get("BENCH_CLUSTER_EMIT") == "1"
        if emit or not BENCH_PATH.exists():
            BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
