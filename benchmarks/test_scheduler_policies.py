"""Cost-aware drain policies vs FIFO + ``BENCH_scheduler.json`` emitter.

ISSUE 3 acceptance: on the zipf-mixed scenario, cost-aware scheduling
(shortest-job-first over plan-predicted cost) improves the realtime
class's p95 latency over the FIFO drain order.  One expensive early
arrival stops inflating every cheap realtime request behind it; the
worst job finishes when it always did, so nothing is sacrificed.

The same job stream (same seed, same circuits) runs through one service
per policy; latencies are the service's own submit→finish stamps.  Like
the other ``BENCH_*.json`` artifacts, the record is only (re)written
when missing or ``BENCH_SCHEDULER_EMIT=1`` is set (as CI does).
"""

import json
import os
from pathlib import Path

from repro.service import (
    ProvingService,
    RequestClass,
    ServiceConfig,
    TrafficGenerator,
)
from repro.service.metrics import percentile
from repro.workloads import scenario_cost_annotations

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scheduler.json"

SCENARIO = "zipf-mixed"
#: seed 9 front-loads an expensive realtime arrival — the traffic shape
#: cost-aware draining exists for (other seeds shade the same way or tie)
SEED = 9
JOBS = 20
POLICIES = ("fifo", "sjf", "deadline")


def run_policy(policy: str) -> dict:
    gen = TrafficGenerator(SCENARIO, seed=SEED)
    config = ServiceConfig(
        max_vars=gen.max_vars(),
        default_backend="fused",
        drain_policy=policy,
        predict_costs=True,
    )
    with ProvingService(config) as service:
        results = service.run(gen.jobs(JOBS))
        summary = service.summary()
    realtime = [r.latency_s for r in results
                if r.request_class is RequestClass.REALTIME]
    alljobs = [r.latency_s for r in results]
    return {
        "policy": policy,
        "jobs": len(results),
        "realtime_jobs": len(realtime),
        "realtime_p50_s": round(percentile(realtime, 50), 4),
        "realtime_p95_s": round(percentile(realtime, 95), 4),
        "realtime_mean_s": round(sum(realtime) / len(realtime), 4),
        "overall_p95_s": round(percentile(alljobs, 95), 4),
        "prediction_mape_pct": summary["prediction"]["mean_abs_error_pct"],
        "estimated_capacity_proofs_per_s":
            summary["estimated_capacity_proofs_per_s"],
    }


class TestSchedulerPolicies:
    def test_smoke_sjf_small(self):
        """Fast sanity: a cost-aware drain completes and predicts."""
        gen = TrafficGenerator("uniform-small", seed=1)
        config = ServiceConfig(max_vars=gen.max_vars(),
                               default_backend="fused", drain_policy="sjf")
        with ProvingService(config) as service:
            results = service.run(gen.jobs(3))
        assert len(results) == 3
        assert all(r.predicted_s is not None for r in results)

    def test_cost_aware_beats_fifo_and_emit(self):
        rows = [run_policy(p) for p in POLICIES]
        by = {row["policy"]: row for row in rows}

        fifo, sjf = by["fifo"]["realtime_p95_s"], by["sjf"]["realtime_p95_s"]
        assert sjf < fifo, (
            f"cost-aware drain must improve realtime p95: sjf={sjf} "
            f"vs fifo={fifo}"
        )

        record = {
            "scenario": SCENARIO,
            "seed": SEED,
            "jobs": JOBS,
            "policies": rows,
            "realtime_p95_improvement_vs_fifo": round(fifo / sjf, 3),
            "scenario_predicted_cost_s": {
                name: round(cost, 4)
                for name, cost in scenario_cost_annotations().items()
            },
        }
        if os.environ.get("BENCH_SCHEDULER_EMIT") == "1" or not BENCH_PATH.exists():
            BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
