"""Carbon-aware scheduling benchmark; ``BENCH_carbon.json``.

ISSUE 10 acceptance: on a diurnal carbon-intensity trace, the
``carbon_waiting`` policy must cut carbon-per-proof ≥ ``RATIO_FLOOR``×
vs the carbon-blind fleet at the *same* seeded job stream, while the
realtime (gold) deadline-miss count stays equal or better.

Three cells, identical traffic and trace seeds throughout:

* ``blind`` — ``policy="none"``: the engine prices joules and gCO₂ but
  never moves a job; this is the passive baseline the parity test pins
  bit-identical to a carbon-free run.
* ``aware`` — ``carbon_waiting`` with a low-intensity release threshold:
  deferrable (bronze-batch) jobs hold at high-intensity windows and
  drain in the diurnal troughs; realtime gold is never delayed.
* ``edd`` — earliest-deadline-first tie-break, recorded as the
  slack-insensitive control (it reorders, never waits, so its carbon
  matches blind).

The substrate is the ``functional`` time model (per-job prove seconds
dominate node energy) over two full trace periods — under the
``accelerator`` model a proof is ~40 μs and fleet energy is all one-off
installs, which no start-time policy can move.  Every number is
deterministic model time; like the other ``BENCH_*.json`` artifacts the
record is (re)written only when missing or ``BENCH_CARBON_EMIT=1`` is
set (as CI does), and ``benchmarks/check_regression.py`` gates it.
"""

import json
import os
from itertools import islice
from pathlib import Path

from repro.carbon import CarbonConfig, CarbonIntensityTrace
from repro.cluster import ClusterConfig, NodeConfig, ProvingCluster
from repro.service.jobs import RequestClass
from repro.traffic import SLO_TIERS, OpenLoopTraffic, SLOTier, TenantSpec

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_carbon.json"

SCENARIO = "uniform-small"
TRAFFIC_SEED = 11
TRACE_SEED = 7
RATE_RPS = 2.0
HORIZON_S = 480.0  # two full trace periods
NODES = 2
TIME_MODEL = "functional"
TRACE_BASE = 300.0
TRACE_AMPLITUDE = 0.8
TRACE_PERIOD_S = 240.0
TRACE_NOISE = 0.05
LOW_THRESHOLD = 180.0
#: deadline slack for the deferrable batch tier; generous enough that a
#: held job can always reach a ≤ LOW_THRESHOLD window and still finish
BATCH_SLACK_S = 200.0
RATIO_FLOOR = 1.3
#: gold deadlines are tight (slack 2 s); batch slack is 200 s, so the
#: arrival→deadline gap cleanly separates the tiers in the records
GOLD_GAP_S = 10.0


def make_trace() -> CarbonIntensityTrace:
    """The shared diurnal trace (same seed in every cell)."""
    return CarbonIntensityTrace(
        base_g_per_kwh=TRACE_BASE,
        amplitude=TRACE_AMPLITUDE,
        period_s=TRACE_PERIOD_S,
        noise=TRACE_NOISE,
        seed=TRACE_SEED,
    )


def make_jobs() -> list:
    """A fresh copy of the seeded gold + bronze-batch job stream."""
    tenants = [
        TenantSpec(
            "gold-rt", weight=0.3, tier=SLO_TIERS["gold"], quota_fraction=1.0
        ),
        TenantSpec(
            "bronze-batch",
            weight=0.7,
            tier=SLOTier(
                name="batch",
                deadline_slack_s=BATCH_SLACK_S,
                admission_factor=0.7,
                request_class=RequestClass.DEFERRABLE,
            ),
            quota_fraction=1.0,
        ),
    ]
    traffic = OpenLoopTraffic(
        SCENARIO,
        seed=TRAFFIC_SEED,
        tenants=tenants,
        rate_rps=RATE_RPS,
        horizon_s=HORIZON_S,
        burst_mult=1.0,
    )
    return list(islice(traffic.jobs(), 10_000))


def run_cell(policy: str, *, threshold: float | None = None) -> dict:
    """One policy cell over the shared stream; returns its bench section."""
    jobs = make_jobs()
    config = ClusterConfig(
        num_nodes=NODES,
        time_model=TIME_MODEL,
        node=NodeConfig(max_vars=6),
        carbon=CarbonConfig(
            trace=make_trace(),
            policy=policy,
            low_threshold_g_per_kwh=threshold,
        ),
    )
    with ProvingCluster(config) as cluster:
        records = cluster.run_scenario(jobs)
        carbon = cluster.summary()["carbon"]
        gold = [r for r in records if r.deadline_s - r.arrival_s < GOLD_GAP_S]
        batch = [r for r in records if r.deadline_s - r.arrival_s >= GOLD_GAP_S]
        return {
            "policy": policy,
            "low_threshold_g_per_kwh": threshold,
            "completed": len(records),
            "failed": len(cluster.failed_jobs),
            "gold_jobs": len(gold),
            "gold_missed": sum(1 for r in gold if r.missed_deadline),
            "batch_jobs": len(batch),
            "batch_missed": sum(1 for r in batch if r.missed_deadline),
            "energy_j": carbon["energy_j"],
            "carbon_g": carbon["carbon_g"],
            "carbon_per_proof_g": carbon["carbon_per_proof_g"],
            "held_starts": carbon["held_starts"],
            "suspends": carbon["suspends"],
            "resumes": carbon["resumes"],
        }


class TestCarbonPolicies:
    def test_smoke_cells_comparable(self):
        """Fast sanity: the cells see the same deterministic stream and
        the blind cell prices every completed proof."""
        jobs = make_jobs()
        jobs2 = make_jobs()
        assert [(j.arrival_s, j.deadline_s) for j in jobs] == [
            (j.arrival_s, j.deadline_s) for j in jobs2
        ]
        blind = run_cell("none")
        assert blind["completed"] == len(jobs) - blind["failed"]
        assert blind["carbon_g"] > 0
        assert blind["held_starts"] == 0, "policy 'none' never holds"

    def test_carbon_ratio_and_emit(self):
        blind = run_cell("none")
        aware = run_cell("carbon_waiting", threshold=LOW_THRESHOLD)
        edd = run_cell("edd")

        for cell in (blind, aware, edd):
            assert cell["completed"] == blind["completed"], cell
            assert cell["failed"] == 0, cell
        ratio = blind["carbon_per_proof_g"] / aware["carbon_per_proof_g"]
        assert ratio >= RATIO_FLOOR, (
            f"carbon_waiting must cut carbon-per-proof >= {RATIO_FLOOR}x vs "
            f"the carbon-blind fleet on the diurnal trace; got {ratio:.2f}x "
            f"({blind['carbon_per_proof_g']} vs {aware['carbon_per_proof_g']} g)"
        )
        # the carbon win must not be bought with realtime deadline misses
        assert aware["gold_missed"] <= blind["gold_missed"], (aware, blind)
        assert aware["batch_missed"] <= blind["batch_missed"], (aware, blind)
        assert aware["held_starts"] > 0, "aware cell must actually hold jobs"
        # edd reorders but never waits, so it cannot move carbon
        assert abs(edd["carbon_g"] - blind["carbon_g"]) < 1e-6

        record = {
            "benchmark": "carbon_policies",
            "unit": "carbon_per_proof_g ratio (blind / aware)",
            "scenario": SCENARIO,
            "traffic_seed": TRAFFIC_SEED,
            "rate_rps": RATE_RPS,
            "horizon_s": HORIZON_S,
            "nodes": NODES,
            "time_model": TIME_MODEL,
            "batch_slack_s": BATCH_SLACK_S,
            "trace": {
                "base_g_per_kwh": TRACE_BASE,
                "amplitude": TRACE_AMPLITUDE,
                "period_s": TRACE_PERIOD_S,
                "noise": TRACE_NOISE,
                "seed": TRACE_SEED,
            },
            "carbon_ratio_floor": RATIO_FLOOR,
            "carbon_ratio": round(ratio, 4),
            "cells": {"blind": blind, "aware": aware, "edd": edd},
        }
        emit = os.environ.get("BENCH_CARBON_EMIT") == "1"
        if emit or not BENCH_PATH.exists():
            BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
