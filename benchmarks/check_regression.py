#!/usr/bin/env python
"""CI gate: compare fresh ``BENCH_*.json`` records against baselines.

Every benchmark record mixes two kinds of values:

* **structural** keys — scenario names, seeds, job counts, units,
  acceptance floors, deterministic routing/model facts.  These must
  match the committed baseline *exactly*: a change means the benchmark
  now measures something else, which must be a deliberate, reviewed
  baseline update.
* **headline ratios** — speedups, throughput and hit-rate ratios.
  These are machine-sensitive where real time is involved, so they get
  a relative tolerance (default ±30%, ``--tolerance``).  Absolute
  seconds are deliberately not compared at all.

Usage (what CI runs)::

    cp BENCH_*.json ci-baselines/          # before re-running benches
    ... run every bench with BENCH_*_EMIT=1 ...
    python benchmarks/check_regression.py --baseline-dir ci-baselines

Exits 0 when every record is within policy, 1 on any drift, and prints
one line per compared value group so failures are attributable.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path


class Spec:
    """Comparison policy for one benchmark record."""

    def __init__(self, exact: list[str], ratio: list[str]):
        self.exact = exact
        self.ratio = ratio


SPECS: dict[str, Spec] = {
    "BENCH_sumcheck.json": Spec(
        exact=[
            "benchmark",
            "unit",
            "backend",
            "speedup_floor_mu12",
            "array_speedup_floor_mu12",
            "rows[*].name",
            "rows[*].gate_id",
            "rows[*].mu",
            "rows[*].degree",
            "rows[*].num_mles",
            "rows[*].num_terms",
            "rows[*].acceptance_row",
        ],
        ratio=[
            "rows[*].speedup",
            # array keys are emitted only when numpy is present; the
            # bench job installs numpy, so a fresh record missing them
            # (degraded environment) fails loudly as a missing key
            "rows[*].array_speedup",
            "rows[*].array_vs_fused",
        ],
    ),
    "BENCH_service.json": Spec(
        exact=[
            "benchmark",
            "unit",
            "speedup_floor_same_circuit",
            "scenarios[*].scenario",
            "scenarios[*].jobs",
            "scenarios[*].executor",
            "scenarios[*].backend",
            "same_circuit_acceptance.workload",
            "same_circuit_acceptance.jobs",
            "same_circuit_acceptance.bit_identical",
        ],
        ratio=[
            "scenarios[*].cache_hit_rate",
            "scenarios[*].job_cache_hit_rate",
            "same_circuit_acceptance.speedup",
            "same_circuit_acceptance.cache_hit_rate",
        ],
    ),
    "BENCH_scheduler.json": Spec(
        exact=[
            "scenario",
            "seed",
            "jobs",
            "policies[*].policy",
            "policies[*].jobs",
            "policies[*].realtime_jobs",
            "scenario_predicted_cost_s.*",
        ],
        ratio=[
            "realtime_p95_improvement_vs_fifo",
        ],
    ),
    "BENCH_resilience.json": Spec(
        # every value is deterministic model time (no wall clock), so
        # the counter facts are exact; the headline rates/ratios sit in
        # the ratio list per the standing tolerance policy
        exact=[
            "benchmark",
            "unit",
            "scenario",
            "time_model",
            "nodes",
            "jobs_per_replication",
            "traffic_seeds",
            "churn.downtime_fraction",
            "churn.mttr_s",
            "churn.seed_offset",
            "miss_ratio_floor",
            "retry.policy",
            "retry.max_retries",
            "retry.failed_jobs",
            "no_retry.policy",
            "no_retry.max_retries",
            "replications[*].traffic_seed",
            "replications[*].churn_seed",
            "replications[*].crashes",
            "autoscale.scenario",
            "autoscale.seed",
            "autoscale.jobs",
            "autoscale.max_nodes",
            "autoscale.p50_floor",
        ],
        ratio=[
            "deadline_miss_ratio_smoothed",
            "retry.pooled_miss_rate",
            "no_retry.pooled_miss_rate",
            "autoscale.p50_improvement_vs_fixed",
        ],
    ),
    "BENCH_cluster.json": Spec(
        exact=[
            "benchmark",
            "unit",
            "scenario",
            "seed",
            "jobs",
            "nodes",
            "time_model",
            "speedup_floor_affinity_vs_round_robin",
            "acceptance[*].policy",
            "acceptance[*].jobs",
            "acceptance[*].shape_spread",
            "sweep[*].nodes",
            "sweep[*].policy",
            "sweep[*].shape_spread",
        ],
        ratio=[
            "affinity_vs_round_robin",
            "acceptance[*].model_jobs_per_s",
            "acceptance[*].sim_cache_hit_rate",
            "acceptance[*].real_cache_hit_rate",
            "sweep[*].model_jobs_per_s",
            "sweep[*].cache_hit_rate",
        ],
    ),
    "BENCH_traffic.json": Spec(
        # the sim_core fired/clock/probe triple and every open_loop
        # count are pure model values (no wall clock), so they are
        # pinned exactly; only the events/sec speedup is machine-
        # sensitive, and the goodput/fairness rates follow the standing
        # rates-are-ratios tolerance policy
        exact=[
            "benchmark",
            "unit",
            "sim_core.workload",
            "sim_core.events",
            "sim_core.legacy_events",
            "sim_core.speedup_floor",
            "sim_core.fired",
            "sim_core.final_clock_s",
            "sim_core.len_probe",
            "sim_core.legacy_fired",
            "sim_core.legacy_final_clock_s",
            "sim_core.legacy_len_probe",
            "open_loop.scenario",
            "open_loop.seed",
            "open_loop.jobs",
            "open_loop.rate_rps",
            "open_loop.nodes",
            "open_loop.policy",
            "open_loop.tenants",
            "open_loop.admission_window_s",
            "open_loop.goodput_floor",
            "open_loop.admission.offered",
            "open_loop.admission.admitted",
            "open_loop.admission.shed",
            "open_loop.admission.completed",
            "open_loop.admission.failed",
            "open_loop.admission.shed_by_tenant.*",
            "open_loop.no_admission.offered",
            "open_loop.no_admission.shed",
            "open_loop.no_admission.completed",
            "open_loop.no_admission.failed",
        ],
        ratio=[
            "sim_core.speedup",
            "open_loop.goodput_improvement",
            "open_loop.admission.goodput_jobs_per_s",
            "open_loop.admission.slo_attainment",
            "open_loop.admission.shed_rate",
            "open_loop.admission.jain_fairness",
            "open_loop.no_admission.goodput_jobs_per_s",
            "open_loop.no_admission.slo_attainment",
            "open_loop.no_admission.jain_fairness",
        ],
    ),
    "BENCH_carbon.json": Spec(
        # every value is deterministic model time (no wall clock): the
        # run configuration, trace parameters, and job/miss counts are
        # exact; the gram figures and the headline carbon ratio follow
        # the standing rates-are-ratios tolerance policy
        exact=[
            "benchmark",
            "unit",
            "scenario",
            "traffic_seed",
            "rate_rps",
            "horizon_s",
            "nodes",
            "time_model",
            "batch_slack_s",
            "trace.base_g_per_kwh",
            "trace.amplitude",
            "trace.period_s",
            "trace.noise",
            "trace.seed",
            "carbon_ratio_floor",
            "cells.blind.policy",
            "cells.blind.completed",
            "cells.blind.failed",
            "cells.blind.gold_jobs",
            "cells.blind.gold_missed",
            "cells.blind.batch_missed",
            "cells.blind.held_starts",
            "cells.aware.policy",
            "cells.aware.low_threshold_g_per_kwh",
            "cells.aware.completed",
            "cells.aware.failed",
            "cells.aware.gold_jobs",
            "cells.aware.gold_missed",
            "cells.aware.batch_missed",
            "cells.edd.policy",
            "cells.edd.completed",
            "cells.edd.failed",
        ],
        ratio=[
            "carbon_ratio",
            "cells.blind.carbon_per_proof_g",
            "cells.blind.energy_j",
            "cells.aware.carbon_per_proof_g",
            "cells.aware.held_starts",
            "cells.edd.carbon_per_proof_g",
        ],
    ),
    "BENCH_fleet.json": Spec(
        # wall-clock numbers, rankings, and significant-pair lists are
        # machine-dependent (core count changes which regime the
        # core-aware prediction is in), so only the run configuration
        # and the verdicts are pinned; the calibration spread is the
        # one magnitude worth rate-limiting across machines
        exact=[
            "benchmark",
            "unit",
            "scenario",
            "jobs",
            "nodes",
            "seed",
            "time_model",
            "significance",
            "measured_tolerance",
            "rank_agreement",
            "proofs_identical",
        ],
        ratio=[
            "calibration_spread",
        ],
    ),
}

_SEGMENT = re.compile(r"^(?P<key>[A-Za-z0-9_]+)(?P<wild>\[\*\])?$")


def extract(doc, path: str, prefix: str = "") -> list[tuple[str, object]]:
    """Resolve a dotted path with ``[*]`` list and ``*`` dict wildcards
    into concrete ``(path, value)`` pairs; missing keys raise KeyError."""
    if not path:
        return [(prefix, doc)]
    head, _, rest = path.partition(".")
    if head == "*":
        if not isinstance(doc, dict):
            raise KeyError(f"{prefix or '<root>'} is not an object")
        out = []
        for key in sorted(doc):
            out.extend(extract(doc[key], rest, f"{prefix}.{key}" if prefix else key))
        return out
    match = _SEGMENT.match(head)
    if match is None:
        raise ValueError(f"bad path segment {head!r}")
    key = match.group("key")
    if not isinstance(doc, dict) or key not in doc:
        raise KeyError(f"missing key {key!r} at {prefix or '<root>'}")
    value = doc[key]
    label = f"{prefix}.{key}" if prefix else key
    if match.group("wild") is None:
        return extract(value, rest, label)
    if not isinstance(value, list):
        raise KeyError(f"{label} is not a list")
    out = []
    for index, item in enumerate(value):
        out.extend(extract(item, rest, f"{label}[{index}]"))
    return out


def _collect(doc, paths: list[str], problems: list[str], side: str) -> dict:
    values: dict[str, object] = {}
    for path in paths:
        try:
            values.update(dict(extract(doc, path)))
        except KeyError as exc:
            problems.append(f"{side}: {exc.args[0]} (path {path!r})")
    return values


def compare_records(
    name: str,
    baseline: dict,
    fresh: dict,
    tolerance: float = 0.30,
) -> list[str]:
    """Problems (empty = within policy) for one record pair."""
    spec = SPECS.get(name)
    if spec is None:
        return [f"{name}: no comparison spec (add one to SPECS)"]
    problems: list[str] = []

    base_exact = _collect(baseline, spec.exact, problems, "baseline")
    fresh_exact = _collect(fresh, spec.exact, problems, "fresh")
    for path in sorted(base_exact.keys() | fresh_exact.keys()):
        if path not in fresh_exact:
            problems.append(f"structural key vanished: {path}")
        elif path not in base_exact:
            problems.append(f"structural key appeared: {path}")
        elif base_exact[path] != fresh_exact[path]:
            problems.append(
                f"structural drift at {path}: baseline "
                f"{base_exact[path]!r} != fresh {fresh_exact[path]!r}"
            )

    base_ratio = _collect(baseline, spec.ratio, problems, "baseline")
    fresh_ratio = _collect(fresh, spec.ratio, problems, "fresh")
    for path in sorted(base_ratio.keys() | fresh_ratio.keys()):
        if path not in fresh_ratio or path not in base_ratio:
            problems.append(f"ratio key mismatch: {path}")
            continue
        base_value, fresh_value = base_ratio[path], fresh_ratio[path]
        if not isinstance(base_value, (int, float)) or not isinstance(
            fresh_value, (int, float)
        ):
            problems.append(f"non-numeric ratio at {path}")
            continue
        if base_value == 0:
            if fresh_value != 0:
                problems.append(f"ratio drift at {path}: baseline 0 vs {fresh_value}")
            continue
        drift = (fresh_value - base_value) / abs(base_value)
        if abs(drift) > tolerance:
            problems.append(
                f"ratio drift at {path}: baseline {base_value} vs fresh "
                f"{fresh_value} ({drift:+.1%}, tolerance ±{tolerance:.0%})"
            )
    return problems


def check_pair(
    baseline_path: Path,
    fresh_path: Path,
    tolerance: float,
) -> list[str]:
    name = fresh_path.name
    if not baseline_path.exists():
        return [f"{name}: missing baseline {baseline_path}"]
    if not fresh_path.exists():
        return [f"{name}: missing fresh record {fresh_path}"]
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    return compare_records(name, baseline, fresh, tolerance)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate freshly emitted BENCH_*.json records against "
        "committed baselines.",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the baseline copies of BENCH_*.json",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly emitted records (default: .)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="relative tolerance for headline ratios (default 0.30)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(SPECS),
        help="restrict the check to these records (default: all)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error(f"--tolerance must be in [0, 1); got {args.tolerance}")

    names = args.only or sorted(SPECS)
    failed = False
    for name in names:
        problems = check_pair(
            args.baseline_dir / name,
            args.fresh_dir / name,
            args.tolerance,
        )
        if problems:
            failed = True
            print(f"DRIFT {name}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"OK    {name} (tolerance ±{args.tolerance:.0%})")
    if failed:
        print(
            "\nbench records drifted from the committed baselines; if the "
            "change is intended, re-emit the record(s) with BENCH_*_EMIT=1 "
            "and commit them (see ROADMAP.md's bench-gate policy)."
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
