"""Proving-service throughput benchmark + ``BENCH_service.json`` emitter.

Two measurements (ISSUE 2 acceptance):

* **Traffic scenarios** — at least two named scenarios run through the
  service (multi-worker, batched, cached, fixed-base MSM), recording
  throughput (proofs/sec), cache hit rate, and latency tails.
* **Same-circuit acceptance** — a same-circuit workload served two ways:
  the *naive one-job-at-a-time loop* (the stateless pattern
  ``examples/quickstart.py`` uses today: fresh SRS view + preprocess +
  prove per request) versus the warm service.  Proofs must be
  bit-identical, and service throughput must be ≥ 1.5× the naive loop.

Like ``BENCH_sumcheck.json``, the JSON artifact is only (re)written when
missing or ``BENCH_SERVICE_EMIT=1`` is set (as CI does), so committed
numbers don't churn with machine-local timings.
"""

import json
import os
import random
import time
from pathlib import Path

from repro.fields import Fr
from repro.hyperplonk import (
    HyperPlonkProver,
    HyperPlonkVerifier,
    MultilinearKZG,
    TrapdoorSRS,
    preprocess,
)
from repro.service import ProvingService, ServiceConfig, TrafficGenerator
from repro.service.traffic import GATE_TYPES, synthesize_circuit

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

SPEEDUP_FLOOR = 1.5

SCENARIO_MATRIX = [
    # (scenario, jobs, wave_s)
    ("uniform-small", 8, 0.25),
    ("zipf-mixed", 8, 0.5),
]

ACCEPTANCE_MU = 4
ACCEPTANCE_JOBS = 8
SRS_SEED = 0x5EED


def run_scenario_row(name: str, jobs: int, wave_s: float) -> dict:
    gen = TrafficGenerator(name, seed=1)
    config = ServiceConfig(
        max_vars=gen.max_vars(),
        executor="thread",
        num_workers=2,
        default_backend="fused",
    )
    with ProvingService(config) as service:
        service.run(gen.jobs(jobs), wave_s=wave_s)
        summary = service.summary()
    return {
        "scenario": name,
        "jobs": summary["jobs"],
        "batches": summary["batches"],
        "drain_waves": summary["drains"],
        "executor": f"{summary['executor']}x{summary['num_workers']}",
        "backend": "fused",
        "throughput_proofs_per_s": summary["throughput_proofs_per_s"],
        "cache_hit_rate": summary["cache"]["hit_rate"],
        "job_cache_hit_rate": summary["job_cache_hit_rate"],
        "latency_p50_s": summary["latency_s"]["p50"],
        "latency_p95_s": summary["latency_s"]["p95"],
    }


def run_same_circuit_acceptance(jobs: int = ACCEPTANCE_JOBS) -> dict:
    """Naive stateless loop vs warm service on one circuit structure."""
    circuits = [
        synthesize_circuit(GATE_TYPES["vanilla"], ACCEPTANCE_MU,
                           witness_seed=seed)
        for seed in range(jobs)
    ]

    t0 = time.perf_counter()
    naive_proofs = []
    for circuit in circuits:
        srs = TrapdoorSRS(ACCEPTANCE_MU + 1, random.Random(SRS_SEED))
        kzg = MultilinearKZG(srs)
        pidx, vidx = preprocess(circuit, kzg)
        naive_proofs.append(
            HyperPlonkProver(circuit, pidx, kzg, backend="fused").prove()
        )
    naive_s = time.perf_counter() - t0

    config = ServiceConfig(max_vars=ACCEPTANCE_MU, executor="sync",
                           default_backend="fused", srs_seed=SRS_SEED)
    t0 = time.perf_counter()
    with ProvingService(config) as service:
        # two drain waves: the second wave's batch hits the index cache
        results = {}
        half = jobs // 2
        for circuit in circuits[:half]:
            service.submit(circuit)
        results.update((r.job_id, r) for r in service.drain())
        for circuit in circuits[half:]:
            service.submit(circuit)
        results.update((r.job_id, r) for r in service.drain())
        cache = service.cache.stats.as_dict()
    service_s = time.perf_counter() - t0

    for i, naive_proof in enumerate(naive_proofs):
        assert results[i].proof == naive_proof, (
            f"service proof {i} is not bit-identical to the direct prover"
        )
    HyperPlonkVerifier(Fr, vidx, kzg).verify(results[0].proof)

    return {
        "workload": f"same-circuit vanilla mu={ACCEPTANCE_MU} x{jobs}",
        "jobs": jobs,
        "naive_s": round(naive_s, 6),
        "service_s": round(service_s, 6),
        "naive_proofs_per_s": round(jobs / naive_s, 3),
        "service_proofs_per_s": round(jobs / service_s, 3),
        "speedup": round(naive_s / service_s, 3),
        "cache_hit_rate": cache["hit_rate"],
        "bit_identical": True,
    }


def emit_bench_json(scenarios: list[dict], acceptance: dict,
                    path: Path = BENCH_PATH) -> dict:
    doc = {
        "benchmark": "proving_service",
        "unit": "proofs_per_second",
        "speedup_floor_same_circuit": SPEEDUP_FLOOR,
        "scenarios": scenarios,
        "same_circuit_acceptance": acceptance,
    }
    if not path.exists() or os.environ.get("BENCH_SERVICE_EMIT") == "1":
        path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


class TestProvingServiceBench:
    def test_throughput_and_emit(self):
        """The headline run: two traffic scenarios + the same-circuit
        naive-vs-service acceptance, recorded to BENCH_service.json."""
        scenarios = [run_scenario_row(*row) for row in SCENARIO_MATRIX]
        for row in scenarios:
            assert row["throughput_proofs_per_s"] > 0
            assert 0.0 <= row["cache_hit_rate"] <= 1.0
        # multi-wave same-shape traffic must actually exercise the cache
        assert any(row["cache_hit_rate"] > 0 for row in scenarios)

        acceptance = run_same_circuit_acceptance()
        if acceptance["speedup"] < SPEEDUP_FLOOR:
            # wall-clock ratios wobble on loaded machines; re-measure once
            # before declaring a regression
            acceptance = run_same_circuit_acceptance()
        emit_bench_json(scenarios, acceptance)
        assert acceptance["speedup"] >= SPEEDUP_FLOOR, (
            f"batched+cached service speedup {acceptance['speedup']}x "
            f"fell below the {SPEEDUP_FLOOR}x floor"
        )

    def test_smoke_small(self):
        """Cheap CI smoke: a 3-job same-circuit run, no JSON write."""
        row = run_same_circuit_acceptance(jobs=3)
        assert row["bit_identical"]
        assert row["service_proofs_per_s"] > 0
