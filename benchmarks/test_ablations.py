"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one zkPHIRE design decision and quantifies its
contribution, mirroring claims made in the paper's §III-IV:

* ZeroCheck masking (§IV-A: ~25% protocol-level gain),
* Build-MLE fusion into round 1 (§III-F: avoids an O(N) pass),
* sparsity-aware round-1 encodings (§IV-B1),
* fixed- vs arbitrary-prime multipliers (§V: ~50% area, ~2x density),
* Forest-shared product lanes (§IV-B2: 15% multiplier savings),
* the batched modular-inverse redesign (§IV-B5: 4.2x area reduction).
"""


from repro.gates import gate_by_id
from repro.hw import tech
from repro.hw.accelerator import ZkPhireModel
from repro.hw.area import accelerator_area, forest_area, sumcheck_area
from repro.hw.config import (
    AcceleratorConfig,
    ForestConfig,
    MSMUnitConfig,
    SumCheckUnitConfig,
)
from repro.hw.scheduler import PolyProfile
from repro.hw.sumcheck_unit import SumCheckUnitModel


def _cfg(mask: bool = True, fixed: bool = True) -> AcceleratorConfig:
    return AcceleratorConfig(
        sumcheck=SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                                    sram_bank_words=1024, fixed_prime=fixed),
        msm=MSMUnitConfig(pes=32, window_bits=9, points_per_pe=8192,
                          fixed_prime=fixed),
        forest=ForestConfig(trees=80, muls_per_tree=8, fixed_prime=fixed),
        bandwidth_gbps=2048.0,
        mask_zerocheck=mask,
    )


class TestMaskingAblation:
    def test_masking_gain(self, benchmark):
        def run():
            masked = ZkPhireModel(_cfg(mask=True))
            unmasked = ZkPhireModel(_cfg(mask=False))
            rows = []
            for mu in (20, 22, 24):
                t_m = masked.prove_latency_s("jellyfish", mu)
                t_u = unmasked.prove_latency_s("jellyfish", mu)
                rows.append((mu, t_u / t_m))
            return rows

        rows = benchmark(run)
        # paper: ~25-27% gain for most workloads
        for mu, gain in rows:
            assert 1.05 < gain < 1.6, (mu, gain)


class TestBuildMleFusionAblation:
    def test_fusion_saves_round1_traffic_and_latency(self, benchmark):
        profile = PolyProfile.from_gate(gate_by_id(22))
        model = SumCheckUnitModel(
            SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                               sram_bank_words=1024), 256)

        def run():
            fused = model.run(profile, 22, fuse_fr=True)
            unfused = model.run(profile, 22, fuse_fr=False)
            return fused, unfused

        fused, unfused = benchmark(run)
        assert fused.rounds[0].bytes_read < unfused.rounds[0].bytes_read
        assert fused.latency_s <= unfused.latency_s


class TestSparsityAblation:
    def test_sparse_encoding_cuts_round1_bytes(self, benchmark):
        profile = PolyProfile.from_gate(gate_by_id(22))
        dense = PolyProfile(
            name="dense-22", terms=profile.terms,
            mle_classes={k: "dense" for k in profile.mle_classes},
        )
        model = SumCheckUnitModel(
            SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                               sram_bank_words=1024), 256)

        def run():
            return model.run(profile, 22), model.run(dense, 22)

        sparse_run, dense_run = benchmark(run)
        ratio = (dense_run.rounds[0].bytes_read
                 / sparse_run.rounds[0].bytes_read)
        # 13 selectors + 5 sparse witnesses out of 19 MLEs: big cut
        assert ratio > 3
        # and it shows up in latency at DDR-class bandwidth
        assert sparse_run.latency_s < dense_run.latency_s


class TestFixedPrimeAblation:
    def test_fixed_prime_density(self, benchmark):
        def run():
            return (accelerator_area(_cfg(fixed=True)),
                    accelerator_area(_cfg(fixed=False)))

        fixed, arbitrary = benchmark(run)
        # paper §V: ~50% area on multipliers, ~2x computational density
        assert 1.6 < arbitrary.compute / fixed.compute < 2.3


class TestForestSharingAblation:
    def test_shared_lanes_save_multipliers(self, benchmark):
        """§IV-B2: sharing the Forest multipliers with the product lanes
        saves ~15% vs dedicating separate lane multipliers."""
        sc = SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                                sram_bank_words=1024)

        def run():
            shared = sumcheck_area(sc) + forest_area(
                ForestConfig(trees=80, muls_per_tree=8))
            dedicated_lane_muls = sc.product_multipliers * tech.modmul_area(
                255, True)
            dedicated = (sumcheck_area(sc) + dedicated_lane_muls
                         + forest_area(ForestConfig(trees=80, muls_per_tree=8)))
            return shared, dedicated

        shared, dedicated = benchmark(run)
        saving = 1.0 - shared / dedicated
        assert 0.10 < saving < 0.55


class TestInverseUnitAblation:
    def test_batch2_redesign_area_reduction(self, benchmark):
        """§IV-B5: batch-2 + 266 shared inverse units vs zkSpeed's
        batch-64 with dedicated multipliers — paper reports 4.2x."""
        mm = tech.modmul_area(255, False)  # zkSpeed uses arbitrary-prime

        def run():
            zkspeed_style = 64 * mm + 64 * tech.MODINV_MM2
            zkphire_style = 266 * tech.MODINV_MM2 + 2 * mm
            return zkspeed_style, zkphire_style

        zkspeed_style, zkphire_style = benchmark(run)
        reduction = zkspeed_style / zkphire_style
        assert 3.0 < reduction < 5.5  # paper: 4.2x
