"""Micro-benchmarks of the functional kernels (pytest-benchmark).

These time the pure-Python substrate itself (field ops, MSM, SumCheck,
full proofs at small scale) — useful for tracking the functional layer's
performance, and a live demonstration of *why* the paper needs an
accelerator: the asymmetry between these numbers and the model's
hardware latencies is the paper's motivation.
"""

import random

import pytest

from repro.curves import G1_GENERATOR, msm_pippenger
from repro.fields import FR_MODULUS, Fr
from repro.gates import gate_by_id
from repro.hyperplonk import (
    CircuitBuilder,
    HyperPlonkProver,
    MultilinearKZG,
    TrapdoorSRS,
    VANILLA,
    preprocess,
)
from repro.mle import DenseMLE, VirtualPolynomial
from repro.sumcheck import Transcript, prove_sumcheck

RNG = random.Random(0xBEEF)


class TestFieldKernels:
    def test_bench_modmul(self, benchmark):
        a = RNG.randrange(FR_MODULUS)
        b = RNG.randrange(FR_MODULUS)
        benchmark(Fr.mul, a, b)

    def test_bench_modinv(self, benchmark):
        a = RNG.randrange(1, FR_MODULUS)
        benchmark(Fr.inv, a)


class TestCurveKernels:
    def test_bench_point_add(self, benchmark):
        p = G1_GENERATOR.to_jacobian()
        q = G1_GENERATOR.double()  # affine
        benchmark(p.add_affine, q)

    def test_bench_msm_64(self, benchmark):
        points = [G1_GENERATOR.scalar_mul(i + 1) for i in range(64)]
        scalars = [RNG.randrange(FR_MODULUS) for _ in range(64)]
        benchmark.pedantic(msm_pippenger, args=(scalars, points),
                           rounds=1, iterations=1)


class TestSumCheckKernels:
    @pytest.mark.parametrize("gate_id", [20, 22])
    def test_bench_sumcheck(self, benchmark, gate_id):
        spec = gate_by_id(gate_id)
        scalars = {s: 7 for s in spec.compiled.scalar_names}
        terms = spec.compiled.bind(Fr, scalars)
        mles = {
            n: DenseMLE.random(Fr, 8, RNG) for n in spec.compiled.mle_names
        }
        vp = VirtualPolynomial(Fr, terms, mles)
        benchmark.pedantic(
            lambda: prove_sumcheck(vp, Transcript(Fr)),
            rounds=1, iterations=1,
        )


class TestEndToEnd:
    def test_bench_hyperplonk_prove(self, benchmark):
        b = CircuitBuilder(VANILLA, Fr)
        x = b.new_wire(3)
        y = b.new_wire(5)
        m = b.mul(b.add(x, y), x)
        b.assert_equal(m, b.constant(24))
        circuit = b.build(min_gates=8)
        kzg = MultilinearKZG(TrapdoorSRS(circuit.num_vars + 1, RNG))
        pidx, _ = preprocess(circuit, kzg)
        prover = HyperPlonkProver(circuit, pidx, kzg)
        benchmark.pedantic(prover.prove, rounds=1, iterations=1)
