"""Sim fast path + open-loop admission benchmark; ``BENCH_traffic.json``.

ISSUE 8 acceptance, two sections in one record:

* ``sim_core`` — the churn-heavy driver from ``tools/profile_sim.py``
  (self-rescheduling server chains, cancel-and-rearm watchdogs, a
  standing pool of cancelled far-future events, periodic ``len(sim)``
  polls) fires 10⁶ events on the current engine and 2×10⁵ on the
  vendored pre-fast-path baseline (``benchmarks/legacy_sim.py``).
  Normalized events/sec must show the fast path ≥ ``SPEEDUP_FLOOR``×
  faster; the fired count, final clock, and ``len`` probe are pure
  model values and are pinned exactly.
* ``open_loop`` — a seeded 10⁵-job multi-tenant open-loop run on
  zipf-mixed at ~6× overload, admission-controlled vs unprotected, at
  the *same* seed.  Admission must improve goodput (SLO-met
  completions per model second) ≥ ``GOODPUT_FLOOR``× — unprotected
  queues grow without bound, so almost every deadline burns — while
  shedding bronze before silver before gold.  Every number is
  deterministic model time.

Only the events/sec figures touch the wall clock, so the record is
bit-stable everywhere else.  Like the other ``BENCH_*.json`` artifacts
it is (re)written only when missing or ``BENCH_TRAFFIC_EMIT=1`` is set
(as CI does), and ``benchmarks/check_regression.py`` gates it.
"""

import json
import os
import sys
import time
from pathlib import Path

from legacy_sim import LegacySimulator

from repro.cluster import ClusterConfig, NodeConfig, ProvingCluster
from repro.cluster.admission import AdmissionPolicy
from repro.sim import Simulator
from repro.traffic import (
    OpenLoopEngine,
    OpenLoopTraffic,
    make_admission,
    traffic_summary,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))
from profile_sim import churn_heavy  # noqa: E402

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_traffic.json"

#: churn-heavy events fired on the current engine
SIM_EVENTS = 1_000_000
#: events fired on the vendored baseline (normalized to events/sec)
LEGACY_EVENTS = 200_000
SPEEDUP_FLOOR = 3.0

SCENARIO = "zipf-mixed"
SEED = 0
OPEN_LOOP_JOBS = 100_000
#: ~6x the fleet's install-bound service capacity at 4 nodes
RATE_RPS = 40.0
NODES = 4
POLICY = "least_loaded"
TENANTS = 3
ADMISSION_WINDOW_S = 10.0
GOODPUT_FLOOR = 2.0


def run_open_loop_cell(with_admission: bool, jobs: int = OPEN_LOOP_JOBS) -> dict:
    """One seeded open-loop run; returns its traffic summary."""
    traffic = OpenLoopTraffic(
        SCENARIO, seed=SEED, max_jobs=jobs, rate_rps=RATE_RPS
    )
    config = ClusterConfig(
        num_nodes=NODES,
        policy=POLICY,
        node=NodeConfig(max_vars=traffic.max_vars()),
    )
    with ProvingCluster(config) as cluster:
        admission = None
        if with_admission:
            admission = make_admission(
                cluster,
                AdmissionPolicy(window_s=ADMISSION_WINDOW_S),
                traffic.tenants,
            )
        engine = OpenLoopEngine(cluster, traffic, admission=admission)
        engine.run_open_loop()
        return traffic_summary(engine)


def openloop_section(summary: dict) -> dict:
    """The per-cell keys the record pins from one traffic summary."""
    model = summary["model"]
    return {
        "offered": summary["offered"],
        "admitted": summary["admitted"],
        "shed": summary["shed"],
        "shed_rate": summary["shed_rate"],
        "completed": summary["completed"],
        "failed": summary["failed"],
        "goodput_jobs_per_s": model["goodput_jobs_per_s"],
        "throughput_jobs_per_s": model["throughput_jobs_per_s"],
        "slo_attainment": model["slo_attainment"],
        "latency_p99_s": model["latency_s"]["p99"],
        "latency_p99_9_s": model["latency_s"]["p99_9"],
        "jain_fairness": summary["jain_fairness"],
        "shed_by_tenant": {
            row["tenant"]: row["shed"] for row in summary["tenants"]
        },
    }


class TestTrafficOpenLoop:
    def test_smoke_small(self):
        """Fast sanity: a small churn-heavy run and a small open-loop
        run are deterministic and conserve every offered job."""
        fired, now, probe = churn_heavy(Simulator(), 20_000, fast=True)
        fired2, now2, probe2 = churn_heavy(Simulator(), 20_000, fast=True)
        assert (fired, now, probe) == (fired2, now2, probe2)
        assert fired >= 20_000

        summary = run_open_loop_cell(True, jobs=2_000)
        assert summary["offered"] == 2_000
        assert (
            summary["offered"]
            == summary["shed"] + summary["completed"] + summary["failed"]
        )
        assert summary["shed"] > 0, "overload must shed through admission"

    def test_fastpath_speedup_and_openloop_and_emit(self):
        started = time.perf_counter()
        fired, final_clock, len_probe = churn_heavy(
            Simulator(), SIM_EVENTS, fast=True
        )
        new_wall = time.perf_counter() - started

        started = time.perf_counter()
        legacy_fired, legacy_clock, legacy_probe = churn_heavy(
            LegacySimulator(), LEGACY_EVENTS, fast=False
        )
        legacy_wall = time.perf_counter() - started

        events_per_s = fired / new_wall
        legacy_events_per_s = legacy_fired / legacy_wall
        speedup = events_per_s / legacy_events_per_s
        assert speedup >= SPEEDUP_FLOOR, (
            f"sim fast path must clear {SPEEDUP_FLOOR}x the pre-rework "
            f"engine on the churn-heavy workload; got {speedup:.2f}x "
            f"({events_per_s:,.0f} vs {legacy_events_per_s:,.0f} events/s)"
        )

        admission = run_open_loop_cell(True)
        no_admission = run_open_loop_cell(False)
        for cell in (admission, no_admission):
            assert cell["offered"] == OPEN_LOOP_JOBS
            assert (
                cell["offered"]
                == cell["shed"] + cell["completed"] + cell["failed"]
            )
        improvement = (
            admission["model"]["goodput_jobs_per_s"]
            / no_admission["model"]["goodput_jobs_per_s"]
        )
        assert improvement >= GOODPUT_FLOOR, (
            f"admission must improve goodput >= {GOODPUT_FLOOR}x over the "
            f"unprotected fleet at the same seed; got {improvement:.2f}x"
        )
        shed = {
            row["tenant"]: row["shed"] for row in admission["tenants"]
        }
        # bronze (tenant-2) caps out before silver before gold
        assert shed["tenant-2"] > shed["tenant-1"] > shed["tenant-0"], shed
        assert admission["jain_fairness"] > no_admission["jain_fairness"]

        record = {
            "benchmark": "traffic_openloop",
            "unit": "sim_events_per_s + goodput_jobs_per_s",
            "sim_core": {
                "workload": "churn_heavy",
                "events": SIM_EVENTS,
                "legacy_events": LEGACY_EVENTS,
                "speedup_floor": SPEEDUP_FLOOR,
                "speedup": round(speedup, 2),
                "events_per_s": round(events_per_s),
                "legacy_events_per_s": round(legacy_events_per_s),
                "fired": fired,
                "final_clock_s": round(final_clock, 6),
                "len_probe": len_probe,
                "legacy_fired": legacy_fired,
                "legacy_final_clock_s": round(legacy_clock, 6),
                "legacy_len_probe": legacy_probe,
            },
            "open_loop": {
                "scenario": SCENARIO,
                "seed": SEED,
                "jobs": OPEN_LOOP_JOBS,
                "rate_rps": RATE_RPS,
                "nodes": NODES,
                "policy": POLICY,
                "tenants": TENANTS,
                "admission_window_s": ADMISSION_WINDOW_S,
                "goodput_floor": GOODPUT_FLOOR,
                "goodput_improvement": round(improvement, 2),
                "admission": openloop_section(admission),
                "no_admission": openloop_section(no_admission),
            },
        }
        emit = os.environ.get("BENCH_TRAFFIC_EMIT") == "1"
        if emit or not BENCH_PATH.exists():
            BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
