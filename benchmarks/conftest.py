"""Benchmark harness: one benchmark per paper table/figure.

Each benchmark regenerates its experiment through pytest-benchmark and
prints the resulting rows, so ``pytest benchmarks/ --benchmark-only``
reproduces the paper's evaluation section end to end.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print an ExperimentResult outside of captured output."""

    def _show(result, max_rows=25):
        with capsys.disabled():
            print()
            result.print(max_rows=max_rows)

    return _show
