"""Failure-aware fleet benchmark + ``BENCH_resilience.json`` emitter.

ISSUE 5 acceptance: under ~20% node-churn on zipf-mixed (accelerator
fleet framing, 4 nodes), **affinity routing with crash retries** must
hold the deadline-miss rate at least ``MISS_RATIO_FLOOR``× lower than
**cost-blind round-robin with no retries**.  The mechanisms compound:
retries turn lost in-flight realtime jobs into late-but-delivered
proofs instead of dropped ones (a dropped realtime job *is* a deadline
miss), and fingerprint affinity keeps post-crash reinstall storms off
the surviving nodes' critical paths.

Every cell runs in pure model time on the discrete-event engine — no
wall clock anywhere — so the record is bit-deterministic across
machines; the seeds below are replications, not noise control.  Crash
counters cover each cell's *serving window* (churn past the last job
resolution is cancelled), which is why the two policies can report
slightly different crash totals over identical traces.  Miss
counts are small by design (a ~2% miss rate is the regime worth
defending), so the headline ratio is Laplace-smoothed —
``(missed_no_retry + 1) / (missed_retry + 1)`` over the pooled
replications — which keeps it finite if a future recalibration drives
the retry cell to zero misses.

A second section records the plan-cost-driven autoscaler on bursty
jellyfish-heavy traffic: scaling 1→6 nodes on the predicted-backlog
signal must improve p50 latency ≥ ``AUTOSCALE_P50_FLOOR``× over the
fixed single node while scaling back in during every lull.

Like the other ``BENCH_*.json`` artifacts, the record is only
(re)written when missing or ``BENCH_RESILIENCE_EMIT=1`` is set (as CI
does), and ``benchmarks/check_regression.py`` gates it.
"""

import json
import os
from pathlib import Path

from repro.cluster import (
    AutoscalePolicy,
    ClusterConfig,
    NodeConfig,
    ProvingCluster,
)
from repro.service.traffic import TrafficGenerator
from repro.workloads import trace_for_downtime

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_resilience.json"

SCENARIO = "zipf-mixed"
TIME_MODEL = "accelerator"
NODES = 4
JOBS = 96
TRAFFIC_SEEDS = (0, 1, 2, 3, 4)
CHURN_SEED_OFFSET = 100
DOWNTIME_FRACTION = 0.2
MTTR_S = 2.0
#: model seconds of churn horizon granted past the last arrival
HORIZON_SLACK_S = 8.0
MISS_RATIO_FLOOR = 2.0

AUTOSCALE_SCENARIO = "jellyfish-heavy"
AUTOSCALE_SEED = 11
AUTOSCALE_JOBS = 48
AUTOSCALE_P50_FLOOR = 1.2


def run_churn_cell(policy: str, max_retries: int, seed: int) -> dict:
    """One (policy, retry budget, seed) replication under 20% churn."""
    generator = TrafficGenerator(SCENARIO, seed=seed)
    jobs = generator.jobs(JOBS)
    horizon = max(j.arrival_s for j in jobs) + HORIZON_SLACK_S
    churn = trace_for_downtime(
        NODES,
        horizon,
        downtime_fraction=DOWNTIME_FRACTION,
        mttr_s=MTTR_S,
        seed=seed + CHURN_SEED_OFFSET,
    )
    config = ClusterConfig(
        num_nodes=NODES,
        policy=policy,
        time_model=TIME_MODEL,
        max_retries=max_retries,
        node=NodeConfig(max_vars=generator.max_vars()),
    )
    with ProvingCluster(config) as cluster:
        cluster.run_scenario(jobs, churn=churn)
        return cluster.summary()


def run_autoscale_cell(autoscale: bool) -> dict:
    """Bursty traffic on 1 starting node, autoscaled or fixed."""
    generator = TrafficGenerator(AUTOSCALE_SCENARIO, seed=AUTOSCALE_SEED)
    policy = None
    if autoscale:
        policy = AutoscalePolicy(
            scale_out_threshold_s=0.5,
            scale_in_threshold_s=0.05,
            interval_s=0.25,
            min_nodes=1,
            max_nodes=6,
            provision_s=0.25,
        )
    config = ClusterConfig(
        num_nodes=1,
        policy="least_loaded",
        time_model="functional",
        max_retries=2,
        autoscale=policy,
        node=NodeConfig(max_vars=generator.max_vars()),
    )
    with ProvingCluster(config) as cluster:
        cluster.run_scenario(generator.jobs(AUTOSCALE_JOBS), churn=())
        return cluster.summary()


def pooled(cells: list[dict]) -> dict:
    """Pool deadline and failure counters over the replications."""
    missed = sum(c["deadlines"]["missed"] for c in cells)
    jobs = sum(c["deadlines"]["jobs"] for c in cells)
    return {
        "pooled_missed": missed,
        "pooled_deadline_jobs": jobs,
        "pooled_miss_rate": round(missed / jobs, 4) if jobs else 0.0,
        "retries": sum(c["resilience"]["retries"] for c in cells),
        "requeues": sum(c["resilience"]["requeues"] for c in cells),
        "failed_jobs": sum(c["resilience"]["failed_jobs"] for c in cells),
        "crashes": sum(c["resilience"]["crashes"] for c in cells),
    }


class TestClusterResilience:
    def test_smoke_churn_scenario_small(self):
        """Fast sanity: one small churned replication completes and
        accounts for every job."""
        summary = run_churn_cell("affinity", max_retries=3, seed=2)
        assert summary["jobs"] + summary["resilience"]["failed_jobs"] == JOBS
        assert summary["resilience"]["crashes"] > 0
        assert summary["deadlines"]["jobs"] > 0

    def test_retry_beats_no_retry_and_emit(self):
        retry_cells = [
            run_churn_cell("affinity", max_retries=3, seed=seed)
            for seed in TRAFFIC_SEEDS
        ]
        no_retry_cells = [
            run_churn_cell("round_robin", max_retries=0, seed=seed)
            for seed in TRAFFIC_SEEDS
        ]
        retry = pooled(retry_cells)
        no_retry = pooled(no_retry_cells)
        ratio = (no_retry["pooled_missed"] + 1) / (retry["pooled_missed"] + 1)
        assert ratio >= MISS_RATIO_FLOOR, (
            f"affinity+retry must hold deadline misses >= "
            f"{MISS_RATIO_FLOOR}x below no-retry round_robin under "
            f"{DOWNTIME_FRACTION:.0%} churn; got {ratio:.3f}x "
            f"({retry['pooled_missed']} vs {no_retry['pooled_missed']} "
            f"missed)"
        )
        assert retry["failed_jobs"] == 0, "retries must deliver every job"
        assert no_retry["failed_jobs"] > 0, (
            "without retries, churn must actually drop jobs — otherwise "
            "this benchmark is not exercising the failure path"
        )

        auto_fixed = run_autoscale_cell(autoscale=False)
        auto_scaled = run_autoscale_cell(autoscale=True)
        p50_improvement = (
            auto_fixed["model"]["latency_s"]["p50"]
            / auto_scaled["model"]["latency_s"]["p50"]
        )
        scaling = auto_scaled["resilience"]["autoscale"]
        assert p50_improvement >= AUTOSCALE_P50_FLOOR, (
            f"autoscaling must improve p50 latency >= "
            f"{AUTOSCALE_P50_FLOOR}x over the fixed single node; got "
            f"{p50_improvement:.3f}x"
        )
        assert scaling["scale_outs"] >= 1 and scaling["scale_ins"] >= 1

        record = {
            "benchmark": "cluster_resilience",
            "unit": "deadline_miss_rate",
            "scenario": SCENARIO,
            "time_model": TIME_MODEL,
            "nodes": NODES,
            "jobs_per_replication": JOBS,
            "traffic_seeds": list(TRAFFIC_SEEDS),
            "churn": {
                "downtime_fraction": DOWNTIME_FRACTION,
                "mttr_s": MTTR_S,
                "seed_offset": CHURN_SEED_OFFSET,
            },
            "miss_ratio_floor": MISS_RATIO_FLOOR,
            "deadline_miss_ratio_smoothed": round(ratio, 3),
            "retry": {
                "policy": "affinity",
                "max_retries": 3,
                **retry,
            },
            "no_retry": {
                "policy": "round_robin",
                "max_retries": 0,
                **no_retry,
            },
            "replications": [
                {
                    "traffic_seed": seed,
                    "churn_seed": seed + CHURN_SEED_OFFSET,
                    "retry_missed": r["deadlines"]["missed"],
                    "retry_retries": r["resilience"]["retries"],
                    "no_retry_missed": n["deadlines"]["missed"],
                    "no_retry_failed": n["resilience"]["failed_jobs"],
                    "crashes": n["resilience"]["crashes"],
                }
                for seed, r, n in zip(
                    TRAFFIC_SEEDS, retry_cells, no_retry_cells
                )
            ],
            "autoscale": {
                "scenario": AUTOSCALE_SCENARIO,
                "seed": AUTOSCALE_SEED,
                "jobs": AUTOSCALE_JOBS,
                "max_nodes": 6,
                "p50_floor": AUTOSCALE_P50_FLOOR,
                "p50_improvement_vs_fixed": round(p50_improvement, 3),
                "scale_outs": scaling["scale_outs"],
                "scale_ins": scaling["scale_ins"],
            },
        }
        emit = os.environ.get("BENCH_RESILIENCE_EMIT") == "1"
        if emit or not BENCH_PATH.exists():
            BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
