"""Legacy setup shim.

The execution environment has no network and no `wheel` package, so PEP 660
editable installs (`pip install -e .` with build isolation) are unavailable.
This shim lets `python setup.py develop` / `pip install -e . --no-build-isolation`
fall back to the classic egg-link editable install.
"""

from setuptools import setup

setup()
