"""Cluster simulation demo: why fingerprint affinity wins at fleet scale.

Replays one zipf-mixed request stream over a 4-node simulated proving
fleet under all three routing policies and prints the head-to-head:
round-robin re-installs every circuit index on every node (high shape
spread, low cache hit rate), while consistent hashing on the circuit
fingerprint pins each structure to one node and throughput keeps
scaling.  Everything runs in model time — no real proving — so the demo
finishes in well under a second.

Run:  python examples/cluster_simulation.py

(The same sweep is scriptable via ``python -m repro.cluster`` /
``repro-cluster``; execute mode really proves on every node; see
DESIGN.md §7.)
"""

from repro.cluster import (
    ClusterConfig,
    NodeConfig,
    ProvingCluster,
    ROUTING_POLICIES,
)
from repro.service.traffic import TrafficGenerator

SCENARIO = "zipf-mixed"
NODES = 4
JOBS = 96


def run_policy(policy: str) -> dict:
    # same seed => identical job stream for every policy
    generator = TrafficGenerator(SCENARIO, seed=0)
    config = ClusterConfig(
        num_nodes=NODES,
        policy=policy,
        time_model="accelerator",
        node=NodeConfig(max_vars=generator.max_vars()),
    )
    with ProvingCluster(config) as cluster:
        cluster.run(generator.jobs(JOBS))
        return cluster.summary()


def main() -> None:
    print(f"{SCENARIO} x{JOBS} jobs on {NODES} simulated accelerator nodes\n")
    print(
        f"{'policy':<13} {'jobs/s':>8} {'hit-rate':>9} "
        f"{'shape-spread':>13} {'imbalance':>10}"
    )
    rows = {}
    for policy in ROUTING_POLICIES:
        summary = run_policy(policy)
        rows[policy] = summary
        cache = summary["cache"]["sim"]
        print(
            f"{policy:<13} "
            f"{summary['model']['throughput_jobs_per_s']:>8.2f} "
            f"{cache['hit_rate']:>9.2f} "
            f"{summary['routing']['shape_spread']:>13.2f} "
            f"{summary['model']['load_imbalance']:>10.2f}"
        )
    affinity = rows["affinity"]["model"]["throughput_jobs_per_s"]
    baseline = rows["round_robin"]["model"]["throughput_jobs_per_s"]
    print(
        f"\naffinity vs round_robin: {affinity / baseline:.2f}x — "
        "same jobs, same nodes; only the placement of circuit "
        "fingerprints changed."
    )


if __name__ == "__main__":
    main()
