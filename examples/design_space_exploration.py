"""Architect's view: explore zkPHIRE design points for a target workload.

Reproduces the §VI-B flow in miniature: evaluate the paper's exemplar
(Table V), sweep a small design grid at several bandwidth tiers, print
the Pareto frontier, and break down where the time goes.

Run:  python examples/design_space_exploration.py
"""

from repro.hw.accelerator import ZkPhireModel, proof_size_bytes
from repro.hw.area import accelerator_area
from repro.hw.config import AcceleratorConfig, MSMUnitConfig, SumCheckUnitConfig
from repro.hw.dse import accelerator_dse, pareto_frontier
from repro.hw.power import accelerator_power

WORKLOAD = ("jellyfish", 24)   # 2^24 Jellyfish gates (Rollup-25 class)
CPU_SECONDS = 182.896          # measured 32-thread baseline (§VI-B1)


def show_exemplar() -> None:
    cfg = AcceleratorConfig.exemplar()
    model = ZkPhireModel(cfg)
    bd = model.breakdown(*WORKLOAD)
    area = accelerator_area(cfg)
    power = accelerator_power(area, cfg.bandwidth_gbps)
    print(f"exemplar design: {area.total:.1f} mm2, {power.total:.0f} W, "
          f"{cfg.bandwidth_gbps:.0f} GB/s")
    for phase, seconds in bd.as_dict().items():
        print(f"  {phase:14s} {seconds * 1e3:8.2f} ms")
    print(f"  TOTAL (masked) {bd.total * 1e3:8.2f} ms "
          f"-> {CPU_SECONDS / bd.total:.0f}x over CPU; "
          f"proof {proof_size_bytes(*WORKLOAD) / 1024:.2f} KB\n")


def sweep() -> None:
    sc_grid = [SumCheckUnitConfig(pes=p, ees_per_pe=e, pls_per_pe=5,
                                  sram_bank_words=1024)
               for p in (4, 16) for e in (3, 7)]
    msm_grid = [MSMUnitConfig(pes=p, window_bits=9) for p in (8, 32)]
    points = []
    for bw in (512, 1024, 2048):
        points += accelerator_dse(*WORKLOAD, bandwidth_gbps=bw,
                                  sc_grid=sc_grid, msm_grid=msm_grid)
    front = pareto_frontier(points)
    print(f"swept {len(points)} designs -> {len(front)} Pareto-optimal:")
    print(f"  {'runtime':>10s}  {'area':>8s}  {'BW':>6s}  {'speedup':>8s}")
    for p in front:
        print(f"  {p.runtime_s * 1e3:8.1f}ms  {p.area_mm2:6.1f}mm2  "
              f"{p.config.bandwidth_gbps:5.0f}  "
              f"{CPU_SECONDS / p.runtime_s:7.0f}x")


if __name__ == "__main__":
    show_exemplar()
    sweep()
