"""Programmable SumCheck: define a brand-new custom gate, run it through
the functional prover AND the zkPHIRE hardware model.

This is the paper's core claim in miniature: a gate zkSpeed's
fixed-function unit cannot express (a degree-9 Halo2-style constraint)
is (1) proven correct with the functional SumCheck, (2) scheduled onto
the programmable datapath by the Figure-2 scheduler, and (3) costed at
2^24 scale by the performance model, including the CPU baseline.

Run:  python examples/custom_gate_accelerator.py
"""

import random

from repro.fields import Fr
from repro.gates import GateSpec, Var
from repro.hw.config import SumCheckUnitConfig
from repro.hw.cpu_baseline import CpuModel
from repro.hw.scheduler import PolyProfile, schedule_polynomial
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.mle import DenseMLE, VirtualPolynomial
from repro.sumcheck import Transcript, prove_sumcheck, verify_sumcheck


def custom_gate() -> GateSpec:
    """q * (u^4 * v - w)^2 + qc — a degree-9, 5-MLE custom constraint."""
    q, qc, u, v, w = (Var(n) for n in ("q", "qc", "u", "v", "w"))
    expr = q * (u ** 4 * v - w) ** 2 + qc
    return GateSpec(gate_id=-99, name="custom-deg9", expr=expr,
                    selector_names=("q", "qc"))


def main() -> None:
    rng = random.Random(31337)
    spec = custom_gate()
    print(f"gate {spec.name}: degree {spec.degree}, {spec.num_terms} terms, "
          f"{spec.num_unique_mles} unique MLEs")

    # -- 1. functional proof at small scale --------------------------------
    terms = spec.compiled.bind(Fr)
    mles = {n: DenseMLE.random(Fr, 6, rng) for n in spec.compiled.mle_names}
    vp = VirtualPolynomial(Fr, terms, mles)
    proof = prove_sumcheck(vp, Transcript(Fr))
    verify_sumcheck(Fr, vp.terms, proof, Transcript(Fr))
    print(f"functional SumCheck over 2^6 gates verified ✔ "
          f"({len(proof.round_evals)} rounds x {spec.degree + 1} evaluations)")

    # -- 2. schedule it onto the programmable datapath ----------------------
    profile = PolyProfile.from_gate(spec)
    for ees in (3, 5, 7):
        sched = schedule_polynomial(profile, ees=ees, pls=5)
        print(f"  {ees} EEs: {sched.num_steps} schedule steps, "
              f"II={sched.initiation_interval()}, "
              f"tmp buffers={sched.tmp_buffers_required()}")

    # -- 3. cost it at full scale -------------------------------------------
    cfg = SumCheckUnitConfig(pes=16, ees_per_pe=7, pls_per_pe=5,
                             sram_bank_words=1024)
    cpu = CpuModel(threads=4)
    print("\n2^24-gate SumCheck latency for the custom gate:")
    for bw in (256, 1024, 4096):
        run = SumCheckUnitModel(cfg, bw).run(profile, 24)
        cpu_s = cpu.sumcheck_seconds(profile, 24)
        print(f"  {bw:5d} GB/s: {run.latency_s * 1e3:8.2f} ms "
              f"(CPU {cpu_s:6.1f} s -> {cpu_s / run.latency_s:6.0f}x), "
              f"util {run.utilization:.2f}")
    print("\nzkSpeed's fixed-function unit cannot run this gate at all — "
          "programmability is the point (§III).")


if __name__ == "__main__":
    main()
