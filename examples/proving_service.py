"""Proving service demo: serve a traffic scenario end to end.

Builds a ``ProvingService`` (batched, cached, fixed-base MSM), generates
a Zipf-mixed request stream with Poisson arrivals, drains it in waves,
verifies every proof in-service, and shows one differential check: a
proof served through the pipeline is bit-identical to a direct
``HyperPlonkProver.prove()`` call against the same SRS.

Run:  python examples/proving_service.py

(The same pipeline is scriptable via ``python -m repro.service`` /
``repro-serve``; see DESIGN.md §5.)
"""

import random

from repro.hyperplonk import (
    HyperPlonkProver,
    MultilinearKZG,
    TrapdoorSRS,
    preprocess,
)
from repro.service import ProvingService, ServiceConfig, TrafficGenerator


def main() -> None:
    # 1. A named traffic mix: circuit sizes, gate families, arrivals,
    #    and real-time/deferrable request classes (repro.workloads).
    generator = TrafficGenerator("zipf-mixed", seed=2024)
    jobs = generator.jobs(8, backend="fused")
    print(f"scenario: {generator.scenario.name} — "
          f"{generator.scenario.description}")

    # 2. The service: content-addressed index cache, same-circuit
    #    batching, a worker pool, in-service verification, and a
    #    cost-aware drain order (shortest predicted job first, priced by
    #    the shared repro.plan layer).
    config = ServiceConfig(
        max_vars=generator.max_vars(),
        executor="thread",
        num_workers=2,
        verify_proofs=True,
        drain_policy="sjf",
    )
    with ProvingService(config) as service:
        results = service.run(jobs, wave_s=0.5)
        summary = service.summary()

    for r in results[:4]:
        print(f"  job {r.job_id} [{r.tag}] {r.request_class.value:>9}: "
              f"proof {r.proof.size_bytes()} B, prove {r.prove_s:.3f} s, "
              f"batch of {r.batch_size}, "
              f"{'cache hit' if r.cache_hit else 'cache miss'}")
    print(f"  ... {len(results)} proofs total, all verified ✔")
    cache = summary["cache"]
    print(f"throughput: {summary['throughput_proofs_per_s']:.2f} proofs/s; "
          f"index cache {cache['hits']} hits / {cache['misses']} misses; "
          f"p95 latency {summary['latency_s']['p95'] * 1e3:.0f} ms")
    pred = summary["prediction"]
    print(f"plan cost model: {pred['predicted_total_s']:.2f} s predicted vs "
          f"{pred['actual_total_s']:.2f} s proved "
          f"(est. capacity "
          f"{summary['estimated_capacity_proofs_per_s']['predicted']:.1f} "
          f"proofs/s)")

    # 3. Differential check: the served proof equals the one-shot path.
    job = results[0]
    circuit = next(j.circuit for j in jobs if j.job_id == job.job_id)
    srs = TrapdoorSRS(config.max_vars + 1, random.Random(config.srs_seed))
    kzg = MultilinearKZG(srs)
    prover_index, _ = preprocess(circuit, kzg)
    direct = HyperPlonkProver(circuit, prover_index, kzg,
                              backend="fused").prove()
    assert direct == job.proof
    print("service proof is bit-identical to the direct prover ✔")


if __name__ == "__main__":
    main()
