"""Quickstart: build a circuit, generate a HyperPlonk proof, verify it.

Proves knowledge of x, y such that (x + y) * x == 24 without revealing
x or y.  Run:  python examples/quickstart.py
"""

import random

from repro.fields import Fr
from repro.hyperplonk import (
    CircuitBuilder,
    HyperPlonkProver,
    HyperPlonkVerifier,
    MultilinearKZG,
    TrapdoorSRS,
    VANILLA,
    preprocess,
)


def main() -> None:
    # 1. Build the circuit (Vanilla/Plonk gates) with a witness.
    builder = CircuitBuilder(VANILLA, Fr)
    x = builder.new_wire(3)          # private witness
    y = builder.new_wire(5)          # private witness
    s = builder.add(x, y)            # s = x + y
    m = builder.mul(s, x)            # m = s * x
    builder.assert_equal(m, builder.constant(24))
    circuit = builder.build()
    print(f"circuit: {circuit}; unsatisfied gates: {circuit.check_gates()}")

    # 2. Universal setup + one-time preprocessing (commits selectors/σ).
    srs = TrapdoorSRS(circuit.num_vars + 1, random.Random(2024))
    kzg = MultilinearKZG(srs)
    prover_index, verifier_index = preprocess(circuit, kzg)

    # 3. Prove.
    proof = HyperPlonkProver(circuit, prover_index, kzg).prove()
    print(f"proof generated: {proof.size_bytes()} bytes")

    # 4. Verify (raises on any failure).
    HyperPlonkVerifier(Fr, verifier_index, kzg).verify(proof)
    print("proof verified ✔")

    # 5. Tampered proofs are rejected.
    proof.perm_witness_evals["w1"] = (proof.perm_witness_evals["w1"] + 1) % Fr.modulus
    try:
        HyperPlonkVerifier(Fr, verifier_index, kzg).verify(proof)
    except AssertionError as exc:
        print(f"tampered proof rejected ✔ ({exc})")


if __name__ == "__main__":
    main()
