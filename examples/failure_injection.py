"""Failure injection demo: churn, retries, and the autoscaler at work.

Replays one zipf-mixed request stream over a 4-node simulated proving
fleet three ways:

1. **calm** — no failures (the PR-4 baseline);
2. **churned, no retries** — ~20% node downtime with a zero retry
   budget: jobs lost to a crash are dropped, and every dropped realtime
   job is a deadline miss;
3. **churned, with retries** — the same crash trace, but lost jobs are
   requeued (excluding the node that lost them, via the consistent-hash
   ring) and an autoscaler grows the fleet when the plan-predicted
   backlog per node spikes.

Everything runs in model time on the ``repro.sim`` discrete-event
engine — same seed, same churn trace, bit-deterministic — so the demo
finishes in about a second.

Run:  python examples/failure_injection.py

(The same knobs are scriptable via ``repro-cluster --churn-rate 0.2
--max-retries 3 --autoscale``; see DESIGN.md §8.)
"""

from repro.cluster import AutoscalePolicy, ClusterConfig, NodeConfig, ProvingCluster
from repro.service.traffic import TrafficGenerator
from repro.workloads import trace_for_downtime

SCENARIO = "zipf-mixed"
NODES = 4
JOBS = 96
SEED = 1
CHURN_SEED = 101
DOWNTIME_FRACTION = 0.2
MTTR_S = 2.0


def run_variant(*, churn: bool, max_retries: int, autoscale: bool) -> dict:
    # same seed => identical job stream (and churn trace) for every variant
    generator = TrafficGenerator(SCENARIO, seed=SEED)
    jobs = generator.jobs(JOBS)
    trace = ()
    if churn:
        horizon = max(j.arrival_s for j in jobs) + 8.0
        trace = trace_for_downtime(
            NODES,
            horizon,
            downtime_fraction=DOWNTIME_FRACTION,
            mttr_s=MTTR_S,
            seed=CHURN_SEED,
        )
    policy = None
    if autoscale:
        policy = AutoscalePolicy(
            scale_out_threshold_s=0.5,
            scale_in_threshold_s=0.05,
            interval_s=0.25,
            min_nodes=1,
            max_nodes=8,
            provision_s=0.25,
        )
    config = ClusterConfig(
        num_nodes=NODES,
        policy="affinity",
        time_model="accelerator",
        max_retries=max_retries,
        autoscale=policy,
        node=NodeConfig(max_vars=generator.max_vars()),
    )
    with ProvingCluster(config) as cluster:
        cluster.run_scenario(jobs, churn=trace)
        return cluster.summary()


def main() -> None:
    variants = {
        "calm": run_variant(churn=False, max_retries=0, autoscale=False),
        "churn, no retry": run_variant(
            churn=True, max_retries=0, autoscale=False
        ),
        "churn + retry + autoscale": run_variant(
            churn=True, max_retries=3, autoscale=True
        ),
    }
    print(
        f"{SCENARIO} x{JOBS} jobs, {NODES} accelerator nodes, "
        f"{DOWNTIME_FRACTION:.0%} target node downtime\n"
    )
    header = (
        f"{'variant':<26} {'done':>5} {'failed':>6} {'miss%':>6} "
        f"{'retries':>7} {'crashes':>7} {'p95':>8} {'scale+':>6}"
    )
    print(header)
    print("-" * len(header))
    for name, summary in variants.items():
        deadlines = summary.get("deadlines", {})
        resilience = summary.get("resilience") or {}
        autoscale = resilience.get("autoscale", {})
        print(
            f"{name:<26} {summary['jobs']:>5} "
            f"{resilience.get('failed_jobs', 0):>6} "
            f"{deadlines.get('miss_rate', 0.0) * 100:>5.1f}% "
            f"{resilience.get('retries', 0):>7} "
            f"{resilience.get('crashes', 0):>7} "
            f"{summary['model']['latency_s']['p95']:>7.3f}s "
            f"{autoscale.get('scale_outs', 0):>6}"
        )
    dropped = variants["churn, no retry"]["resilience"]["failed_jobs"]
    print(
        f"\nsame crash trace both times: without retries {dropped} jobs "
        "are simply lost; with retries every job is delivered and the "
        "ring-excluded requeue keeps the loss off the failed node."
    )


if __name__ == "__main__":
    main()
