"""High-degree custom gates in action: a Rescue-style x^5 hash chain.

The same computation is arithmetized twice — with Vanilla gates (every
x^5 costs three multiplication gates) and with Jellyfish gates (one
qH-selector gate per S-box).  Both are proven and verified end-to-end,
demonstrating the gate-count reduction that motivates zkPHIRE (§II-C2).

Run:  python examples/jellyfish_hash_chain.py
"""

import random

from repro.fields import Fr
from repro.hyperplonk import (
    JELLYFISH,
    VANILLA,
    CircuitBuilder,
    HyperPlonkProver,
    HyperPlonkVerifier,
    MultilinearKZG,
    TrapdoorSRS,
    preprocess,
)

ROUNDS = 4
SEED_VALUE = 7
ROUND_CONSTANTS = [11, 22, 33, 44]


def hash_chain(builder: CircuitBuilder):
    """state <- state^5 + round_constant, ROUNDS times."""
    state = builder.new_wire(SEED_VALUE)
    for rc in ROUND_CONSTANTS[:ROUNDS]:
        sbox = builder.pow5(state)           # 1 Jellyfish gate / 3 Vanilla
        state = builder.add(sbox, builder.constant(rc))
    return state


def expected_digest() -> int:
    v = SEED_VALUE
    for rc in ROUND_CONSTANTS[:ROUNDS]:
        v = (pow(v, 5, Fr.modulus) + rc) % Fr.modulus
    return v


def prove_and_verify(gate_type, label: str) -> int:
    builder = CircuitBuilder(gate_type, Fr)
    out = hash_chain(builder)
    builder.assert_equal(out, builder.constant(expected_digest()))
    circuit = builder.build()
    assert circuit.check_gates() == []

    kzg = MultilinearKZG(TrapdoorSRS(circuit.num_vars + 1, random.Random(9)))
    pidx, vidx = preprocess(circuit, kzg)
    proof = HyperPlonkProver(circuit, pidx, kzg).prove()
    HyperPlonkVerifier(Fr, vidx, kzg).verify(proof)
    print(f"{label:10s}: {circuit.num_gates:3d} gates (μ={circuit.num_vars}), "
          f"proof {proof.size_bytes()} bytes — verified ✔")
    return circuit.num_gates


def main() -> None:
    print(f"proving a {ROUNDS}-round x^5 hash chain, digest = "
          f"{expected_digest() % 10**8}... (mod 1e8)")
    vanilla_gates = prove_and_verify(VANILLA, "Vanilla")
    jellyfish_gates = prove_and_verify(JELLYFISH, "Jellyfish")
    print(f"gate-count reduction from expressive gates: "
          f"{vanilla_gates / jellyfish_gates:.1f}x "
          f"(the effect Fig 13 scales to 32x on real workloads)")


if __name__ == "__main__":
    main()
