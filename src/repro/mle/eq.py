"""The eq(x, r) randomizer MLE ("Build MLE" kernel).

ZeroCheck multiplies the gate polynomial by f_r(x) = eq(x, r) =
prod_i (x_i r_i + (1 - x_i)(1 - r_i)) so that individually-wrong gates
cannot cancel in the sum (§III-F).  zkSpeed computes this table with a
separate Build-MLE pass; zkPHIRE fuses it into round 1 of SumCheck.  Both
use the doubling construction implemented here: the table for i variables
is expanded to i+1 variables with one multiply per new entry.
"""

from __future__ import annotations

from typing import Sequence

from repro.fields.counters import OpCounter
from repro.fields.prime_field import PrimeField
from repro.mle.table import DenseMLE


def build_eq_mle(
    field: PrimeField,
    challenges: Sequence[int],
    counter: OpCounter | None = None,
) -> DenseMLE:
    """Build the 2^μ table of eq(x, r) for r = ``challenges``.

    Doubling construction: start from [1]; processing r_i doubles the
    table, placing the X_i = 0 half at the existing indices and the
    X_i = 1 half ``len(table)`` above them, so X_1 stays in the least
    significant index bit (the package-wide convention).  Total
    multiplies: 2^(μ+1) - 2 ≈ 2N, the O(N) precompute zkPHIRE's round-1
    fusion avoids re-materializing.
    """
    p = field.modulus
    table = [1]
    for r in challenges:
        r %= p
        one_minus_r = (1 - r) % p
        half = len(table)
        nxt = [0] * (2 * half)
        for j, e in enumerate(table):
            nxt[j] = e * one_minus_r % p
            nxt[j + half] = e * r % p
        if counter is not None:
            counter.count_mul(2 * half, kind="ee")
        table = nxt
    return DenseMLE(field, table)


def eq_eval(field: PrimeField, x: Sequence[int], r: Sequence[int]) -> int:
    """Evaluate eq(x, r) at arbitrary field points x, r."""
    if len(x) != len(r):
        raise ValueError("eq_eval: length mismatch")
    p = field.modulus
    acc = 1
    for xi, ri in zip(x, r):
        xi %= p
        ri %= p
        acc = acc * (xi * ri + (1 - xi) * (1 - ri)) % p
    return acc
