"""Virtual (composite) polynomials: sums of products of MLEs.

SumCheck in modern protocols runs over compositions like
f_plonk = qL*w1 + qR*w2 + qM*w1*w2 - qO*w3 + qC (§II-C1): we hold only the
constituent multilinear tables plus the composition structure.  A
:class:`VirtualPolynomial` is a list of :class:`Term`s, each a field
coefficient times a product of named MLEs raised to small powers
(repeated MLEs such as w1^5 in the Jellyfish gate are expressed as powers,
which is exactly the data-reuse opportunity zkPHIRE's scheduler exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.fields.prime_field import PrimeField
from repro.mle.table import DenseMLE


@dataclass(frozen=True)
class Term:
    """coeff * prod_j mle[name_j] ^ power_j  (names within a term distinct)."""

    coeff: int
    factors: tuple[tuple[str, int], ...]

    @property
    def degree(self) -> int:
        """Total degree: number of multilinear factors counted with power."""
        return sum(power for _, power in self.factors)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.factors)

    def validate(self) -> None:
        names = [n for n, _ in self.factors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate MLE name in term factors: {names}")
        if any(p < 1 for _, p in self.factors):
            raise ValueError("factor powers must be >= 1")


class VirtualPolynomial:
    """A composite polynomial: sum of Terms over a shared set of MLE tables."""

    def __init__(
        self,
        field: PrimeField,
        terms: Sequence[Term],
        mles: Mapping[str, DenseMLE],
    ):
        if not terms:
            raise ValueError("virtual polynomial needs at least one term")
        self.field = field
        self.terms = list(terms)
        self.mles = dict(mles)
        num_vars = None
        for term in self.terms:
            term.validate()
            for name, _ in term.factors:
                if name not in self.mles:
                    raise KeyError(f"term references unknown MLE {name!r}")
        for name, mle in self.mles.items():
            if mle.field != field:
                raise ValueError(f"MLE {name!r} is over the wrong field")
            if num_vars is None:
                num_vars = mle.num_vars
            elif mle.num_vars != num_vars:
                raise ValueError("all MLEs must have the same number of variables")
        if num_vars is None:
            raise ValueError("virtual polynomial needs at least one MLE")
        self.num_vars = num_vars

    # -- structure ---------------------------------------------------------
    @property
    def degree(self) -> int:
        """Max total degree across terms: d+1 evaluations per SumCheck round."""
        return max(term.degree for term in self.terms)

    @property
    def unique_mle_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for term in self.terms:
            for name, _ in term.factors:
                seen.setdefault(name)
        return list(seen)

    # -- evaluation ---------------------------------------------------------
    def evaluate_at_index(self, idx: int) -> int:
        """Evaluate the composition at hypercube point #idx."""
        p = self.field.modulus
        total = 0
        for term in self.terms:
            prod = term.coeff % p
            for name, power in term.factors:
                v = self.mles[name].table[idx]
                prod = prod * pow(v, power, p) % p
                if prod == 0:
                    break
            total = (total + prod) % p
        return total

    def sum_over_hypercube(self) -> int:
        p = self.field.modulus
        total = 0
        for idx in range(1 << self.num_vars):
            total = (total + self.evaluate_at_index(idx)) % p
        return total

    def evaluate(self, point: Sequence[int]) -> int:
        """Evaluate the composition at an arbitrary field point.

        Each constituent MLE is evaluated at ``point`` and the composition
        is applied to the results — this is what the SumCheck verifier does
        in its final check.
        """
        evals = {name: self.mles[name].evaluate(point) for name in self.mles}
        return self.combine(evals)

    def combine(self, evals: Mapping[str, int]) -> int:
        """Apply the composition structure to per-MLE evaluation values."""
        p = self.field.modulus
        total = 0
        for term in self.terms:
            prod = term.coeff % p
            for name, power in term.factors:
                prod = prod * pow(evals[name] % p, power, p) % p
            total = (total + prod) % p
        return total

    def fix_first_variable(
        self, r: int, counter=None, backend=None
    ) -> "VirtualPolynomial":
        """Fold every constituent MLE by the challenge r (MLE Update).

        ``backend`` selects the :mod:`repro.fields.vector` fold kernel.
        """
        folded = {
            name: mle.fix_first_variable(r, counter, backend)
            for name, mle in self.mles.items()
        }
        return VirtualPolynomial(self.field, self.terms, folded)

    def __repr__(self):
        return (
            f"VirtualPolynomial(μ={self.num_vars}, {len(self.terms)} terms, "
            f"degree {self.degree})"
        )
