"""Multilinear extensions (MLEs) and composite ("virtual") polynomials.

MLEs are the core data structure of SumCheck-based ZKPs (§II-C): a
multilinear polynomial in μ variables stored as a flat table of its 2^μ
evaluations on the boolean hypercube.  This package provides

* :class:`~repro.mle.table.DenseMLE` — the table, with the three hardware
  primitives zkPHIRE builds datapaths for: *update* (fix a variable to a
  challenge, halving the table), *extension* (extrapolate an evaluation
  pair to X = 2..d), and point evaluation,
* :func:`~repro.mle.eq.build_eq_mle` — the eq(x, r) randomizer polynomial
  used by ZeroCheck (the "Build MLE" kernel),
* :class:`~repro.mle.virtual.VirtualPolynomial` — a sum of products of
  MLEs (with powers), i.e. the composite polynomials SumCheck runs over.

Index convention: table index ``b`` encodes the point (X_1, ..., X_μ) with
X_1 in the least-significant bit, so the round-1 pairs (X_1 = 0, 1) are
adjacent entries — the same streaming-friendly layout the accelerator uses.
"""

from repro.mle.table import DenseMLE, extend_pair, extend_table
from repro.mle.eq import build_eq_mle, eq_eval
from repro.mle.virtual import Term, VirtualPolynomial

__all__ = [
    "DenseMLE",
    "extend_pair",
    "extend_table",
    "build_eq_mle",
    "eq_eval",
    "Term",
    "VirtualPolynomial",
]
