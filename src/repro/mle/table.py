"""Dense MLE tables and the three hardware primitives.

A multilinear polynomial f(X_1..X_μ) is stored as the list of its 2^μ
hypercube evaluations (raw field ints for speed).  X_1 occupies the least
significant index bit, so the pairs f(0, x_rest), f(1, x_rest) that round
1 of SumCheck consumes are adjacent — mirroring how zkPHIRE streams MLE
tiles from HBM (§III-B).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.fields.counters import OpCounter
from repro.fields.prime_field import PrimeField
from repro.fields.vector import VectorBackend, get_backend


class DenseMLE:
    """A dense multilinear-extension table over a prime field."""

    __slots__ = ("field", "num_vars", "table")

    def __init__(self, field: PrimeField, table: Sequence[int]):
        n = len(table)
        if n == 0 or n & (n - 1):
            raise ValueError("MLE table length must be a power of two")
        self.field = field
        self.num_vars = n.bit_length() - 1
        self.table = [v % field.modulus for v in table]

    # -- constructors -----------------------------------------------------
    @classmethod
    def zeros(cls, field: PrimeField, num_vars: int) -> "DenseMLE":
        return cls(field, [0] * (1 << num_vars))

    @classmethod
    def constant(cls, field: PrimeField, num_vars: int, value: int) -> "DenseMLE":
        return cls(field, [value % field.modulus] * (1 << num_vars))

    @classmethod
    def random(
        cls,
        field: PrimeField,
        num_vars: int,
        rng: random.Random | None = None,
        sparsity: float = 0.0,
    ) -> "DenseMLE":
        """Random table; ``sparsity`` is the fraction of entries forced to 0.

        Witness and constant MLEs in real circuits are ~90% sparse
        (§IV-B1); tests use this to exercise the sparsity-aware paths.
        """
        rng = rng or random.Random()
        table = []
        for _ in range(1 << num_vars):
            if sparsity and rng.random() < sparsity:
                table.append(0)
            else:
                table.append(rng.randrange(field.modulus))
        return cls(field, table)

    # -- hardware primitive 1: MLE Update (fix X_1 := r) -------------------
    def fix_first_variable(
        self,
        r: int,
        counter: OpCounter | None = None,
        backend: str | VectorBackend | None = None,
    ) -> "DenseMLE":
        """Return f(r, X_2..X_μ): fold adjacent pairs by the challenge r.

        f(r, x) = f(0, x) + r * (f(1, x) - f(0, x)) — one modular multiply
        and two adds per output entry, exactly the Update unit's datapath.
        The fold is carried out by a :mod:`repro.fields.vector` backend
        (``None`` → ``reference``, preserving the original semantics).
        """
        if self.num_vars == 0:
            raise ValueError("cannot fix a variable of a 0-variable MLE")
        out = get_backend(backend).fold(self.field, self.table, r, counter)
        return DenseMLE(self.field, out)

    def fix_variables(self, rs: Iterable[int]) -> "DenseMLE":
        cur = self
        for r in rs:
            cur = cur.fix_first_variable(r)
        return cur

    # -- hardware primitive 3: point evaluation -----------------------------
    def evaluate(self, point: Sequence[int]) -> int:
        """Evaluate the MLE at an arbitrary field point (length-μ vector)."""
        if len(point) != self.num_vars:
            raise ValueError(
                f"point has {len(point)} coords, MLE has {self.num_vars} vars"
            )
        cur = self
        for r in point:
            if cur.num_vars == 0:
                break
            cur = cur.fix_first_variable(r)
        return cur.table[0]

    # -- misc ---------------------------------------------------------------
    def __len__(self):
        return len(self.table)

    def __getitem__(self, idx: int) -> int:
        return self.table[idx]

    def __eq__(self, other):
        if not isinstance(other, DenseMLE):
            return NotImplemented
        return self.field == other.field and self.table == other.table

    def __repr__(self):
        return f"DenseMLE(μ={self.num_vars}, {self.field.name})"

    def nonzero_fraction(self) -> float:
        return sum(1 for v in self.table if v) / len(self.table)

    def scaled(self, c: int) -> "DenseMLE":
        p = self.field.modulus
        c %= p
        return DenseMLE(self.field, [v * c % p for v in self.table])

    def pointwise_add(self, other: "DenseMLE") -> "DenseMLE":
        self._check_compatible(other)
        p = self.field.modulus
        return DenseMLE(
            self.field, [(a + b) % p for a, b in zip(self.table, other.table)]
        )

    def pointwise_mul(self, other: "DenseMLE") -> "DenseMLE":
        """Entry-wise product.  NOTE: the result table is *not* the MLE of
        the product polynomial (which has degree 2); it is the table of
        hypercube values, which is what SumCheck dataflows consume."""
        self._check_compatible(other)
        p = self.field.modulus
        return DenseMLE(
            self.field, [a * b % p for a, b in zip(self.table, other.table)]
        )

    def _check_compatible(self, other: "DenseMLE") -> None:
        if self.field != other.field or self.num_vars != other.num_vars:
            raise ValueError("MLE shape/field mismatch")


def extend_pair(
    field: PrimeField,
    lo: int,
    hi: int,
    degree: int,
    counter: OpCounter | None = None,
) -> list[int]:
    """Hardware primitive 2: extend an evaluation pair to X = 0..degree.

    The pair (f at X=0, f at X=1) defines a line; the Extension Engine
    produces its values at X = 0, 1, 2, ..., degree by repeatedly adding
    the slope (hi - lo) — an adder chain in hardware, so only adds are
    counted.
    """
    p = field.modulus
    delta = (hi - lo) % p
    out = [lo % p, hi % p]
    cur = hi % p
    for _ in range(degree - 1):
        cur = (cur + delta) % p
        out.append(cur)
    if counter is not None:
        counter.count_add(max(degree - 1, 0))
    return out[: degree + 1]


def extend_table(
    field: PrimeField,
    table: Sequence[int],
    degree: int,
    counter: OpCounter | None = None,
    backend: str | VectorBackend | None = None,
) -> list[list[int]]:
    """Batched :func:`extend_pair` over a whole table.

    Returns extension *columns*: ``cols[x][j]`` is the value at ``X = x``
    of the line through pair ``j`` — i.e. ``extend_pair`` applied to every
    adjacent pair at once, transposed.  Routed through a
    :mod:`repro.fields.vector` backend (``None`` → ``reference``).
    """
    if len(table) < 2 or len(table) % 2:
        raise ValueError("extend_table needs an even-length table")
    return get_backend(backend).extend_columns(field, table, degree, counter)
