"""Workload catalog: the paper's benchmark circuits plus named
traffic-mix scenarios for the proving service (:mod:`repro.service`)."""

from repro.workloads.catalog import (
    SCENARIOS,
    TrafficScenario,
    WORKLOADS,
    Workload,
    scenario_by_name,
    workload_by_name,
)

__all__ = [
    "SCENARIOS",
    "TrafficScenario",
    "WORKLOADS",
    "Workload",
    "scenario_by_name",
    "workload_by_name",
]
