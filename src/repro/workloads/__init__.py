"""Workload catalog: the paper's benchmark circuits, named traffic-mix
scenarios for the proving service (:mod:`repro.service`) annotated with
plan-predicted per-job cost (:func:`scenario_cost_annotations`), and
seeded node crash/recovery churn traces for the failure-aware fleet
simulation (:mod:`repro.workloads.churn`)."""

from repro.workloads.catalog import (
    SCENARIOS,
    TrafficScenario,
    WORKLOADS,
    Workload,
    scenario_by_name,
    scenario_cost_annotations,
    workload_by_name,
)
from repro.workloads.churn import (
    CHURN_SCENARIOS,
    ChurnEvent,
    ChurnScenario,
    churn_scenario_by_name,
    churn_trace,
    trace_for_downtime,
)

__all__ = [
    "CHURN_SCENARIOS",
    "ChurnEvent",
    "ChurnScenario",
    "SCENARIOS",
    "TrafficScenario",
    "WORKLOADS",
    "Workload",
    "churn_scenario_by_name",
    "churn_trace",
    "scenario_by_name",
    "scenario_cost_annotations",
    "trace_for_downtime",
    "workload_by_name",
]
