"""Workload catalog: the paper's benchmark circuits plus named
traffic-mix scenarios for the proving service (:mod:`repro.service`),
annotated with plan-predicted per-job cost
(:func:`scenario_cost_annotations`)."""

from repro.workloads.catalog import (
    SCENARIOS,
    TrafficScenario,
    WORKLOADS,
    Workload,
    scenario_by_name,
    scenario_cost_annotations,
    workload_by_name,
)

__all__ = [
    "SCENARIOS",
    "TrafficScenario",
    "WORKLOADS",
    "Workload",
    "scenario_by_name",
    "scenario_cost_annotations",
    "workload_by_name",
]
