"""Workload catalog: the benchmark circuits of the paper's evaluation."""

from repro.workloads.catalog import (
    WORKLOADS,
    Workload,
    workload_by_name,
)

__all__ = ["WORKLOADS", "Workload", "workload_by_name"]
