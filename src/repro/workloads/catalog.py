"""The paper's benchmark workloads (Tables VI/VII/VIII, Fig 13).

Gate counts and measured CPU baselines are taken verbatim from the paper
(they come from libsnark/HyperPlonk workload statistics [1], [9]); the
Jellyfish column shows the gate-count reduction from expressive gates
(§II-C2: up to 32×).  CPU runtimes are the paper's 32-thread EPYC-7502
measurements — we reproduce reported baselines rather than re-measure
(DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    name: str
    #: log2 gate count with Vanilla gates (None if the paper gives none)
    vanilla_log2: int | None
    #: log2 gate count with Jellyfish gates
    jellyfish_log2: int | None
    #: measured CPU prover time, Vanilla gates, seconds (Table VI)
    cpu_vanilla_s: float | None = None
    #: measured CPU prover time, Jellyfish gates, seconds (Table VII)
    cpu_jellyfish_s: float | None = None

    @property
    def vanilla_gates(self) -> int | None:
        return None if self.vanilla_log2 is None else 1 << self.vanilla_log2

    @property
    def jellyfish_gates(self) -> int | None:
        return None if self.jellyfish_log2 is None else 1 << self.jellyfish_log2

    @property
    def jellyfish_reduction(self) -> float | None:
        if self.vanilla_log2 is None or self.jellyfish_log2 is None:
            return None
        return 2.0 ** (self.vanilla_log2 - self.jellyfish_log2)


WORKLOADS: list[Workload] = [
    Workload("ZCash", 17, 15, cpu_vanilla_s=1.429, cpu_jellyfish_s=0.701),
    Workload("Auction", 20, None, cpu_vanilla_s=8.619),
    Workload("Rescue Hash", 21, 20, cpu_vanilla_s=18.637, cpu_jellyfish_s=11.532),
    Workload("Zexe", 22, 17, cpu_vanilla_s=37.469, cpu_jellyfish_s=1.951),
    Workload("Rollup 10 Pvt Tx", 23, 18, cpu_vanilla_s=74.052, cpu_jellyfish_s=3.339),
    Workload("Rollup 25 Pvt Tx", 24, 19, cpu_vanilla_s=145.500, cpu_jellyfish_s=6.161),
    Workload("Rollup 50 Pvt Tx", 25, 20, cpu_vanilla_s=325.048, cpu_jellyfish_s=11.533),
    Workload("Rollup 100 Pvt Tx", 26, 21, cpu_vanilla_s=640.987, cpu_jellyfish_s=24.071),
    Workload("Rollup 1600 Pvt Tx", 30, 25, cpu_jellyfish_s=355.406),
    Workload("zkEVM", None, 27, cpu_jellyfish_s=25 * 60.0),
]

#: the Pareto-analysis workload: 2^24 Jellyfish gates, CPU ≈ 182.896 s (§VI-B1)
PARETO_WORKLOAD_LOG2 = 24
PARETO_WORKLOAD_CPU_S = 182.896


def workload_by_name(name: str) -> Workload:
    for w in WORKLOADS:
        if w.name.lower() == name.lower():
            return w
    raise KeyError(f"unknown workload {name!r}")
