"""The paper's benchmark workloads (Tables VI/VII/VIII, Fig 13).

Gate counts and measured CPU baselines are taken verbatim from the paper
(they come from libsnark/HyperPlonk workload statistics [1], [9]); the
Jellyfish column shows the gate-count reduction from expressive gates
(§II-C2: up to 32×).  CPU runtimes are the paper's 32-thread EPYC-7502
measurements — we reproduce reported baselines rather than re-measure
(DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    name: str
    #: log2 gate count with Vanilla gates (None if the paper gives none)
    vanilla_log2: int | None
    #: log2 gate count with Jellyfish gates
    jellyfish_log2: int | None
    #: measured CPU prover time, Vanilla gates, seconds (Table VI)
    cpu_vanilla_s: float | None = None
    #: measured CPU prover time, Jellyfish gates, seconds (Table VII)
    cpu_jellyfish_s: float | None = None

    @property
    def vanilla_gates(self) -> int | None:
        return None if self.vanilla_log2 is None else 1 << self.vanilla_log2

    @property
    def jellyfish_gates(self) -> int | None:
        return None if self.jellyfish_log2 is None else 1 << self.jellyfish_log2

    @property
    def jellyfish_reduction(self) -> float | None:
        if self.vanilla_log2 is None or self.jellyfish_log2 is None:
            return None
        return 2.0 ** (self.vanilla_log2 - self.jellyfish_log2)


WORKLOADS: list[Workload] = [
    Workload("ZCash", 17, 15, cpu_vanilla_s=1.429, cpu_jellyfish_s=0.701),
    Workload("Auction", 20, None, cpu_vanilla_s=8.619),
    Workload("Rescue Hash", 21, 20, cpu_vanilla_s=18.637, cpu_jellyfish_s=11.532),
    Workload("Zexe", 22, 17, cpu_vanilla_s=37.469, cpu_jellyfish_s=1.951),
    Workload("Rollup 10 Pvt Tx", 23, 18, cpu_vanilla_s=74.052, cpu_jellyfish_s=3.339),
    Workload("Rollup 25 Pvt Tx", 24, 19, cpu_vanilla_s=145.500, cpu_jellyfish_s=6.161),
    Workload("Rollup 50 Pvt Tx", 25, 20, cpu_vanilla_s=325.048, cpu_jellyfish_s=11.533),
    Workload("Rollup 100 Pvt Tx", 26, 21, cpu_vanilla_s=640.987, cpu_jellyfish_s=24.071),
    Workload("Rollup 1600 Pvt Tx", 30, 25, cpu_jellyfish_s=355.406),
    Workload("zkEVM", None, 27, cpu_jellyfish_s=25 * 60.0),
]

#: the Pareto-analysis workload: 2^24 Jellyfish gates, CPU ≈ 182.896 s (§VI-B1)
PARETO_WORKLOAD_LOG2 = 24
PARETO_WORKLOAD_CPU_S = 182.896


def workload_by_name(name: str) -> Workload:
    for w in WORKLOADS:
        if w.name.lower() == name.lower():
            return w
    raise KeyError(f"unknown workload {name!r}")


# ---------------------------------------------------------------------------
# traffic-mix scenarios (proving-service workloads)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrafficScenario:
    """A named proof-serving traffic mix, consumed by
    :class:`repro.service.TrafficGenerator`.

    Sizes are log2 gate counts at the functional stack's scale (μ ≈ 3–6);
    they stand in for the full-scale catalog entries above the same way
    the protocol tests stand in for 2^24-gate runs (DESIGN.md §1).
    """

    name: str
    description: str
    #: (gate type name, weight) — which gate families requests use
    gate_mix: tuple[tuple[str, float], ...]
    #: (log2 gate count, weight) — the circuit-size distribution
    size_weights: tuple[tuple[int, float], ...]
    #: request inter-arrival pattern: ``uniform`` | ``poisson`` | ``burst``
    arrival: str
    #: mean arrival rate, requests per second of model time
    rate_rps: float
    #: fraction of requests in the REALTIME class (rest are DEFERRABLE)
    realtime_fraction: float
    #: model-time slack granted to REALTIME requests (deadline =
    #: arrival + slack, consumed by the ``deadline`` drain policy);
    #: ``None`` = the scenario sets no deadlines
    realtime_deadline_s: float | None = None

    @property
    def max_log2_gates(self) -> int:
        return max(size for size, _ in self.size_weights)

    def expected_job_cost_s(self, cost_model) -> float:
        """Predicted mean prove cost of one request from this mix.

        ``cost_model`` is any shape-level :mod:`repro.plan` cost model
        (``shape_cost_s(gate_type_name, num_vars) -> float``); the
        expectation runs over the gate and size distributions.
        """
        gate_total = sum(w for _, w in self.gate_mix)
        size_total = sum(w for _, w in self.size_weights)
        return sum(
            (gw / gate_total) * (sw / size_total)
            * cost_model.shape_cost_s(gate, log2)
            for gate, gw in self.gate_mix
            for log2, sw in self.size_weights
        )


SCENARIOS: dict[str, TrafficScenario] = {
    s.name: s
    for s in (
        TrafficScenario(
            name="uniform-small",
            description="steady stream of small Vanilla circuits "
                        "(one dominant circuit shape; cache-friendly)",
            gate_mix=(("vanilla", 1.0),),
            size_weights=((3, 1.0), (4, 1.0)),
            arrival="uniform",
            rate_rps=8.0,
            realtime_fraction=1.0,
            realtime_deadline_s=1.0,
        ),
        TrafficScenario(
            name="zipf-mixed",
            description="Zipf-distributed circuit sizes over a "
                        "Vanilla/Jellyfish mix with Poisson arrivals",
            gate_mix=(("vanilla", 0.75), ("jellyfish", 0.25)),
            size_weights=((3, 1.0), (4, 0.5), (5, 0.25), (6, 0.125)),
            arrival="poisson",
            rate_rps=4.0,
            realtime_fraction=0.5,
            realtime_deadline_s=2.0,
        ),
        TrafficScenario(
            name="jellyfish-heavy",
            description="bursts of larger high-degree Jellyfish circuits, "
                        "mostly deferrable (rollup-style batch proving)",
            gate_mix=(("jellyfish", 1.0),),
            size_weights=((4, 0.5), (5, 0.3), (6, 0.2)),
            arrival="burst",
            rate_rps=2.0,
            realtime_fraction=0.25,
            realtime_deadline_s=4.0,
        ),
    )
}


def scenario_by_name(name: str) -> TrafficScenario:
    try:
        return SCENARIOS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown traffic scenario {name!r}; "
            f"available: {sorted(SCENARIOS)}"
        ) from None


def scenario_cost_annotations(cost_model=None) -> dict[str, float]:
    """Predicted mean per-job prove cost for every named scenario.

    ``cost_model`` defaults to the plan layer's
    :class:`~repro.plan.FunctionalProverCostModel` (the pure-Python
    prover the service runs).  The service CLI prints these so operators
    can see what a scenario costs before serving it.
    """
    if cost_model is None:
        from repro.plan import FunctionalProverCostModel
        cost_model = FunctionalProverCostModel()
    return {
        name: scenario.expected_job_cost_s(cost_model)
        for name, scenario in sorted(SCENARIOS.items())
    }
