"""Seeded node crash/recovery churn traces for the fleet simulation.

A churn trace is a pre-computed, fully deterministic list of
:class:`ChurnEvent`\\ s (crash or recovery of one node index at one
model time), replayed into the cluster's event engine through a
:class:`~repro.sim.sources.TraceSource`.  Traces are generated per node
from an alternating exponential up/down process — mean time to failure
``mttf_s``, mean time to repair ``mttr_s`` — so the long-run fraction
of node-time spent down is ``mttr / (mttf + mttr)``.

Each node's stream seeds its own :class:`random.Random` from
``(seed, node_index)``, so a trace is reproducible across runs and
machines and does not change for existing nodes when the fleet grows.
The named :data:`CHURN_SCENARIOS` presets give the benchmark and CLI a
shared vocabulary ("light" ≈ 6% downtime, "moderate" ≈ 20%,
"heavy" ≈ 33%).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: event kinds carried by a churn trace
CHURN_KINDS = ("crash", "recover")


@dataclass(frozen=True)
class ChurnEvent:
    """One node state flip at one model time."""

    #: model time of the flip, seconds
    at_s: float
    #: index into the cluster's *initial* node list (node-0, node-1, …)
    node_index: int
    #: ``"crash"`` or ``"recover"``
    kind: str

    def __post_init__(self):
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"unknown churn kind {self.kind!r}; choose from {CHURN_KINDS}"
            )
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")


@dataclass(frozen=True)
class ChurnScenario:
    """A named (MTTF, MTTR) churn regime."""

    name: str
    description: str
    #: mean model seconds a node stays up between crashes
    mttf_s: float
    #: mean model seconds a crashed node stays down
    mttr_s: float

    def __post_init__(self):
        if self.mttf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("mttf_s and mttr_s must be > 0")

    @property
    def downtime_fraction(self) -> float:
        """Long-run fraction of node-time spent down."""
        return self.mttr_s / (self.mttf_s + self.mttr_s)

    def trace(
        self, num_nodes: int, horizon_s: float, *, seed: int = 0
    ) -> list[ChurnEvent]:
        """The scenario's deterministic trace for one fleet and horizon."""
        return churn_trace(
            num_nodes,
            horizon_s,
            mttf_s=self.mttf_s,
            mttr_s=self.mttr_s,
            seed=seed,
        )


CHURN_SCENARIOS: dict[str, ChurnScenario] = {
    s.name: s
    for s in (
        ChurnScenario(
            name="light",
            description="rare crashes, fast repairs (~6% node downtime)",
            mttf_s=32.0,
            mttr_s=2.0,
        ),
        ChurnScenario(
            name="moderate",
            description="the benchmark regime: ~20% node downtime",
            mttf_s=8.0,
            mttr_s=2.0,
        ),
        ChurnScenario(
            name="heavy",
            description="crash-looping fleet (~33% node downtime)",
            mttf_s=4.0,
            mttr_s=2.0,
        ),
    )
}


def churn_scenario_by_name(name: str) -> ChurnScenario:
    """Look up a named churn regime (case-insensitive)."""
    try:
        return CHURN_SCENARIOS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown churn scenario {name!r}; available: {sorted(CHURN_SCENARIOS)}"
        ) from None


def churn_trace(
    num_nodes: int,
    horizon_s: float,
    *,
    mttf_s: float,
    mttr_s: float,
    seed: int = 0,
) -> list[ChurnEvent]:
    """Generate one deterministic crash/recovery trace.

    Every node alternates exponential up/down intervals; node streams
    are independently seeded from ``(seed, node_index)`` so the trace
    for node *i* never changes when ``num_nodes`` grows.  Events come
    back sorted by ``(at_s, node_index)``; a crash whose recovery would
    land past the horizon is still emitted (the node simply stays down
    to the end of the run).
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if horizon_s < 0:
        raise ValueError("horizon_s must be >= 0")
    if mttf_s <= 0 or mttr_s <= 0:
        raise ValueError("mttf_s and mttr_s must be > 0")
    events: list[ChurnEvent] = []
    for node_index in range(num_nodes):
        rng = random.Random(f"churn/{seed}/{node_index}")
        t = rng.expovariate(1.0 / mttf_s)
        while t < horizon_s:
            events.append(ChurnEvent(t, node_index, "crash"))
            recover_at = t + rng.expovariate(1.0 / mttr_s)
            if recover_at >= horizon_s:
                break
            events.append(ChurnEvent(recover_at, node_index, "recover"))
            t = recover_at + rng.expovariate(1.0 / mttf_s)
    events.sort(key=lambda e: (e.at_s, e.node_index))
    return events


def trace_for_downtime(
    num_nodes: int,
    horizon_s: float,
    *,
    downtime_fraction: float,
    mttr_s: float = 2.0,
    seed: int = 0,
) -> list[ChurnEvent]:
    """A trace targeting a long-run node downtime fraction.

    Derives ``mttf = mttr * (1 - f) / f`` from the target fraction
    ``f`` — the parameterization the ``repro-cluster --churn-rate`` flag
    exposes.  ``downtime_fraction = 0`` returns an empty trace.
    """
    if not 0 <= downtime_fraction < 1:
        raise ValueError(
            f"downtime_fraction must be in [0, 1), got {downtime_fraction}"
        )
    if downtime_fraction == 0:
        return []
    mttf_s = mttr_s * (1.0 - downtime_fraction) / downtime_fraction
    return churn_trace(
        num_nodes, horizon_s, mttf_s=mttf_s, mttr_s=mttr_s, seed=seed
    )
