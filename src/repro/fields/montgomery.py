"""Montgomery-domain modular arithmetic.

zkPHIRE's modular multipliers are Montgomery multipliers generated with
HLS (§V): "arbitrary-prime" multipliers implement the generic REDC
reduction, while "fixed-prime" multipliers exploit the special form of the
BLS12-381 primes for ~50% area savings.  This module models the *functional*
behaviour (word-by-word REDC over 64-bit limbs), so tests can confirm the
hardware algorithm computes the same products the rest of the stack uses,
and so operation counts have a concrete hardware meaning.
"""

from __future__ import annotations

from repro.fields.prime_field import PrimeField

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


class MontgomeryContext:
    """Montgomery arithmetic for an odd modulus over 64-bit limbs.

    Parameters
    ----------
    field:
        The prime field to operate in.  ``R = 2^(64 * limbs)`` where
        ``limbs`` is the number of 64-bit words needed for the modulus —
        4 limbs for ``Fr`` (255-bit), 6 limbs for ``Fq`` (381-bit),
        matching the paper's 255b/381b datapaths.
    """

    def __init__(self, field: PrimeField):
        if field.modulus % 2 == 0:
            raise ValueError("Montgomery arithmetic requires an odd modulus")
        self.field = field
        self.limbs = (field.bit_length + WORD_BITS - 1) // WORD_BITS
        self.r_bits = self.limbs * WORD_BITS
        self.r = 1 << self.r_bits
        self.r_mask = self.r - 1
        self.r2 = self.r * self.r % field.modulus
        # -p^{-1} mod 2^64, the per-word REDC constant.
        self.n_prime = (-pow(field.modulus, -1, 1 << WORD_BITS)) % (1 << WORD_BITS)

    # -- domain conversion ------------------------------------------------
    def to_mont(self, a: int) -> int:
        """Map canonical ``a`` to Montgomery form ``a * R mod p``."""
        return self.redc(a * self.r2)

    def from_mont(self, a_mont: int) -> int:
        """Map Montgomery-form ``a_mont`` back to canonical form."""
        return self.redc(a_mont)

    # -- core REDC ----------------------------------------------------------
    def redc(self, t: int) -> int:
        """Word-by-word Montgomery reduction of ``t`` (< p * R).

        Returns ``t * R^{-1} mod p``.  This mirrors the iterative
        hardware REDC pipeline: one fused multiply-add-shift per limb.
        """
        p = self.field.modulus
        if t >= p * self.r:
            raise ValueError("REDC input out of range")
        for _ in range(self.limbs):
            m = (t & WORD_MASK) * self.n_prime & WORD_MASK
            t = (t + m * p) >> WORD_BITS
        return t - p if t >= p else t

    def mont_mul(self, a_mont: int, b_mont: int) -> int:
        """Montgomery product: ``a * b * R^{-1} mod p``."""
        return self.redc(a_mont * b_mont)

    # -- convenience: full canonical-domain multiply ----------------------
    def mul(self, a: int, b: int) -> int:
        """Canonical-domain product computed via Montgomery machinery."""
        return self.from_mont(self.mont_mul(self.to_mont(a), self.to_mont(b)))

    def __repr__(self):
        return f"MontgomeryContext({self.field.name}, {self.limbs} limbs)"
