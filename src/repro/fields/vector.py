"""Batched field-vector operations with a pluggable backend registry.

The functional stack's hot loops (MLE fold/extend, SumCheck round
evaluations, OpenCheck batching, MSM windowing) all reduce to a small set
of *vector* primitives over flat ``[0, p)`` integer arrays.  This module
centralises those primitives behind a :class:`VectorBackend` interface so
the same protocol code can run on interchangeable implementations:

* ``reference`` — per-element loops that mirror the original scalar code
  path operation-for-operation.  This is the semantic oracle.
* ``fused`` — the pure-Python fast path: modulus and table lookups are
  hoisted out of the loops, extension columns are produced with
  precomputed per-degree coefficients, and the SumCheck
  extend→product→accumulate dataflow is fused into single passes with
  local-variable binding and deferred modular reduction on accumulators.
* ``array`` — numpy uint64 limb planes with vectorized Montgomery REDC
  and Barrett reduction (:mod:`repro.fields.array_backend`); registered
  only when numpy is importable, otherwise :func:`get_backend` raises
  :class:`BackendUnavailable`.
* ``gmp`` — optional gmpy2 ``mpz`` variant of the fused kernels,
  registered only when gmpy2 is importable.

All backends produce **bit-identical results** and report **identical
:class:`~repro.fields.counters.OpCounter` tallies** — the counter models
the abstract dataflow of the paper's Figure 1, not the Python op count —
so the hw-model cross-checks in ``tests/test_hw_validation.py`` hold on
either path.  ``tests/test_fastpath_differential.py`` locks this down.

Backends are registered by name via :func:`register_backend` and resolved
with :func:`get_backend`; :class:`FieldVec` is a thin value wrapper that
routes operator arithmetic through a chosen backend.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.fields.counters import OpCounter
from repro.fields.prime_field import PrimeField


class VectorBackend:
    """Interface for batched field-vector kernels.

    All methods take and return flat lists of canonical integers in
    ``[0, p)``.  ``counter`` tallies follow the hardware grouping
    (extension-engine vs product-lane) and must be identical across
    backends for identical inputs.
    """

    name = "abstract"

    # -- elementwise -------------------------------------------------------
    def add(self, field: PrimeField, a: Sequence[int], b: Sequence[int],
            counter: OpCounter | None = None) -> list[int]:
        """Elementwise ``(a[i] + b[i]) mod p``."""
        raise NotImplementedError

    def sub(self, field: PrimeField, a: Sequence[int], b: Sequence[int],
            counter: OpCounter | None = None) -> list[int]:
        """Elementwise ``(a[i] - b[i]) mod p``."""
        raise NotImplementedError

    def mul(self, field: PrimeField, a: Sequence[int], b: Sequence[int],
            counter: OpCounter | None = None) -> list[int]:
        """Elementwise ``(a[i] * b[i]) mod p``."""
        raise NotImplementedError

    def scale(self, field: PrimeField, a: Sequence[int], c: int,
              counter: OpCounter | None = None) -> list[int]:
        """Elementwise ``(c * a[i]) mod p``, scalar ``c``."""
        raise NotImplementedError

    def axpy(self, field: PrimeField, acc: Sequence[int], c: int,
             x: Sequence[int], counter: OpCounter | None = None) -> list[int]:
        """``acc + c * x`` elementwise — the OpenCheck batching kernel."""
        raise NotImplementedError

    # -- SumCheck primitives ----------------------------------------------
    def fold(self, field: PrimeField, table: Sequence[int], r: int,
             counter: OpCounter | None = None) -> list[int]:
        """MLE Update: ``out[i] = t[2i] + r * (t[2i+1] - t[2i])`` mod p."""
        raise NotImplementedError

    def fold_tables(self, field: PrimeField, tables: dict, r: int,
                    counter: OpCounter | None = None) -> dict:
        """Fold every table by the same challenge ``r`` (one prover round).

        Semantically identical to calling :meth:`fold` per table — which
        is exactly what this default does — but array-style backends
        override it to fold all tables in a single batched kernel pass.
        Insertion order of ``tables`` is preserved.
        """
        return {
            name: self.fold(field, t, r, counter)
            for name, t in tables.items()
        }

    def wrap_table(self, field: PrimeField, table: Sequence[int]):
        """Adopt a raw table into the backend's preferred representation.

        Purely representational — no field operations, no counter
        activity.  The default returns the table unchanged; the array
        backend converts to limb planes once so every subsequent kernel
        call hits its zero-copy fast path.
        """
        return table

    def extend_columns(self, field: PrimeField, table: Sequence[int],
                       degree: int,
                       counter: OpCounter | None = None) -> list[list[int]]:
        """Extension Engine over a whole table: column ``x`` holds the
        value of every adjacent pair's line at the point ``X = x``, for
        ``x = 0..degree``.  Column 0 is the even half, column 1 the odd
        half."""
        raise NotImplementedError

    def round_evaluations(self, field: PrimeField, terms, tables: dict,
                          degree: int,
                          counter: OpCounter | None = None) -> list[int]:
        """One SumCheck round: s(0..degree) for the given term structure
        over the current (partially folded) raw tables."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# reference backend — the semantic oracle
# ---------------------------------------------------------------------------

class ReferenceBackend(VectorBackend):
    """Per-element loops mirroring the original scalar code paths."""

    name = "reference"

    def add(self, field, a, b, counter=None):
        """Oracle loop for :meth:`VectorBackend.add`."""
        fadd = field.add
        out = [fadd(x, y) for x, y in zip(a, b)]
        if counter is not None:
            counter.count_add(len(out))
        return out

    def sub(self, field, a, b, counter=None):
        """Oracle loop for :meth:`VectorBackend.sub`."""
        fsub = field.sub
        out = [fsub(x, y) for x, y in zip(a, b)]
        if counter is not None:
            counter.count_add(len(out))
        return out

    def mul(self, field, a, b, counter=None):
        """Oracle loop for :meth:`VectorBackend.mul`."""
        fmul = field.mul
        out = [fmul(x, y) for x, y in zip(a, b)]
        if counter is not None:
            counter.count_mul(len(out))
        return out

    def scale(self, field, a, c, counter=None):
        """Oracle loop for :meth:`VectorBackend.scale`."""
        fmul = field.mul
        c %= field.modulus
        out = [fmul(x, c) for x in a]
        if counter is not None:
            counter.count_mul(len(out))
        return out

    def axpy(self, field, acc, c, x, counter=None):
        """Oracle loop for :meth:`VectorBackend.axpy`."""
        p = field.modulus
        c %= p
        out = [(u + c * v) % p for u, v in zip(acc, x)]
        if counter is not None:
            counter.count_mul(len(out))
            counter.count_add(len(out))
        return out

    def fold(self, field, table, r, counter=None):
        """Oracle loop for :meth:`VectorBackend.fold`."""
        p = field.modulus
        r %= p
        out = [0] * (len(table) // 2)
        for i in range(len(out)):
            lo = table[2 * i]
            hi = table[2 * i + 1]
            out[i] = (lo + r * (hi - lo)) % p
        if counter is not None:
            counter.count_mul(len(out), kind="ee")
            counter.count_add(2 * len(out))
        return out

    def extend_columns(self, field, table, degree, counter=None):
        """Oracle loop for :meth:`VectorBackend.extend_columns`."""
        p = field.modulus
        half = len(table) // 2
        cols = [[0] * half for _ in range(degree + 1)]
        for j in range(half):
            lo = table[2 * j] % p
            hi = table[2 * j + 1] % p
            delta = (hi - lo) % p
            cols[0][j] = lo
            if degree >= 1:
                cols[1][j] = hi
            cur = hi
            for x in range(2, degree + 1):
                cur = (cur + delta) % p
                cols[x][j] = cur
        if counter is not None:
            counter.count_add(max(degree - 1, 0) * half)
        return cols

    def round_evaluations(self, field, terms, tables, degree, counter=None):
        # Deliberately mirrors the original per-pair scalar loop
        # (including its counter call pattern) so it can serve as the
        # differential oracle for the fused kernel.
        """Oracle loop for :meth:`VectorBackend.round_evaluations`."""
        p = field.modulus
        names = list(tables)
        half = len(tables[names[0]]) // 2
        evals = [0] * (degree + 1)
        for j in range(half):
            exts = {}
            for name in names:
                t = tables[name]
                lo = t[2 * j] % p
                hi = t[2 * j + 1] % p
                delta = (hi - lo) % p
                ext = [lo, hi]
                cur = hi
                for _ in range(degree - 1):
                    cur = (cur + delta) % p
                    ext.append(cur)
                if counter is not None:
                    counter.count_add(max(degree - 1, 0))
                exts[name] = ext[: degree + 1]
            for term in terms:
                coeff = term.coeff
                for x in range(degree + 1):
                    prod = coeff
                    nmul = 0
                    for name, power in term.factors:
                        e = exts[name][x]
                        for _ in range(power):
                            prod = prod * e % p
                            nmul += 1
                    evals[x] = (evals[x] + prod) % p
                    if counter is not None:
                        counter.count_mul(nmul, kind="pl")
                        counter.count_add(1)
        return evals


# ---------------------------------------------------------------------------
# fused backend — the fast path
# ---------------------------------------------------------------------------

class FusedBackend(VectorBackend):
    """Hoisted, fused, comprehension-driven kernels.

    Techniques (all semantics-preserving):

    * the modulus and every table are bound to locals once per call;
    * extension columns use the precomputed coefficient identity
      ``line(x) = lo + x * (hi - lo)`` instead of a per-point adder chain;
    * the round kernel fuses extend → product → accumulate into one pass
      over column vectors, deferring modular reduction on accumulators
      (partial products stay ``< p**lanes``, sums reduce once at the end);
    * counter tallies are computed in closed form and applied in bulk.
    """

    name = "fused"

    def add(self, field, a, b, counter=None):
        """Fused-loop :meth:`VectorBackend.add`."""
        p = field.modulus
        out = [(x + y) % p for x, y in zip(a, b)]
        if counter is not None:
            counter.count_add(len(out))
        return out

    def sub(self, field, a, b, counter=None):
        """Fused-loop :meth:`VectorBackend.sub`."""
        p = field.modulus
        out = [(x - y) % p for x, y in zip(a, b)]
        if counter is not None:
            counter.count_add(len(out))
        return out

    def mul(self, field, a, b, counter=None):
        """Fused-loop :meth:`VectorBackend.mul`."""
        p = field.modulus
        out = [x * y % p for x, y in zip(a, b)]
        if counter is not None:
            counter.count_mul(len(out))
        return out

    def scale(self, field, a, c, counter=None):
        """Fused-loop :meth:`VectorBackend.scale`."""
        p = field.modulus
        c %= p
        out = [x * c % p for x in a]
        if counter is not None:
            counter.count_mul(len(out))
        return out

    def axpy(self, field, acc, c, x, counter=None):
        """Fused-loop :meth:`VectorBackend.axpy`."""
        p = field.modulus
        c %= p
        out = [(u + c * v) % p for u, v in zip(acc, x)]
        if counter is not None:
            counter.count_mul(len(out))
            counter.count_add(len(out))
        return out

    def fold(self, field, table, r, counter=None):
        """Fused-loop :meth:`VectorBackend.fold`."""
        p = field.modulus
        r %= p
        lo = table[::2]
        hi = table[1::2]
        out = [(l + r * (h - l)) % p for l, h in zip(lo, hi)]
        if counter is not None:
            counter.count_mul(len(out), kind="ee")
            counter.count_add(2 * len(out))
        return out

    def extend_columns(self, field, table, degree, counter=None):
        """Fused-loop :meth:`VectorBackend.extend_columns`."""
        p = field.modulus
        # normalize the pair slices so non-canonical input stays
        # bit-identical to the reference backend; an odd table's unpaired
        # trailing element is dropped, exactly like the reference loop
        half = len(table) // 2
        lo = [v % p for v in table[:2 * half:2]]
        hi = [v % p for v in table[1:2 * half:2]]
        cols = [lo, hi]
        # precomputed extension coefficient: line(x) = lo + x * (hi - lo)
        for x in range(2, degree + 1):
            cols.append([(l + x * (h - l)) % p for l, h in zip(lo, hi)])
        if counter is not None:
            counter.count_add(max(degree - 1, 0) * len(lo))
        return cols[: degree + 1]

    @staticmethod
    def _extend_flat(p: int, table: Sequence[int], degree: int) -> list[int]:
        """Flat column-major extension array: ``flat[x * half + j]`` is
        pair ``j``'s line evaluated at ``X = x``.  One list per MLE for
        *all* points, so downstream product passes run once per term
        rather than once per (term, point).  Requires canonical ``[0, p)``
        input (guaranteed by DenseMLE tables and fold outputs)."""
        half = len(table) // 2
        lo = table[:2 * half:2]
        hi = table[1:2 * half:2]
        flat = list(lo)
        if degree >= 1:
            flat += hi
        if degree >= 2:
            # incremental adder chain over whole columns: col[x] = col[x-1]
            # + delta (deltas stay unreduced in (-p, p); sums normalize)
            delta = [h - l for h, l in zip(hi, lo)]
            cur = hi
            for _ in range(degree - 1):
                cur = [(c + d) % p for c, d in zip(cur, delta)]
                flat += cur
        return flat

    def round_evaluations(self, field, terms, tables, degree, counter=None):
        """Fused-loop :meth:`VectorBackend.round_evaluations`."""
        p = field.modulus
        npts = degree + 1
        names = list(tables)
        half = len(tables[names[0]]) // 2

        # flat extension arrays, one slice-and-extend pass per MLE
        flat = {name: self._extend_flat(p, tables[name], degree)
                for name in names}

        # elementwise power columns, cached per (name, power) so a factor
        # like w1^5 shared by several terms is exponentiated once; whole
        # columns are squared-and-multiplied (comprehensions beat per-
        # element pow() calls)
        pow_cache: dict[tuple[str, int], list[int]] = {}

        def factor_col(name: str, power: int) -> list[int]:
            if power == 1:
                return flat[name]
            col = pow_cache.get((name, power))
            if col is None:
                base = flat[name]
                if power == 2:
                    col = [v * v % p for v in base]
                elif power == 3:
                    col = [v * v * v % p for v in base]
                elif power == 4:
                    sq = [v * v % p for v in base]
                    col = [s * s % p for s in sq]
                elif power == 5:
                    sq = [v * v % p for v in base]
                    col = [s * s * v % p for s, v in zip(sq, base)]
                else:
                    result = None
                    e = power
                    while e:
                        if e & 1:
                            result = base if result is None else [
                                u * v % p for u, v in zip(result, base)
                            ]
                        e >>= 1
                        if e:
                            base = [v * v % p for v in base]
                    col = result
                pow_cache[(name, power)] = col
            return col

        evals = [0] * npts
        for term in terms:
            coeff = term.coeff % p
            factors = term.factors
            k = len(factors)
            if k == 0:
                # constant term: contributes coeff once per pair
                contrib = coeff * half % p
                for x in range(npts):
                    evals[x] = (evals[x] + contrib) % p
                continue
            # single product pass across all points; modular reduction is
            # deferred to the per-point sums (partials stay < p**k)
            if k == 1:
                prods = factor_col(*factors[0])
            elif k == 2:
                a = factor_col(*factors[0])
                b = factor_col(*factors[1])
                prods = [u * v for u, v in zip(a, b)]
            elif k == 3:
                a = factor_col(*factors[0])
                b = factor_col(*factors[1])
                c3 = factor_col(*factors[2])
                prods = [u * v * w for u, v, w in zip(a, b, c3)]
            else:
                # k >= 4: reduce three lanes at a time, reducing mod p
                # between passes to bound intermediate growth
                lane_cols = [factor_col(name, power) for name, power in factors]
                acc = [u * v % p for u, v in zip(lane_cols[0], lane_cols[1])]
                i = 2
                while k - i >= 3:
                    acc = [
                        t * u * v % p
                        for t, u, v in zip(acc, lane_cols[i], lane_cols[i + 1])
                    ]
                    i += 2
                rest = lane_cols[i:]  # the loop bound leaves 1 or 2 lanes
                if len(rest) == 1:
                    prods = [u * v for u, v in zip(acc, rest[0])]
                else:
                    prods = [
                        u * v * w for u, v, w in zip(acc, rest[0], rest[1])
                    ]
            for x in range(npts):
                s = sum(prods[x * half:(x + 1) * half]) % p
                evals[x] = (evals[x] + coeff * s) % p

        if counter is not None:
            # closed-form tallies matching the reference loop exactly
            counter.count_add(max(degree - 1, 0) * half * len(names))
            sum_deg = sum(term.degree for term in terms)
            counter.count_mul(half * npts * sum_deg, kind="pl")
            counter.count_add(half * npts * len(terms))
        return evals


# ---------------------------------------------------------------------------
# backend registry
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, VectorBackend] = {}

#: backends that failed to register, mapped to a human-readable reason
#: (typically a missing optional dependency); :func:`get_backend` turns
#: these into :class:`BackendUnavailable` instead of "unknown backend"
_UNAVAILABLE: dict[str, str] = {}

DEFAULT_BACKEND = "reference"


class BackendUnavailable(RuntimeError):
    """A known backend cannot run here (missing optional dependency).

    Distinct from the ``ValueError`` raised for truly unknown names so
    callers (and CI's no-numpy leg) can tell a typo from a degraded
    environment; the message names the install extra that fixes it.
    """


def register_backend(name: str, backend: VectorBackend) -> None:
    """Register (or replace) a named backend implementation."""
    if not isinstance(backend, VectorBackend):
        raise TypeError("backend must be a VectorBackend instance")
    _UNAVAILABLE.pop(name, None)
    _BACKENDS[name] = backend


def get_backend(backend: str | VectorBackend | None = None) -> VectorBackend:
    """Resolve a backend name (or pass through an instance).

    ``None`` resolves to the session default (``reference`` unless
    :func:`set_default_backend` changed it), preserving the
    pre-fast-path semantics everywhere a caller doesn't opt in.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, VectorBackend):
        return backend
    try:
        return _BACKENDS[backend]
    except KeyError:
        if backend in _UNAVAILABLE:
            raise BackendUnavailable(
                f"vector backend {backend!r} is unavailable: "
                f"{_UNAVAILABLE[backend]}"
            ) from None
        raise ValueError(
            f"unknown vector backend {backend!r}; "
            f"available: {available_backends()}"
        ) from None


def list_backends() -> list[str]:
    """Sorted names of every backend that can actually run here.

    This is the single source of truth for CLI ``--backend`` choices and
    for the test parametrization matrix; backends whose optional
    dependencies are missing are omitted (see :func:`unavailable_backends`).
    """
    return sorted(_BACKENDS)


def available_backends() -> list[str]:
    """Alias of :func:`list_backends` (kept for older call sites)."""
    return list_backends()


def unavailable_backends() -> dict[str, str]:
    """Known-but-unregistered backends mapped to the reason (a copy)."""
    return dict(_UNAVAILABLE)


def set_default_backend(backend: str | VectorBackend | None) -> str:
    """Set the backend that ``None`` selections resolve to; returns its name.

    Validates like :func:`get_backend` (unknown names raise
    ``ValueError``, unavailable ones :class:`BackendUnavailable`).  Used
    by ``repro-experiments --backend`` to steer every functional kernel
    an experiment touches without threading a parameter through each
    experiment module.
    """
    global DEFAULT_BACKEND
    DEFAULT_BACKEND = backend_name(backend)
    return DEFAULT_BACKEND


def backend_name(backend: str | VectorBackend | None) -> str:
    """Normalize a backend selection to its registry name.

    Validates the selection (unknown names raise, like :func:`get_backend`)
    and returns a plain string, which is what crosses process boundaries
    in :mod:`repro.service` worker pools — backend instances are never
    pickled, workers re-resolve the name against their own registry.
    """
    if isinstance(backend, str):
        get_backend(backend)  # validate
        return backend
    return get_backend(backend).name


register_backend("reference", ReferenceBackend())
register_backend("fused", FusedBackend())

# optional fast backends: numpy limb planes ("array") and gmpy2 ("gmp").
# Import failures downgrade them to _UNAVAILABLE so list_backends() — and
# every CLI choices list built from it — shrinks instead of breaking,
# and get_backend() raises a clear BackendUnavailable.
try:
    from repro.fields.array_backend import ArrayBackend, GmpBackend
except ImportError as exc:
    _UNAVAILABLE["array"] = (
        f"requires numpy (pip install repro-zkphire[fast]): {exc}"
    )
    _UNAVAILABLE["gmp"] = (
        f"requires numpy + gmpy2 (pip install repro-zkphire[fast,gmp]): {exc}"
    )
else:
    register_backend("array", ArrayBackend())
    try:
        import gmpy2  # noqa: F401  (availability probe only)
    except ImportError as exc:
        _UNAVAILABLE["gmp"] = (
            f"requires gmpy2 (pip install repro-zkphire[gmp]): {exc}"
        )
    else:
        register_backend("gmp", GmpBackend())


# ---------------------------------------------------------------------------
# FieldVec — a value wrapper over the backend kernels
# ---------------------------------------------------------------------------

class FieldVec:
    """A flat vector of canonical field elements bound to a backend.

    Arithmetic between two ``FieldVec``s requires equal length and the
    same field; the left operand's backend carries out the operation.
    ``int`` operands broadcast as scalars.
    """

    __slots__ = ("field", "values", "backend")

    def __init__(self, field: PrimeField, values: Sequence[int],
                 backend: str | VectorBackend | None = None):
        p = field.modulus
        self.field = field
        self.values = [v % p for v in values]
        self.backend = get_backend(backend)

    # -- constructors ------------------------------------------------------
    @classmethod
    def zeros(cls, field: PrimeField, n: int,
              backend: str | VectorBackend | None = None) -> "FieldVec":
        """An all-zero vector of length ``n``."""
        return cls(field, [0] * n, backend)

    @classmethod
    def random(cls, field: PrimeField, n: int,
               rng: random.Random | None = None,
               backend: str | VectorBackend | None = None) -> "FieldVec":
        """A vector of ``n`` uniform elements from ``rng``."""
        rng = rng or random.Random()
        return cls(field, [rng.randrange(field.modulus) for _ in range(n)],
                   backend)

    # -- arithmetic --------------------------------------------------------
    def _coerce(self, other) -> list[int]:
        if isinstance(other, FieldVec):
            if other.field != self.field:
                raise ValueError("FieldVec field mismatch")
            if len(other.values) != len(self.values):
                raise ValueError("FieldVec length mismatch")
            return other.values
        raise TypeError(f"cannot combine FieldVec with {type(other).__name__}")

    def add(self, other, counter: OpCounter | None = None) -> "FieldVec":
        """Elementwise sum with ``other``."""
        out = self.backend.add(self.field, self.values, self._coerce(other),
                               counter)
        return self._wrap(out)

    def sub(self, other, counter: OpCounter | None = None) -> "FieldVec":
        """Elementwise difference with ``other``."""
        out = self.backend.sub(self.field, self.values, self._coerce(other),
                               counter)
        return self._wrap(out)

    def mul(self, other, counter: OpCounter | None = None) -> "FieldVec":
        """Elementwise (Hadamard) product with ``other``."""
        out = self.backend.mul(self.field, self.values, self._coerce(other),
                               counter)
        return self._wrap(out)

    def scale(self, c: int, counter: OpCounter | None = None) -> "FieldVec":
        """Every element multiplied by a scalar."""
        return self._wrap(self.backend.scale(self.field, self.values, c,
                                             counter))

    def axpy(self, c: int, x: "FieldVec",
             counter: OpCounter | None = None) -> "FieldVec":
        """``self + c * x`` elementwise."""
        return self._wrap(self.backend.axpy(self.field, self.values, c,
                                            self._coerce(x), counter))

    def fold(self, r: int, counter: OpCounter | None = None) -> "FieldVec":
        """Fold adjacent pairs by challenge ``r`` (MLE Update)."""
        if len(self.values) < 2:
            raise ValueError("fold needs at least one pair")
        return self._wrap(self.backend.fold(self.field, self.values, r,
                                            counter))

    def extend(self, degree: int,
               counter: OpCounter | None = None) -> list["FieldVec"]:
        """Extension columns at X = 0..degree, each of length ``n // 2``."""
        cols = self.backend.extend_columns(self.field, self.values, degree,
                                           counter)
        return [self._wrap(c) for c in cols]

    def _wrap(self, values: list[int]) -> "FieldVec":
        out = object.__new__(FieldVec)
        out.field = self.field
        out.values = values
        out.backend = self.backend
        return out

    def __add__(self, other):
        return self.add(other)

    def __sub__(self, other):
        return self.sub(other)

    def __mul__(self, other):
        if isinstance(other, int):
            return self.scale(other)
        return self.mul(other)

    def __rmul__(self, other):
        if isinstance(other, int):
            return self.scale(other)
        return NotImplemented

    # -- misc --------------------------------------------------------------
    def to_list(self) -> list[int]:
        """A plain ``list[int]`` copy of the values."""
        return list(self.values)

    def __len__(self):
        return len(self.values)

    def __getitem__(self, idx):
        return self.values[idx]

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other):
        if isinstance(other, FieldVec):
            return self.field == other.field and self.values == other.values
        if isinstance(other, (list, tuple)):
            return self.values == list(other)
        return NotImplemented

    def __repr__(self):
        return (f"FieldVec(n={len(self.values)}, {self.field.name}, "
                f"backend={self.backend.name})")


# ---------------------------------------------------------------------------
# batched scalar windowing (MSM support)
# ---------------------------------------------------------------------------

def window_decompose(values: Sequence[int], window_bits: int,
                     num_windows: int) -> list[list[int]]:
    """Decompose every scalar into its ``window_bits``-wide digits.

    Returns ``digits[w][i]`` = window ``w`` (LSB first) of ``values[i]``.
    Each scalar is shifted through once, instead of re-shifting the whole
    vector for every window as the scalar Pippenger loop does — the
    batched analogue of zkPHIRE's MSM scalar pre-slicing.
    """
    if window_bits < 1:
        raise ValueError("window_bits must be >= 1")
    mask = (1 << window_bits) - 1
    digits = [[0] * len(values) for _ in range(num_windows)]
    for i, k in enumerate(values):
        w = 0
        while k and w < num_windows:
            d = k & mask
            if d:
                digits[w][i] = d
            k >>= window_bits
            w += 1
    return digits
