"""BLS12-381 field constants.

zkPHIRE (like HyperPlonk and zkSpeed) works over the BLS12-381 pairing
curve [Bowe17]:

* ``Fr`` — the 255-bit scalar field.  All MLE table entries, witnesses,
  selectors, and SumCheck traffic are ``Fr`` elements; the paper's 255-bit
  datapaths (modular multipliers, scratchpad words) correspond to this
  field.
* ``Fq`` — the 381-bit base field of the curve.  Elliptic-curve point
  coordinates (MSM datapaths, PADD units) are ``Fq`` elements.

The curve equation is y^2 = x^3 + 4 over ``Fq``; its G1 group has prime
order ``FR_MODULUS``.
"""

from repro.fields.prime_field import PrimeField

#: BLS12-381 scalar-field modulus r (255 bits).
FR_MODULUS = 0x73EDA753299D7D483339D80809A1D80553BDA402FFFE5BFEFFFFFFFF00000001

#: BLS12-381 base-field modulus q (381 bits).
FQ_MODULUS = int(
    "0x1A0111EA397FE69A4B1BA7B6434BACD764774B84F38512BF6730D2A0F6B0F624"
    "1EABFFFEB153FFFFB9FEFFFFFFFFAAAB",
    16,
)

#: The curve parameter x such that r = x^4 - x^2 + 1 (negative for BLS12-381).
BLS_X = -0xD201000000010000

Fr = PrimeField(FR_MODULUS, "Fr")
Fq = PrimeField(FQ_MODULUS, "Fq")

#: Curve coefficient b in y^2 = x^3 + b for G1.
G1_B = 4

#: Canonical G1 generator (affine), from the BLS12-381 specification.
G1_GENERATOR_X = int(
    "0x17F1D3A73197D7942695638C4FA9AC0FC3688C4F9774B905A14E3A3F171BAC58"
    "6C55E83FF97A1AEFFB3AF00ADB22C6BB",
    16,
)
G1_GENERATOR_Y = int(
    "0x08B3F481E3AAA0F1A09E30ED741D8AE4FCF5E095D5D00AF600DB18CB2C04B3ED"
    "D03CC744A2888AE40CAA232946C5E7E1",
    16,
)
