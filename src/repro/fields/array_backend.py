"""numpy limb-plane field vectors: the ``array`` backend (plus ``gmp``).

The ``fused`` backend hoists Python bytecode out of the hot loops but
still pays CPython's per-element bigint dispatch.  This module stores a
vector of field elements *transposed* — as a ``(limbs, n)`` ``uint64``
array of 30-bit limb planes — so one numpy ufunc touches limb ``i`` of
every element at once:

* **limb layout** — element ``j`` is ``sum(planes[i][j] << 30*i)``.
  30-bit limbs leave 4 headroom bits per 64-bit word *after* a full
  schoolbook product column (≤ 16 products of two 30-bit limbs plus a
  carry stay below 2^64), so convolutions run carry-free and normalize
  once at the end.  The limb count ``L`` is padded until ``4p < 2^(30L)``
  so conditional-subtract results always fit without an overflow plane.
* **vectorized Montgomery REDC** — scalar multiplications (``fold``,
  ``scale``, ``axpy``) pre-scale the Python-int scalar by ``R = 2^(30L)``
  once, then run a single word-by-word REDC over the limb planes:
  ``REDC(a · (c·R mod p)) = a·c mod p`` with zero per-element domain
  conversions.  The REDC inner loop is carry-free by the same headroom
  argument (column magnitudes stay < 2^63.3 across all ``L`` iterations).
* **Barrett where it wins** — elementwise vector×vector products have no
  precomputable scalar, so REDC would need a second pass to divide the
  stray ``R^-1`` back out.  There the one-pass Barrett reduction
  (``q = ((T >> 30(k-1)) · μ) >> 30(k+1)``, two conditional subtracts)
  reduces the exact double-width product directly.
* **deferred reduction in the round kernel** — SumCheck round products
  are accumulated as *exact* integer convolutions (plane counts grow per
  factor lane), summed per evaluation point with one ``ndarray.sum``,
  and reduced mod p once per (term, point) — mirroring the fused
  backend's ``< p**lanes`` partial-product strategy.

Kernel outputs are wrapped in :class:`LimbVector`, a lazy list-like
view, so chained calls (SumCheck's fold→extend→fold round structure)
stay in limb-plane form and only materialize Python ints at the edges
(final evaluations, transcript absorption, differential comparisons).

Everything here is bit-identical to the ``reference`` backend and
reports the same closed-form :class:`~repro.fields.counters.OpCounter`
tallies; ``tests/test_fastpath_differential.py`` and
``tests/test_vector_fuzz.py`` enforce both.  The module imports only
when numpy is present — :mod:`repro.fields.vector` registers the backend
opportunistically and reports :class:`~repro.fields.vector.BackendUnavailable`
otherwise.

The ``gmp`` variant at the bottom swaps CPython bigints for ``gmpy2``
``mpz`` objects behind the exact same interface; it is registered only
when gmpy2 imports.
"""

from __future__ import annotations

import operator
from collections.abc import Sequence as _SequenceABC
from typing import Sequence

import numpy as np

from repro.fields.prime_field import PrimeField
from repro.fields.vector import FusedBackend, VectorBackend

LIMB_BITS = 30
LIMB_BASE = 1 << LIMB_BITS
LIMB_MASK = LIMB_BASE - 1

#: max products a single convolution column may accumulate in a uint64
_MAX_CONV_LANES = 16

_U64_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)
_SHIFT = np.uint64(LIMB_BITS)
_MASK = np.uint64(LIMB_MASK)


class LimbPlan:
    """Per-field limb layout and reduction constants (cached per modulus).

    ``limbs`` (L) is the plane count, padded so ``4p < 2^(30L)`` — the
    headroom that lets conditional subtracts and REDC outputs fit in L
    planes.  Also precomputes the Montgomery constants (``R = 2^(30L)``,
    ``n' = -p^-1 mod 2^30``) and the Barrett constants over the field's
    *significant* digit count ``k`` (``mu = floor(2^(60k) / p)``).
    """

    __slots__ = (
        "p", "limbs", "words", "r", "r2", "n_prime", "k_sig", "mu_limbs",
        "p_limbs", "p_col", "pc_col", "_mont_scalar_cache",
    )

    def __init__(self, field: PrimeField):
        p = field.modulus
        if p < 3 or p % 2 == 0:
            raise ValueError(
                f"array backend needs an odd modulus >= 3, got {p}"
            )
        self.p = p
        limbs = max(2, -(-(p.bit_length() + 2) // LIMB_BITS))
        while 4 * p >= 1 << (LIMB_BITS * limbs):
            limbs += 1
        k_sig = -(-p.bit_length() // LIMB_BITS)
        if max(limbs, k_sig + 1) > _MAX_CONV_LANES:
            raise ValueError(
                f"modulus too wide for carry-free convolution "
                f"({limbs} limbs > {_MAX_CONV_LANES})"
            )
        self.limbs = limbs
        #: 64-bit words per element in the byte-conversion fast path
        self.words = -(-(LIMB_BITS * limbs) // 64)
        self.r = 1 << (LIMB_BITS * limbs)
        self.r2 = self.r * self.r % p
        self.n_prime = np.uint64((-pow(p, -1, LIMB_BASE)) % LIMB_BASE)
        # Barrett runs over the significant digit count (headroom planes
        # would break the q1/q3 digit-shift bounds)
        self.k_sig = k_sig
        mu = (1 << (2 * LIMB_BITS * k_sig)) // p
        self.mu_limbs = _int_to_limbs(mu)
        self.p_limbs = _int_to_limbs(p, limbs)
        self.p_col = np.array(self.p_limbs, dtype=np.uint64)[:, None]
        # complement 2^(30L) - p: adding it sets the carry-out bit iff
        # the addend was >= p (the branch-free conditional subtract)
        self.pc_col = np.array(
            _int_to_limbs(self.r - p, limbs), dtype=np.uint64
        )[:, None]
        self._mont_scalar_cache: dict[int, list[int]] = {}

    def mont_scalar(self, c: int) -> list[int]:
        """Limbs of ``c·R mod p`` — the pre-scaled REDC multiplicand."""
        c %= self.p
        limbs = self._mont_scalar_cache.get(c)
        if limbs is None:
            limbs = _int_to_limbs(c * self.r % self.p, self.limbs)
            if len(self._mont_scalar_cache) > 64:
                self._mont_scalar_cache.clear()
            self._mont_scalar_cache[c] = limbs
        return limbs


_PLAN_CACHE: dict[int, LimbPlan] = {}


def get_plan(field: PrimeField) -> LimbPlan:
    """The (cached) :class:`LimbPlan` for a field's modulus."""
    plan = _PLAN_CACHE.get(field.modulus)
    if plan is None:
        plan = LimbPlan(field)
        _PLAN_CACHE[field.modulus] = plan
    return plan


def _int_to_limbs(value: int, width: int | None = None) -> list[int]:
    """Little-endian 30-bit digits of a nonnegative int (padded to width)."""
    out = []
    while value:
        out.append(value & LIMB_MASK)
        value >>= LIMB_BITS
    if width is not None:
        out.extend([0] * (width - len(out)))
    return out


def to_planes(plan: LimbPlan, values: Sequence[int]) -> np.ndarray:
    """Canonicalize a value sequence into ``(L, n)`` uint64 limb planes.

    :class:`LimbVector` inputs on the same plan pass through without any
    per-element work — the cross-round fast path.  Everything else is
    reduced mod p and split via one bulk ``to_bytes``/``frombuffer``
    round-trip (no per-limb Python loop over elements).
    """
    if isinstance(values, LimbVector) and values.plan is plan:
        return values.planes
    p = plan.p
    vals = [v % p for v in values]
    n = len(vals)
    if n == 0:
        return np.zeros((plan.limbs, 0), dtype=np.uint64)
    step = plan.words * 8
    buf = b"".join([v.to_bytes(step, "little") for v in vals])
    words = np.frombuffer(buf, dtype=np.uint64).reshape(n, plan.words).T
    planes = np.empty((plan.limbs, n), dtype=np.uint64)
    for i in range(plan.limbs):
        word, off = divmod(LIMB_BITS * i, 64)
        x = words[word] >> np.uint64(off)
        if off > 64 - LIMB_BITS and word + 1 < plan.words:
            x = x | (words[word + 1] << np.uint64(64 - off))
        planes[i] = x & _MASK
    return planes


def from_planes(plan: LimbPlan, planes: np.ndarray) -> list[int]:
    """Materialize ``(L, n)`` canonical limb planes back into Python ints."""
    n = planes.shape[1]
    if n == 0:
        return []
    words = np.zeros((plan.words, n), dtype=np.uint64)
    for i in range(plan.limbs):
        word, off = divmod(LIMB_BITS * i, 64)
        words[word] |= planes[i] << np.uint64(off)
        if off > 64 - LIMB_BITS and word + 1 < plan.words:
            words[word + 1] |= planes[i] >> np.uint64(64 - off)
    buf = words.T.tobytes()
    step = plan.words * 8
    return [
        int.from_bytes(buf[j * step:(j + 1) * step], "little")
        for j in range(n)
    ]


def _normalize(t: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Propagate carries so every plane is < 2^30 (values < 2^63.3 ok).

    All work happens through preallocated ``out=`` ufunc buffers (three
    ufunc dispatches per plane, zero allocations in the loop); ``out``
    may alias ``t`` for in-place normalization.
    """
    rows, n = t.shape
    if out is None:
        out = np.empty_like(t)
    carry = np.zeros(n, dtype=np.uint64)
    s = np.empty(n, dtype=np.uint64)
    for i in range(rows):
        np.add(t[i], carry, out=s)
        np.bitwise_and(s, _MASK, out=out[i])
        np.right_shift(s, _SHIFT, out=carry)
    return out


def _cond_sub_p(plan: LimbPlan, v: np.ndarray) -> np.ndarray:
    """Branch-free ``v - p if v >= p else v`` for values < p + 2^(30L).

    Adds the complement ``2^(30L) - p``; the carry out of the top plane
    is exactly the ``v >= p`` predicate, selecting between the wrapped
    sum (``v - p``) and the original.
    """
    u = v + plan.pc_col
    n = v.shape[1]
    carry = np.zeros(n, dtype=np.uint64)
    s = np.empty(n, dtype=np.uint64)
    for i in range(plan.limbs):
        np.add(u[i], carry, out=s)
        np.bitwise_and(s, _MASK, out=u[i])
        np.right_shift(s, _SHIFT, out=carry)
    return np.where(carry.astype(bool)[None, :], u, v)


def add_mod(plan: LimbPlan, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a + b) mod p`` over canonical limb planes."""
    t = a + b
    return _cond_sub_p(plan, _normalize(t, out=t))


def sub_mod(plan: LimbPlan, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a - b) mod p`` over canonical limb planes.

    The borrow chain rides uint64 wraparound: a negative digit wraps to
    the top of the range, so bit 63 *is* the borrow, and ``& MASK``
    still recovers the digit because 2^64 ≡ 0 (mod 2^30).
    """
    limbs, n = a.shape
    out = np.empty_like(a)
    borrow = np.zeros(n, dtype=np.uint64)
    d = np.empty(n, dtype=np.uint64)
    b63 = np.uint64(63)
    for i in range(limbs):
        np.subtract(a[i], b[i], out=d)
        np.subtract(d, borrow, out=d)
        np.bitwise_and(d, _MASK, out=out[i])
        np.right_shift(d, b63, out=borrow)
    neg = borrow.astype(bool)
    if not neg.any():
        return out
    t = out + plan.p_col
    fixed = _normalize(t, out=t)
    return np.where(neg[None, :], fixed, out)


def _conv(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact carry-free schoolbook product of limb planes.

    ``b`` must be normalized with at most ``_MAX_CONV_LANES`` planes (the
    per-column accumulation bound); ``a`` may be arbitrarily tall, which
    is what lets the round kernel chain products without reducing.
    Returns *normalized* planes of the full product.
    """
    la, n = a.shape
    lb = b.shape[0]
    t = np.zeros((la + lb, n), dtype=np.uint64)
    scratch = np.empty((la, n), dtype=np.uint64)
    for i in range(lb):
        bi = b[i]
        if bi.any():
            np.multiply(a, bi, out=scratch)
            tt = t[i:i + la]
            np.add(tt, scratch, out=tt)
    return _normalize(t, out=t)


def _redc(plan: LimbPlan, t: np.ndarray) -> np.ndarray:
    """Word-by-word Montgomery reduction: ``T -> T·R^-1 mod p``.

    ``t`` holds normalized planes of ``T < p·R`` (at least ``2L + 1`` of
    them; extra zero planes are fine) and is consumed in place.  The L
    inner iterations run carry-free: plane ``k + j`` accumulates at most
    L products of 30-bit limbs plus one deferred carry, all < 2^63.3.
    """
    limbs = plan.limbs
    rows = 2 * limbs + 1
    n = t.shape[1]
    if t.shape[0] < rows:
        t = np.vstack([t, np.zeros((rows - t.shape[0], n), dtype=np.uint64)])
    p_col = plan.p_col
    n_prime = plan.n_prime
    m = np.empty(n, dtype=np.uint64)
    carry = np.empty(n, dtype=np.uint64)
    scratch = np.empty((limbs, n), dtype=np.uint64)
    for k in range(limbs):
        np.multiply(t[k], n_prime, out=m)
        np.bitwise_and(m, _MASK, out=m)
        np.multiply(p_col, m, out=scratch)
        tt = t[k:k + limbs]
        np.add(tt, scratch, out=tt)
        np.right_shift(t[k], _SHIFT, out=carry)
        np.add(t[k + 1], carry, out=t[k + 1])
    res = t[limbs:rows]
    return _cond_sub_p(plan, _normalize(res, out=res)[:limbs])


def mont_mul_scalar(
    plan: LimbPlan, a: np.ndarray, scalar_limbs: Sequence[int]
) -> np.ndarray:
    """``a · c mod p`` where ``scalar_limbs`` encode ``c·R mod p``.

    One convolution + one REDC; the pre-scaling by R makes the REDC's
    stray ``R^-1`` cancel exactly, so no domain conversions happen.
    """
    limbs, n = a.shape
    t = np.zeros((2 * limbs + 1, n), dtype=np.uint64)
    scratch = np.empty((limbs, n), dtype=np.uint64)
    for i, si in enumerate(scalar_limbs):
        if si:
            np.multiply(a, np.uint64(si), out=scratch)
            tt = t[i:i + limbs]
            np.add(tt, scratch, out=tt)
    return _redc(plan, _normalize(t, out=t))


def barrett_reduce(plan: LimbPlan, t: np.ndarray) -> np.ndarray:
    """One-pass Barrett reduction of an exact product ``T < p^2``.

    Standard digit-level Barrett over base 2^30 with ``k`` = the field's
    significant digit count: ``q = ((T >> 30(k-1)) · mu) >> 30(k+1)``
    under-estimates ``T // p`` by at most 2, so two conditional
    subtracts finish the job.  ``t`` must be normalized planes.
    """
    k = plan.k_sig
    n = t.shape[1]
    q1 = t[k - 1:]
    mu = np.array(plan.mu_limbs, dtype=np.uint64)[:, None]
    q2 = _conv(q1, mu) if q1.shape[0] else np.zeros((1, n), dtype=np.uint64)
    q3 = q2[k + 1:]
    low = k + 1
    r1 = t[:low]
    r2 = _conv(q3, plan.p_col)[:low] if q3.shape[0] else np.zeros(
        (low, n), dtype=np.uint64
    )
    # r1 - r2 is in [0, 3p): borrow-subtract in `low` planes, then trim
    # or pad to L and conditionally subtract p twice
    diff = np.empty((low, n), dtype=np.uint64)
    borrow = np.zeros(n, dtype=np.uint64)
    base = np.uint64(LIMB_BASE)
    for i in range(low):
        d = r1[i] + base - (r2[i] if i < r2.shape[0] else 0) - borrow
        diff[i] = d & _MASK
        borrow = np.uint64(1) - (d >> _SHIFT)
    limbs = plan.limbs
    if low < limbs:
        diff = np.vstack([diff, np.zeros((limbs - low, n), dtype=np.uint64)])
    v = diff[:limbs]
    # the remainder estimate is < 3p, so two rounds of the subtract
    v = _cond_sub_p(plan, v)
    return _cond_sub_p(plan, v)


def mul_mod(plan: LimbPlan, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``a · b mod p`` — exact convolution + Barrett."""
    return barrett_reduce(plan, _conv(a, b))


class LimbVector(_SequenceABC):
    """A lazy list-like view over ``(L, n)`` limb planes.

    Backend kernels return these instead of materialized ``list[int]``
    so chained calls (fold→fold across SumCheck rounds) skip both
    conversions.  Iteration, slicing, indexing, and ``==`` behave exactly
    like the equivalent list of canonical ints; materialization happens
    once and is cached.
    """

    __slots__ = ("plan", "planes", "_materialized")

    def __init__(self, plan: LimbPlan, planes: np.ndarray):
        self.plan = plan
        self.planes = planes
        self._materialized: list[int] | None = None

    def to_list(self) -> list[int]:
        """The canonical ``list[int]`` this vector represents (cached)."""
        if self._materialized is None:
            self._materialized = from_planes(self.plan, self.planes)
        return self._materialized

    def __len__(self) -> int:
        return self.planes.shape[1]

    def __iter__(self):
        return iter(self.to_list())

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return self.to_list()[idx]
        j = operator.index(idx)
        if self._materialized is not None:
            return self._materialized[j]
        n = self.planes.shape[1]
        if j < 0:
            j += n
        if not 0 <= j < n:
            raise IndexError("LimbVector index out of range")
        value = 0
        col = self.planes[:, j]
        for i in range(self.planes.shape[0] - 1, -1, -1):
            value = (value << LIMB_BITS) | int(col[i])
        return value

    def __eq__(self, other):
        if isinstance(other, LimbVector):
            if self.plan is other.plan:
                return np.array_equal(self.planes, other.planes)
            return self.to_list() == other.to_list()
        if isinstance(other, (list, tuple)):
            return self.to_list() == list(other)
        return NotImplemented

    def __repr__(self):
        return f"LimbVector(n={len(self)}, limbs={self.plan.limbs})"


class ArrayBackend(VectorBackend):
    """The numpy limb-plane fast path (see the module docstring).

    Counter tallies are computed in closed form, matching the reference
    backend's loop tallies exactly — the differential suite pins this.
    """

    name = "array"

    def add(self, field, a, b, counter=None):
        """Limb-plane :meth:`VectorBackend.add`."""
        plan = get_plan(field)
        out = LimbVector(
            plan, add_mod(plan, to_planes(plan, a), to_planes(plan, b))
        )
        if counter is not None:
            counter.count_add(len(out))
        return out

    def sub(self, field, a, b, counter=None):
        """Limb-plane :meth:`VectorBackend.sub`."""
        plan = get_plan(field)
        out = LimbVector(
            plan, sub_mod(plan, to_planes(plan, a), to_planes(plan, b))
        )
        if counter is not None:
            counter.count_add(len(out))
        return out

    def mul(self, field, a, b, counter=None):
        """Limb-plane :meth:`VectorBackend.mul`."""
        plan = get_plan(field)
        out = LimbVector(
            plan, mul_mod(plan, to_planes(plan, a), to_planes(plan, b))
        )
        if counter is not None:
            counter.count_mul(len(out))
        return out

    def scale(self, field, a, c, counter=None):
        """Limb-plane :meth:`VectorBackend.scale`."""
        plan = get_plan(field)
        out = LimbVector(
            plan,
            mont_mul_scalar(plan, to_planes(plan, a), plan.mont_scalar(c)),
        )
        if counter is not None:
            counter.count_mul(len(out))
        return out

    def axpy(self, field, acc, c, x, counter=None):
        """Limb-plane :meth:`VectorBackend.axpy`."""
        plan = get_plan(field)
        prod = mont_mul_scalar(plan, to_planes(plan, x), plan.mont_scalar(c))
        out = LimbVector(plan, add_mod(plan, to_planes(plan, acc), prod))
        if counter is not None:
            counter.count_mul(len(out))
            counter.count_add(len(out))
        return out

    def fold(self, field, table, r, counter=None):
        """Limb-plane :meth:`VectorBackend.fold`."""
        plan = get_plan(field)
        planes = to_planes(plan, table)
        half = planes.shape[1] // 2
        lo = np.ascontiguousarray(planes[:, 0:2 * half:2])
        hi = np.ascontiguousarray(planes[:, 1:2 * half:2])
        delta = sub_mod(plan, hi, lo)
        prod = mont_mul_scalar(plan, delta, plan.mont_scalar(r))
        out = LimbVector(plan, add_mod(plan, lo, prod))
        if counter is not None:
            counter.count_mul(half, kind="ee")
            counter.count_add(2 * half)
        return out

    def fold_tables(self, field, tables, r, counter=None):
        """Batched fold: all tables in one kernel pass."""
        plan = get_plan(field)
        names = list(tables)
        planes = [to_planes(plan, tables[n]) for n in names]
        lens = {pl.shape[1] for pl in planes}
        if len(names) < 2 or len(lens) != 1 or next(iter(lens)) % 2:
            return super().fold_tables(field, tables, r, counter)
        # all tables share one even length: concatenate along the element
        # axis and run the butterfly once (pair parity survives the
        # concatenation because every segment has even length)
        half = planes[0].shape[1] // 2
        big = np.concatenate(planes, axis=1)
        lo = np.ascontiguousarray(big[:, 0::2])
        hi = np.ascontiguousarray(big[:, 1::2])
        delta = sub_mod(plan, hi, lo)
        prod = mont_mul_scalar(plan, delta, plan.mont_scalar(r))
        res = add_mod(plan, lo, prod)
        out = {}
        for t, name in enumerate(names):
            seg = np.ascontiguousarray(res[:, t * half:(t + 1) * half])
            out[name] = LimbVector(plan, seg)
            if counter is not None:
                counter.count_mul(half, kind="ee")
                counter.count_add(2 * half)
        return out

    def wrap_table(self, field, table):
        """Convert to a reusable :class:`LimbVector` once."""
        plan = get_plan(field)
        if isinstance(table, LimbVector) and table.plan is plan:
            return table
        return LimbVector(plan, to_planes(plan, table))

    def extend_columns(self, field, table, degree, counter=None):
        """Limb-plane :meth:`VectorBackend.extend_columns`."""
        plan = get_plan(field)
        cols = self._extend_planes(plan, to_planes(plan, table), degree)
        if counter is not None:
            counter.count_add(max(degree - 1, 0) * cols[0].shape[1])
        return [LimbVector(plan, c) for c in cols]

    @staticmethod
    def _extend_planes(
        plan: LimbPlan, planes: np.ndarray, degree: int
    ) -> list[np.ndarray]:
        """Extension columns 0..degree as limb planes (adder chain)."""
        half = planes.shape[1] // 2
        lo = np.ascontiguousarray(planes[:, 0:2 * half:2])
        hi = np.ascontiguousarray(planes[:, 1:2 * half:2])
        cols = [lo]
        if degree >= 1:
            cols.append(hi)
        if degree >= 2:
            delta = sub_mod(plan, hi, lo)
            cur = hi
            for _ in range(degree - 1):
                cur = add_mod(plan, cur, delta)
                cols.append(cur)
        return cols

    def round_evaluations(self, field, terms, tables, degree, counter=None):
        """Limb-plane :meth:`VectorBackend.round_evaluations`."""
        plan = get_plan(field)
        p = field.modulus
        limbs = plan.limbs
        npts = degree + 1
        names = list(tables)
        half = len(tables[names[0]]) // 2

        # flat point-major extension planes per MLE: block x of the
        # column axis holds every pair's line at X = x (the limb-plane
        # analogue of FusedBackend._extend_flat).  When every table has
        # the same even length — always true inside the prover — the
        # adder chain runs once over all MLEs concatenated, then splits.
        flat: dict[str, np.ndarray] = {}
        plane_list = [to_planes(plan, tables[name]) for name in names]
        if len(names) > 1 and all(
            pl.shape[1] == 2 * half for pl in plane_list
        ):
            cols = self._extend_planes(
                plan, np.concatenate(plane_list, axis=1), degree
            )
            for t, name in enumerate(names):
                arr = np.empty((limbs, npts * half), dtype=np.uint64)
                seg = slice(t * half, (t + 1) * half)
                for x, col in enumerate(cols):
                    arr[:, x * half:(x + 1) * half] = col[:, seg]
                flat[name] = arr
        else:
            for name, pl in zip(names, plane_list):
                cols = self._extend_planes(plan, pl, degree)
                arr = np.empty((limbs, npts * half), dtype=np.uint64)
                for x, col in enumerate(cols):
                    arr[:, x * half:(x + 1) * half] = col
                flat[name] = arr

        pow_cache: dict[tuple[str, int], np.ndarray] = {}

        def factor_col(name: str, power: int) -> np.ndarray:
            if power == 1:
                return flat[name]
            col = pow_cache.get((name, power))
            if col is None:
                base = flat[name]
                result = None
                e = power
                while e:
                    if e & 1:
                        result = base if result is None else mul_mod(
                            plan, result, base
                        )
                    e >>= 1
                    if e:
                        base = mul_mod(plan, base, base)
                col = result
                pow_cache[(name, power)] = col
            return col

        evals = [0] * npts
        for term in terms:
            coeff = term.coeff % p
            factors = term.factors
            if not factors:
                contrib = coeff * half % p
                for x in range(npts):
                    evals[x] = (evals[x] + contrib) % p
                continue
            # exact deferred product: chained convolutions grow the plane
            # count by L per factor lane and never reduce mod p
            acc = factor_col(*factors[0])
            for name, power in factors[1:]:
                acc = _conv(acc, factor_col(name, power))
            # one vectorized sum per (plane, point), then a single scalar
            # reconstruction + reduction per (term, point)
            sums = acc.reshape(acc.shape[0], npts, half).sum(axis=2)
            for x in range(npts):
                s = 0
                col = sums[:, x]
                for i in range(sums.shape[0] - 1, -1, -1):
                    s = (s << LIMB_BITS) + int(col[i])
                evals[x] = (evals[x] + coeff * s) % p

        if counter is not None:
            counter.count_add(max(degree - 1, 0) * half * len(names))
            sum_deg = sum(term.degree for term in terms)
            counter.count_mul(half * npts * sum_deg, kind="pl")
            counter.count_add(half * npts * len(terms))
        return evals


class GmpBackend(FusedBackend):
    """gmpy2 ``mpz`` variant of the fused kernels (optional).

    Delegates every kernel to :class:`FusedBackend` after promoting the
    operands to ``mpz`` — CPython then dispatches ``*``/``%`` straight
    into GMP — and demotes the results back to plain ints so transcripts
    and comparisons stay type-stable.  (A numpy object-array layout was
    also measured; plain mpz-typed lists beat it, because object arrays
    still pay per-element CPython dispatch plus ndarray overhead.)

    Registered as ``"gmp"`` only when gmpy2 is importable; tallies and
    results are bit-identical to the reference backend like every
    backend.
    """

    name = "gmp"

    @staticmethod
    def _z(values):
        from gmpy2 import mpz

        return [mpz(v) for v in values]

    @staticmethod
    def _ints(values):
        return [int(v) for v in values]

    def add(self, field, a, b, counter=None):
        """gmpy2 ``mpz`` :meth:`VectorBackend.add`."""
        return self._ints(super().add(field, self._z(a), self._z(b), counter))

    def sub(self, field, a, b, counter=None):
        """gmpy2 ``mpz`` :meth:`VectorBackend.sub`."""
        return self._ints(super().sub(field, self._z(a), self._z(b), counter))

    def mul(self, field, a, b, counter=None):
        """gmpy2 ``mpz`` :meth:`VectorBackend.mul`."""
        return self._ints(super().mul(field, self._z(a), self._z(b), counter))

    def scale(self, field, a, c, counter=None):
        """gmpy2 ``mpz`` :meth:`VectorBackend.scale`."""
        return self._ints(super().scale(field, self._z(a), c, counter))

    def axpy(self, field, acc, c, x, counter=None):
        """gmpy2 ``mpz`` :meth:`VectorBackend.axpy`."""
        return self._ints(
            super().axpy(field, self._z(acc), c, self._z(x), counter)
        )

    def fold(self, field, table, r, counter=None):
        """gmpy2 ``mpz`` :meth:`VectorBackend.fold`."""
        return self._ints(super().fold(field, self._z(table), r, counter))

    def extend_columns(self, field, table, degree, counter=None):
        """gmpy2 ``mpz`` :meth:`VectorBackend.extend_columns`."""
        cols = super().extend_columns(field, self._z(table), degree, counter)
        return [self._ints(col) for col in cols]

    def round_evaluations(self, field, terms, tables, degree, counter=None):
        """gmpy2 ``mpz`` :meth:`VectorBackend.round_evaluations`."""
        ztables = {name: self._z(t) for name, t in tables.items()}
        return self._ints(
            super().round_evaluations(field, terms, ztables, degree, counter)
        )
