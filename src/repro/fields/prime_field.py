"""Generic prime-field arithmetic.

Two API levels are provided:

* :class:`Felt` — an immutable wrapped element with operator overloads.
  Protocol-level code (provers, verifiers, commitments) uses this level
  for readability.
* raw helpers on :class:`PrimeField` (``add``/``sub``/``mul``/``inv`` on
  plain ints) — hot loops such as MLE folds use these to avoid object
  churn.  Values at this level are canonical integers in ``[0, p)``.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence


class Felt:
    """An element of a prime field.

    Immutable; all operators return new elements.  Mixed ``Felt``/``int``
    arithmetic is supported (the int is reduced into the field), but mixing
    elements of *different* fields raises ``ValueError``.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: "PrimeField", value: int):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value % field.modulus)

    def __setattr__(self, name, val):  # pragma: no cover - guard rail
        raise AttributeError("Felt is immutable")

    def __reduce__(self):
        # default slots-state unpickling trips the immutability guard;
        # rebuild through the constructor instead (service worker pools
        # ship circuits, and with them fields, across processes)
        return (Felt, (self.field, self.value))

    def _coerce(self, other) -> int:
        if isinstance(other, Felt):
            if other.field is not self.field:
                raise ValueError(
                    f"cannot mix elements of {self.field} and {other.field}"
                )
            return other.value
        if isinstance(other, int):
            return other % self.field.modulus
        return NotImplemented

    def __add__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Felt(self.field, self.value + v)

    __radd__ = __add__

    def __sub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Felt(self.field, self.value - v)

    def __rsub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Felt(self.field, v - self.value)

    def __mul__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Felt(self.field, self.value * v)

    __rmul__ = __mul__

    def __neg__(self):
        return Felt(self.field, -self.value)

    def __pow__(self, exponent: int):
        return Felt(self.field, pow(self.value, exponent, self.field.modulus))

    def __truediv__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Felt(self.field, self.value * self.field.inv(v))

    def __rtruediv__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Felt(self.field, v * self.field.inv(self.value))

    def inverse(self) -> "Felt":
        """Multiplicative inverse; raises ``ZeroDivisionError`` on zero."""
        return Felt(self.field, self.field.inv(self.value))

    def __eq__(self, other):
        if isinstance(other, Felt):
            return self.field is other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self):
        return hash((id(self.field), self.value))

    def __bool__(self):
        return self.value != 0

    def __int__(self):
        return self.value

    def __repr__(self):
        return f"Felt({self.value} mod {self.field.name})"


class PrimeField:
    """Descriptor for the prime field Z/pZ.

    Acts as an element factory (``field(3)``) and exposes raw integer
    arithmetic (``field.mul(a, b)``) for performance-sensitive code.
    """

    def __init__(self, modulus: int, name: str = "Fp"):
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        # A cheap compositeness screen; full primality checking is out of
        # scope and the fields used here are fixed published primes.
        if modulus % 2 == 0 and modulus != 2:
            raise ValueError("modulus must be an odd prime (or 2)")
        self.modulus = modulus
        self.name = name
        self.bit_length = modulus.bit_length()
        self._zero = Felt(self, 0)
        self._one = Felt(self, 1)

    # -- element factory -------------------------------------------------
    def __call__(self, value: int | Felt) -> Felt:
        if isinstance(value, Felt):
            if value.field is not self:
                raise ValueError(f"element of {value.field} is not in {self}")
            return value
        return Felt(self, value)

    @property
    def zero(self) -> Felt:
        """The additive identity as a :class:`Felt`."""
        return self._zero

    @property
    def one(self) -> Felt:
        """The multiplicative identity as a :class:`Felt`."""
        return self._one

    def rand(self, rng: random.Random | None = None) -> Felt:
        """A uniform random :class:`Felt` from ``rng``."""
        rng = rng or random
        return Felt(self, rng.randrange(self.modulus))

    def rand_int(self, rng: random.Random | None = None) -> int:
        """A uniform random integer in ``[0, p)``."""
        rng = rng or random
        return rng.randrange(self.modulus)

    def elements(self, values: Iterable[int]) -> list[Felt]:
        """Wrap each integer as a :class:`Felt`."""
        return [Felt(self, v) for v in values]

    # -- raw integer arithmetic ------------------------------------------
    def add(self, a: int, b: int) -> int:
        """``(a + b) mod p`` on canonical integers."""
        s = a + b
        p = self.modulus
        return s - p if s >= p else s

    def sub(self, a: int, b: int) -> int:
        """``(a - b) mod p`` on canonical integers."""
        d = a - b
        return d + self.modulus if d < 0 else d

    def mul(self, a: int, b: int) -> int:
        """``(a * b) mod p`` on canonical integers."""
        return a * b % self.modulus

    def neg(self, a: int) -> int:
        """``(-a) mod p`` on a canonical integer."""
        return self.modulus - a if a else 0

    def pow(self, a: int, e: int) -> int:
        """``a**e mod p`` via three-arg ``pow``."""
        return pow(a, e, self.modulus)

    def inv(self, a: int) -> int:
        """``a**-1 mod p``; ``ZeroDivisionError`` on 0."""
        if a == 0:
            raise ZeroDivisionError(f"0 has no inverse in {self.name}")
        return pow(a, -1, self.modulus)

    def __eq__(self, other):
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self):
        return hash(self.modulus)

    def __reduce__(self):
        # reconstruct via the constructor so the copy carries fresh
        # _zero/_one elements bound to itself (fields compare by modulus,
        # so an unpickled copy still == the original)
        return (PrimeField, (self.modulus, self.name))

    def __repr__(self):
        return f"PrimeField({self.name}, {self.bit_length} bits)"


def batch_inverse(field: PrimeField, values: Sequence[int]) -> list[int]:
    """Montgomery batch inversion: n inverses for 3(n-1) muls + 1 inversion.

    This is the software analogue of the batching strategy zkPHIRE's
    Permutation Quotient Generator uses in hardware (§IV-B5).  Zero inputs
    raise ``ZeroDivisionError``, matching scalar inversion.
    """
    if not values:
        return []
    prefix = [0] * len(values)
    acc = 1
    for i, v in enumerate(values):
        if v == 0:
            raise ZeroDivisionError("batch_inverse: zero element")
        prefix[i] = acc
        acc = acc * v % field.modulus
    inv_acc = field.inv(acc)
    out = [0] * len(values)
    for i in range(len(values) - 1, -1, -1):
        out[i] = prefix[i] * inv_acc % field.modulus
        inv_acc = inv_acc * values[i] % field.modulus
    return out
