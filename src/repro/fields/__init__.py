"""Finite-field arithmetic substrate.

zkPHIRE operates over the BLS12-381 curve: the scalar field ``Fr``
(255-bit prime) holds all MLE/witness data, and the base field ``Fq``
(381-bit prime) holds elliptic-curve coordinates.  This package provides

* :class:`~repro.fields.prime_field.PrimeField` — a generic prime-field
  descriptor whose elements (:class:`~repro.fields.prime_field.Felt`)
  support operator arithmetic, plus fast "raw" integer helpers used in
  hot loops,
* :mod:`~repro.fields.bls12_381` — the two concrete fields,
* :mod:`~repro.fields.montgomery` — a Montgomery-domain arithmetic model
  mirroring the hardware modular multipliers zkPHIRE synthesizes,
* :class:`~repro.fields.counters.OpCounter` — explicit operation counting
  used to validate the hardware performance model against functional runs,
* :mod:`~repro.fields.vector` — batched field-vector kernels
  (:class:`~repro.fields.vector.FieldVec`) behind a pluggable backend
  registry (``reference`` / ``fused`` / numpy-limb ``array`` / optional
  ``gmp``), the substrate of the fast-path SumCheck prover.
"""

from repro.fields.prime_field import Felt, PrimeField, batch_inverse
from repro.fields.bls12_381 import FQ_MODULUS, FR_MODULUS, Fq, Fr
from repro.fields.montgomery import MontgomeryContext
from repro.fields.counters import OpCounter
from repro.fields.vector import (
    BackendUnavailable,
    FieldVec,
    FusedBackend,
    ReferenceBackend,
    VectorBackend,
    available_backends,
    get_backend,
    list_backends,
    register_backend,
    set_default_backend,
    unavailable_backends,
    window_decompose,
)

__all__ = [
    "Felt",
    "PrimeField",
    "batch_inverse",
    "FQ_MODULUS",
    "FR_MODULUS",
    "Fq",
    "Fr",
    "MontgomeryContext",
    "OpCounter",
    "FieldVec",
    "VectorBackend",
    "ReferenceBackend",
    "FusedBackend",
    "BackendUnavailable",
    "available_backends",
    "list_backends",
    "unavailable_backends",
    "set_default_backend",
    "get_backend",
    "register_backend",
    "window_decompose",
]
