"""Explicit operation counting.

The hardware performance model (``repro.hw``) predicts how many modular
multiplications, additions, and inversions each protocol phase performs.
Functional provers accept an optional :class:`OpCounter` and increment it
on every field operation, letting tests assert that the model's predicted
operation counts match reality exactly (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Tally of field operations, grouped the way the hardware groups them."""

    mul: int = 0
    add: int = 0
    inv: int = 0
    #: extension-engine multiplies (MLE extension / update), a subset of mul
    ee_mul: int = 0
    #: product-lane multiplies (cross-MLE products), a subset of mul
    pl_mul: int = 0
    labels: dict[str, int] = field(default_factory=dict)

    def count_mul(self, n: int = 1, kind: str | None = None) -> None:
        """Record ``n`` modmuls (kind ``ee`` or ``pl``)."""
        self.mul += n
        if kind == "ee":
            self.ee_mul += n
        elif kind == "pl":
            self.pl_mul += n

    def count_add(self, n: int = 1) -> None:
        """Record ``n`` modular additions."""
        self.add += n

    def count_inv(self, n: int = 1) -> None:
        """Record ``n`` modular inversions."""
        self.inv += n

    def bump(self, label: str, n: int = 1) -> None:
        """Free-form labelled counter (e.g. per protocol phase)."""
        self.labels[label] = self.labels.get(label, 0) + n

    def merged(self, other: "OpCounter") -> "OpCounter":
        """A new counter summing both tallies."""
        out = OpCounter(
            mul=self.mul + other.mul,
            add=self.add + other.add,
            inv=self.inv + other.inv,
            ee_mul=self.ee_mul + other.ee_mul,
            pl_mul=self.pl_mul + other.pl_mul,
        )
        out.labels = dict(self.labels)
        for k, v in other.labels.items():
            out.labels[k] = out.labels.get(k, 0) + v
        return out

    def reset(self) -> None:
        """Zero every tally and clear the labels."""
        self.mul = self.add = self.inv = self.ee_mul = self.pl_mul = 0
        self.labels.clear()
