"""Figure 12: runtime breakdown, CPU vs zkPHIRE, 2^24 Jellyfish gates.

(a) the CPU's nine-phase split (the paper's measured shares applied to
the 182.9 s total); (b) zkPHIRE's four-phase split at the 2 TB/s
exemplar, shown before ZeroCheck masking as in the paper.
Paper zkPHIRE shares: Witness 7.8%, Gate Identity 21.4%, Wire Identity
37.9%, Batch+Open 33.0%.
"""

from __future__ import annotations

from repro.experiments import setups
from repro.experiments.common import ExperimentResult
from repro.hw.accelerator import ZkPhireModel
from repro.hw.config import AcceleratorConfig
from repro.hw.cpu_baseline import CpuModel
from repro.plan import hyperplonk_plan


def run(fast: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        name="fig12",
        title="Fig 12: runtime breakdown, CPU vs zkPHIRE (2^24 Jellyfish)",
        notes="paper zkPHIRE: witness 7.8 / gate 21.4 / wire 37.9 / "
              "open 33.0 %",
    )
    cpu = CpuModel(threads=32)
    for phase, seconds in cpu.phase_breakdown(setups.PARETO_CPU_S).items():
        result.rows.append({"platform": "CPU", "phase": phase,
                            "time (ms)": seconds * 1e3,
                            "share %": 100 * seconds / setups.PARETO_CPU_S})

    # both platforms price the one shared plan (repro.plan)
    plan = hyperplonk_plan("jellyfish", setups.PARETO_NUM_VARS)
    cfg = AcceleratorConfig.exemplar()
    unmasked = AcceleratorConfig(sumcheck=cfg.sumcheck, msm=cfg.msm,
                                 forest=cfg.forest,
                                 bandwidth_gbps=cfg.bandwidth_gbps,
                                 mask_zerocheck=False)
    bd = ZkPhireModel(unmasked).price(plan)
    phases = bd.phase_groups()
    total = sum(phases.values())
    for phase, seconds in phases.items():
        result.rows.append({"platform": "zkPHIRE", "phase": phase,
                            "time (ms)": seconds * 1e3,
                            "share %": 100 * seconds / total})
        result.summary[f"zkPHIRE {phase} %"] = 100 * seconds / total
    result.summary["zkPHIRE total (ms)"] = total * 1e3
    return result
