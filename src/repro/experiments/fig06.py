"""Figure 6: standalone SumCheck speedups over 4-thread CPU across
bandwidth tiers, plus utilization, for Table I polynomials 0-19.

Per bandwidth tier, the DSE picks the best design under the 37 mm² area
budget with the λ = 0.8 objective; we report each polynomial's speedup
against the calibrated 4-thread CPU model and the design's utilization.
Paper geomeans climb from 61× at 64 GB/s to 2209× at 4 TB/s with mean
utilization ≈ 0.4-0.5.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, geomean
from repro.experiments import setups
from repro.hw.cpu_baseline import CpuModel
from repro.hw.dse import sumcheck_dse
from repro.hw.memory import BANDWIDTH_TIERS


def run(fast: bool = True, bandwidths=BANDWIDTH_TIERS) -> ExperimentResult:
    polys = setups.training_set()
    cpu = CpuModel(threads=4)
    cpu_seconds = {
        name: cpu.sumcheck_seconds(poly, mu) for name, poly, mu in polys
    }

    configs = None
    if fast:
        configs = [
            c for c in setups.fast_sc_grid()
            if __import__("repro.hw.area", fromlist=["x"])
            .standalone_sumcheck_area(c, 0.0) <= setups.FIG6_AREA_BUDGET_MM2
        ]

    result = ExperimentResult(
        name="fig06",
        title="Fig 6: SumCheck speedup over 4-thread CPU (polys 0-19)",
        notes="paper geomeans: 61/123/244/485/955/1328/2209x; util ~0.4-0.5",
    )
    for bw in bandwidths:
        best = sumcheck_dse(
            polys, setups.FIG6_AREA_BUDGET_MM2, bw,
            lam=setups.FIG6_LAMBDA, configs=configs,
        )
        speedups = {
            name: cpu_seconds[name] / best.latencies[name]
            for name, _, _ in polys
        }
        gm = geomean(list(speedups.values()))
        result.rows.append({
            "BW (GB/s)": bw,
            "design": (f"{best.config.pes}PE/{best.config.ees_per_pe}EE/"
                       f"{best.config.pls_per_pe}PL"),
            "area (mm2)": best.area_mm2,
            "geomean speedup": gm,
            "mean util": best.mean_utilization,
            "min speedup": min(speedups.values()),
            "max speedup": max(speedups.values()),
        })
        result.summary[f"geomean@{bw}"] = gm
    return result
