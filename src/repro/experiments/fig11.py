"""Figure 11: area and runtime breakdowns for selected Pareto points.

For the highest-performing design of each top bandwidth tier (the
paper's A-D), shows the percentage split of area (MSM / Forest /
SumCheck / memory / PHY / interconnect) and runtime (MSM phases vs
SumCheck phases).  Paper shape: MSM dominates area everywhere; higher
bandwidth shifts area and runtime share toward SumCheck.
"""

from __future__ import annotations

from repro.experiments import fig10, setups
from repro.experiments.common import ExperimentResult
from repro.hw.accelerator import ZkPhireModel
from repro.hw.area import accelerator_area

# A..D are the fastest designs of ascending bandwidth tiers (§VI-B2:
# "as the bandwidth increases ... from C to D")
FIG11_TIERS = (512, 1024, 2048, 4096)


def run(fast: bool = True, precomputed=None) -> ExperimentResult:
    if precomputed is None:
        per_bw, _ = fig10.compute(fast)
    else:
        per_bw = precomputed
    result = ExperimentResult(
        name="fig11",
        title="Fig 11: area & runtime breakdowns for Pareto designs A-D (%)",
        notes="MSM dominates area; SumCheck share grows with bandwidth",
    )
    for label, bw in zip("ABCD", FIG11_TIERS):
        front = per_bw.get(bw)
        if not front:
            continue
        point = min(front, key=lambda p: p.runtime_s)
        area = accelerator_area(point.config)
        bd = ZkPhireModel(point.config).breakdown(
            "jellyfish", setups.PARETO_NUM_VARS)
        total_area = area.total
        msm_time = bd.witness_msm + bd.wiring_msm + bd.opening_msm
        sc_time = bd.zerocheck + bd.permcheck + bd.opencheck
        other_time = max(bd.total - msm_time - sc_time, 0.0)
        denom = msm_time + sc_time + other_time
        result.rows.append({
            "design": f"{label}@{bw}",
            "area: MSM %": 100 * area.msm / total_area,
            "area: Forest %": 100 * area.forest / total_area,
            "area: SumCheck %": 100 * area.sumcheck / total_area,
            "area: Mem+PHY %": 100 * (area.sram + area.hbm_phy) / total_area,
            "rt: MSM %": 100 * msm_time / denom,
            "rt: SumCheck %": 100 * sc_time / denom,
            "rt: other %": 100 * other_time / denom,
        })
    if len(result.rows) >= 2:
        result.summary["SumCheck rt share, A (512) -> D (4096)"] = (
            f"{result.rows[0]['rt: SumCheck %']:.1f}% -> "
            f"{result.rows[-1]['rt: SumCheck %']:.1f}%"
        )
    return result
