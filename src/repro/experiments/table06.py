"""Table VI: runtime comparison with zkSpeed+ and CPU, Vanilla gates.

zkPHIRE here uses zkSpeed-matching (arbitrary-prime) multipliers and no
ZeroCheck masking, as the paper does for fairness.  CPU and zkSpeed+
columns are the paper's published numbers; the zkPHIRE column is our
model.  Paper headline: zkPHIRE within ~10% of zkSpeed+ while staying
programmable, 700-1000× over CPU.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, geomean
from repro.hw.accelerator import ZkPhireModel
from repro.hw.config import AcceleratorConfig
from repro.hw.zkspeed import ZKSPEED_PLUS_PROTOCOL_MS
from repro.workloads import WORKLOADS


def model_unmasked() -> ZkPhireModel:
    cfg = AcceleratorConfig.exemplar()
    return ZkPhireModel(AcceleratorConfig(
        sumcheck=cfg.sumcheck, msm=cfg.msm, forest=cfg.forest,
        bandwidth_gbps=cfg.bandwidth_gbps, mask_zerocheck=False))


def run(fast: bool = True) -> ExperimentResult:
    model = model_unmasked()
    result = ExperimentResult(
        name="table06",
        title="Table VI: Vanilla-gate runtimes vs zkSpeed+ and CPU (ms)",
        notes="paper: zkPHIRE ~10% slower than zkSpeed+; 700-1000x over CPU",
    )
    speedups = []
    ratios = []
    for w in WORKLOADS:
        if w.vanilla_log2 is None or w.cpu_vanilla_s is None:
            continue
        ours_ms = model.prove_latency_s("vanilla", w.vanilla_log2) * 1e3
        cpu_ms = w.cpu_vanilla_s * 1e3
        zk_ms = ZKSPEED_PLUS_PROTOCOL_MS.get(w.name)
        speedups.append(cpu_ms / ours_ms)
        if zk_ms:
            ratios.append(ours_ms / zk_ms)
        result.rows.append({
            "workload": w.name,
            "gates": f"2^{w.vanilla_log2}",
            "CPU (ms)": cpu_ms,
            "zkSpeed+ (ms)": zk_ms if zk_ms else "-",
            "zkPHIRE (ms)": ours_ms,
            "vs CPU": cpu_ms / ours_ms,
        })
    result.summary["geomean vs CPU"] = geomean(speedups)
    if ratios:
        result.summary["zkPHIRE/zkSpeed+ geomean"] = geomean(ratios)
    return result
