"""Table IV: globally Pareto-optimal zkPHIRE designs (runtime, area,
bandwidth, CPU speedup) for the 2^24-Jellyfish-gate workload."""

from __future__ import annotations

from repro.experiments import fig10, setups
from repro.experiments.common import ExperimentResult

#: paper Table IV for reference (runtime ms, area mm2, BW, speedup)
PAPER_TABLE4 = [
    ("A", 71.436, 599.08, 4096, 2560),
    ("B", 92.887, 455.23, 2048, 1969),
    ("C", 171.332, 229.72, 1024, 1067),
    ("D", 328.463, 117.56, 512, 557),
    ("E", 477.377, 75.14, 512, 383),
    ("F", 786.298, 49.99, 512, 233),
    ("G", 1716.765, 25.03, 128, 107),
]


def run(fast: bool = True, precomputed=None) -> ExperimentResult:
    if precomputed is None:
        _, global_front = fig10.compute(fast)
    else:
        global_front = precomputed
    result = ExperimentResult(
        name="table04",
        title="Table IV: globally Pareto-optimal designs (2^24 Jellyfish)",
        notes="paper designs A-G: 71ms/599mm2/2560x .. 1717ms/25mm2/107x",
    )
    # label up to 7 representative points, fastest first
    front = sorted(global_front, key=lambda p: p.runtime_s)
    step = max(1, len(front) // 7)
    labeled = front[::step][:7]
    for label, point in zip("ABCDEFG", labeled):
        result.rows.append({
            "design": label,
            "runtime (ms)": point.runtime_s * 1e3,
            "area (mm2)": point.area_mm2,
            "BW (GB/s)": point.config.bandwidth_gbps,
            "CPU speedup": setups.PARETO_CPU_S / point.runtime_s,
            "SC PEs": point.config.sumcheck.pes,
            "MSM PEs": point.config.msm.pes,
        })
    if result.rows:
        result.summary["speedup range"] = (
            f"{result.rows[-1]['CPU speedup']:.0f}x .. "
            f"{result.rows[0]['CPU speedup']:.0f}x"
        )
    result.summary["_labeled"] = labeled
    return result
