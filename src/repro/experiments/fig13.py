"""Figure 13: zkPHIRE speedups across workloads relative to Vanilla
gates — Vanilla vs Jellyfish vs Jellyfish + Masked ZeroCheck.

Large workloads approach the table-size-reduction speedup; small ones
are limited by MSM serialization and fill/drain overheads.  Scaled
ZCash/Zexe (2^24/2^25) and a hypothetical 8×-reduced zkEVM follow the
paper's setup.  Paper bars: ZCash 1.70/1.84, Rescue 1.53/1.91,
Zexe 15.89/18.42, ZCash-scaled 3.09/3.91, Zexe-scaled 23.35/29.18,
Rollup-1600 25.10/31.93, zkEVM 6.28/8.00.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw.accelerator import ZkPhireModel
from repro.hw.config import AcceleratorConfig

#: (label, vanilla log2, jellyfish log2)
FIG13_WORKLOADS = [
    ("ZCash", 17, 15),
    ("Rescue Hash", 21, 20),
    ("Zexe", 22, 17),
    ("ZCash scaled", 24, 22),       # scaled to 2^24 (x4 reduction kept)
    ("Zexe scaled", 25, 20),        # scaled to 2^25 (x32 reduction kept)
    ("Rollup 1600", 30, 25),
    ("zkEVM (8x est.)", 30, 27),    # hypothetical 8x reduction
]


def _models():
    cfg = AcceleratorConfig.exemplar()
    unmasked = AcceleratorConfig(sumcheck=cfg.sumcheck, msm=cfg.msm,
                                 forest=cfg.forest,
                                 bandwidth_gbps=cfg.bandwidth_gbps,
                                 mask_zerocheck=False)
    return ZkPhireModel(unmasked), ZkPhireModel(cfg)


def run(fast: bool = True) -> ExperimentResult:
    unmasked, masked = _models()
    result = ExperimentResult(
        name="fig13",
        title="Fig 13: speedup vs Vanilla gates per workload",
        notes="large workloads approach the gate-reduction factor; "
              "MskZC adds ~25%",
    )
    for label, v_mu, j_mu in FIG13_WORKLOADS:
        vanilla = unmasked.prove_latency_s("vanilla", v_mu)
        jelly = unmasked.prove_latency_s("jellyfish", j_mu)
        jelly_msk = masked.prove_latency_s("jellyfish", j_mu)
        result.rows.append({
            "workload": label,
            "reduction": f"{1 << (v_mu - j_mu)}x",
            "Vanilla": 1.0,
            "Jellyfish": vanilla / jelly,
            "Jellyfish+MskZC": vanilla / jelly_msk,
        })
    big = [r for r in result.rows if r["workload"] in
           ("Zexe scaled", "Rollup 1600")]
    result.summary["large-workload speedups"] = ", ".join(
        f"{r['workload']}: {r['Jellyfish+MskZC']:.1f}x" for r in big)
    return result
