"""Shared experiment setups: training sets, reference configs, fast grids."""

from __future__ import annotations

from itertools import product

from repro.gates import gate_by_id, high_degree_sweep_gate
from repro.hw.config import MSMUnitConfig, SumCheckUnitConfig
from repro.hw.scheduler import PolyProfile
from repro.workloads.catalog import PARETO_WORKLOAD_CPU_S, PARETO_WORKLOAD_LOG2

#: evaluation problem size for standalone-SumCheck experiments (§VI-A)
SUMCHECK_NUM_VARS = 24

#: Fig-6 area budget: a 4-core EPYC slice in 7nm (§VI-A1)
FIG6_AREA_BUDGET_MM2 = 37.0

FIG6_LAMBDA = 0.8

PARETO_NUM_VARS = PARETO_WORKLOAD_LOG2
PARETO_CPU_S = PARETO_WORKLOAD_CPU_S


def training_set(num_vars: int = SUMCHECK_NUM_VARS):
    """The Table I 'training set' polynomials 0-19 (§VI-A1)."""
    out = []
    for gid in range(20):
        spec = gate_by_id(gid)
        out.append((f"Poly {gid}", PolyProfile.from_gate(spec), num_vars))
    return out


def hyperplonk_set(num_vars: int = SUMCHECK_NUM_VARS):
    """HyperPlonk polynomials 20-24."""
    out = []
    for gid in range(20, 25):
        spec = gate_by_id(gid)
        out.append((f"Poly {gid}", PolyProfile.from_gate(spec), num_vars))
    return out


def sweep_profile(degree: int, with_fr: bool = False) -> PolyProfile:
    return PolyProfile.from_gate(high_degree_sweep_gate(degree, with_fr))


# -- reduced ("fast") grids: every knob still varies -------------------------

def fast_sc_grid(fixed_prime: bool = True):
    return [
        SumCheckUnitConfig(pes=p, ees_per_pe=e, pls_per_pe=l,
                           sram_bank_words=s, fixed_prime=fixed_prime)
        for p, e, l, s in product((2, 8, 16, 32), (2, 4, 7), (3, 5, 8),
                                  (1024, 8192))
    ]


def fast_msm_grid(fixed_prime: bool = True):
    return [
        MSMUnitConfig(pes=p, window_bits=w, points_per_pe=pp,
                      fixed_prime=fixed_prime)
        for p, w, pp in product((2, 8, 16, 32), (8, 9, 10), (4096, 8192))
    ]
