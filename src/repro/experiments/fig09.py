"""Figure 9: comparison with prior ASICs (zkSpeed / zkSpeed+), per
SumCheck phase, at 2 TB/s and roughly iso-area.

Bars: zkSpeed (Vanilla), zkSpeed+ (Vanilla), zkPHIRE (Vanilla), and
zkPHIRE with Jellyfish gates at 2×/4×/8× gate-count reductions.  Phases:
ZeroCheck, PermCheck, OpenCheck, Total.  Paper shape: zkPHIRE ~30%
slower than zkSpeed+ on Vanilla (programmability tax); Jellyfish 4× is
enough to beat Vanilla on both; OpenCheck scales directly with the
reduction.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.gates import gate_by_id
from repro.hw.accelerator import opencheck_profile
from repro.hw.config import SumCheckUnitConfig
from repro.hw.scheduler import PolyProfile
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.hw.zkspeed import ZkSpeedSumCheckModel

FIG9_BANDWIDTH = 2048.0
FIG9_NUM_VARS = 24

#: roughly iso-zkSpeed-area zkPHIRE SumCheck design (35.24 mm², §VI-A3)
FIG9_CONFIG = SumCheckUnitConfig(pes=16, ees_per_pe=5, pls_per_pe=6,
                                 sram_bank_words=1024, fixed_prime=False)


def _phases(gate: str):
    zc = 20 if gate == "vanilla" else 22
    pc = 21 if gate == "vanilla" else 23
    return (PolyProfile.from_gate(gate_by_id(zc)),
            PolyProfile.from_gate(gate_by_id(pc)),
            opencheck_profile())


def run(fast: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        name="fig09",
        title="Fig 9: SumCheck phases vs zkSpeed/zkSpeed+ (ms, 2 TB/s)",
        notes="paper: zkPHIRE ~30% slower than zkSpeed+ on Vanilla; "
              "Jellyfish 4x outperforms Vanilla everywhere",
    )
    v_zc, v_pc, v_oc = _phases("vanilla")

    rows: list[dict] = []
    for label, model in (
        ("zkSpeed (Vanilla)", ZkSpeedSumCheckModel(FIG9_BANDWIDTH, plus=False)),
        ("zkSpeed+ (Vanilla)", ZkSpeedSumCheckModel(FIG9_BANDWIDTH, plus=True)),
    ):
        zc = model.latency_s(v_zc, FIG9_NUM_VARS)
        pc = model.latency_s(v_pc, FIG9_NUM_VARS)
        oc = model.latency_s(v_oc, FIG9_NUM_VARS)
        rows.append({"design": label, "ZeroCheck": zc * 1e3,
                     "PermCheck": pc * 1e3, "OpenCheck": oc * 1e3,
                     "Total": (zc + pc + oc) * 1e3})

    ours = SumCheckUnitModel(FIG9_CONFIG, FIG9_BANDWIDTH)
    zc = ours.run(v_zc, FIG9_NUM_VARS).latency_s
    pc = ours.run(v_pc, FIG9_NUM_VARS).latency_s
    oc = ours.run(v_oc, FIG9_NUM_VARS, fuse_fr=False).latency_s
    rows.append({"design": "zkPHIRE (Vanilla)", "ZeroCheck": zc * 1e3,
                 "PermCheck": pc * 1e3, "OpenCheck": oc * 1e3,
                 "Total": (zc + pc + oc) * 1e3})

    j_zc, j_pc, j_oc = _phases("jellyfish")
    for reduction, shift in (("2x", 1), ("4x", 2), ("8x", 3)):
        mu = FIG9_NUM_VARS - shift
        zc = ours.run(j_zc, mu).latency_s
        pc = ours.run(j_pc, mu).latency_s
        oc = ours.run(j_oc, mu, fuse_fr=False).latency_s
        rows.append({"design": f"zkPHIRE (Jellyfish {reduction})",
                     "ZeroCheck": zc * 1e3, "PermCheck": pc * 1e3,
                     "OpenCheck": oc * 1e3, "Total": (zc + pc + oc) * 1e3})

    result.rows = rows
    plus_total = rows[1]["Total"]
    result.summary["zkPHIRE/zkSpeed+ (Vanilla total)"] = (
        rows[2]["Total"] / plus_total)
    result.summary["Jellyfish4x vs zkSpeed+ speedup"] = (
        plus_total / rows[4]["Total"])
    result.summary["Jellyfish8x vs zkSpeed+ speedup"] = (
        plus_total / rows[5]["Total"])
    return result
