"""Table V: area and power of the 294 mm² zkPHIRE exemplar design."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw.area import accelerator_area
from repro.hw.config import AcceleratorConfig
from repro.hw.power import accelerator_power

#: the paper's Table V (mm², W)
PAPER_TABLE5 = {
    "MSM": (105.69, 58.99),
    "MultiFunc Forest": (48.18, 40.69),
    "SumCheck": (16.65, 14.43),
    "Misc": (10.64, 6.17),
    "Onchip Mem": (27.55, 3.56),
    "Interconnect": (26.42, 14.83),
    "HBM PHY": (59.20, 63.60),
}
PAPER_TOTAL = (294.32, 202.28)


def run(fast: bool = True) -> ExperimentResult:
    cfg = AcceleratorConfig.exemplar()
    area = accelerator_area(cfg)
    power = accelerator_power(area, cfg.bandwidth_gbps)
    result = ExperimentResult(
        name="table05",
        title="Table V: exemplar area (mm2) and power (W)",
        notes="paper totals: 294.32 mm2 / 202.28 W",
    )
    area_d = area.as_dict()
    power_d = power.as_dict()
    power_d["HBM PHY"] = power_d.pop("HBM")
    for module, (paper_a, paper_w) in PAPER_TABLE5.items():
        result.rows.append({
            "module": module,
            "area (mm2)": area_d[module],
            "paper area": paper_a,
            "power (W)": power_d[module],
            "paper power": paper_w,
        })
    result.rows.append({
        "module": "TOTAL",
        "area (mm2)": area.total,
        "paper area": PAPER_TOTAL[0],
        "power (W)": power.total,
        "paper power": PAPER_TOTAL[1],
    })
    result.summary["area delta %"] = 100 * (area.total / PAPER_TOTAL[0] - 1)
    result.summary["power delta %"] = 100 * (power.total / PAPER_TOTAL[1] - 1)
    return result
