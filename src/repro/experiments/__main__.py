"""Run every experiment and print its table: ``python -m repro.experiments``.

``--full`` disables the reduced fast grids (slower, finer DSE sweeps);
``--backend NAME`` (or ``--backend=NAME``) selects the default
field-vector backend for every functional prover the experiments run;
``--list`` prints the valid experiment names and exits.  Unknown
experiment names and unknown backends fail fast with the valid list
(exit code 2) instead of surfacing importlib internals.
"""

from __future__ import annotations

import importlib
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def _extract_backend(argv: list[str]) -> tuple[list[str], str | None, str]:
    """Pull ``--backend NAME`` / ``--backend=NAME`` out of ``argv``.

    Returns the remaining argv, the backend name (None when absent),
    and an error message (empty when parsing succeeded).
    """
    rest: list[str] = []
    backend: str | None = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--backend":
            if i + 1 >= len(argv):
                return rest, None, "--backend needs a value"
            backend = argv[i + 1]
            i += 2
            continue
        if arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
            i += 1
            continue
        rest.append(arg)
        i += 1
    return rest, backend, ""


def main(argv: list[str] | None = None) -> int:
    if argv is None:  # console-script entry point (pyproject repro-experiments)
        argv = sys.argv[1:]
    if "--list" in argv:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0
    argv, backend, err = _extract_backend(list(argv))
    if err:
        print(err, file=sys.stderr)
        return 2
    if backend is not None:
        from repro.fields.vector import list_backends, set_default_backend

        if backend not in list_backends():
            print(f"unknown backend {backend!r}", file=sys.stderr)
            print(f"valid backends: {', '.join(list_backends())}",
                  file=sys.stderr)
            return 2
        set_default_backend(backend)
    known_flags = {"--full"}
    bad_flags = sorted({a for a in argv
                        if a.startswith("-") and a not in known_flags})
    if bad_flags:
        print(f"unknown flag(s): {', '.join(bad_flags)}", file=sys.stderr)
        print("valid flags: --full, --backend NAME, --list", file=sys.stderr)
        return 2
    fast = "--full" not in argv
    selected = [a for a in argv if not a.startswith("-")]
    unknown = sorted(set(selected) - set(ALL_EXPERIMENTS))
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"valid names: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    names = selected or ALL_EXPERIMENTS
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        t0 = time.time()
        result = module.run(fast=fast)
        result.print(max_rows=40)
        print(f"  [{name} ran in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
