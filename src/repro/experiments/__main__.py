"""Run every experiment and print its table: ``python -m repro.experiments``.

``--full`` disables the reduced fast grids (slower, finer DSE sweeps).
"""

from __future__ import annotations

import importlib
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    if argv is None:  # console-script entry point (pyproject repro-experiments)
        argv = sys.argv[1:]
    fast = "--full" not in argv
    selected = [a for a in argv if not a.startswith("-")]
    names = selected or ALL_EXPERIMENTS
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        t0 = time.time()
        result = module.run(fast=fast)
        result.print(max_rows=40)
        print(f"  [{name} ran in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
