"""Table IX: cross-accelerator comparison (NoCap, SZKP+, zkSpeed+,
zkPHIRE) on the Rollup-25 workload class.

Prior-accelerator rows are the paper's published numbers (their systems
are not re-modeled); zkPHIRE's row is produced by our models: runtime
from the protocol model, area/power from the rollups, proof size from
the analytic size model, modmul count from the configuration.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw import tech
from repro.hw.accelerator import ZkPhireModel, proof_size_bytes
from repro.hw.area import accelerator_area
from repro.hw.config import AcceleratorConfig
from repro.hw.power import accelerator_power
from repro.workloads import workload_by_name

#: published rows (paper Table IX)
PAPER_ROWS = [
    {"accelerator": "NoCap", "protocol": "Spartan+Orion", "gates": "2^24",
     "proof": "8.1 MB", "setup": "none", "SW prover (s)": 94.2,
     "HW prover (ms)": 151.3, "area (mm2)": 38.73, "modmuls": 2432,
     "power (W)": 62.0},
    {"accelerator": "SZKP+", "protocol": "Groth16", "gates": "2^24",
     "proof": "0.18 KB", "setup": "circuit-specific", "SW prover (s)": 51.18,
     "HW prover (ms)": 28.43, "area (mm2)": 353.2, "modmuls": 1720,
     "power (W)": 220.0},
    {"accelerator": "zkSpeed+", "protocol": "HyperPlonk", "gates": "2^24",
     "proof": "5.09 KB", "setup": "universal", "SW prover (s)": 145.5,
     "HW prover (ms)": 151.973, "area (mm2)": 366.46, "modmuls": 1206,
     "power (W)": 171.0},
]


def zkphire_modmul_count(cfg: AcceleratorConfig) -> int:
    sc = cfg.sumcheck.update_multipliers
    forest = cfg.forest.total_multipliers
    msm = cfg.msm.pes * tech.PADD_MODMULS
    other = 2 + cfg.permquot.pes * 2 + tech.MLE_COMBINE_MULS
    return sc + forest + msm + other


def run(fast: bool = True) -> ExperimentResult:
    cfg = AcceleratorConfig.exemplar()
    w = workload_by_name("Rollup 25 Pvt Tx")
    model = ZkPhireModel(cfg)
    hw_ms = model.prove_latency_s("jellyfish", w.jellyfish_log2) * 1e3
    area = accelerator_area(cfg)
    power = accelerator_power(area, cfg.bandwidth_gbps)
    result = ExperimentResult(
        name="table09",
        title="Table IX: comparison with prior ZKP accelerators (Rollup-25)",
        notes="prior rows are published numbers; zkPHIRE row is our model "
              "(paper: 3.874 ms, 294.32 mm2, 2267 modmuls, 202 W, 4.41 KB)",
    )
    result.rows = list(PAPER_ROWS)
    result.rows.append({
        "accelerator": "zkPHIRE (ours)",
        "protocol": "HyperPlonk",
        "gates": f"2^{w.jellyfish_log2} (Jellyfish)",
        "proof": f"{proof_size_bytes('jellyfish', w.jellyfish_log2)/1024:.2f} KB",
        "setup": "universal",
        "SW prover (s)": w.cpu_jellyfish_s,
        "HW prover (ms)": hw_ms,
        "area (mm2)": area.total,
        "modmuls": zkphire_modmul_count(cfg),
        "power (W)": power.total,
    })
    result.summary["vs NoCap"] = PAPER_ROWS[0]["HW prover (ms)"] / hw_ms
    result.summary["vs SZKP+"] = PAPER_ROWS[1]["HW prover (ms)"] / hw_ms
    result.summary["vs zkSpeed+"] = PAPER_ROWS[2]["HW prover (ms)"] / hw_ms
    return result
