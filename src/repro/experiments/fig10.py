"""Figure 10 + Table IV: Pareto frontiers for 2^24 Jellyfish gates.

Sweeps the Table III design space per bandwidth tier, reporting each
tier's Pareto frontier and the global frontier with its labeled designs
(paper Table IV: A 71.4 ms / 599 mm² / 4 TB/s / 2560× down to
G 1716.8 ms / 25 mm² / 128 GB/s / 107×).
"""

from __future__ import annotations

from repro.experiments import setups
from repro.experiments.common import ExperimentResult
from repro.hw.dse import accelerator_dse, pareto_frontier
from repro.hw.memory import BANDWIDTH_TIERS


def compute(fast: bool = True):
    sc_grid = setups.fast_sc_grid() if fast else None
    msm_grid = setups.fast_msm_grid() if fast else None
    per_bw = {}
    everything = []
    for bw in BANDWIDTH_TIERS:
        points = accelerator_dse("jellyfish", setups.PARETO_NUM_VARS, bw,
                                 sc_grid=sc_grid, msm_grid=msm_grid)
        per_bw[bw] = pareto_frontier(points)
        everything.extend(points)
    return per_bw, pareto_frontier(everything)


def run(fast: bool = True) -> ExperimentResult:
    per_bw, global_front = compute(fast)
    result = ExperimentResult(
        name="fig10",
        title="Fig 10: Pareto frontiers, 2^24 Jellyfish gates",
        notes="paper: ~1000x at 207mm2/1TB/s; ~1400x at 294mm2/2TB/s",
    )
    for bw, front in per_bw.items():
        best = min(front, key=lambda p: p.runtime_s)
        result.rows.append({
            "BW (GB/s)": bw,
            "pareto pts": len(front),
            "fastest (ms)": best.runtime_s * 1e3,
            "area (mm2)": best.area_mm2,
            "speedup": setups.PARETO_CPU_S / best.runtime_s,
        })
    result.summary["global pareto points"] = len(global_front)
    best = min(global_front, key=lambda p: p.runtime_s)
    result.summary["best speedup"] = setups.PARETO_CPU_S / best.runtime_s
    # stash for table04/fig11 reuse
    result.summary["_global_front"] = global_front
    result.summary["_per_bw"] = per_bw
    return result
