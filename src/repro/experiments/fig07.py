"""Figure 7: fixed SumCheck configuration on high-degree polynomials,
latency and speedup-over-CPU across bandwidth tiers.

The sweep family is f = q1·w1 + q2·w2 + q3·w1^(d-1)·w2 + qc for
d = 2..30.  The paper's headline: low-degree polynomials need HBM-scale
bandwidth for ~1000× speedups, while high-degree polynomials reach
similar speedups at DDR5-class (256 GB/s) bandwidth, because they do
more compute on the same data.
"""

from __future__ import annotations

from repro.experiments import setups
from repro.experiments.common import ExperimentResult
from repro.hw.config import SumCheckUnitConfig
from repro.hw.cpu_baseline import CpuModel
from repro.hw.memory import BANDWIDTH_TIERS
from repro.hw.sumcheck_unit import SumCheckUnitModel

#: a high-performance design under the Fig-6 area budget
FIG7_CONFIG = SumCheckUnitConfig(pes=16, ees_per_pe=4, pls_per_pe=8,
                                 sram_bank_words=1024)

DEGREES = tuple(range(2, 31))


def run(fast: bool = True, num_vars: int = setups.SUMCHECK_NUM_VARS
        ) -> ExperimentResult:
    degrees = DEGREES[::3] if fast else DEGREES
    cpu = CpuModel(threads=4)
    result = ExperimentResult(
        name="fig07",
        title="Fig 7: degree sweep at fixed config (latency ms / speedup)",
        notes="high degree reaches ~1000x at DDR-class BW; low degree "
              "needs HBM (paper Fig 7)",
    )
    for d in degrees:
        poly = setups.sweep_profile(d)
        cpu_s = cpu.sumcheck_seconds(poly, num_vars)
        row = {"degree": d}
        for bw in BANDWIDTH_TIERS:
            model = SumCheckUnitModel(FIG7_CONFIG, bw)
            lat = model.run(poly, num_vars).latency_s
            row[f"lat@{bw}"] = lat * 1e3
            row[f"spd@{bw}"] = cpu_s / lat
        result.rows.append(row)

    lo_d, hi_d = degrees[0], degrees[-1]
    lo = result.rows[0]
    hi = result.rows[-1]
    # bandwidth sensitivity: ratio of speedup at 4 TB/s vs 256 GB/s
    result.summary["low-degree BW sensitivity"] = lo["spd@4096"] / lo["spd@256"]
    result.summary["high-degree BW sensitivity"] = hi["spd@4096"] / hi["spd@256"]
    result.summary["speedup@256GB/s, max degree"] = hi["spd@256"]
    result.summary["degrees"] = f"{lo_d}..{hi_d}"
    return result
