"""Figure 8: scheduler-induced latency jumps vs polynomial degree for
2-7 extension engines at fixed bandwidth and product lanes.

Latency climbs in discrete steps whenever the degree crosses a node-count
boundary of the Figure-2 graph decomposition (e.g. at 6 EEs, the jump
from degree 6→7 adds a second node), growing only gradually inside each
node cluster.
"""

from __future__ import annotations

from repro.experiments import setups
from repro.experiments.common import ExperimentResult
from repro.hw.config import SumCheckUnitConfig
from repro.hw.scheduler import schedule_polynomial
from repro.hw.sumcheck_unit import SumCheckUnitModel

FIG8_BANDWIDTH = 2048.0
FIG8_PLS = 5
EE_RANGE = (2, 3, 4, 5, 6, 7)
DEGREES = tuple(range(2, 31))


def run(fast: bool = True, num_vars: int = 20) -> ExperimentResult:
    degrees = DEGREES if not fast else DEGREES
    result = ExperimentResult(
        name="fig08",
        title="Fig 8: latency (ms) vs degree per EE count "
              f"(BW={FIG8_BANDWIDTH:.0f} GB/s, {FIG8_PLS} PLs)",
        notes="discrete jumps at node-count boundaries of the Fig-2 schedule",
    )
    jump_degrees: dict[int, list[int]] = {}
    for d in degrees:
        poly = setups.sweep_profile(d)
        row = {"degree": d}
        for ees in EE_RANGE:
            cfg = SumCheckUnitConfig(pes=8, ees_per_pe=ees,
                                     pls_per_pe=FIG8_PLS,
                                     sram_bank_words=1024)
            model = SumCheckUnitModel(cfg, FIG8_BANDWIDTH)
            row[f"{ees} EEs"] = model.run(poly, num_vars).latency_s * 1e3
            row[f"steps@{ees}"] = schedule_polynomial(
                poly, ees, FIG8_PLS).num_steps
        result.rows.append(row)

    # locate the first node-count jump per EE setting
    for ees in EE_RANGE:
        prev = None
        for row in result.rows:
            steps = row[f"steps@{ees}"]
            if prev is not None and steps > prev:
                jump_degrees.setdefault(ees, []).append(row["degree"])
            prev = steps
        if ees in jump_degrees:
            result.summary[f"first jump @{ees} EEs"] = jump_degrees[ees][0]
    return result
