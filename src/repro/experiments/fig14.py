"""Figure 14: high-degree sweep on the full HyperPlonk protocol.

Runs the exemplar design on custom gates f = q1·w1 + q2·w2 +
q3·w1^(d-1)·w2 + qc (× fr) for d = 2..30 at 2^24 gates.  The witness
count is fixed, so MSM time is constant; SumCheck time grows with
degree, producing a crossover where SumCheck overtakes MSM as the
bottleneck — the paper finds it at d ≈ 18 (45% of runtime).
"""

from __future__ import annotations

from repro.experiments import setups
from repro.experiments.common import ExperimentResult
from repro.hw.accelerator import ZkPhireModel
from repro.hw.config import AcceleratorConfig
from repro.plan import hyperplonk_plan

DEGREES = tuple(range(2, 31))
FIG14_NUM_VARS = 24


def run(fast: bool = True) -> ExperimentResult:
    degrees = DEGREES[::2] if fast else DEGREES
    model = ZkPhireModel(AcceleratorConfig.exemplar())
    result = ExperimentResult(
        name="fig14",
        title="Fig 14: full-protocol degree sweep (2^24 gates)",
        notes="paper: SumCheck overtakes MSM at d~18 (45% of runtime)",
    )
    crossover = None
    for d in degrees:
        profile = setups.sweep_profile(d, with_fr=True)
        # one shared plan per degree: only the ZeroCheck phase changes
        plan = hyperplonk_plan("vanilla", FIG14_NUM_VARS,
                               custom_zerocheck=profile)
        bd = model.price(plan)
        total = bd.total
        sc = bd.zerocheck + bd.permcheck + bd.opencheck
        # exposed (non-overlapped) SumCheck time actually on the clock
        msm = bd.witness_msm + bd.wiring_msm + bd.opening_msm
        sc_share = sc / (sc + msm)
        result.rows.append({
            "degree": d,
            "total (ms)": total * 1e3,
            "SumCheck (ms)": sc * 1e3,
            "MSM (ms)": msm * 1e3,
            "SumCheck share %": 100 * sc_share,
        })
        if crossover is None and sc > msm:
            crossover = d
    result.summary["crossover degree (SumCheck > MSM)"] = crossover or ">30"
    result.summary["MSM constant?"] = (
        abs(result.rows[0]["MSM (ms)"] - result.rows[-1]["MSM (ms)"])
        < 0.01 * result.rows[0]["MSM (ms)"]
    )
    return result
