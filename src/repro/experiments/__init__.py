"""Experiment harness: one module per table/figure of the paper's §VI.

Each module exposes ``run(fast=True) -> ExperimentResult``; ``fast`` uses
a reduced design-space grid where the full sweep is expensive (results
are qualitatively identical; the reduced grids still cover every knob).
``python -m repro.experiments`` runs everything and prints the tables.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]

ALL_EXPERIMENTS = [
    "table01", "fig06", "fig07", "fig08", "fig09", "table02",
    "fig10", "table04", "fig11", "fig12", "table05", "fig13",
    "fig14", "table06", "table07", "table08", "table09",
]
