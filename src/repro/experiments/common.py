"""Shared experiment plumbing: result container and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp, log
from typing import Sequence


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        raise ValueError("geomean needs positive values")
    return exp(sum(log(v) for v in vals) / len(vals))


@dataclass
class ExperimentResult:
    """Rows of an experiment plus free-form notes.

    ``rows`` is a list of dicts sharing keys; ``summary`` holds headline
    scalars (geomeans, crossover points) the tests assert on.
    """

    name: str
    title: str
    rows: list[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    notes: str = ""

    def columns(self) -> list[str]:
        cols: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                cols.setdefault(key)
        return list(cols)

    def format_table(self, max_rows: int | None = None) -> str:
        cols = self.columns()
        if not cols:
            return f"== {self.title} ==\n(no rows)"

        def fmt(v):
            if isinstance(v, float):
                if v == 0:
                    return "0"
                if abs(v) >= 1000 or abs(v) < 0.01:
                    return f"{v:.3g}"
                return f"{v:.3f}"
            return str(v)

        rows = self.rows if max_rows is None else self.rows[:max_rows]
        table = [[fmt(r.get(c, "")) for c in cols] for r in rows]
        widths = [
            max(len(c), *(len(t[i]) for t in table)) if table else len(c)
            for i, c in enumerate(cols)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for t in table:
            lines.append("  ".join(v.ljust(w) for v, w in zip(t, widths)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        for k, v in self.summary.items():
            if k.startswith("_"):  # private payloads for downstream reuse
                continue
            lines.append(f"  {k}: {fmt(v)}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)

    def print(self, max_rows: int | None = None) -> None:
        print(self.format_table(max_rows))
