"""Table II: SumCheck runtimes on CPU, GPU, and zkPHIRE for N = 2^24.

CPU and GPU columns are the paper's measurements (the CPU column also
shows our calibrated model's prediction); the zkPHIRE column is our
model at 1 TB/s (matching the A100's ~1.6 TB/s class, as the paper does).
Paper headline: ~70× over GPU, 600-1100× over CPU; ICICLE cannot run
polynomials 21-24 (8-unique-MLE limit).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, geomean
from repro.experiments.fig09 import FIG9_CONFIG
from repro.gates import gate_by_id
from repro.hw.cpu_baseline import CpuModel
from repro.hw.gpu_baseline import GPU_RUNTIMES_MS, gpu_supported
from repro.hw.scheduler import PolyProfile, TermProfile
from repro.hw.sumcheck_unit import SumCheckUnitModel
from repro.plan import hyperplonk_plan

TABLE2_BANDWIDTH = 1024.0

#: (row label, profile builder, num_vars, #sumchecks, measured CPU ms, GPU key)
def _rows():
    spartan1 = PolyProfile("spartan1", [
        TermProfile((("A", 1), ("B", 1), ("f_tau", 1))),
        TermProfile((("C", 1), ("f_tau", 1))),
    ])
    spartan2 = PolyProfile("spartan2", [TermProfile((("SumABC", 1), ("Z", 1)))])
    abc = PolyProfile("abc", [TermProfile((("A", 1), ("B", 1), ("C", 1)))])
    hp20_nofr = PolyProfile("hp20", [
        TermProfile((("qL", 1), ("w1", 1))),
        TermProfile((("qR", 1), ("w2", 1))),
        TermProfile((("qO", 1), ("w3", 1))),
        TermProfile((("qM", 1), ("w1", 1), ("w2", 1))),
        TermProfile((("qC", 1),)),
    ])
    # the HyperPlonk rows 21-23 are exactly the shared plan's ZeroCheck /
    # PermCheck phase profiles; row 24 is the gate library's OpenCheck
    vanilla = hyperplonk_plan("vanilla", 24)
    jellyfish = hyperplonk_plan("jellyfish", 24)
    hp = {
        21: vanilla.sumcheck_profile("permcheck"),
        22: jellyfish.sumcheck_profile("zerocheck"),
        23: jellyfish.sumcheck_profile("permcheck"),
        24: PolyProfile.from_gate(gate_by_id(24)),
    }
    return [
        ("(A*B-C)*f_tau", spartan1, 24, 1, 6770, "spartan1"),
        ("(SumABC)*Z", spartan2, 25, 1, 5237, "spartan2"),
        ("A*B*C x12", abc, 24, 12, 60993, "abc_x12"),
        ("A*B*C x6", abc, 23, 6, 15248, "abc_x6"),
        ("A*B*C x4", abc, 25, 4, 40662, "abc_x4"),
        ("HP Poly 20 (-fr)", hp20_nofr, 24, 1, 13354, "hp20"),
        ("HP Poly 21", hp[21], 24, 1, 21625, None),
        ("HP Poly 22", hp[22], 24, 1, 74226, None),
        ("HP Poly 23", hp[23], 24, 1, 32774, None),
        ("HP Poly 24", hp[24], 24, 1, 17591, None),
    ]


def run(fast: bool = True) -> ExperimentResult:
    cpu = CpuModel(threads=4)
    hw = SumCheckUnitModel(FIG9_CONFIG, TABLE2_BANDWIDTH)
    result = ExperimentResult(
        name="table02",
        title="Table II: SumCheck runtimes (ms), N=2^24 class",
        notes="paper zkPHIRE speedups: 600-1100x CPU, ~70x GPU; GPU '-' "
              "means ICICLE's 8-unique-MLE limit",
    )
    cpu_speedups, gpu_speedups = [], []
    for label, poly, mu, reps, cpu_ms, gpu_key in _rows():
        ours_ms = hw.run(poly, mu).latency_s * reps * 1e3
        model_cpu_ms = cpu.sumcheck_seconds(poly, mu, repeats=reps) * 1e3
        gpu_ms = GPU_RUNTIMES_MS.get(gpu_key) if gpu_key else None
        supported = gpu_supported(len(poly.unique_mles))
        row = {
            "polynomial": label,
            "CPU paper (ms)": cpu_ms,
            "CPU model (ms)": model_cpu_ms,
            "GPU (ms)": gpu_ms if gpu_ms else "-",
            "zkPHIRE (ms)": ours_ms,
            "vs CPU": cpu_ms / ours_ms,
            "vs GPU": (gpu_ms / ours_ms) if gpu_ms else "-",
            "ICICLE ok": supported,
        }
        cpu_speedups.append(cpu_ms / ours_ms)
        if gpu_ms:
            gpu_speedups.append(gpu_ms / ours_ms)
        result.rows.append(row)
    result.summary["geomean vs CPU"] = geomean(cpu_speedups)
    result.summary["geomean vs GPU"] = geomean(gpu_speedups)
    return result
