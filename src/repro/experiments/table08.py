"""Table VIII: iso-application comparison — zkSpeed+ proving with
Vanilla gates vs zkPHIRE proving the same application with Jellyfish
gates (masking + fixed primes).  Paper geomean: 11.87×."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, geomean
from repro.hw.accelerator import ZkPhireModel
from repro.hw.config import AcceleratorConfig
from repro.hw.zkspeed import ZKSPEED_PLUS_PROTOCOL_MS
from repro.workloads import WORKLOADS

TABLE8_WORKLOADS = ("ZCash", "Rescue Hash", "Zexe", "Rollup 10 Pvt Tx",
                    "Rollup 25 Pvt Tx")


def run(fast: bool = True) -> ExperimentResult:
    model = ZkPhireModel(AcceleratorConfig.exemplar())
    result = ExperimentResult(
        name="table08",
        title="Table VIII: iso-application, zkSpeed+ (Vanilla) vs "
              "zkPHIRE (Jellyfish)",
        notes="paper geomean 11.87x (2.43x ZCash .. 39.23x Rollup-25)",
    )
    speedups = []
    for w in WORKLOADS:
        if w.name not in TABLE8_WORKLOADS or w.jellyfish_log2 is None:
            continue
        zk_ms = ZKSPEED_PLUS_PROTOCOL_MS[w.name]
        ours_ms = model.prove_latency_s("jellyfish", w.jellyfish_log2) * 1e3
        speedups.append(zk_ms / ours_ms)
        result.rows.append({
            "workload": w.name,
            "vanilla gates": f"2^{w.vanilla_log2}",
            "jellyfish gates": f"2^{w.jellyfish_log2}",
            "zkSpeed+ (ms)": zk_ms,
            "zkPHIRE (ms)": ours_ms,
            "speedup": zk_ms / ours_ms,
        })
    result.summary["geomean speedup"] = geomean(speedups)
    return result
