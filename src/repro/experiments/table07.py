"""Table VII: Jellyfish-gate runtimes and CPU speedups up to 2^30
nominal constraints (iso-CPU-area design, fixed primes, masking on).

Paper headline: 1486× geomean speedup; scaling to Rollup-1600
(2^30 nominal / 2^25 Jellyfish gates) and zkEVM (2^27)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, geomean
from repro.hw.accelerator import ZkPhireModel
from repro.hw.config import AcceleratorConfig
from repro.workloads import WORKLOADS


def run(fast: bool = True) -> ExperimentResult:
    model = ZkPhireModel(AcceleratorConfig.exemplar())
    result = ExperimentResult(
        name="table07",
        title="Table VII: Jellyfish runtimes vs CPU",
        notes="paper geomean 1486x; supports 2^30 nominal constraints",
    )
    speedups = []
    for w in WORKLOADS:
        if w.jellyfish_log2 is None or w.cpu_jellyfish_s is None:
            continue
        ours_ms = model.prove_latency_s("jellyfish", w.jellyfish_log2) * 1e3
        cpu_ms = w.cpu_jellyfish_s * 1e3
        speedups.append(cpu_ms / ours_ms)
        result.rows.append({
            "workload": w.name,
            "vanilla gates": f"2^{w.vanilla_log2}" if w.vanilla_log2 else "-",
            "jellyfish gates": f"2^{w.jellyfish_log2}",
            "CPU (ms)": cpu_ms,
            "zkPHIRE (ms)": ours_ms,
            "speedup": cpu_ms / ours_ms,
        })
    result.summary["geomean speedup"] = geomean(speedups)
    return result
