"""Table I: the polynomial-constraint library (structural summary)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.gates import TABLE1


def run(fast: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        name="table01",
        title="Table I: polynomial constraints (structure)",
    )
    for spec in TABLE1:
        result.rows.append({
            "id": spec.gate_id,
            "name": spec.name,
            "degree": spec.degree,
            "terms": spec.num_terms,
            "unique MLEs": spec.num_unique_mles,
            "scalars": ",".join(spec.compiled.scalar_names) or "-",
        })
    result.summary["max degree"] = max(s.degree for s in TABLE1)
    result.summary["polynomials"] = len(TABLE1)
    return result
