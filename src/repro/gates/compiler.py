"""Compile gate expressions to sum-of-products form.

:func:`compile_expr` fully distributes an expression tree into a list of
monomials (integer coefficient × symbolic scalars × MLE powers) and wraps
the result in a :class:`CompiledGate`, which can be *bound* against
concrete scalar values and a field to yield the
:class:`~repro.mle.virtual.Term` list SumCheck consumes.

The compiled form is also what zkPHIRE's automated scheduler (§III-E)
takes as input: the per-term factor lists drive the graph decomposition
in ``repro.hw.scheduler``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.fields.prime_field import PrimeField
from repro.gates.expr import Const, Expr, Pow, Prod, Scalar, Sum, Var
from repro.mle.virtual import Term


@dataclass(frozen=True)
class Monomial:
    """coeff * prod(scalars) * prod(mle^power); symbolic (field-free) form."""

    coeff: int
    scalars: tuple[tuple[str, int], ...]  # (scalar name, power), sorted
    factors: tuple[tuple[str, int], ...]  # (mle name, power), sorted

    @property
    def degree(self) -> int:
        return sum(p for _, p in self.factors)


def _multiply(a: Monomial, b: Monomial) -> Monomial:
    scalars = Counter(dict(a.scalars))
    scalars.update(dict(b.scalars))
    factors = Counter(dict(a.factors))
    factors.update(dict(b.factors))
    return Monomial(
        coeff=a.coeff * b.coeff,
        scalars=tuple(sorted(scalars.items())),
        factors=tuple(sorted(factors.items())),
    )


_ONE = Monomial(1, (), ())


def _expand(expr: Expr) -> list[Monomial]:
    if isinstance(expr, Const):
        return [Monomial(expr.value, (), ())] if expr.value else []
    if isinstance(expr, Var):
        return [Monomial(1, (), ((expr.name, 1),))]
    if isinstance(expr, Scalar):
        return [Monomial(1, ((expr.name, 1),), ())]
    if isinstance(expr, Sum):
        out: list[Monomial] = []
        for child in expr.children:
            out.extend(_expand(child))
        return out
    if isinstance(expr, Prod):
        partials = [_ONE]
        for child in expr.children:
            child_monomials = _expand(child)
            partials = [_multiply(p, m) for p in partials for m in child_monomials]
        return partials
    if isinstance(expr, Pow):
        if expr.exponent == 0:
            return [_ONE]
        base = _expand(expr.base)
        out = base
        for _ in range(expr.exponent - 1):
            out = [_multiply(p, m) for p in out for m in base]
        return out
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _combine_like(monomials: list[Monomial]) -> list[Monomial]:
    acc: dict[tuple, int] = {}
    for m in monomials:
        key = (m.scalars, m.factors)
        acc[key] = acc.get(key, 0) + m.coeff
    return [
        Monomial(coeff, scalars, factors)
        for (scalars, factors), coeff in acc.items()
        if coeff != 0
    ]


@dataclass
class CompiledGate:
    """A gate expression in canonical sum-of-products form."""

    name: str
    monomials: list[Monomial]

    @property
    def degree(self) -> int:
        return max((m.degree for m in self.monomials), default=0)

    @property
    def num_terms(self) -> int:
        return len(self.monomials)

    @property
    def mle_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for m in self.monomials:
            for name, _ in m.factors:
                seen.setdefault(name)
        return list(seen)

    @property
    def scalar_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for m in self.monomials:
            for name, _ in m.scalars:
                seen.setdefault(name)
        return list(seen)

    def bind(
        self,
        field: PrimeField,
        scalar_values: Mapping[str, int] | None = None,
    ) -> list[Term]:
        """Resolve symbolic scalars and produce SumCheck-ready Terms."""
        scalar_values = scalar_values or {}
        missing = [s for s in self.scalar_names if s not in scalar_values]
        if missing:
            raise KeyError(f"unbound scalars for gate {self.name!r}: {missing}")
        p = field.modulus
        terms = []
        for m in self.monomials:
            coeff = m.coeff % p
            for sname, spower in m.scalars:
                coeff = coeff * pow(scalar_values[sname] % p, spower, p) % p
            if coeff == 0:
                continue
            terms.append(Term(coeff=coeff, factors=m.factors))
        if not terms:
            raise ValueError(f"gate {self.name!r} bound to the zero polynomial")
        return terms

    def term_shapes(self) -> list[tuple[int, int]]:
        """Per-term (#distinct MLEs, total degree) — the scheduler's input."""
        return [(len(m.factors), m.degree) for m in self.monomials]


def compile_expr(name: str, expr: Expr) -> CompiledGate:
    """Expand ``expr`` into canonical sum-of-products form."""
    monomials = _combine_like(_expand(expr))
    if not monomials:
        raise ValueError(f"expression for {name!r} expanded to zero")
    return CompiledGate(name=name, monomials=monomials)
