"""The paper's Table I polynomial-constraint library.

All 25 constraints the evaluation uses: Verifiable-ASICs and Spartan
gates (IDs 0–2), Halo2 elliptic-curve gates (IDs 3–19), and the
HyperPlonk polynomials (IDs 20–24).  Each entry records the expression,
its compiled sum-of-products form, and bookkeeping the experiments need
(degree, term count, unique-MLE count).

Also exported: the parametric high-degree family
f = q1*w1 + q2*w2 + q3*w1^(d-1)*w2 + qc used by the degree sweeps
(Figs. 7, 8, 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.gates.compiler import CompiledGate, compile_expr
from repro.gates.expr import Expr, Scalar, Var


@dataclass
class GateSpec:
    """One row of Table I."""

    gate_id: int
    name: str
    expr: Expr
    #: names of MLEs that are 0/1-valued selectors (sparsity modelling)
    selector_names: tuple[str, ...] = ()
    #: names of symbolic scalars that must be bound
    scalar_names: tuple[str, ...] = ()
    compiled: CompiledGate = dc_field(init=False)

    def __post_init__(self):
        self.compiled = compile_expr(self.name, self.expr)

    @property
    def degree(self) -> int:
        return self.compiled.degree

    @property
    def num_terms(self) -> int:
        return self.compiled.num_terms

    @property
    def num_unique_mles(self) -> int:
        return len(self.compiled.mle_names)


def _v(*names: str) -> list[Var]:
    return [Var(n) for n in names]


def _build_table1() -> list[GateSpec]:
    specs: list[GateSpec] = []

    # -- ID 0: Verifiable ASICs [61] ---------------------------------------
    qadd, qmul, a, b = _v("qadd", "qmul", "a", "b")
    specs.append(GateSpec(0, "Verifiable ASICs", qadd * (a + b) + qmul * (a * b),
                          selector_names=("qadd", "qmul")))

    # -- IDs 1-2: Spartan [56] ----------------------------------------------
    A, B, C, f_tau = _v("A", "B", "C", "f_tau")
    specs.append(GateSpec(1, "Spartan 1", (A * B - C) * f_tau))
    sum_abc, Z = _v("SumABC", "Z")
    specs.append(GateSpec(2, "Spartan 2", sum_abc * Z))

    # -- IDs 3-19: Halo2 elliptic-curve constraints [69] ----------------------
    x, y = _v("x", "y")
    q_nonid = Var("q_nonid_point")
    specs.append(GateSpec(3, "Nonzero Point Check",
                          q_nonid * (y ** 2 - x ** 3 - 5),
                          selector_names=("q_nonid_point",)))
    q_point = Var("q_point")
    specs.append(GateSpec(4, "x-gated Curve Check",
                          (q_point * x) * (y ** 2 - x ** 3 - 5),
                          selector_names=("q_point",)))
    specs.append(GateSpec(5, "y-gated Curve Check",
                          (q_point * y) * (y ** 2 - x ** 3 - 5),
                          selector_names=("q_point",)))

    q_inc = Var("q_add_incomplete")
    xp, xq, xr, yp, yq, yr = _v("xp", "xq", "xr", "yp", "yq", "yr")
    specs.append(GateSpec(
        6, "Incomplete Addition 1",
        q_inc * ((xr + xq + xp) * (xp - xq) ** 2 - (yp - yq) ** 2),
        selector_names=("q_add_incomplete",)))
    specs.append(GateSpec(
        7, "Incomplete Addition 2",
        q_inc * ((yr + yq) * (xp - xq) - (yp - yq) * (xq - xr)),
        selector_names=("q_add_incomplete",)))

    qadd2 = Var("qadd")
    lam, alpha, beta, gamma, delta = _v("lambda", "alpha", "beta", "gamma", "delta")
    specs.append(GateSpec(
        8, "Complete Addition 1",
        qadd2 * (xq - xp) * ((xq - xp) * lam - (yq - yp)),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        9, "Complete Addition 2",
        qadd2 * (1 - (xq - xp) * alpha) * (2 * yp * lam - 3 * xp ** 2),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        10, "Complete Addition 3",
        qadd2 * xp * xq * (xq - xp) * (lam ** 2 - xp - xq - xr),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        11, "Complete Addition 4",
        qadd2 * xp * xq * (xq - xp) * (lam * (xp - xr) - yp - yr),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        12, "Complete Addition 5",
        qadd2 * xp * xq * (yq + yp) * (lam ** 2 - xp - xq - xr),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        13, "Complete Addition 6",
        qadd2 * xp * xq * (yq + yp) * (lam * (xp - xr) - yp - yr),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        14, "Complete Addition 7",
        qadd2 * (1 - xp * beta) * (xr - xq),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        15, "Complete Addition 8",
        qadd2 * (1 - xp * beta) * (yr - yq),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        16, "Complete Addition 9",
        qadd2 * (1 - xq * gamma) * (xr - xp),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        17, "Complete Addition 10",
        qadd2 * (1 - xq * gamma) * (yr - yp),
        selector_names=("qadd",)))
    specs.append(GateSpec(
        18, "Complete Addition 11",
        qadd2 * (1 - (xq - xp) * alpha - (yq + yp) * delta) * xr,
        selector_names=("qadd",)))
    specs.append(GateSpec(
        19, "Complete Addition 12",
        qadd2 * (1 - (xq - xp) * alpha - (yq + yp) * delta) * yr,
        selector_names=("qadd",)))

    # -- IDs 20-24: HyperPlonk polynomials [9] ------------------------------
    specs.append(GateSpec(20, "Vanilla ZeroCheck", vanilla_zerocheck_expr(),
                          selector_names=("qL", "qR", "qM", "qO", "qC")))

    pi, p1, p2, phi = _v("pi", "p1", "p2", "phi")
    D1, D2, D3, N1, N2, N3, fr = _v("D1", "D2", "D3", "N1", "N2", "N3", "fr")
    alpha_s = Scalar("alpha")
    specs.append(GateSpec(
        21, "Vanilla PermCheck",
        (pi - p1 * p2 + alpha_s * (phi * D1 * D2 * D3 - N1 * N2 * N3)) * fr,
        scalar_names=("alpha",)))

    specs.append(GateSpec(22, "Jellyfish ZeroCheck", jellyfish_zerocheck_expr(),
                          selector_names=("q1", "q2", "q3", "q4", "qM1", "qM2",
                                          "qH1", "qH2", "qH3", "qH4", "qO",
                                          "qecc", "qC")))

    D4, D5, N4, N5 = _v("D4", "D5", "N4", "N5")
    specs.append(GateSpec(
        23, "Jellyfish PermCheck",
        (pi - p1 * p2
         + alpha_s * (phi * D1 * D2 * D3 * D4 * D5 - N1 * N2 * N3 * N4 * N5)) * fr,
        scalar_names=("alpha",)))

    # OpenCheck: batch k=6 opening claims y_i(x) * eq(x, a_i).
    open_terms = sum(
        (Var(f"y{i}") * Var(f"fr{i}") for i in range(2, 7)),
        Var("y1") * Var("fr1"),
    )
    specs.append(GateSpec(24, "OpenCheck", open_terms))

    return specs


def vanilla_zerocheck_expr() -> Expr:
    """HyperPlonk's Vanilla (Plonk) gate identity, randomized by fr."""
    qL, qR, qM, qO, qC = _v("qL", "qR", "qM", "qO", "qC")
    w1, w2, w3, fr = _v("w1", "w2", "w3", "fr")
    return (qL * w1 + qR * w2 - qO * w3 + qM * w1 * w2 + qC) * fr


def jellyfish_zerocheck_expr() -> Expr:
    """HyperPlonk's Jellyfish custom gate identity, randomized by fr.

    Degree 7 (qH_i * w_i^5 * fr); 13 selector + 5 witness MLEs + fr.
    """
    q1, q2, q3, q4 = _v("q1", "q2", "q3", "q4")
    qM1, qM2, qO, qecc, qC = _v("qM1", "qM2", "qO", "qecc", "qC")
    qH1, qH2, qH3, qH4 = _v("qH1", "qH2", "qH3", "qH4")
    w1, w2, w3, w4, w5, fr = _v("w1", "w2", "w3", "w4", "w5", "fr")
    gate = (q1 * w1 + q2 * w2 + q3 * w3 + q4 * w4
            + qM1 * w1 * w2 + qM2 * w3 * w4
            + qH1 * w1 ** 5 + qH2 * w2 ** 5 + qH3 * w3 ** 5 + qH4 * w4 ** 5
            - qO * w5
            + qecc * w1 * w2 * w3 * w4 * w5
            + qC)
    return gate * fr


#: Table I, indexed by position == gate id.
TABLE1: list[GateSpec] = _build_table1()


def gate_by_id(gate_id: int) -> GateSpec:
    spec = TABLE1[gate_id]
    assert spec.gate_id == gate_id
    return spec


def high_degree_sweep_gate(degree: int, with_fr: bool = False) -> GateSpec:
    """The degree-sweep family f = q1*w1 + q2*w2 + q3*w1^(d-1)*w2 + qc.

    ``degree`` is the total degree d of the q3 term's witness part plus
    its selector (matching §VI-A2's "polynomial degree" axis).  With
    ``with_fr`` the whole gate is multiplied by the ZeroCheck randomizer,
    as in the full-protocol sweep (Fig. 14).
    """
    if degree < 2:
        raise ValueError("sweep family needs degree >= 2")
    q1, q2, q3, qc, w1, w2 = _v("q1", "q2", "q3", "qc", "w1", "w2")
    expr = q1 * w1 + q2 * w2 + q3 * (w1 ** (degree - 1)) * w2 + qc
    if with_fr:
        expr = expr * Var("fr")
    return GateSpec(
        gate_id=-degree,
        name=f"sweep-d{degree}" + ("-fr" if with_fr else ""),
        expr=expr,
        selector_names=("q1", "q2", "q3", "qc"),
    )
