"""Gate expressions: the custom-gate language and the Table I library.

zkPHIRE's headline capability is running SumCheck over *arbitrary*
composite polynomials — custom, high-degree gates in the style of Halo2
and HyperPlonk's Jellyfish gate (§II-C2).  This package provides

* :mod:`~repro.gates.expr` — a small symbolic expression language
  (variables = MLEs, symbolic scalars, +, −, ×, powers),
* :mod:`~repro.gates.compiler` — expansion of an expression into the
  sum-of-products :class:`~repro.mle.virtual.Term` form SumCheck consumes,
* :mod:`~repro.gates.library` — all 25 polynomial constraints of the
  paper's Table I, plus the parametric high-degree family used by the
  degree-sweep experiments (Figs. 7, 8, 14).
"""

from repro.gates.expr import Const, Expr, Prod, Pow, Scalar, Sum, Var
from repro.gates.compiler import CompiledGate, compile_expr
from repro.gates.library import (
    GateSpec,
    TABLE1,
    gate_by_id,
    high_degree_sweep_gate,
    jellyfish_zerocheck_expr,
    vanilla_zerocheck_expr,
)

__all__ = [
    "Const",
    "Expr",
    "Prod",
    "Pow",
    "Scalar",
    "Sum",
    "Var",
    "CompiledGate",
    "compile_expr",
    "GateSpec",
    "TABLE1",
    "gate_by_id",
    "high_degree_sweep_gate",
    "jellyfish_zerocheck_expr",
    "vanilla_zerocheck_expr",
]
