"""Symbolic gate-expression AST.

Circuit designers describe custom gates as algebraic expressions over
multilinear polynomials (Halo2-style).  This module gives that language
operator syntax::

    qadd, a, b = Var("qadd"), Var("a"), Var("b")
    gate = qadd * (a + b) + Var("qmul") * (a * b)

Node kinds:

* :class:`Var` — a constituent MLE (selector, witness, eq table, ...),
* :class:`Scalar` — a symbolic field scalar bound at proving time (e.g.
  the batching challenge α in PermCheck),
* :class:`Const` — an integer constant,
* :class:`Sum`, :class:`Prod`, :class:`Pow` — the algebra.

Expressions are immutable; arithmetic builds trees which
:func:`repro.gates.compiler.compile_expr` expands to sum-of-products form.
"""

from __future__ import annotations

from typing import Iterable


class Expr:
    """Base class for gate-expression nodes."""

    def _as_expr(self, other) -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, int):
            return Const(other)
        return NotImplemented

    def __add__(self, other):
        o = self._as_expr(other)
        if o is NotImplemented:
            return NotImplemented
        return Sum((self, o))

    def __radd__(self, other):
        o = self._as_expr(other)
        if o is NotImplemented:
            return NotImplemented
        return Sum((o, self))

    def __sub__(self, other):
        o = self._as_expr(other)
        if o is NotImplemented:
            return NotImplemented
        return Sum((self, Prod((Const(-1), o))))

    def __rsub__(self, other):
        o = self._as_expr(other)
        if o is NotImplemented:
            return NotImplemented
        return Sum((o, Prod((Const(-1), self))))

    def __mul__(self, other):
        o = self._as_expr(other)
        if o is NotImplemented:
            return NotImplemented
        return Prod((self, o))

    def __rmul__(self, other):
        o = self._as_expr(other)
        if o is NotImplemented:
            return NotImplemented
        return Prod((o, self))

    def __neg__(self):
        return Prod((Const(-1), self))

    def __pow__(self, exponent: int):
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("exponents must be non-negative integers")
        return Pow(self, exponent)


class Var(Expr):
    """A constituent multilinear polynomial, referenced by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return self.name


class Scalar(Expr):
    """A symbolic field scalar (degree 0), bound when the gate is used."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return f"${self.name}"


class Const(Expr):
    """An integer constant coefficient."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __repr__(self):
        return str(self.value)


class Sum(Expr):
    __slots__ = ("children",)

    def __init__(self, children: Iterable[Expr]):
        self.children = tuple(children)

    def __repr__(self):
        return "(" + " + ".join(map(repr, self.children)) + ")"


class Prod(Expr):
    __slots__ = ("children",)

    def __init__(self, children: Iterable[Expr]):
        self.children = tuple(children)

    def __repr__(self):
        return "*".join(map(repr, self.children))


class Pow(Expr):
    __slots__ = ("base", "exponent")

    def __init__(self, base: Expr, exponent: int):
        self.base = base
        self.exponent = exponent

    def __repr__(self):
        return f"{self.base!r}^{self.exponent}"
