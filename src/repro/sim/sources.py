"""Seeded event sources: deterministic streams of timed payloads.

An :class:`EventSource` yields ``(at_s, payload)`` pairs in
non-decreasing time order; :func:`install` pumps any source into a
:class:`~repro.sim.engine.Simulator` by scheduling one event per pair.
Two concrete sources cover the cluster layer's needs:

* :class:`TraceSource` — replays a pre-computed trace (e.g. a churn
  trace from :mod:`repro.workloads.churn`), so a scenario is exactly
  reproducible from its recorded event list;
* :class:`PoissonSource` — draws exponential inter-arrival times from a
  seeded :class:`random.Random`, for open-ended load or fault processes.

Sources never touch global RNG state: every stream is a pure function
of its constructor arguments, which is what makes same-seed cluster
scenarios bit-for-bit repeatable.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator

from repro.sim.engine import DEFAULT_PRIORITY, EventHandle, Simulator


class EventSource:
    """Base class: an iterable of ``(at_s, payload)`` pairs."""

    def events(self) -> Iterator[tuple[float, object]]:
        """Yield ``(model time, payload)`` in non-decreasing time order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple[float, object]]:
        return self.events()


class TraceSource(EventSource):
    """Replays a fixed ``(at_s, payload)`` trace, sorted by time."""

    def __init__(self, trace: Iterable[tuple[float, object]]):
        self.trace = sorted(trace, key=lambda pair: pair[0])

    def events(self) -> Iterator[tuple[float, object]]:
        """Replay the trace in time order."""
        yield from self.trace

    def __len__(self) -> int:
        return len(self.trace)


class PoissonSource(EventSource):
    """Seeded Poisson process emitting ``payload_fn(i)`` at each arrival.

    Arrivals start at ``start_s`` and stop at ``horizon_s`` (exclusive);
    ``rate_rps`` is the mean number of events per model second.
    """

    def __init__(
        self,
        rate_rps: float,
        horizon_s: float,
        *,
        seed: int = 0,
        start_s: float = 0.0,
        payload_fn: Callable[[int], object] = lambda i: i,
    ):
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
        if horizon_s < start_s:
            raise ValueError("horizon_s must be >= start_s")
        self.rate_rps = rate_rps
        self.horizon_s = horizon_s
        self.seed = seed
        self.start_s = start_s
        self.payload_fn = payload_fn

    def events(self) -> Iterator[tuple[float, object]]:
        """Draw the arrival stream (fresh RNG per call: re-iterable)."""
        rng = random.Random(self.seed)
        t = self.start_s
        i = 0
        while True:
            t += rng.expovariate(self.rate_rps)
            if t >= self.horizon_s:
                return
            yield (t, self.payload_fn(i))
            i += 1


def install(
    sim: Simulator,
    source: EventSource,
    handler: Callable[[object], None],
    *,
    priority: int = DEFAULT_PRIORITY,
) -> list[EventHandle]:
    """Schedule every event of ``source`` onto ``sim``.

    Each ``(at_s, payload)`` pair becomes one simulator event calling
    ``handler(payload)``; the handles are returned so a scenario can
    cancel the remainder of a stream mid-run.
    """
    return [
        sim.schedule(at_s, (lambda p=payload: handler(p)), priority=priority)
        for at_s, payload in source
    ]
