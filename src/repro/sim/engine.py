"""A minimal discrete-event simulation core: heap, clock, handles.

The cluster layer needs to interleave job completions, node crashes,
recoveries, and autoscaler ticks on one model-time axis.  This module is
the smallest engine that does that deterministically:

* :class:`Simulator` — a binary-heap event queue plus a model clock.
  Events fire in ``(time, priority, sequence)`` order, so ties at one
  model time break first by an explicit priority and then by scheduling
  order — never by dict iteration or object identity, which is what
  keeps whole-fleet runs reproducible across interpreters.
* :class:`EventHandle` — returned by every ``schedule*`` call; lazily
  cancellable, which is how an in-flight job-finish event is voided when
  its node crashes first.

Million-event runs forced three fast-path changes (DESIGN.md §11), none
of which alter the fire order:

* ``__len__`` is an O(1) live-event counter maintained on
  schedule/cancel/pop instead of a full heap scan;
* cancelled entries are *compacted* out of the heap in place once they
  are both numerous (≥ :data:`COMPACT_MIN`) and the majority of the
  heap, instead of lingering until popped;
* :meth:`Simulator.schedule_fast` pushes the bare callback for events
  that are never cancelled (arrivals, metric ticks), skipping
  :class:`EventHandle` construction entirely.

The engine knows nothing about clusters or jobs; callbacks close over
whatever state they drive.  Seeded *sources* of event streams live in
:mod:`repro.sim.sources`.
"""

from __future__ import annotations

import heapq
from typing import Callable

#: default event priority; lower fires first among same-time events
DEFAULT_PRIORITY = 0

#: compaction threshold: never compact below this many cancelled
#: entries (tiny heaps gain nothing), and only when cancelled entries
#: are at least half the heap (amortizes the O(n) rebuild)
COMPACT_MIN = 64


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "priority", "seq", "action", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[[], None],
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.cancelled = False
        # owning Simulator while queued; None once fired (or detached),
        # so a late cancel() cannot corrupt the live/stale counters
        self._sim: Simulator | None = None

    def cancel(self) -> None:
        """Void the event; it stays in the heap but will not fire.

        Idempotent, and a no-op after the event has fired.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """A discrete-event loop over one model-time clock.

    Schedule callbacks with :meth:`schedule` (absolute time) or
    :meth:`schedule_after` (relative delay), then :meth:`run` until the
    heap drains or a horizon is reached.  Callbacks may schedule further
    events; scheduling into the past raises.

    Heap entries are ``(time, priority, seq, payload)`` where the
    payload is an :class:`EventHandle` (cancellable path) or the bare
    callback (:meth:`schedule_fast` path).  ``seq`` is unique, so tuple
    comparison never reaches the payload and the two can mix freely.
    """

    def __init__(self, start_s: float = 0.0):
        self.now = start_s
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0
        # live = queued and not cancelled; stale = cancelled entries
        # still physically in the heap (awaiting pop or compaction)
        self._live = 0
        self._stale = 0
        #: events fired so far (cancelled events excluded)
        self.fired = 0

    def __len__(self) -> int:
        return self._live

    def _note_cancel(self) -> None:
        """Bookkeeping for one newly cancelled queued event."""
        self._live -= 1
        self._stale += 1
        if self._stale >= COMPACT_MIN and self._stale * 2 >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, *in place*.

        ``run`` holds a local alias to the heap list, so compaction must
        mutate the existing list rather than rebind ``self._heap``.
        """
        self._heap[:] = [
            entry
            for entry in self._heap
            if not (entry[3].__class__ is EventHandle and entry[3].cancelled)
        ]
        heapq.heapify(self._heap)
        self._stale = 0

    def schedule(
        self,
        at_s: float,
        action: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``action`` at absolute model time ``at_s``."""
        if at_s < self.now:
            raise ValueError(
                f"cannot schedule into the past (now={self.now}, at={at_s})"
            )
        handle = EventHandle(at_s, priority, self._seq, action)
        handle._sim = self
        heapq.heappush(self._heap, (at_s, priority, self._seq, handle))
        self._seq += 1
        self._live += 1
        return handle

    def schedule_after(
        self,
        delay_s: float,
        action: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``action`` ``delay_s`` model seconds from now."""
        if delay_s < 0:
            raise ValueError(f"delay must be >= 0, got {delay_s}")
        return self.schedule(self.now + delay_s, action, priority=priority)

    def schedule_fast(
        self,
        at_s: float,
        action: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Schedule a *never-cancelled* event without an EventHandle.

        Same ``(time, priority, seq)`` fire order as :meth:`schedule`,
        but pushes the bare callback — no handle allocation, nothing to
        cancel.  Use for high-volume events that always fire (job
        arrivals, metric ticks); returns None by design.
        """
        if at_s < self.now:
            raise ValueError(
                f"cannot schedule into the past (now={self.now}, at={at_s})"
            )
        heapq.heappush(self._heap, (at_s, priority, self._seq, action))
        self._seq += 1
        self._live += 1

    def peek_time(self) -> float | None:
        """Model time of the next live event (None if the heap is empty)."""
        heap = self._heap
        while heap:
            head = heap[0]
            item = head[3]
            if item.__class__ is EventHandle and item.cancelled:
                heapq.heappop(heap)
                self._stale -= 1
                continue
            return head[0]
        return None

    def step(self) -> bool:
        """Fire the next live event; False when nothing is left."""
        heap = self._heap
        while heap:
            time_s, _, _, item = heapq.heappop(heap)
            if item.__class__ is EventHandle:
                if item.cancelled:
                    self._stale -= 1
                    continue
                item._sim = None
                action = item.action
            else:
                action = item
            self.now = time_s
            self._live -= 1
            self.fired += 1
            action()
            return True
        return False

    def run(self, until_s: float | None = None) -> float:
        """Fire events until the heap drains (or past ``until_s``).

        Returns the final model time.  With ``until_s``, events at
        exactly ``until_s`` still fire; later ones stay queued.
        """
        # hot loop: inlines peek_time + step, one heap op per event;
        # compaction mutates the aliased list in place, so `heap`
        # stays valid across callbacks
        heap = self._heap
        pop = heapq.heappop
        while heap:
            head = heap[0]
            item = head[3]
            is_handle = item.__class__ is EventHandle
            if is_handle and item.cancelled:
                pop(heap)
                self._stale -= 1
                continue
            if until_s is not None and head[0] > until_s:
                self.now = until_s
                return until_s
            pop(heap)
            self.now = head[0]
            self._live -= 1
            self.fired += 1
            if is_handle:
                item._sim = None
                item.action()
            else:
                item()
        return self.now

    def __repr__(self):
        return f"Simulator(now={self.now:.6f}, queued={len(self)})"
