"""Discrete-event simulation core for the proving fleet (DESIGN.md §8).

The smallest engine that lets :mod:`repro.cluster` interleave job
completions, node crashes/recoveries, retries, and autoscaler decisions
on one deterministic model-time axis:

* :mod:`repro.sim.engine` — :class:`Simulator`: a binary-heap event
  queue with a model clock, ``(time, priority, sequence)`` total event
  order, and cancellable :class:`EventHandle`\\ s (how a crash voids an
  in-flight job-finish event);
* :mod:`repro.sim.sources` — seeded :class:`EventSource` streams:
  :class:`TraceSource` replay (churn traces) and :class:`PoissonSource`
  arrivals, pumped into a simulator via :func:`install`.

The engine is domain-free — callbacks close over whatever state they
drive — so it is equally usable for future queueing or failure studies
outside the cluster layer.
"""

from repro.sim.engine import DEFAULT_PRIORITY, EventHandle, Simulator
from repro.sim.sources import EventSource, PoissonSource, TraceSource, install

__all__ = [
    "DEFAULT_PRIORITY",
    "EventHandle",
    "EventSource",
    "PoissonSource",
    "Simulator",
    "TraceSource",
    "install",
]
