"""Fleet CLI: ``python -m repro.fleet`` / ``repro-fleet``.

Two modes:

* **Run** (default) — serve one seeded traffic scenario on a real
  :class:`~repro.fleet.core.ProvingFleet` (N worker processes, real
  proofs, real wall clock) and print the measured summary: makespan,
  throughput, latency p95, cache hit rate, per-node placement, and —
  when churn is injected — the resilience counters.  ``--events PATH``
  additionally writes the structured JSONL event log.
* **Validate** (``--validate``) — run the predicted-vs-measured loop of
  :mod:`repro.fleet.validation` across every routing policy and print
  the per-policy comparison, the rankings, and the verdict
  (rank agreement, calibration spread, proof byte-identity).

Bad argument values exit with argparse's status 2, never a traceback —
CI's entry-point smoke step locks this down.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli import (
    backend_choices,
    cache_capacity,
    nonnegative_float,
    nonnegative_int,
    positive_float,
    positive_int,
    rate_fraction,
)
from repro.cluster.nodes import DEFAULT_NODE_CACHE_CAPACITY, NodeConfig
from repro.cluster.routing import DEFAULT_REPLICAS, ROUTING_POLICIES
from repro.cluster.timemodel import TIME_MODEL_PRESETS
from repro.fleet.core import FleetConfig, ProvingFleet
from repro.fleet.validation import DEFAULT_SIGNIFICANCE, run_validation
from repro.service.traffic import TrafficGenerator
from repro.workloads import SCENARIOS, trace_for_downtime

#: model seconds of churn horizon granted past the last job arrival
CHURN_HORIZON_SLACK_S = 8.0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-fleet`` argument parser (shared with tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description=(
            "Serve a proof-request traffic scenario on a real multi-process "
            "proving fleet, or validate the cluster sim's predictions "
            "against it."
        ),
    )
    parser.add_argument(
        "--scenario",
        default="zipf-mixed",
        choices=sorted(SCENARIOS),
        help="named traffic mix (repro.workloads)",
    )
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=12,
        help="number of proof requests to generate",
    )
    parser.add_argument(
        "--nodes",
        type=positive_int,
        default=3,
        help="worker processes to spawn (one per simulated node)",
    )
    parser.add_argument(
        "--policy",
        default="affinity",
        choices=ROUTING_POLICIES,
        help="routing policy for run mode (--validate compares all)",
    )
    parser.add_argument(
        "--time-model",
        default="functional",
        choices=TIME_MODEL_PRESETS,
        help="router cost-model preset (functional matches what the "
        "workers actually execute)",
    )
    parser.add_argument(
        "--cache-capacity",
        type=cache_capacity,
        default=DEFAULT_NODE_CACHE_CAPACITY,
        help="LRU entries in each worker's index cache (0 = unbounded)",
    )
    parser.add_argument(
        "--replicas",
        type=positive_int,
        default=DEFAULT_REPLICAS,
        help="virtual points per node on the affinity hash ring",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="traffic-generator seed (same seed = same job stream)",
    )
    parser.add_argument(
        "--backend",
        default="fused",
        choices=backend_choices(),
        help="field-vector backend the workers prove with",
    )
    parser.add_argument(
        "--max-retries",
        type=nonnegative_int,
        default=2,
        help="crash-retry budget per job",
    )
    parser.add_argument(
        "--heartbeat-s",
        type=positive_float,
        default=0.05,
        help="worker heartbeat period in wall seconds",
    )
    parser.add_argument(
        "--heartbeat-misses",
        type=positive_float,
        default=6.0,
        help="missed beats in a row before a node is declared dead",
    )
    parser.add_argument(
        "--timeout-s",
        type=positive_float,
        default=None,
        help="per-job wall-second timeout (kills + retries; default none)",
    )
    parser.add_argument(
        "--run-timeout-s",
        type=positive_float,
        default=300.0,
        help="hard wall-second cap on the whole run",
    )
    parser.add_argument(
        "--time-scale",
        type=positive_float,
        default=1.0,
        help="model-seconds to wall-seconds factor for arrivals and churn",
    )
    parser.add_argument(
        "--respect-arrivals",
        action="store_true",
        help="submit jobs at their scaled arrival times instead of at once",
    )
    parser.add_argument(
        "--churn-rate",
        type=rate_fraction,
        default=0.0,
        help="target fraction of node-time spent down (0 disables churn; "
        "must be in [0, 1))",
    )
    parser.add_argument(
        "--churn-mttr",
        type=positive_float,
        default=2.0,
        help="mean model seconds a crashed node stays down",
    )
    parser.add_argument(
        "--churn-seed",
        type=int,
        default=0,
        help="churn-trace seed (same seed = same kill/respawn schedule)",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="write the structured JSONL event log to PATH",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="predicted-vs-measured validation across all routing policies",
    )
    parser.add_argument(
        "--significance",
        type=nonnegative_float,
        default=DEFAULT_SIGNIFICANCE,
        help="predicted-makespan gap below which a policy pair is a "
        "modeled tie (validate mode)",
    )
    parser.add_argument(
        "--skip-proof-check",
        action="store_true",
        help="skip the byte-identity oracle run in validate mode",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw summary as JSON",
    )
    return parser


def run_fleet(args) -> tuple[ProvingFleet, dict]:
    """Run-mode body: one fleet run, returns (fleet, summary)."""
    generator = TrafficGenerator(args.scenario, seed=args.seed)
    config = FleetConfig(
        num_nodes=args.nodes,
        policy=args.policy,
        time_model=args.time_model,
        replicas=args.replicas,
        max_retries=args.max_retries,
        heartbeat_s=args.heartbeat_s,
        heartbeat_misses=args.heartbeat_misses,
        job_timeout_s=args.timeout_s,
        time_scale=args.time_scale,
        respect_arrivals=args.respect_arrivals,
        run_timeout_s=args.run_timeout_s,
        node=NodeConfig(
            cache_capacity=args.cache_capacity,
            max_vars=generator.max_vars(),
            default_backend=args.backend,
        ),
    )
    jobs = generator.jobs(args.jobs)
    churn = ()
    if args.churn_rate > 0:
        horizon = max(j.arrival_s for j in jobs) + CHURN_HORIZON_SLACK_S
        churn = trace_for_downtime(
            args.nodes,
            horizon,
            downtime_fraction=args.churn_rate,
            mttr_s=args.churn_mttr,
            seed=args.churn_seed,
        )
    fleet = ProvingFleet(config)
    fleet.run(jobs, churn=churn)
    return fleet, fleet.summary()


def print_run(args, summary: dict) -> None:
    """Human-readable run-mode report."""
    measured = summary["measured"]
    cache = summary["cache"]
    print(
        f"scenario  : {args.scenario} ({SCENARIOS[args.scenario].description})\n"
        f"fleet     : {summary['nodes']} nodes, policy {summary['policy']}, "
        f"backend {args.backend}, seed {args.seed}\n"
        f"jobs      : {summary['jobs']} proved"
    )
    print(
        f"measured  : makespan {measured['makespan_s']:.3f}s  "
        f"throughput {measured['throughput_jobs_per_s']:.2f} jobs/s  "
        f"p95 {measured['latency_s']['p95']:.3f}s"
    )
    print(
        f"cache     : hit-rate {cache['hit_rate']:.2f} "
        f"({cache['hits']} hits / {cache['misses']} misses)  "
        f"install share {measured['install_share'] * 100:.1f}%"
    )
    placement = "  ".join(
        f"{node_id}={count}"
        for node_id, count in summary["routing"]["jobs_per_node"].items()
    )
    print(f"placement : {placement}  imbalance {measured['load_imbalance']:.2f}")
    resilience = summary["resilience"]
    if resilience["crashes"] or resilience["failed_jobs"]:
        print(
            f"resilience: crashes {resilience['crashes']}  "
            f"retries {resilience['retries']}  "
            f"requeues {resilience['requeues']}  "
            f"failed {resilience['failed_jobs']}  "
            f"lost {resilience['lost_wall_s']:.3f}s"
        )


def print_validation(doc: dict) -> None:
    """Human-readable validate-mode report."""
    print(
        f"scenario  : {doc['scenario']}  jobs {doc['jobs']}  "
        f"nodes {doc['nodes']}  seed {doc['seed']}  "
        f"cores {doc['effective_cores']}"
    )
    header = (
        f"{'policy':<13} {'model':>9} {'predicted':>10} {'measured':>9} "
        f"{'meas/pred':>9}"
    )
    print(header)
    print("-" * len(header))
    for policy, row in doc["policies"].items():
        print(
            f"{policy:<13} {row['model_makespan_s']:>8.3f}s "
            f"{row['predicted_makespan_s']:>9.3f}s "
            f"{row['measured_makespan_s']:>8.3f}s "
            f"{row['measured_over_predicted']:>9.2f}"
        )
    print(
        f"predicted : {' < '.join(doc['predicted_ranking'])}\n"
        f"measured  : {' < '.join(doc['measured_ranking'])}"
    )
    pairs = ", ".join(f"{a}<{b}" for a, b in doc["significant_pairs"])
    print(
        f"verdict   : rank agreement {doc['rank_agreement']} "
        f"(significant pairs: {pairs or 'none'})  "
        f"calibration spread {doc['calibration_spread']:.3f}"
    )
    if "proofs_identical" in doc:
        print(f"proofs    : byte-identical to service = {doc['proofs_identical']}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-fleet``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.validate and args.churn_rate > 0:
        parser.error(
            "--validate assumes a failure-free run; drop --churn-rate"
        )
    if args.validate:
        doc = run_validation(
            args.scenario,
            args.jobs,
            args.nodes,
            seed=args.seed,
            time_model=args.time_model,
            cache_capacity=args.cache_capacity,
            backend=args.backend,
            significance=args.significance,
            check_proofs=not args.skip_proof_check,
        )
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            print_validation(doc)
        return 0
    fleet, summary = run_fleet(args)
    if args.events:
        fleet.events.write(args.events)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print_run(args, summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
