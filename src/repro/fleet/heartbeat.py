"""Heartbeat-based failure detection for the real fleet.

Workers emit a beat every ``interval_s`` (see
:mod:`repro.fleet.worker`); the control plane records receipt times
here and declares a node dead once it has missed
``miss_threshold`` intervals in a row.  The monitor never acts on a
death itself — :class:`~repro.fleet.core.ProvingFleet` owns the
kill/retry/respawn consequences — it only answers "who is overdue?".

The clock is injectable so the unit tests drive detection with a fake
clock instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable


class HeartbeatMonitor:
    """Last-beat bookkeeping with a miss-threshold death rule."""

    def __init__(
        self,
        interval_s: float = 0.05,
        miss_threshold: float = 5.0,
        *,
        clock: Callable[[], float] | None = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if miss_threshold <= 0:
            raise ValueError("miss_threshold must be > 0")
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self.clock = clock if clock is not None else time.monotonic
        self._last: dict[str, float] = {}

    @property
    def deadline_s(self) -> float:
        """Silence budget: seconds without a beat before a node is dead."""
        return self.interval_s * self.miss_threshold

    @property
    def watched(self) -> list[str]:
        """Node ids currently under watch (sorted)."""
        return sorted(self._last)

    def expect(self, node_id: str) -> None:
        """Start watching ``node_id`` (its silence budget starts now)."""
        self._last[node_id] = self.clock()

    def beat(self, node_id: str) -> None:
        """Record a heartbeat from ``node_id`` (ignored if unwatched).

        Unwatched beats happen legitimately: a killed worker's last
        beat can still be in the pipe after the fleet forgot it.
        """
        if node_id in self._last:
            self._last[node_id] = self.clock()

    def forget(self, node_id: str) -> None:
        """Stop watching ``node_id`` (dead or deliberately stopped)."""
        self._last.pop(node_id, None)

    def silence_s(self, node_id: str) -> float:
        """Seconds since the last beat (0.0 for unwatched nodes)."""
        last = self._last.get(node_id)
        return 0.0 if last is None else self.clock() - last

    def overdue(self) -> list[str]:
        """Watched nodes whose silence exceeds the budget (sorted)."""
        deadline = self.deadline_s
        now = self.clock()
        return sorted(
            node_id
            for node_id, last in self._last.items()
            if now - last > deadline
        )
