"""The fleet worker process: one node's proving loop.

Each :class:`~repro.fleet.core.ProvingFleet` node is one OS process
running :func:`worker_main`.  On startup the worker builds its
:class:`~repro.service.workers.WorkerState` — the seeded SRS (identical
on every node, so proofs are byte-identical fleet-wide) plus a
*bounded* worker-local index cache sized like the simulated node's
:class:`~repro.cluster.nodes.SimIndexCache` — exactly once, then serves
commands from its inbox queue:

* ``("prove", ProveTask)`` — resolve the index locally, prove, reply
  ``("result", TaskOutcome)``;
* ``("probe", None)`` — reply ``("probe", WorkerProbe)`` (the
  regression hook for the build-once SRS invariant);
* ``("freeze", seconds)`` — stop heartbeating *and* processing for
  ``seconds``: a deterministic stand-in for a wedged process, used by
  the heartbeat-miss tests;
* ``("stop", None)`` — drain the loop and exit cleanly.

A daemon thread emits ``("heartbeat", wall_s)`` on the worker's outbox
every ``heartbeat_s`` while the worker is healthy; the control plane's
:class:`~repro.fleet.heartbeat.HeartbeatMonitor` declares the node dead
when beats stop.  Every outbox message is ``(node_id, kind, payload)``.

Each worker gets its *own* outbox queue: a SIGKILL mid-message can
corrupt at most that worker's pipe, never a shared one.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.service.workers import WorkerState

#: outbox message kinds a worker can emit
WORKER_MSG_KINDS = ("ready", "heartbeat", "result", "probe", "stopped")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its state.

    Mirrors the node side of :class:`~repro.cluster.nodes.NodeConfig`:
    same seed, same SRS size, same cache bound — so the real node and
    the simulated node hold the same indexes at the same times.
    """

    node_id: str
    #: SRS size; ``circuit max_vars + 1`` like the service's
    srs_max_vars: int
    srs_seed: int = 0x5EED
    cache_capacity: int | None = None
    fixed_base: bool = True
    #: seconds between heartbeats while healthy
    heartbeat_s: float = 0.05


def worker_main(spec: WorkerSpec, inbox, outbox) -> None:
    """The worker process entry point (runs until ``stop`` or SIGKILL).

    ``inbox``/``outbox`` are multiprocessing queues owned by the
    control plane.  The SRS is built exactly once, before ``ready`` is
    reported; :class:`~repro.service.workers.WorkerProbe` replies carry
    the ``srs_builds`` counter that proves it stayed that way.
    """
    state = WorkerState(
        spec.srs_seed,
        spec.srs_max_vars,
        spec.fixed_base,
        spec.cache_capacity,
    )
    stop_beats = threading.Event()
    frozen = threading.Event()

    def beat() -> None:
        while not stop_beats.wait(spec.heartbeat_s):
            if not frozen.is_set():
                outbox.put((spec.node_id, "heartbeat", time.time()))

    beater = threading.Thread(target=beat, daemon=True)
    beater.start()
    outbox.put((spec.node_id, "ready", os.getpid()))
    while True:
        kind, payload = inbox.get()
        if kind == "stop":
            break
        if kind == "freeze":
            # a wedged process: no beats, no progress, then back alive
            frozen.set()
            time.sleep(payload)
            frozen.clear()
        elif kind == "probe":
            outbox.put(
                (spec.node_id, "probe", state.probe(worker_id=spec.node_id))
            )
        elif kind == "prove":
            outcome = state.prove(payload, worker_id=spec.node_id)
            outbox.put((spec.node_id, "result", outcome))
        else:
            raise ValueError(f"unknown worker command {kind!r}")
    stop_beats.set()
    outbox.put((spec.node_id, "stopped", state.probe(worker_id=spec.node_id)))
