"""The asyncio control plane of the real proving fleet.

:class:`ProvingFleet` runs what :class:`~repro.cluster.core.\
ProvingCluster` simulates: N persistent worker processes
(:mod:`repro.fleet.worker`), one per node, driven by a single-threaded
asyncio coordinator.  The design mirrors the sim deliberately, piece by
piece, so measured behavior is comparable to predicted behavior:

* **Routing** — the same :class:`~repro.cluster.routing.ClusterRouter`
  object the sim uses, fed in the same submission order with the same
  cost model, so failure-free placements are *identical* to the sim's
  (``tests/test_fleet.py`` locks this).  Exclusion waivers and parking
  follow :meth:`ClusterEngine._route` exactly.
* **Node discipline** — one in-flight job per node, queue drained in
  ``(arrival, job_id)`` order like
  :meth:`~repro.cluster.nodes.ProverNode.peek_next`.
* **Failure semantics** — a dead node (churn kill, heartbeat miss, or
  job timeout) loses its in-flight job to the shared
  :class:`~repro.cluster.records.RetryPolicy`: attempt bump, loser
  exclusion, ``max_retries`` → failed.  Queued jobs requeue without
  penalty.  Jobs park when the whole fleet is down.
* **Events** — the same :class:`~repro.fleet.events.EventLog` schema
  the sim engine emits, stamped with run-relative wall seconds.

Failure *injection* is deterministic: a seeded churn trace
(:mod:`repro.workloads.churn`) maps crash events to SIGKILL and
recovery events to fresh worker processes (cold cache, same seed — so
proofs stay byte-identical).  Failure *detection* is real: a
:class:`~repro.fleet.heartbeat.HeartbeatMonitor` watches worker beats
and the coordinator kills + retries on silence, and per-job timeouts
catch wedged proofs.

Each worker owns a private outbox queue read by a dedicated thread that
trampolines messages onto the event loop — a SIGKILL mid-message can
corrupt at most the dead worker's pipe.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp
import threading
from dataclasses import dataclass, field as dc_field
from typing import Callable, Iterable

from repro.cluster.nodes import NodeConfig
from repro.cluster.records import JobRecord, RetryPolicy
from repro.cluster.routing import (
    DEFAULT_REPLICAS,
    NoRoutableNodeError,
    ROUTING_POLICIES,
    ClusterRouter,
)
from repro.cluster.timemodel import FleetTimeModel
from repro.fleet.events import EventLog
from repro.fleet.heartbeat import HeartbeatMonitor
from repro.fleet.worker import WorkerSpec, worker_main
from repro.service.workers import ProveTask, TaskOutcome, WorkerProbe


def _mp_context():
    """A thread-safe multiprocessing context (forkserver where available).

    The coordinator runs reader threads, so plain ``fork`` would copy
    live thread state into respawned workers (and trips 3.12+'s
    fork-with-threads warning); ``forkserver`` forks from a clean
    server process instead.  Falls back to the platform default
    (``spawn`` on Windows).
    """
    try:
        ctx = mp.get_context("forkserver")
        ctx.set_forkserver_preload(["repro.fleet.worker"])
        return ctx
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return mp.get_context()


@dataclass
class FleetConfig:
    """Knobs for one :class:`ProvingFleet`.

    ``node`` reuses the cluster's :class:`NodeConfig` so one object
    describes both the simulated node and the real worker built from it
    (cache bound, SRS seed/size, backend).
    """

    num_nodes: int = 3
    #: ``round_robin`` | ``least_loaded`` | ``affinity``
    policy: str = "affinity"
    #: per-node knobs shared with the sim (cache bound, seed, backend)
    node: NodeConfig = dc_field(default_factory=NodeConfig)
    #: router cost-model preset — match the sim run being validated
    time_model: str = "functional"
    #: virtual points per node on the affinity hash ring
    replicas: int = DEFAULT_REPLICAS
    #: crash-retry budget per job (shared :class:`RetryPolicy` semantics)
    max_retries: int = 2
    #: worker heartbeat period in wall seconds
    heartbeat_s: float = 0.05
    #: heartbeats missed in a row before a node is declared dead
    heartbeat_misses: float = 6.0
    #: wall seconds an in-flight job may run before its node is killed
    #: and the job retried (None = no timeout)
    job_timeout_s: float | None = None
    #: model-seconds → wall-seconds factor for arrivals and churn stamps
    time_scale: float = 1.0
    #: submit jobs at their (scaled) arrival times instead of all at once
    respect_arrivals: bool = False
    #: respawn a replacement worker after a *detected* failure
    #: (heartbeat miss / job timeout); churn kills instead wait for
    #: their trace's recovery event
    auto_respawn: bool = True
    #: hard wall-second cap on one run (None = run to completion)
    run_timeout_s: float | None = None


@dataclass
class _Flight:
    """The one job a node is currently proving (wall time)."""

    job: object
    start_s: float
    timeout: asyncio.TimerHandle | None = None


class _Handle:
    """Coordinator-side state for one worker process."""

    def __init__(self, node_id: str, process, inbox, outbox):
        self.node_id = node_id
        self.process = process
        self.inbox = inbox
        self.outbox = outbox
        self.reader: threading.Thread | None = None
        self.up = False
        self.ready = asyncio.Event()
        self.stopped = asyncio.Event()
        self.in_flight: _Flight | None = None
        self.pending: list = []
        self.jobs_done = 0
        self.crashes = 0
        self.probes: list[WorkerProbe] = []


class ProvingFleet:
    """N real worker processes behind the sim's router; see module doc.

    Synchronous surface: build one, call :meth:`run` (it owns an
    asyncio loop internally), then read :attr:`records`,
    :attr:`failed_jobs`, :attr:`outcomes`, :attr:`events`, and
    :meth:`summary`.  A fleet instance is single-run.
    """

    def __init__(self, config: FleetConfig | None = None):
        self.config = config = config or FleetConfig()
        if config.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if config.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown policy {config.policy!r}; "
                f"choose from {ROUTING_POLICIES}"
            )
        self.time_model = FleetTimeModel.preset(config.time_model)
        self.node_ids = [f"node-{i}" for i in range(config.num_nodes)]
        self.router = ClusterRouter(
            config.policy,
            self.node_ids,
            cost_model=self.time_model.prove_model,
            replicas=config.replicas,
        )
        self.retry_policy = RetryPolicy(config.max_retries)
        self.monitor = HeartbeatMonitor(
            config.heartbeat_s, config.heartbeat_misses
        )
        self.events = EventLog(clock=self._now)
        self.records: list[JobRecord] = []
        self.failed_jobs: list = []
        #: completed :class:`TaskOutcome` per cluster job id
        self.outcomes: dict[int, TaskOutcome] = {}
        #: every :class:`WorkerProbe` collected (probe replies + final
        #: stop snapshots) — the build-once SRS evidence
        self.worker_probes: list[WorkerProbe] = []
        #: counters mirroring :class:`~repro.cluster.engine.ResilienceStats`
        self.crashes = 0
        self.retries = 0
        self.requeues = 0
        self.parked_count = 0
        self.exclusion_waivers = 0
        self.lost_wall_s = 0.0
        self._handles: dict[str, _Handle] = {}
        self._parked: list = []
        self._ctx = _mp_context()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0: float | None = None
        self._total = 0
        self._next_id = 0
        self._done: asyncio.Event | None = None
        self._shutting_down = False
        self._ran = False

    # -- clocks --------------------------------------------------------------
    def _now(self) -> float:
        """Run-relative wall seconds (0.0 until the fleet is warm)."""
        if self._loop is None or self._t0 is None:
            return 0.0
        return self._loop.time() - self._t0

    @property
    def proofs(self) -> dict[int, object]:
        """Completed proofs by cluster job id (byte-identity hook)."""
        return {jid: out.proof for jid, out in self.outcomes.items()}

    # -- worker lifecycle ----------------------------------------------------
    def _spawn(self, node_id: str) -> _Handle:
        """Start a fresh worker process for ``node_id`` (cold cache)."""
        spec = WorkerSpec(
            node_id=node_id,
            srs_max_vars=self.config.node.max_vars + 1,
            srs_seed=self.config.node.srs_seed,
            cache_capacity=self.config.node.cache_capacity,
            heartbeat_s=self.config.heartbeat_s,
        )
        inbox = self._ctx.Queue()
        outbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(spec, inbox, outbox),
            name=f"fleet-{node_id}",
            daemon=True,
        )
        handle = _Handle(node_id, process, inbox, outbox)
        self._handles[node_id] = handle
        process.start()
        handle.reader = threading.Thread(
            target=self._read, args=(handle,), daemon=True
        )
        handle.reader.start()
        return handle

    def _read(self, handle: _Handle) -> None:
        """Reader-thread loop: trampoline one worker's messages."""
        while True:
            try:
                msg = handle.outbox.get()
            except (EOFError, OSError):  # pragma: no cover - torn pipe
                break
            if msg is None:  # coordinator-injected wakeup after a kill
                break
            try:
                self._loop.call_soon_threadsafe(self._on_message, handle, msg)
            except RuntimeError:  # loop already closed
                break
            if msg[1] == "stopped":
                break

    def _on_message(self, handle: _Handle, msg) -> None:
        node_id, kind, payload = msg
        current = self._handles.get(node_id) is handle
        if kind == "ready":
            if not current:
                return
            handle.up = True
            handle.ready.set()
            self.monitor.expect(node_id)
            if node_id in self.router.down_node_ids:
                self.router.mark_up(node_id)
            self.events.emit("node_up", node_id=node_id, pid=payload)
            self._unpark()
            self._kick(handle)
        elif kind == "heartbeat":
            if current and handle.up:
                self.monitor.beat(node_id)
        elif kind == "result":
            if not (current and handle.up):
                return  # stale result from a node we already failed
            self._complete(handle, payload)
        elif kind == "probe":
            self.worker_probes.append(payload)
            handle.probes.append(payload)
        elif kind == "stopped":
            self.worker_probes.append(payload)
            handle.probes.append(payload)
            handle.stopped.set()

    # -- submission / routing (mirrors ClusterEngine) ------------------------
    def _submit(self, job) -> None:
        job.job_id = self._next_id
        self._next_id += 1
        self.events.emit("job_accepted", job_id=job.job_id, tag=job.tag)
        self._route(job)

    def _route(self, job) -> str | None:
        """Route one job, parking it when nothing is routable."""
        try:
            node_id = self.router.assign(job, exclude=job.excluded_node_ids)
        except NoRoutableNodeError:
            if not self.router.up_node_ids:
                self.parked_count += 1
                self._parked.append(job)
                return None
            self.exclusion_waivers += 1
            node_id = self.router.assign(job)
        handle = self._handles[node_id]
        handle.pending.append(job)
        self.events.emit(
            "job_assigned",
            job_id=job.job_id,
            node_id=node_id,
            attempt=job.attempt,
        )
        self._kick(handle)
        return node_id

    def _unpark(self) -> None:
        parked, self._parked = self._parked, []
        for job in sorted(parked, key=lambda j: (j.arrival_s, j.job_id)):
            self._route(job)

    def _kick(self, handle: _Handle) -> None:
        """Dispatch the node's next queued job if it is idle and up."""
        if not handle.up or handle.in_flight is not None:
            return
        if not handle.pending:
            return
        job = min(handle.pending, key=lambda j: (j.arrival_s, j.job_id))
        handle.pending.remove(job)
        task = ProveTask(
            job_id=job.job_id,
            circuit=job.circuit,
            backend=job.backend or self.config.node.default_backend,
            circuit_key=job.circuit_key,
        )
        flight = _Flight(job=job, start_s=self._now())
        if self.config.job_timeout_s is not None:
            flight.timeout = self._loop.call_later(
                self.config.job_timeout_s, self._on_timeout, handle, job
            )
        handle.in_flight = flight
        handle.inbox.put(("prove", task))

    def _complete(self, handle: _Handle, outcome: TaskOutcome) -> None:
        flight = handle.in_flight
        if flight is None or flight.job.job_id != outcome.job_id:
            return  # stale result (job already retried elsewhere)
        handle.in_flight = None
        if flight.timeout is not None:
            flight.timeout.cancel()
        job = flight.job
        scale = self.config.time_scale
        arrival = job.arrival_s * scale if self.config.respect_arrivals else 0.0
        record = JobRecord(
            job_id=job.job_id,
            tag=job.tag,
            circuit_key=job.circuit_key,
            node_id=handle.node_id,
            arrival_s=arrival,
            start_s=flight.start_s,
            finish_s=self._now(),
            prove_model_s=outcome.prove_s,
            install_model_s=outcome.install_s,
            cache_hit=outcome.cache_hit,
            deadline_s=(
                job.deadline_s * scale if job.deadline_s is not None else None
            ),
            attempt=job.attempt,
        )
        self.records.append(record)
        self.outcomes[job.job_id] = outcome
        handle.jobs_done += 1
        self.router.release(handle.node_id, self.router.job_cost_s(job))
        self.events.emit(
            "job_completed",
            job_id=job.job_id,
            node_id=handle.node_id,
            attempt=job.attempt,
            cache_hit=outcome.cache_hit,
        )
        self._check_done()
        self._kick(handle)

    def _fail_job(self, job) -> None:
        self.failed_jobs.append(job)
        self.events.emit("job_failed", job_id=job.job_id, attempt=job.attempt)
        self._check_done()

    def _check_done(self) -> None:
        if len(self.records) + len(self.failed_jobs) >= self._total:
            self._done.set()

    # -- failure paths -------------------------------------------------------
    def _on_timeout(self, handle: _Handle, job) -> None:
        flight = handle.in_flight
        if flight is None or flight.job is not job or not handle.up:
            return
        self._fail_node(
            handle.node_id,
            reason="timeout",
            respawn=self.config.auto_respawn,
        )

    def _fail_node(self, node_id: str, *, reason: str, respawn: bool) -> None:
        """Kill a node and apply the sim's crash semantics to its jobs."""
        handle = self._handles[node_id]
        if not handle.up:
            return
        handle.up = False
        handle.crashes += 1
        self.crashes += 1
        self.monitor.forget(node_id)
        if handle.process.is_alive():
            handle.process.kill()
        handle.outbox.put(None)  # wake the reader thread past the corpse
        if node_id not in self.router.down_node_ids:
            self.router.mark_down(node_id)
        self.events.emit("node_down", node_id=node_id, reason=reason)
        flight, handle.in_flight = handle.in_flight, None
        if flight is not None and flight.timeout is not None:
            flight.timeout.cancel()
        requeued, handle.pending = handle.pending, []
        for job in sorted(requeued, key=lambda j: (j.arrival_s, j.job_id)):
            self.requeues += 1
            self._route(job)
        if flight is not None:
            job = flight.job
            self.lost_wall_s += max(0.0, self._now() - flight.start_s)
            self.events.emit(
                "job_crashed",
                job_id=job.job_id,
                node_id=node_id,
                attempt=job.attempt,
            )
            if self.retry_policy.register_loss(job, node_id):
                self.retries += 1
                self.events.emit(
                    "job_retried", job_id=job.job_id, attempt=job.attempt
                )
                self._route(job)
            else:
                self._fail_job(job)
        if respawn and not self._shutting_down:
            self._spawn(node_id)

    def _on_churn(self, event) -> None:
        """Apply one seeded churn event: crash = SIGKILL, recover = spawn."""
        node_id = f"node-{event.node_index}"
        handle = self._handles.get(node_id)
        if handle is None:
            return
        if event.kind == "crash":
            if handle.up:
                self._fail_node(node_id, reason="churn", respawn=False)
        elif not handle.up and not self._shutting_down:
            self._spawn(node_id)

    # -- test/chaos hooks ----------------------------------------------------
    def freeze(self, node_id: str, seconds: float) -> None:
        """Wedge ``node_id`` for ``seconds``: no beats, no progress.

        The heartbeat monitor then declares it dead — the deterministic
        stand-in for a hung worker in the failure-detection tests.
        """
        self._handles[node_id].inbox.put(("freeze", seconds))

    def kill(self, node_id: str, *, respawn: bool | None = None) -> None:
        """SIGKILL ``node_id`` immediately (crash semantics apply)."""
        if respawn is None:
            respawn = self.config.auto_respawn
        self._fail_node(node_id, reason="kill", respawn=respawn)

    def probe_workers(self) -> None:
        """Ask every live worker for a :class:`WorkerProbe` snapshot."""
        for handle in self._handles.values():
            if handle.up:
                handle.inbox.put(("probe", None))

    # -- run -----------------------------------------------------------------
    def run(
        self,
        jobs: list,
        *,
        churn: Iterable = (),
        actions: Iterable[tuple[float, Callable[["ProvingFleet"], None]]] = (),
    ) -> list[JobRecord]:
        """Serve ``jobs`` on real workers; returns records in finish order.

        ``churn`` is a model-time :class:`~repro.workloads.churn.\
        ChurnEvent` trace (stamps scaled by ``config.time_scale``);
        ``actions`` are ``(at_s, fn)`` chaos callbacks invoked with the
        fleet at run-relative wall times (tests use these to freeze or
        kill nodes mid-run).  A fleet instance runs once.
        """
        if self._ran:
            raise RuntimeError("a ProvingFleet instance is single-run")
        self._ran = True
        return asyncio.run(self._run(list(jobs), list(churn), list(actions)))

    async def _run(self, jobs, churn, actions) -> list[JobRecord]:
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        self._total = len(jobs)
        for node_id in self.node_ids:
            self._spawn(node_id)
        ready = [h.ready.wait() for h in self._handles.values()]
        await asyncio.wait_for(asyncio.gather(*ready), timeout=120.0)
        # makespan starts when the fleet is warm, not when Python forked
        self._t0 = self._loop.time()
        scale = self.config.time_scale
        timers = []
        if self.config.respect_arrivals:
            for job in jobs:
                timers.append(
                    self._loop.call_later(
                        job.arrival_s * scale, self._submit, job
                    )
                )
        else:
            for job in jobs:
                self._submit(job)
        for event in churn:
            timers.append(
                self._loop.call_later(
                    event.at_s * scale, self._on_churn, event
                )
            )
        for at_s, fn in actions:
            timers.append(self._loop.call_later(at_s, fn, self))
        watchdog = asyncio.ensure_future(self._watch())
        try:
            if self._total:
                await asyncio.wait_for(
                    self._done.wait(), timeout=self.config.run_timeout_s
                )
        finally:
            self._shutting_down = True
            watchdog.cancel()
            for timer in timers:
                timer.cancel()
            await self._shutdown()
        self.records.sort(key=lambda r: (r.finish_s, r.job_id))
        return self.records

    async def _watch(self) -> None:
        """Declare heartbeat-silent nodes dead (kill + retry + respawn)."""
        while True:
            await asyncio.sleep(self.config.heartbeat_s)
            for node_id in self.monitor.overdue():
                handle = self._handles.get(node_id)
                if handle is not None and handle.up:
                    self._fail_node(
                        node_id,
                        reason="heartbeat",
                        respawn=self.config.auto_respawn,
                    )

    async def _shutdown(self) -> None:
        """Graceful drain: stop live workers, reap everything."""
        live = [h for h in self._handles.values() if h.up]
        for handle in live:
            handle.up = False
            self.monitor.forget(handle.node_id)
            handle.inbox.put(("stop", None))
        if live:
            waits = [h.stopped.wait() for h in live]
            try:
                await asyncio.wait_for(asyncio.gather(*waits), timeout=30.0)
            except asyncio.TimeoutError:  # pragma: no cover - wedged worker
                pass
        for handle in self._handles.values():
            if handle.process.is_alive():
                handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - wedged worker
                handle.process.kill()
                handle.process.join(timeout=5.0)
            handle.outbox.put(None)  # release the reader if still blocked

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict:
        """Measured-side metrics; see :mod:`repro.fleet.metrics`."""
        from repro.fleet.metrics import fleet_summary

        return fleet_summary(self)
