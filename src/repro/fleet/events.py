"""The structured event log shared by the sim engine and the real fleet.

One JSONL schema (:class:`FleetEvent`) records what happened to every
job and node, whether the run was simulated model time
(:class:`~repro.cluster.engine.ClusterEngine`) or real wall time
(:class:`~repro.fleet.core.ProvingFleet`): job accepted / assigned /
completed / crashed / retried / failed, plus node up / down.  Both
runtimes emit through one :class:`EventLog`, so a sim trace and a fleet
trace of the same scenario are line-for-line comparable — the
validation harness and the replay tests diff them directly.

Determinism contract: the sim engine's clock is the model clock, so a
recorded sim log replays **bit-identically** under the same seed
(``tests/test_fleet_events.py`` locks this down).  Fleet logs carry
run-relative wall times and are reproducible in *structure* (event
kinds, job/node ids, attempt counters) but not in timestamps.

This module depends only on the standard library — it sits below both
runtimes in the import graph, which is what lets the simulated cluster
reuse a ``repro.fleet`` schema without a cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: every event kind either runtime may emit, in no particular order
EVENT_KINDS = (
    "job_accepted",
    "job_assigned",
    "job_completed",
    "job_crashed",
    "job_retried",
    "job_failed",
    "node_up",
    "node_down",
)


@dataclass(frozen=True)
class FleetEvent:
    """One log line: something happened to a job or a node at ``at_s``."""

    #: emission ordinal within one log (total order even at equal times)
    seq: int
    #: model seconds (sim) or run-relative wall seconds (fleet)
    at_s: float
    #: one of :data:`EVENT_KINDS`
    kind: str
    #: the job concerned (None for node lifecycle events)
    job_id: int | None = None
    #: the node concerned (None when a job had no placement, e.g. accept)
    node_id: str | None = None
    #: the job's retry ordinal when the event fired
    attempt: int = 0
    #: free-form extras (cache_hit, reason, …) — JSON-scalar values only
    detail: dict = dc_field(default_factory=dict)

    def to_line(self) -> str:
        """Serialize to one canonical JSONL line (sorted keys)."""
        payload = {
            "seq": self.seq,
            "at_s": self.at_s,
            "kind": self.kind,
            "job_id": self.job_id,
            "node_id": self.node_id,
            "attempt": self.attempt,
            "detail": self.detail,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_line(line: str) -> "FleetEvent":
        """Parse one JSONL line back into an event."""
        raw = json.loads(line)
        return FleetEvent(
            seq=raw["seq"],
            at_s=raw["at_s"],
            kind=raw["kind"],
            job_id=raw["job_id"],
            node_id=raw["node_id"],
            attempt=raw["attempt"],
            detail=raw["detail"],
        )


class EventLog:
    """An append-only event recorder bound to a clock.

    ``clock`` is called at each :meth:`emit` to stamp ``at_s`` — the
    sim engine passes its model clock, the fleet a run-relative
    ``time.monotonic`` delta.  Events carry a per-log sequence number,
    so logs are totally ordered even when many events share a stamp.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.events: list[FleetEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FleetEvent]:
        return iter(self.events)

    def emit(
        self,
        kind: str,
        *,
        job_id: int | None = None,
        node_id: str | None = None,
        attempt: int = 0,
        at_s: float | None = None,
        **detail,
    ) -> FleetEvent:
        """Record one event (stamped from the clock unless ``at_s`` given)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; see EVENT_KINDS")
        event = FleetEvent(
            seq=len(self.events),
            at_s=self.clock() if at_s is None else at_s,
            kind=kind,
            job_id=job_id,
            node_id=node_id,
            attempt=attempt,
            detail=detail,
        )
        self.events.append(event)
        return event

    def kinds(self) -> dict[str, int]:
        """Event count per kind (absent kinds omitted)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def for_job(self, job_id: int) -> list[FleetEvent]:
        """Every event concerning ``job_id``, in emission order."""
        return [e for e in self.events if e.job_id == job_id]

    def to_jsonl(self) -> str:
        """The whole log as canonical JSONL (one event per line)."""
        return "".join(event.to_line() + "\n" for event in self.events)

    def write(self, path: str | Path) -> None:
        """Write the log as JSONL to ``path``."""
        Path(path).write_text(self.to_jsonl())

    @staticmethod
    def loads(text: str) -> list[FleetEvent]:
        """Parse JSONL text back into events (blank lines skipped)."""
        return [
            FleetEvent.from_line(line)
            for line in text.splitlines()
            if line.strip()
        ]

    @staticmethod
    def load(path: str | Path) -> list[FleetEvent]:
        """Read a JSONL log from ``path``."""
        return EventLog.loads(Path(path).read_text())

    @staticmethod
    def replay_identical(
        first: Iterable[FleetEvent], second: Iterable[FleetEvent]
    ) -> bool:
        """True when two logs are event-for-event identical."""
        return [e.to_line() for e in first] == [e.to_line() for e in second]
