"""The structured event log shared by the sim engine and the real fleet.

One JSONL schema (:class:`FleetEvent`) records what happened to every
job and node, whether the run was simulated model time
(:class:`~repro.cluster.engine.ClusterEngine`) or real wall time
(:class:`~repro.fleet.core.ProvingFleet`): job accepted / assigned /
completed / crashed / retried / failed, plus node up / down.  Both
runtimes emit through one :class:`EventLog`, so a sim trace and a fleet
trace of the same scenario are line-for-line comparable — the
validation harness and the replay tests diff them directly.

Determinism contract: the sim engine's clock is the model clock, so a
recorded sim log replays **bit-identically** under the same seed
(``tests/test_fleet_events.py`` locks this down).  Fleet logs carry
run-relative wall times and are reproducible in *structure* (event
kinds, job/node ids, attempt counters) but not in timestamps.

This module depends only on the standard library — it sits below both
runtimes in the import graph, which is what lets the simulated cluster
reuse a ``repro.fleet`` schema without a cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: every event kind either runtime may emit, in no particular order.
#: ``autoscale_decision`` / ``scheduler_choice`` record *why* the engine
#: moved (ROADMAP item 5's schema gap); ``job_suspend`` / ``job_resume``
#: / ``power_cap`` are the carbon/power machinery of ``repro.carbon``.
EVENT_KINDS = (
    "job_accepted",
    "job_assigned",
    "job_completed",
    "job_crashed",
    "job_retried",
    "job_failed",
    "job_shed",
    "job_suspend",
    "job_resume",
    "node_up",
    "node_down",
    "autoscale_decision",
    "scheduler_choice",
    "power_cap",
)

# O(1) membership for the emit hot path
_EVENT_KIND_SET = frozenset(EVENT_KINDS)

#: buffered-sink flush threshold, in lines
FLUSH_EVERY = 4096


@dataclass(frozen=True)
class FleetEvent:
    """One log line: something happened to a job or a node at ``at_s``."""

    #: emission ordinal within one log (total order even at equal times)
    seq: int
    #: model seconds (sim) or run-relative wall seconds (fleet)
    at_s: float
    #: one of :data:`EVENT_KINDS`
    kind: str
    #: the job concerned (None for node lifecycle events)
    job_id: int | None = None
    #: the node concerned (None when a job had no placement, e.g. accept)
    node_id: str | None = None
    #: the job's retry ordinal when the event fired
    attempt: int = 0
    #: free-form extras (cache_hit, reason, …) — JSON-scalar values only
    detail: dict = dc_field(default_factory=dict)

    def to_line(self) -> str:
        """Serialize to one canonical JSONL line (sorted keys)."""
        payload = {
            "seq": self.seq,
            "at_s": self.at_s,
            "kind": self.kind,
            "job_id": self.job_id,
            "node_id": self.node_id,
            "attempt": self.attempt,
            "detail": self.detail,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_line(line: str) -> "FleetEvent":
        """Parse one JSONL line back into an event."""
        raw = json.loads(line)
        return FleetEvent(
            seq=raw["seq"],
            at_s=raw["at_s"],
            kind=raw["kind"],
            job_id=raw["job_id"],
            node_id=raw["node_id"],
            attempt=raw["attempt"],
            detail=raw["detail"],
        )


class EventLog:
    """An append-only event recorder bound to a clock.

    ``clock`` is called at each :meth:`emit` to stamp ``at_s`` — the
    sim engine passes its model clock, the fleet a run-relative
    ``time.monotonic`` delta.  Events carry a per-log sequence number,
    so logs are totally ordered even when many events share a stamp.

    Million-event runs need the log out of the hot path, so the
    recorder has three speed knobs (defaults preserve the original
    keep-everything behaviour):

    * ``enabled=False`` — :meth:`emit` returns immediately without
      even constructing the event (open-loop runs that don't ask for
      a log pay one attribute check per emit);
    * ``sink=path`` — events stream to a JSONL file through an
      in-memory buffer flushed every :data:`FLUSH_EVERY` lines (call
      :meth:`close` to flush the tail);
    * ``keep=False`` — with a sink, drop the in-memory ``events``
      list so a 10⁶-event run holds only the unflushed buffer.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        sink: str | Path | None = None,
        keep: bool = True,
        enabled: bool = True,
    ):
        if sink is None and not keep:
            raise ValueError("keep=False requires a sink (events would vanish)")
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.events: list[FleetEvent] = []
        self.enabled = enabled
        self.keep = keep
        self._seq = 0
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_file = None
        self._sink_closed = False
        self._buffer: list[str] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FleetEvent]:
        return iter(self.events)

    @property
    def emitted(self) -> int:
        """Total events emitted, including streamed-and-dropped ones."""
        return self._seq

    def emit(
        self,
        kind: str,
        *,
        job_id: int | None = None,
        node_id: str | None = None,
        attempt: int = 0,
        at_s: float | None = None,
        **detail,
    ) -> FleetEvent | None:
        """Record one event (stamped from the clock unless ``at_s`` given).

        Returns the event, or None when the log is disabled.
        """
        if not self.enabled:
            return None
        if kind not in _EVENT_KIND_SET:
            raise ValueError(f"unknown event kind {kind!r}; see EVENT_KINDS")
        event = FleetEvent(
            seq=self._seq,
            at_s=self.clock() if at_s is None else at_s,
            kind=kind,
            job_id=job_id,
            node_id=node_id,
            attempt=attempt,
            detail=detail,
        )
        self._seq += 1
        if self.keep:
            self.events.append(event)
        if self._sink_path is not None:
            self._buffer.append(event.to_line())
            if len(self._buffer) >= FLUSH_EVERY:
                self.flush()
        return event

    def flush(self) -> None:
        """Push buffered sink lines to disk (no-op without a sink)."""
        if self._sink_path is None or not self._buffer:
            return
        if self._sink_file is None:
            self._sink_file = self._sink_path.open("w", encoding="utf-8")
        self._sink_file.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def close(self) -> None:
        """Flush and close the sink file (safe to call repeatedly)."""
        if self._sink_path is None or self._sink_closed:
            return
        self.flush()
        if self._sink_file is not None:
            self._sink_file.close()
            self._sink_file = None
        else:
            # nothing was ever emitted: still materialize an empty log
            self._sink_path.write_text("")
        self._sink_closed = True

    def kinds(self) -> dict[str, int]:
        """Event count per kind (absent kinds omitted)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def for_job(self, job_id: int) -> list[FleetEvent]:
        """Every event concerning ``job_id``, in emission order."""
        return [e for e in self.events if e.job_id == job_id]

    def to_jsonl(self) -> str:
        """The whole log as canonical JSONL (one event per line)."""
        return "".join(event.to_line() + "\n" for event in self.events)

    def write(self, path: str | Path) -> None:
        """Write the log as JSONL to ``path``."""
        Path(path).write_text(self.to_jsonl())

    @staticmethod
    def loads(text: str) -> list[FleetEvent]:
        """Parse JSONL text back into events (blank lines skipped)."""
        return [
            FleetEvent.from_line(line)
            for line in text.splitlines()
            if line.strip()
        ]

    @staticmethod
    def load(path: str | Path) -> list[FleetEvent]:
        """Read a JSONL log from ``path``."""
        return EventLog.loads(Path(path).read_text())

    @staticmethod
    def replay_identical(
        first: Iterable[FleetEvent], second: Iterable[FleetEvent]
    ) -> bool:
        """True when two logs are event-for-event identical."""
        return [e.to_line() for e in first] == [e.to_line() for e in second]
