"""The predicted-vs-measured harness: does the sim rank reality right?

This is the repo's version of the paper's model-vs-silicon loop, one
level up the stack: the discrete-event cluster sim
(:mod:`repro.cluster` on :mod:`repro.sim`) plays the role of the
analytical hardware model, and the real asyncio fleet
(:mod:`repro.fleet.core`) plays the silicon.  :func:`run_validation`
runs the *same* seeded traffic scenario through both, per routing
policy, and checks two things:

* **Rank agreement** — the sim must order routing policies by makespan
  the same way wall-clock reality does.  Only *significant* pairs are
  gated: two policies whose predicted makespans differ by less than
  ``significance`` (default 10%) are a modeled tie, and demanding the
  noisy wall clock break the tie the same way would gate on noise
  (round_robin and least_loaded land within ~1% of each other on
  zipf-mixed — a real tie — while affinity's cache-hit advantage puts
  it ~10-15% away from both, a real gap).  The measured side of a
  gated pair additionally gets a small noise budget
  (``measured_tolerance``, default 5%): the predicted winner must not
  *lose* by more than that, which rides out shared-box jitter while a
  genuine model inversion — tens of percent the wrong way — still
  fails.
* **Calibration spread** — the per-policy measured/predicted makespan
  ratio.  The functional time model is fitted to this interpreter, so
  the ratio is O(1) but machine-dependent; what must stay stable is the
  *spread* (max/min ratio across policies, 1.0 = perfectly consistent
  calibration), which is what rank agreement actually rests on.

**Core-aware prediction.**  The sim assumes N nodes prove in parallel;
a real host only honours that with >= N usable cores.  On a 1-core CI
box the N worker processes serialize and wall-clock tracks *total
modeled work* (where affinity's cache hits win), not the parallel
critical path (where load-spreading wins) — naively comparing against
the parallel makespan inverts the ranking and reads as model failure
when it is really a resource constraint the model was never told
about.  :func:`predicted_wall_s` therefore predicts

``max(model_makespan, total_modeled_busy / effective_cores)``

— the classic greedy-scheduling lower bound.  With enough cores the
second term is never binding (``busy/N <= makespan`` by averaging) and
the prediction is exactly the sim makespan; short of cores it degrades
to work conservation.  Both regimes are ranked correctly by the same
formula, so the bench gate holds on laptops and starved CI runners
alike.

Placement parity makes the comparison tight: both sides route through
an identical :class:`~repro.cluster.routing.ClusterRouter` in the same
submission order, so in a failure-free run every job lands on the same
node in sim and fleet and the only difference left is *time*
(``tests/test_fleet.py`` locks placement parity down).

``benchmarks/test_fleet_validation.py`` runs this and emits
``BENCH_fleet.json``; byte-identity of fleet proofs against a
single-service run rides along as the end-to-end correctness check.
"""

from __future__ import annotations

import os
from itertools import combinations

from repro.cluster.core import ClusterConfig, ProvingCluster
from repro.cluster.nodes import DEFAULT_NODE_CACHE_CAPACITY, NodeConfig
from repro.cluster.routing import ROUTING_POLICIES
from repro.fleet.core import FleetConfig, ProvingFleet
from repro.service.core import ProvingService, ServiceConfig
from repro.service.traffic import TrafficGenerator

#: predicted-makespan gap below which two policies count as a modeled tie
DEFAULT_SIGNIFICANCE = 0.10

#: wall-clock noise budget when checking measured order: the predicted
#: winner may *lose* by up to this fraction before the pair counts as a
#: disagreement.  Shared CI boxes jitter measured makespans by a few
#: percent; a genuine model inversion (e.g. predicting parallel speedup
#: a 1-core host cannot deliver) misorders pairs by tens of percent and
#: still fails.
DEFAULT_MEASURED_TOLERANCE = 0.05


def effective_cores() -> int:
    """Usable CPU cores for this process (affinity-mask aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _node_config(generator: TrafficGenerator, cache_capacity, backend):
    return NodeConfig(
        cache_capacity=cache_capacity,
        max_vars=generator.max_vars(),
        default_backend=backend,
    )


def predicted_wall_s(
    model_makespan_s: float, modeled_busy_s: float, cores: int
) -> float:
    """Greedy-scheduling wall-clock bound for a core-limited host."""
    return max(model_makespan_s, modeled_busy_s / max(cores, 1))


def sim_prediction(
    scenario: str,
    jobs: int,
    nodes: int,
    policy: str,
    *,
    seed: int = 7,
    time_model: str = "functional",
    cache_capacity: int | None = DEFAULT_NODE_CACHE_CAPACITY,
    backend: str | None = "fused",
    cores: int | None = None,
) -> dict:
    """Sim-predicted timing for one policy cell.

    Returns ``model_makespan_s`` (parallel critical path in model
    seconds), ``modeled_busy_s`` (total prove+install work), and
    ``predicted_makespan_s`` (the core-aware wall-clock prediction).
    """
    generator = TrafficGenerator(scenario, seed=seed)
    config = ClusterConfig(
        num_nodes=nodes,
        policy=policy,
        time_model=time_model,
        node=_node_config(generator, cache_capacity, backend),
    )
    with ProvingCluster(config) as cluster:
        records = cluster.run(generator.jobs(jobs))
    makespan = max(r.finish_s for r in records)
    busy = sum(r.install_model_s + r.prove_model_s for r in records)
    cores = effective_cores() if cores is None else cores
    return {
        "model_makespan_s": makespan,
        "modeled_busy_s": busy,
        "predicted_makespan_s": predicted_wall_s(makespan, busy, cores),
    }


def measured_fleet_run(
    scenario: str,
    jobs: int,
    nodes: int,
    policy: str,
    *,
    seed: int = 7,
    time_model: str = "functional",
    cache_capacity: int | None = DEFAULT_NODE_CACHE_CAPACITY,
    backend: str | None = "fused",
    run_timeout_s: float | None = 300.0,
) -> ProvingFleet:
    """Run one policy cell on the real fleet; returns the finished fleet."""
    generator = TrafficGenerator(scenario, seed=seed)
    config = FleetConfig(
        num_nodes=nodes,
        policy=policy,
        time_model=time_model,
        node=_node_config(generator, cache_capacity, backend),
        run_timeout_s=run_timeout_s,
    )
    fleet = ProvingFleet(config)
    fleet.run(generator.jobs(jobs))
    return fleet


def reference_proofs(
    scenario: str,
    jobs: int,
    *,
    seed: int = 7,
    cache_capacity: int | None = DEFAULT_NODE_CACHE_CAPACITY,
    backend: str | None = "fused",
    srs_seed: int = NodeConfig.srs_seed,
) -> dict[int, object]:
    """Single-service proofs of the same job stream, by job id.

    The byte-identity oracle: one sync :class:`ProvingService` with the
    same seeded SRS must produce exactly the proofs the fleet's N
    worker processes produced.
    """
    generator = TrafficGenerator(scenario, seed=seed)
    service = ProvingService(
        ServiceConfig(
            max_vars=generator.max_vars(),
            srs_seed=srs_seed,
            executor="sync",
            cache_capacity=cache_capacity,
            default_backend=backend,
        )
    )
    try:
        results = service.run(generator.jobs(jobs))
    finally:
        service.close()
    return {r.job_id: r.proof for r in results}


def significant_pairs(
    makespans: dict[str, float], significance: float
) -> list[tuple[str, str]]:
    """Policy pairs whose predicted gap exceeds ``significance``.

    Each pair is ordered (predicted-faster, predicted-slower); the
    list is sorted, so the output is deterministic for a given model
    and core count.
    """
    pairs = []
    for a, b in combinations(sorted(makespans), 2):
        low, high = sorted((a, b), key=lambda p: makespans[p])
        gap = makespans[high] / makespans[low] - 1.0
        if gap >= significance:
            pairs.append((low, high))
    return sorted(pairs)


def run_validation(
    scenario: str = "zipf-mixed",
    jobs: int = 24,
    nodes: int = 3,
    *,
    policies: tuple[str, ...] = ROUTING_POLICIES,
    seed: int = 7,
    time_model: str = "functional",
    cache_capacity: int | None = DEFAULT_NODE_CACHE_CAPACITY,
    backend: str | None = "fused",
    significance: float = DEFAULT_SIGNIFICANCE,
    measured_tolerance: float = DEFAULT_MEASURED_TOLERANCE,
    check_proofs: bool = True,
) -> dict:
    """Run the full predicted-vs-measured loop; returns the record dict.

    The returned dict is exactly what ``BENCH_fleet.json`` holds:
    per-policy predicted/measured makespans and ratios, the two
    rankings, the significant-pair rank agreement, the calibration
    spread, and the proof byte-identity verdict.
    """
    cores = effective_cores()
    predicted: dict[str, dict] = {}
    measured: dict[str, float] = {}
    fleet_proofs: dict[int, object] | None = None
    for policy in policies:
        predicted[policy] = sim_prediction(
            scenario,
            jobs,
            nodes,
            policy,
            seed=seed,
            time_model=time_model,
            cache_capacity=cache_capacity,
            backend=backend,
            cores=cores,
        )
        fleet = measured_fleet_run(
            scenario,
            jobs,
            nodes,
            policy,
            seed=seed,
            time_model=time_model,
            cache_capacity=cache_capacity,
            backend=backend,
        )
        measured[policy] = max(r.finish_s for r in fleet.records)
        if fleet_proofs is None:
            fleet_proofs = fleet.proofs
    wall = {p: predicted[p]["predicted_makespan_s"] for p in policies}
    pairs = significant_pairs(wall, significance)
    agreement = all(
        measured[low] < measured[high] * (1.0 + measured_tolerance)
        for low, high in pairs
    )
    ratios = {p: measured[p] / wall[p] for p in policies}
    spread = max(ratios.values()) / min(ratios.values())
    proofs_identical = None
    if check_proofs:
        oracle = reference_proofs(
            scenario,
            jobs,
            seed=seed,
            cache_capacity=cache_capacity,
            backend=backend,
        )
        proofs_identical = fleet_proofs == oracle
    doc = {
        "benchmark": "fleet_validation",
        "unit": "seconds (predicted = core-aware model, measured = wall)",
        "scenario": scenario,
        "jobs": jobs,
        "nodes": nodes,
        "seed": seed,
        "time_model": time_model,
        "significance": significance,
        "measured_tolerance": measured_tolerance,
        "effective_cores": cores,
        "policies": {
            policy: {
                "model_makespan_s": round(
                    predicted[policy]["model_makespan_s"], 6
                ),
                "modeled_busy_s": round(
                    predicted[policy]["modeled_busy_s"], 6
                ),
                "predicted_makespan_s": round(wall[policy], 6),
                "measured_makespan_s": round(measured[policy], 6),
                "measured_over_predicted": round(ratios[policy], 4),
            }
            for policy in sorted(policies)
        },
        "predicted_ranking": sorted(policies, key=lambda p: wall[p]),
        "measured_ranking": sorted(policies, key=lambda p: measured[p]),
        "significant_pairs": [list(pair) for pair in pairs],
        "rank_agreement": agreement,
        "calibration_spread": round(spread, 4),
    }
    if proofs_identical is not None:
        doc["proofs_identical"] = proofs_identical
    return doc
