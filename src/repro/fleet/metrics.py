"""Measured-side metrics for one real fleet run.

:func:`fleet_summary` renders the same headline shape as
:func:`repro.cluster.metrics.cluster_summary`'s ``model`` section —
makespan, throughput, latency percentiles, per-node load, imbalance,
install share — but every number is **wall-clock measured**, taken from
the :class:`~repro.cluster.records.JobRecord` rows the fleet produced.
Sharing the record type (and the latency/imbalance/deadline helpers)
with the sim is what makes the two sides directly comparable in
:mod:`repro.fleet.validation`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.metrics import (
    deadline_stats,
    load_imbalance,
    retry_stats,
)
from repro.cluster.records import JobRecord
from repro.service.metrics import percentile

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.fleet.core import ProvingFleet


def records_summary(records: list[JobRecord]) -> dict:
    """Makespan/throughput/latency over any record list (sim or fleet)."""
    makespan = max((r.finish_s for r in records), default=0.0)
    latencies = [r.latency_s for r in records]
    install_s = sum(r.install_model_s for r in records)
    prove_s = sum(r.prove_model_s for r in records)
    total_busy = install_s + prove_s
    return {
        "makespan_s": round(makespan, 6),
        "throughput_jobs_per_s": (
            round(len(records) / makespan, 3) if makespan > 0 else 0.0
        ),
        "latency_s": {
            "p50": round(percentile(latencies, 50), 6),
            "p95": round(percentile(latencies, 95), 6),
            "max": round(max(latencies), 6) if latencies else 0.0,
        },
        "install_s": round(install_s, 6),
        "prove_s": round(prove_s, 6),
        "install_share": (
            round(install_s / total_busy, 4) if total_busy > 0 else 0.0
        ),
    }


def fleet_summary(fleet: "ProvingFleet") -> dict:
    """One summary dict over a finished :class:`ProvingFleet` run."""
    records = fleet.records
    per_node_busy = {node_id: 0.0 for node_id in fleet.node_ids}
    per_node_jobs = {node_id: 0 for node_id in fleet.node_ids}
    per_node_hits = {node_id: 0 for node_id in fleet.node_ids}
    for record in records:
        busy = record.install_model_s + record.prove_model_s
        per_node_busy[record.node_id] = (
            per_node_busy.get(record.node_id, 0.0) + busy
        )
        per_node_jobs[record.node_id] = (
            per_node_jobs.get(record.node_id, 0) + 1
        )
        if record.cache_hit:
            per_node_hits[record.node_id] = (
                per_node_hits.get(record.node_id, 0) + 1
            )
    hits = sum(per_node_hits.values())
    doc = {
        "policy": fleet.config.policy,
        "nodes": fleet.config.num_nodes,
        "jobs": len(records),
        "measured": {
            **records_summary(records),
            "busy_s": {
                node_id: round(busy, 6)
                for node_id, busy in sorted(per_node_busy.items())
            },
            "load_imbalance": round(
                load_imbalance(list(per_node_busy.values())), 4
            ),
        },
        "cache": {
            "hits": hits,
            "misses": len(records) - hits,
            "hit_rate": round(hits / len(records), 4) if records else 0.0,
        },
        "routing": {
            "jobs_per_node": dict(sorted(per_node_jobs.items())),
        },
        "resilience": {
            "crashes": fleet.crashes,
            "retries": fleet.retries,
            "requeues": fleet.requeues,
            "parked": fleet.parked_count,
            "exclusion_waivers": fleet.exclusion_waivers,
            "failed_jobs": len(fleet.failed_jobs),
            "lost_wall_s": round(fleet.lost_wall_s, 6),
        },
    }
    if fleet.config.respect_arrivals:
        doc["deadlines"] = deadline_stats(records, fleet.failed_jobs)
    if fleet.crashes:
        doc["retries"] = retry_stats(records)
    return doc
