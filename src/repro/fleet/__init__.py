"""A real async distributed proving runtime, validated against the sim.

Where :mod:`repro.cluster` *models* a multi-node fleet in discrete-event
time, this package *runs* one: persistent worker processes (one per
node, each owning its seeded SRS and a bounded index cache, so proofs
stay byte-identical to every other path in the repo), an asyncio
control plane reusing the cluster's :class:`~repro.cluster.routing.\
ClusterRouter` policies, heartbeat-based failure detection with
deterministic seeded kill injection, and crash-retry semantics shared
with the sim through :class:`~repro.cluster.records.RetryPolicy`.

The payoff is the repo's model-vs-reality loop one level above the
hardware model: :mod:`repro.fleet.validation` runs the same scenario
through the sim and through the real fleet and checks the model ranks
routing policies the way wall-clock reality does
(``benchmarks/test_fleet_validation.py`` → ``BENCH_fleet.json``).

Modules:

* :mod:`repro.fleet.events` — the structured JSONL event schema shared
  with :class:`~repro.cluster.engine.ClusterEngine`;
* :mod:`repro.fleet.worker` — the worker-process main loop (build-once
  SRS, prove/probe/freeze/stop commands, heartbeats);
* :mod:`repro.fleet.heartbeat` — miss-threshold failure detection;
* :mod:`repro.fleet.core` — :class:`FleetConfig` / :class:`ProvingFleet`,
  the asyncio control plane;
* :mod:`repro.fleet.metrics` — measured-side summary;
* :mod:`repro.fleet.validation` — the predicted-vs-measured harness.

Demo CLI: ``python -m repro.fleet --scenario zipf-mixed --nodes 3``
(also installed as ``repro-fleet``).

Only :mod:`repro.fleet.events` is imported eagerly — it is the one
module the simulated cluster reaches up for, and keeping this package
lazy otherwise breaks the import cycle that reach-up would create.
"""

from repro.fleet.events import EVENT_KINDS, EventLog, FleetEvent

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "FleetEvent",
    "FleetConfig",
    "HeartbeatMonitor",
    "ProvingFleet",
    "fleet_summary",
    "run_validation",
]

_LAZY = {
    "FleetConfig": ("repro.fleet.core", "FleetConfig"),
    "ProvingFleet": ("repro.fleet.core", "ProvingFleet"),
    "HeartbeatMonitor": ("repro.fleet.heartbeat", "HeartbeatMonitor"),
    "fleet_summary": ("repro.fleet.metrics", "fleet_summary"),
    "run_validation": ("repro.fleet.validation", "run_validation"),
}


def __getattr__(name: str):
    """Resolve the runtime classes lazily (PEP 562) to stay cycle-free."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
