"""Request/response model for the proving service.

A :class:`ProofJob` is one proof request: a circuit (structure + witness),
a field-vector backend selection, and scheduling attributes (request
class, priority, model-time arrival).  A :class:`ProofResult` is the
matching response: the proof itself plus the bookkeeping the
:class:`~repro.service.metrics.ServiceMetrics` collector consumes.

Request classes follow the deferrable/real-time split of serving-layer
artifacts (ISSUE 2): REALTIME requests are latency-sensitive and drain
first; DEFERRABLE requests tolerate queueing and exist to be batched —
though a deferrable job whose circuit matches a real-time batch rides
along early (see :mod:`repro.service.batching`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field

from repro.fields.counters import OpCounter
from repro.hyperplonk.circuit import Circuit
from repro.hyperplonk.preprocess import circuit_fingerprint
from repro.hyperplonk.prover import HyperPlonkProof


class RequestClass(enum.Enum):
    """Service classes, in drain-priority order."""

    REALTIME = "realtime"
    DEFERRABLE = "deferrable"


@dataclass
class ProofJob:
    """One proof request.

    ``circuit_key`` is the content-addressed fingerprint of the circuit
    *structure* (witness excluded) — jobs sharing a key share one cached
    prover index and are grouped into one batch.
    """

    job_id: int
    circuit: Circuit
    #: field-vector backend name (:mod:`repro.fields.vector`); ``None``
    #: defers to the service default
    backend: str | None = None
    request_class: RequestClass = RequestClass.REALTIME
    #: larger drains earlier within a request class
    priority: int = 0
    #: model-time arrival offset assigned by the traffic generator, seconds
    arrival_s: float = 0.0
    #: model-time completion target for the ``deadline`` drain policy
    #: (absolute, same clock as ``arrival_s``); ``None`` = no deadline
    deadline_s: float | None = None
    #: free-form label (scenario / workload name) carried into results
    tag: str = ""
    circuit_key: str = ""
    #: wall-clock submission stamp, set by the service
    submitted_s: float = 0.0
    #: predicted prove seconds, stamped by the service's cost model
    predicted_cost_s: float | None = None
    #: retry ordinal: 0 on first dispatch, bumped by the cluster's
    #: failure-aware engine each time a node loss requeues this job
    attempt: int = 0
    #: nodes that crashed while holding this job; the retry router
    #: never sends the job back to one of them (ISSUE 5)
    excluded_node_ids: tuple[str, ...] = ()
    #: owning tenant in multi-tenant open-loop runs (None = untenanted)
    tenant: str | None = None

    def __post_init__(self):
        if not self.circuit_key:
            self.circuit_key = circuit_fingerprint(self.circuit)

    def sort_key(self) -> tuple:
        """Drain order: real-time first, then priority, then arrival."""
        return (
            0 if self.request_class is RequestClass.REALTIME else 1,
            -self.priority,
            self.arrival_s,
            self.job_id,
        )


@dataclass
class ProofResult:
    """One completed proof plus its service-side bookkeeping."""

    job_id: int
    tag: str
    circuit_key: str
    proof: HyperPlonkProof
    #: resolved backend name the proof was produced with
    backend: str
    request_class: RequestClass
    worker_id: str
    #: whether the index lookup for this job's batch hit the cache
    cache_hit: bool
    #: how many jobs shared this job's batch (and its single index lookup)
    batch_size: int
    submitted_s: float
    started_s: float
    finished_s: float
    #: time spent inside HyperPlonkProver.prove()
    prove_s: float
    #: True if the service verified the proof (config.verify_proofs)
    verified: bool = False
    #: the cost model's predicted prove seconds (None = no cost model)
    predicted_s: float | None = None
    counter: OpCounter | None = dc_field(default=None, repr=False)

    @property
    def latency_s(self) -> float:
        """Submit-to-finish wall time."""
        return self.finished_s - self.submitted_s

    @property
    def queue_s(self) -> float:
        """Time spent waiting before a worker picked the job up."""
        return self.started_s - self.submitted_s
