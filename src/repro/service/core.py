"""The proving service: job → cache → batch → worker pipeline.

:class:`ProvingService` accepts proof requests (:meth:`submit` /
:meth:`submit_job`), deduplicates circuit preprocessing through a
content-addressed :class:`~repro.service.cache.IndexCache`, groups
same-circuit requests into batches, and drains them through a
configurable worker pool with per-job field-vector backend selection.
Drain order is policy-driven (``fifo`` / ``sjf`` / ``deadline``): the
cost-aware policies price every job with a :mod:`repro.plan` cost model,
and :class:`~repro.service.metrics.ServiceMetrics` reports the
predicted-vs-actual error plus an estimated service capacity.

Every proof is produced by a plain ``HyperPlonkProver.prove()`` call
with its own fresh Fiat–Shamir transcript (the prover constructs one
per call), so service proofs are bit-identical to direct one-shot
proving and verify with the stock verifier —
``tests/test_proving_service.py`` locks this down differentially.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.fields import Fr
from repro.fields.vector import backend_name
from repro.hyperplonk.circuit import Circuit
from repro.hyperplonk.commitment import MultilinearKZG, TrapdoorSRS
from repro.hyperplonk.verifier import HyperPlonkError, HyperPlonkVerifier
from repro.service.batching import DRAIN_POLICIES, plan_batches
from repro.service.cache import IndexCache
from repro.service.costing import JobCostModel
from repro.service.jobs import ProofJob, ProofResult, RequestClass
from repro.service.metrics import ServiceMetrics
from repro.service.workers import EXECUTOR_KINDS, ProveTask, make_executor


@dataclass
class ServiceConfig:
    """Knobs for one :class:`ProvingService` instance."""

    #: largest circuit μ the service accepts (SRS is sized to μ+1 for the
    #: prover's (μ+1)-variable product tree)
    max_vars: int = 6
    #: seed for the service-owned deterministic trapdoor SRS
    srs_seed: int = 0x5EED
    #: ``sync`` | ``thread`` | ``process``
    executor: str = "sync"
    num_workers: int = 1
    #: LRU entries in the index cache (None = unbounded)
    cache_capacity: int | None = None
    #: backend for jobs that don't pick one (None = the original scalar
    #: prover path, reported as ``"scalar"`` in results)
    default_backend: str | None = None
    #: split same-circuit groups larger than this (None = unbounded)
    max_batch_size: int | None = None
    #: drain order: ``fifo`` | ``sjf`` | ``deadline``
    #: (:mod:`repro.service.batching`); the cost-aware policies price
    #: every job through the cost model
    drain_policy: str = "fifo"
    #: shape-level cost model (``shape_cost_s(gate, μ)``); ``None`` uses
    #: the plan layer's :class:`~repro.plan.FunctionalProverCostModel`
    #: whenever a cost-aware policy or prediction metrics need one
    cost_model: object | None = None
    #: predict per-job cost even under ``fifo`` (enables the
    #: predicted-vs-actual metrics without changing drain order)
    predict_costs: bool = False
    #: verify every proof in-service before returning it
    verify_proofs: bool = False
    #: attach an OpCounter to every job and aggregate tallies in metrics
    collect_counters: bool = False
    #: precompute fixed-base MSM tables on the service KZG (bit-identical
    #: proofs, much cheaper small commitments; see repro.curves.msm)
    fixed_base_msm: bool = True


class ProvingService:
    """A batched, cached, multi-worker proving front-end.

    Pass ``kzg`` to share an existing SRS (e.g. with a direct prover in a
    differential test); otherwise the service builds its own from
    ``config.srs_seed``.  The ``process`` executor requires the
    service-owned SRS, since workers rebuild it from the seed.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 kzg: MultilinearKZG | None = None):
        self.config = config = config or ServiceConfig()
        if config.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {config.executor!r}; "
                f"choose from {EXECUTOR_KINDS}"
            )
        if config.drain_policy not in DRAIN_POLICIES:
            raise ValueError(
                f"unknown drain policy {config.drain_policy!r}; "
                f"choose from {DRAIN_POLICIES}"
            )
        if config.default_backend is not None:
            backend_name(config.default_backend)  # validate early
        self.cost_model: JobCostModel | None = None
        if (config.cost_model is not None or config.predict_costs
                or config.drain_policy != "fifo"):
            self.cost_model = JobCostModel(config.cost_model)
        if kzg is None:
            srs = TrapdoorSRS(config.max_vars + 1,
                              random.Random(config.srs_seed))
            kzg = MultilinearKZG(srs, fixed_base=config.fixed_base_msm)
        elif config.executor == "process":
            raise ValueError(
                "the process executor requires a service-owned SRS "
                "(drop the kzg argument and set config.srs_seed)"
            )
        self.kzg = kzg
        self.cache = IndexCache(kzg, capacity=config.cache_capacity)
        self.metrics = ServiceMetrics()
        self.pool = make_executor(
            config.executor, config.num_workers,
            srs_seed=config.srs_seed, srs_max_vars=kzg.srs.max_vars,
            fixed_base=config.fixed_base_msm,
            cache_capacity=config.cache_capacity,
        )
        self._pending: list[ProofJob] = []
        self._next_id = 0
        self._t0: float | None = None
        self._t_end: float = 0.0

    # -- submission --------------------------------------------------------
    def submit(self, circuit: Circuit, *, backend: str | None = None,
               request_class: RequestClass = RequestClass.REALTIME,
               priority: int = 0, arrival_s: float = 0.0,
               tag: str = "") -> ProofJob:
        """Enqueue one proof request; returns the pending job."""
        job = ProofJob(
            job_id=self._next_id, circuit=circuit, backend=backend,
            request_class=request_class, priority=priority,
            arrival_s=arrival_s, tag=tag,
        )
        return self.submit_job(job)

    def submit_job(self, job: ProofJob) -> ProofJob:
        """Enqueue a pre-built job (e.g. from a :class:`TrafficGenerator`);
        reassigns ``job_id`` to keep service-wide ids unique."""
        if job.circuit.field != Fr:
            raise ValueError("the service proves circuits over Fr only")
        if job.circuit.num_vars + 1 > self.kzg.srs.max_vars:
            raise ValueError(
                f"circuit μ={job.circuit.num_vars} exceeds the service "
                f"SRS (max μ={self.kzg.srs.max_vars - 1})"
            )
        if job.backend is not None:
            backend_name(job.backend)  # validate before queueing
        job.job_id = self._next_id
        self._next_id += 1
        # time.time(), not perf_counter: worker stamps must be comparable
        # even when the worker is another process
        job.submitted_s = time.time()
        if self._t0 is None:
            self._t0 = time.perf_counter()
        self._pending.append(job)
        return job

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- draining ----------------------------------------------------------
    def drain(self) -> list[ProofResult]:
        """Batch and prove everything pending; returns results in drain
        order (real-time class first, then priority, then arrival)."""
        jobs, self._pending = self._pending, []
        if not jobs:
            return []
        cfg = self.config
        if self.cost_model is not None:
            for job in jobs:  # stamp predictions for policies + metrics
                self.cost_model.job_cost_s(job)
        batches = plan_batches(
            jobs, cfg.max_batch_size,
            policy=cfg.drain_policy, cost_fn=self.cost_model,
        )

        # process workers resolve indexes against their own caches; the
        # coordinator only preprocesses when it must verify
        resolve_here = self.pool.kind != "process" or cfg.verify_proofs
        tasks, meta = [], []
        for batch in batches:
            pidx = vidx = None
            hit = False
            if resolve_here:
                pidx, vidx, hit = self.cache.get(
                    batch.jobs[0].circuit, batch.circuit_key
                )
            for job in batch.jobs:
                backend = (job.backend if job.backend is not None
                           else cfg.default_backend)
                tasks.append(ProveTask(
                    job_id=job.job_id, circuit=job.circuit, backend=backend,
                    circuit_key=batch.circuit_key,
                    collect_counter=cfg.collect_counters,
                    index=pidx, cache_hit=hit, batch_size=len(batch),
                ))
                meta.append((job, vidx, len(batch), backend))

        try:
            outcomes = self.pool.run_tasks(tasks, self.kzg)
        except Exception:
            # a worker/pool failure must not swallow the whole wave: put
            # the jobs back so the caller can retry or inspect them
            self._pending = jobs + self._pending
            raise
        self.metrics.record_drain(len(batches))

        results = []
        for (job, vidx, batch_size, backend), outcome in zip(meta, outcomes):
            result = ProofResult(
                job_id=job.job_id, tag=job.tag, circuit_key=job.circuit_key,
                proof=outcome.proof,
                backend=backend_name(backend) if backend is not None
                else "scalar",
                request_class=job.request_class,
                worker_id=outcome.worker_id, cache_hit=outcome.cache_hit,
                batch_size=batch_size, submitted_s=job.submitted_s,
                started_s=outcome.started_s, finished_s=outcome.finished_s,
                prove_s=outcome.prove_s, predicted_s=job.predicted_cost_s,
                counter=outcome.counter,
            )
            self.metrics.record_result(result)
            results.append(result)
        self._t_end = time.perf_counter()

        if cfg.verify_proofs:
            # verify after every result is recorded, so one bad proof
            # doesn't discard the rest of the wave's (already computed)
            # work; then fail loudly
            bad = []
            for (job, vidx, _, _), result in zip(meta, results):
                try:
                    HyperPlonkVerifier(Fr, vidx, self.kzg).verify(result.proof)
                    result.verified = True
                except HyperPlonkError:
                    bad.append(job.job_id)
            if bad:
                raise HyperPlonkError(
                    f"service produced unverifiable proofs for jobs {bad}"
                )
        return results

    def run(self, jobs: list[ProofJob], *,
            wave_s: float | None = None) -> list[ProofResult]:
        """Submit and drain a whole job stream.

        ``wave_s`` buckets jobs by model-time arrival into drain waves
        (arrivals within one window batch together; later waves see a
        warm cache), modelling sustained traffic without sleeping.
        ``None`` drains everything in one wave.
        """
        results = []
        if wave_s is None:
            for job in jobs:
                self.submit_job(job)
            return self.drain()
        if wave_s <= 0:
            raise ValueError("wave_s must be positive (or None)")
        for job in sorted(jobs, key=lambda j: (j.arrival_s, j.job_id)):
            if self._pending and job.arrival_s >= self._wave_end(wave_s):
                results.extend(self.drain())
            self.submit_job(job)
        results.extend(self.drain())
        return results

    def _wave_end(self, wave_s: float) -> float:
        first = min(j.arrival_s for j in self._pending)
        return (int(first / wave_s) + 1) * wave_s

    # -- reporting / lifecycle ---------------------------------------------
    def summary(self) -> dict:
        """Metrics summary over everything drained so far."""
        wall = (self._t_end - self._t0
                if self._t0 is not None and self._t_end > self._t0 else 0.0)
        doc = self.metrics.summary(wall, cache_stats=self.cache.stats,
                                   num_workers=self.pool.num_workers)
        doc["executor"] = self.pool.kind
        doc["num_workers"] = self.pool.num_workers
        doc["drain_policy"] = self.config.drain_policy
        return doc

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "ProvingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
