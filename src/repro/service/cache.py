"""Content-addressed circuit-preprocessing cache.

Preprocessing (committing every selector and σ table — one MSM each) is
the most expensive per-circuit step the service performs, and it depends
only on circuit *structure*, never on the witness.  :class:`IndexCache`
keys preprocessed :class:`~repro.hyperplonk.preprocess.ProverIndex` /
:class:`~repro.hyperplonk.preprocess.VerifierIndex` pairs by
:func:`~repro.hyperplonk.preprocess.circuit_fingerprint`, with optional
LRU eviction and hit/miss/eviction statistics.

Proofs produced from a cached index are bit-identical to proofs from a
fresh ``preprocess()`` call — preprocessing is deterministic given the
circuit and the SRS — which ``tests/test_service_cache.py`` locks down.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.hyperplonk.circuit import Circuit
from repro.hyperplonk.commitment import MultilinearKZG
from repro.hyperplonk.preprocess import (
    ProverIndex,
    VerifierIndex,
    circuit_fingerprint,
    preprocess,
)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: total wall time spent preprocessing on misses
    preprocess_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
            "preprocess_s": round(self.preprocess_s, 6),
        }


class IndexCache:
    """LRU cache of preprocessed circuit indexes, bound to one KZG/SRS.

    ``capacity=None`` means unbounded.  Thread-safe: the lock is held
    across the miss-path ``preprocess()`` call, so concurrent workers
    asking for the same circuit never duplicate an MSM-heavy
    preprocessing run.
    """

    def __init__(self, kzg: MultilinearKZG, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be >= 1 (or None)")
        self.kzg = kzg
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[str, tuple[ProverIndex, VerifierIndex]] = (
            OrderedDict()
        )
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(
        self, circuit: Circuit, key: str | None = None
    ) -> tuple[ProverIndex, VerifierIndex, bool]:
        """Return ``(prover_index, verifier_index, hit)`` for ``circuit``,
        preprocessing on a miss.  ``key`` skips re-fingerprinting when the
        caller already holds one (jobs do)."""
        key = key or circuit_fingerprint(circuit)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry[0], entry[1], True
            self.stats.misses += 1
            t0 = time.perf_counter()
            pidx, vidx = preprocess(circuit, self.kzg)
            self.stats.preprocess_s += time.perf_counter() - t0
            self._entries[key] = (pidx, vidx)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
            return pidx, vidx, False

    def warm(self, circuit: Circuit) -> str:
        """Preprocess ``circuit`` ahead of traffic; returns its key."""
        key = circuit_fingerprint(circuit)
        self.get(circuit, key)
        return key

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
