"""Worker pools that drain proving batches.

Three executors share one interface (:class:`WorkerPool.run_tasks`):

* :class:`SyncExecutor` — inline, single worker; the default and the
  determinism baseline.
* :class:`ThreadExecutor` — a thread pool.  Pure-Python proving is
  GIL-bound, so threads overlap little compute, but the executor
  exercises the same task-plumbing a native backend would saturate, and
  the shared :class:`~repro.service.cache.IndexCache` stays coherent.
* :class:`ProcessExecutor` — a process pool.  Each worker rebuilds an
  *identical* KZG/SRS from the service's seed in its initializer (the
  trapdoor SRS is deterministic in the seed) and keeps a worker-local
  index cache, so no multi-megabyte SRS or index ever crosses the pipe
  and proofs stay bit-identical to the in-process path.

Tasks carry the field-vector *backend name*, never a backend instance
(:func:`repro.fields.vector.backend_name`), so they pickle cleanly.
"""

from __future__ import annotations

import os
import random
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field as dc_field

from repro.fields import Fq, Fr
from repro.fields.counters import OpCounter
from repro.hyperplonk.circuit import Circuit
from repro.hyperplonk.commitment import MultilinearKZG, TrapdoorSRS
from repro.hyperplonk.preprocess import ProverIndex
from repro.hyperplonk.prover import HyperPlonkProof, HyperPlonkProver
from repro.service.cache import IndexCache


@dataclass
class ProveTask:
    """One unit of worker work: prove ``circuit`` with ``index``.

    For in-process pools the coordinator resolves ``index`` through the
    shared cache; for the process pool ``index`` stays ``None`` and the
    worker resolves it against its local cache.
    """

    job_id: int
    circuit: Circuit
    backend: str | None
    circuit_key: str
    collect_counter: bool = False
    index: ProverIndex | None = dc_field(default=None, repr=False)
    cache_hit: bool = False
    batch_size: int = 1


@dataclass
class TaskOutcome:
    """What a worker reports back for one task."""

    job_id: int
    proof: HyperPlonkProof
    worker_id: str
    cache_hit: bool
    started_s: float
    finished_s: float
    prove_s: float
    counter: OpCounter | None = dc_field(default=None, repr=False)
    #: seconds spent resolving the index locally (0.0 on a hit or when
    #: the coordinator resolved it)
    install_s: float = 0.0


def _prove(task: ProveTask, index: ProverIndex, kzg: MultilinearKZG,
           worker_id: str, cache_hit: bool) -> TaskOutcome:
    # wall stamps use time.time(): they are compared against the
    # coordinator's submit stamps, and perf_counter's epoch is undefined
    # across processes; the prove duration is a same-process delta, so it
    # keeps the high-resolution clock
    started = time.time()
    t0 = time.perf_counter()
    counter = OpCounter() if task.collect_counter else None
    proof = HyperPlonkProver(
        task.circuit, index, kzg, backend=task.backend
    ).prove(counter)
    prove_s = time.perf_counter() - t0
    return TaskOutcome(
        job_id=task.job_id,
        proof=proof,
        worker_id=worker_id,
        cache_hit=cache_hit,
        started_s=started,
        finished_s=time.time(),
        prove_s=prove_s,
        counter=counter,
    )


def inline_prove(task: ProveTask, kzg: MultilinearKZG,
                 worker_id: str | None = None) -> TaskOutcome:
    """Prove a coordinator-resolved task in the current thread."""
    if task.index is None:
        raise ValueError("inline_prove needs a coordinator-resolved index")
    wid = worker_id or threading.current_thread().name
    return _prove(task, task.index, kzg, wid, task.cache_hit)


# -- process-worker side ----------------------------------------------------

@dataclass(frozen=True)
class WorkerProbe:
    """A picklable snapshot of one worker process's persistent state.

    The regression contract rides on ``srs_builds``: a persistent
    worker builds its seeded SRS **exactly once** at startup and reuses
    it for every batch it ever proves
    (``tests/test_service_workers.py`` locks this down).
    """

    worker_id: str
    pid: int
    #: times this process constructed an SRS — must stay 1 for its life
    srs_builds: int
    cache_capacity: int | None
    cache_len: int
    cache_hits: int
    cache_misses: int
    jobs_proved: int


class WorkerState:
    """The build-once proving state one persistent worker process owns.

    One seeded :class:`TrapdoorSRS`/:class:`MultilinearKZG` (identical
    to the coordinator's, since the trapdoor SRS is deterministic in
    the seed) plus a *bounded* worker-local :class:`IndexCache`.
    Constructing the state is the only place an SRS is ever built on
    the worker side; ``srs_builds`` counts constructions so tests and
    probes can assert the build-once invariant.  Both the service's
    :class:`ProcessExecutor` workers and the :mod:`repro.fleet` node
    workers own exactly one of these.
    """

    def __init__(self, srs_seed: int, srs_max_vars: int,
                 fixed_base: bool = True,
                 cache_capacity: int | None = None):
        self.params = (srs_seed, srs_max_vars, fixed_base, cache_capacity)
        srs = TrapdoorSRS(srs_max_vars, random.Random(srs_seed))
        self.kzg = MultilinearKZG(srs, fixed_base=fixed_base)
        self.cache = IndexCache(self.kzg, capacity=cache_capacity)
        self.srs_builds = 1
        self.jobs_proved = 0

    def prove(self, task: ProveTask,
              worker_id: str | None = None) -> TaskOutcome:
        """Prove ``task`` against this state, resolving the index locally."""
        _canonicalize_field(task.circuit)
        t0 = time.perf_counter()
        pidx, _, hit = self.cache.get(task.circuit, task.circuit_key)
        install_s = 0.0 if hit else time.perf_counter() - t0
        self.jobs_proved += 1
        wid = worker_id or f"pid-{os.getpid()}"
        outcome = _prove(task, pidx, self.kzg, wid, hit)
        outcome.install_s = install_s
        return outcome

    def probe(self, worker_id: str | None = None) -> WorkerProbe:
        """Snapshot this state for the coordinator (picklable)."""
        return WorkerProbe(
            worker_id=worker_id or f"pid-{os.getpid()}",
            pid=os.getpid(),
            srs_builds=self.srs_builds,
            cache_capacity=self.cache.capacity,
            cache_len=len(self.cache),
            cache_hits=self.cache.stats.hits,
            cache_misses=self.cache.stats.misses,
            jobs_proved=self.jobs_proved,
        )


_WORKER_STATE: WorkerState | None = None


def worker_state(srs_seed: int, srs_max_vars: int, fixed_base: bool = True,
                 cache_capacity: int | None = None) -> WorkerState:
    """This process's persistent :class:`WorkerState`, built on first use.

    Re-invocations with the same parameters return the existing state
    untouched — the guard that makes the SRS build-once even if a pool
    re-runs its initializer.
    """
    global _WORKER_STATE
    params = (srs_seed, srs_max_vars, fixed_base, cache_capacity)
    if _WORKER_STATE is None or _WORKER_STATE.params != params:
        _WORKER_STATE = WorkerState(
            srs_seed, srs_max_vars, fixed_base, cache_capacity
        )
    return _WORKER_STATE


def _init_process_worker(srs_seed: int, srs_max_vars: int,
                         fixed_base: bool = True,
                         cache_capacity: int | None = None) -> None:
    """Rebuild the coordinator's KZG deterministically in this worker."""
    worker_state(srs_seed, srs_max_vars, fixed_base, cache_capacity)


def _canonicalize_field(circuit: Circuit) -> None:
    """Swap an unpickled field copy for this process's module singleton
    (Felt arithmetic compares fields by identity)."""
    for known in (Fr, Fq):
        if circuit.field == known:
            circuit.field = known
            return


def process_prove(task: ProveTask) -> TaskOutcome:
    """Prove a task in a pool process, resolving the index locally."""
    if _WORKER_STATE is None:
        raise RuntimeError("process worker used before initialization")
    return _WORKER_STATE.prove(task)


def process_probe() -> WorkerProbe:
    """Snapshot the calling pool process's worker state."""
    if _WORKER_STATE is None:
        raise RuntimeError("process worker used before initialization")
    return _WORKER_STATE.probe()


# -- pools ------------------------------------------------------------------

class WorkerPool:
    """Common executor surface: run tasks, preserve task order."""

    kind = "abstract"

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

    def run_tasks(self, tasks: list[ProveTask],
                  kzg: MultilinearKZG) -> list[TaskOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __repr__(self):
        return f"{type(self).__name__}(workers={self.num_workers})"


class SyncExecutor(WorkerPool):
    kind = "sync"

    def __init__(self, num_workers: int = 1):
        super().__init__(1)

    def run_tasks(self, tasks, kzg):
        return [inline_prove(t, kzg, worker_id="sync-0") for t in tasks]


class ThreadExecutor(WorkerPool):
    kind = "thread"

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="prover"
        )

    def run_tasks(self, tasks, kzg):
        return list(self._pool.map(lambda t: inline_prove(t, kzg), tasks))

    def close(self):
        self._pool.shutdown(wait=True)


class ProcessExecutor(WorkerPool):
    kind = "process"

    def __init__(self, num_workers: int, srs_seed: int, srs_max_vars: int,
                 fixed_base: bool = True,
                 cache_capacity: int | None = None):
        super().__init__(num_workers)
        self._pool = ProcessPoolExecutor(
            max_workers=num_workers,
            initializer=_init_process_worker,
            initargs=(srs_seed, srs_max_vars, fixed_base, cache_capacity),
        )

    def run_tasks(self, tasks, kzg):
        # strip coordinator-resolved indexes: workers resolve locally, and
        # an index is by far the heaviest thing we could ship
        for t in tasks:
            t.index = None
        return list(self._pool.map(process_prove, tasks))

    def probe(self) -> list[WorkerProbe]:
        """Snapshot worker states (one probe per pool slot).

        With one worker the snapshot is exact; with more, an idle
        worker may answer twice, so treat multi-worker probes as a
        sample, not a census.
        """
        futures = [
            self._pool.submit(process_probe) for _ in range(self.num_workers)
        ]
        return [future.result() for future in futures]

    def close(self):
        self._pool.shutdown(wait=True)


EXECUTOR_KINDS = ("sync", "thread", "process")


def make_executor(kind: str, num_workers: int, *, srs_seed: int | None = None,
                  srs_max_vars: int | None = None,
                  fixed_base: bool = True,
                  cache_capacity: int | None = None) -> WorkerPool:
    if kind == "sync":
        return SyncExecutor()
    if kind == "thread":
        return ThreadExecutor(num_workers)
    if kind == "process":
        if srs_seed is None or srs_max_vars is None:
            raise ValueError(
                "process executor needs a service-owned SRS "
                "(srs_seed + srs_max_vars) so workers can rebuild it"
            )
        return ProcessExecutor(
            num_workers, srs_seed, srs_max_vars, fixed_base, cache_capacity
        )
    raise ValueError(f"unknown executor {kind!r}; choose from {EXECUTOR_KINDS}")
