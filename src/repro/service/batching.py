"""Batch planning: order pending jobs, then group by circuit structure.

A batch is the unit of index reuse — every job in a batch shares one
circuit fingerprint, so the service performs exactly one
:class:`~repro.service.cache.IndexCache` lookup (and at most one
preprocessing run) per batch regardless of batch size.

Ordering is policy-driven (:func:`order_jobs`):

* ``fifo`` — the original drain order: real-time class before
  deferrable, then priority, then arrival;
* ``sjf`` — shortest job first *within* each class: jobs with the
  smallest predicted prove cost (from a :mod:`repro.plan` cost model)
  drain first, so one expensive request stops inflating every cheap
  request's latency;
* ``deadline`` — earliest-deadline-first for the real-time class
  (deadlines dominate; priority and predicted cost only break ties, and
  jobs without a deadline sort last); deferrable jobs follow in
  shortest-job-first order.

Batches are emitted in the order of their best-ranked member.  Grouping
deliberately lets a deferrable job ride along in a batch anchored by a
real-time job with the same circuit — batching it early is strictly
cheaper than draining it later with a second index resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.service.jobs import ProofJob, RequestClass

#: drain-policy names accepted by :func:`order_jobs` / ``ServiceConfig``
DRAIN_POLICIES = ("fifo", "sjf", "deadline")

#: a job-level predicted-cost callback (seconds); see
#: :class:`repro.service.costing.JobCostModel`
CostFn = Callable[[ProofJob], float]


@dataclass
class Batch:
    """Jobs sharing one circuit fingerprint (hence one prover index)."""

    circuit_key: str
    jobs: list[ProofJob]

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def predicted_cost_s(self) -> float | None:
        """Sum of member predictions (None when any member lacks one)."""
        costs = [j.predicted_cost_s for j in self.jobs]
        if any(c is None for c in costs):
            return None
        return sum(costs)


def order_jobs(jobs: list[ProofJob], policy: str = "fifo",
               cost_fn: CostFn | None = None) -> list[ProofJob]:
    """Sort ``jobs`` into drain order under ``policy`` (deterministic:
    ties always break by arrival then job id)."""
    if policy not in DRAIN_POLICIES:
        raise ValueError(
            f"unknown drain policy {policy!r}; choose from {DRAIN_POLICIES}"
        )
    if policy == "fifo":
        return sorted(jobs, key=ProofJob.sort_key)
    if cost_fn is None:
        raise ValueError(f"the {policy!r} drain policy needs a cost_fn")

    def key(job: ProofJob) -> tuple:
        realtime = job.request_class is RequestClass.REALTIME
        cost = float(cost_fn(job))
        if policy == "deadline" and realtime:
            # EDF: the deadline outranks priority (a distant-deadline
            # job must not starve an imminent one, whatever its
            # priority); priority and cost only break ties
            deadline = (job.deadline_s if job.deadline_s is not None
                        else math.inf)
            return (0, deadline, -job.priority, cost,
                    job.arrival_s, job.job_id)
        # sjf for both classes; deadline's deferrable tail is sjf
        return (0 if realtime else 1, -job.priority, cost, 0.0,
                job.arrival_s, job.job_id)

    return sorted(jobs, key=key)


def plan_batches(
    jobs: list[ProofJob], max_batch_size: int | None = None, *,
    policy: str = "fifo", cost_fn: CostFn | None = None,
) -> list[Batch]:
    """Deterministically partition ``jobs`` into same-circuit batches.

    ``max_batch_size`` splits oversized groups (None = unbounded); splits
    preserve the sorted drain order.  ``policy`` / ``cost_fn`` select the
    drain order (see :func:`order_jobs`).
    """
    if max_batch_size is not None:
        if isinstance(max_batch_size, bool) or not isinstance(max_batch_size, int):
            raise TypeError(
                f"max_batch_size must be an int or None, "
                f"got {type(max_batch_size).__name__}"
            )
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1 (or None)")
    ordered = order_jobs(jobs, policy, cost_fn)
    groups: dict[str, list[ProofJob]] = {}
    for job in ordered:  # dict preserves first-appearance (i.e. rank) order
        groups.setdefault(job.circuit_key, []).append(job)
    batches = []
    for key, members in groups.items():
        if max_batch_size is None:
            batches.append(Batch(key, members))
        else:
            for i in range(0, len(members), max_batch_size):
                batches.append(Batch(key, members[i:i + max_batch_size]))
    return batches
