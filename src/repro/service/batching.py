"""Batch planning: group pending jobs by circuit structure.

A batch is the unit of index reuse — every job in a batch shares one
circuit fingerprint, so the service performs exactly one
:class:`~repro.service.cache.IndexCache` lookup (and at most one
preprocessing run) per batch regardless of batch size.

Ordering: jobs are first sorted by :meth:`ProofJob.sort_key` (real-time
class before deferrable, then priority, then arrival), and batches are
emitted in the order of their best-ranked member.  Grouping deliberately
lets a deferrable job ride along in a batch anchored by a real-time job
with the same circuit — batching it early is strictly cheaper than
draining it later with a second index resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.jobs import ProofJob


@dataclass
class Batch:
    """Jobs sharing one circuit fingerprint (hence one prover index)."""

    circuit_key: str
    jobs: list[ProofJob]

    def __len__(self) -> int:
        return len(self.jobs)


def plan_batches(
    jobs: list[ProofJob], max_batch_size: int | None = None
) -> list[Batch]:
    """Deterministically partition ``jobs`` into same-circuit batches.

    ``max_batch_size`` splits oversized groups (None = unbounded); splits
    preserve the sorted drain order.
    """
    if max_batch_size is not None and max_batch_size < 1:
        raise ValueError("max_batch_size must be >= 1 (or None)")
    ordered = sorted(jobs, key=ProofJob.sort_key)
    groups: dict[str, list[ProofJob]] = {}
    for job in ordered:  # dict preserves first-appearance (i.e. rank) order
        groups.setdefault(job.circuit_key, []).append(job)
    batches = []
    for key, members in groups.items():
        if max_batch_size is None:
            batches.append(Batch(key, members))
        else:
            for i in range(0, len(members), max_batch_size):
                batches.append(Batch(key, members[i:i + max_batch_size]))
    return batches
