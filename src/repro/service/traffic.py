"""Arrival-pattern-driven traffic generation for the proving service.

A :class:`TrafficGenerator` turns a named
:class:`~repro.workloads.catalog.TrafficScenario` into a deterministic
stream of :class:`~repro.service.jobs.ProofJob`\\ s: circuit sizes and
gate families are drawn from the scenario's distributions, arrival
offsets from its pattern (uniform / poisson / burst), and request
classes from its real-time fraction.

Circuit *structure* is a pure function of (gate family, log2 size) —
only witness values vary between requests — so repeated draws of the
same shape hit the service's index cache, exactly like production
traffic re-proving one circuit over many inputs.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.fields import Fr
from repro.fields.prime_field import PrimeField
from repro.hyperplonk.circuit import (
    Circuit,
    CircuitBuilder,
    GateType,
    JELLYFISH,
    VANILLA,
)
from repro.service.jobs import ProofJob, RequestClass
from repro.workloads import TrafficScenario, scenario_by_name

GATE_TYPES: dict[str, GateType] = {"vanilla": VANILLA, "jellyfish": JELLYFISH}

ARRIVAL_PATTERNS = ("uniform", "poisson", "burst")

#: jobs per cluster in the ``burst`` arrival pattern
BURST_SIZE = 4


def synthesize_circuit(gate_type: GateType, log2_gates: int, *,
                       witness_seed: int = 0,
                       field: PrimeField = Fr) -> Circuit:
    """Build a satisfiable 2^``log2_gates``-gate circuit.

    The gate/wiring pattern depends only on ``(gate_type, log2_gates)``;
    ``witness_seed`` varies just the input values.  All helper gates hold
    by construction (the builder computes outputs), so the circuit always
    proves.
    """
    if log2_gates < 1:
        raise ValueError("log2_gates must be >= 1")
    rng = random.Random(witness_seed)
    b = CircuitBuilder(gate_type, field)
    p = field.modulus
    x = b.new_wire(rng.randrange(1, p))
    y = b.new_wire(rng.randrange(1, p))
    acc = b.add(x, y)
    target = 1 << log2_gates
    i = 0
    # fixed per-index pattern => fixed structure; one row per iteration
    while len(b.rows) < target:
        if gate_type.name == "jellyfish" and i % 3 == 2:
            acc = b.pow5(acc)
        elif i % 2:
            acc = b.mul(acc, x)
        else:
            acc = b.add(acc, y)
        i += 1
    return b.build(min_gates=target)


class TrafficGenerator:
    """Deterministic (seeded) job-stream generator for one scenario."""

    def __init__(self, scenario: TrafficScenario | str, *, seed: int = 0,
                 field: PrimeField = Fr):
        if isinstance(scenario, str):
            scenario = scenario_by_name(scenario)
        if scenario.arrival not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"unknown arrival pattern {scenario.arrival!r}; "
                f"choose from {ARRIVAL_PATTERNS}"
            )
        for gate_name, _ in scenario.gate_mix:
            if gate_name not in GATE_TYPES:
                raise ValueError(f"unknown gate family {gate_name!r}")
        self.scenario = scenario
        self.seed = seed
        self.field = field
        self._rng = random.Random(seed)
        self._next_arrival = 0.0
        self._burst_slot = 0

    # -- internals ---------------------------------------------------------
    def _draw_arrival(self) -> float:
        s = self.scenario
        t = self._next_arrival
        if s.arrival == "uniform":
            self._next_arrival = t + 1.0 / s.rate_rps
        elif s.arrival == "poisson":
            self._next_arrival = t + self._rng.expovariate(s.rate_rps)
        else:  # burst: clusters of BURST_SIZE, then a long gap
            self._burst_slot += 1
            if self._burst_slot % BURST_SIZE == 0:
                self._next_arrival = t + BURST_SIZE / s.rate_rps
        return t

    def _weighted(self, pairs: Iterable[tuple]) -> object:
        population, weights = zip(*pairs)
        return self._rng.choices(population, weights=weights, k=1)[0]

    # -- API ---------------------------------------------------------------
    def jobs(self, n: int, *, start_id: int = 0,
             backend: str | None = None) -> list[ProofJob]:
        """The next ``n`` requests (arrival offsets continue across calls)."""
        s = self.scenario
        out = []
        for i in range(n):
            arrival = self._draw_arrival()
            gate_name = self._weighted(s.gate_mix)
            log2 = self._weighted(s.size_weights)
            realtime = self._rng.random() < s.realtime_fraction
            circuit = synthesize_circuit(
                GATE_TYPES[gate_name], log2,
                witness_seed=self._rng.randrange(1 << 30),
                field=self.field,
            )
            deadline = None
            if realtime and s.realtime_deadline_s is not None:
                deadline = arrival + s.realtime_deadline_s
            out.append(ProofJob(
                job_id=start_id + i,
                circuit=circuit,
                backend=backend,
                request_class=(RequestClass.REALTIME if realtime
                               else RequestClass.DEFERRABLE),
                arrival_s=arrival,
                deadline_s=deadline,
                tag=f"{s.name}/{gate_name}-mu{log2}",
            ))
        return out

    def max_vars(self) -> int:
        """The largest μ this scenario can draw (for sizing the SRS)."""
        return self.scenario.max_log2_gates
