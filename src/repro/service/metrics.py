"""Service-side measurement: throughput, latency tails, utilization.

:class:`ServiceMetrics` accumulates :class:`~repro.service.jobs.ProofResult`
records and renders one summary dict per run: proofs/sec, p50/p95 latency,
cache hit rate (both per-lookup, from the cache's own stats, and per-job,
from result records — the two differ because a batch of *n* jobs performs
one lookup), per-worker utilization, and aggregate
:class:`~repro.fields.counters.OpCounter` tallies when collection is on.

When the service runs with a cost model, results carry a
``predicted_s`` and the summary gains a ``prediction`` section — how far
the plan-derived predictions land from measured prove times (mean
absolute percentage error, total predicted vs actual seconds) — plus
``estimated_capacity_proofs_per_s``: the steady-state throughput the
worker pool could sustain on this job mix, from both the predicted and
the measured mean cost per proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.fields.counters import OpCounter
from repro.service.cache import CacheStats
from repro.service.jobs import ProofResult, RequestClass


def _interp_sorted(xs: list[float], q: float) -> float:
    """Linear-interpolation percentile over an already-sorted list."""
    if not xs:
        return 0.0
    if len(xs) == 1:
        return xs[0]
    pos = (len(xs) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] + (xs[hi] - xs[lo]) * frac


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (numpy-free), q in [0, 100]."""
    return _interp_sorted(sorted(values), q)


def percentiles(values: list[float], qs: tuple[float, ...]) -> list[float]:
    """Many percentiles of one sample, sorting ``values`` exactly once.

    Tail-heavy snapshots ask for p50/p95/p99/p99.9 of the same latency
    list; calling :func:`percentile` per quantile re-sorts each time,
    which dominates summary cost at 10⁵+ samples.
    """
    xs = sorted(values)
    return [_interp_sorted(xs, q) for q in qs]


@dataclass
class WorkerStats:
    worker_id: str
    jobs: int = 0
    busy_s: float = 0.0


@dataclass
class ServiceMetrics:
    results: list[ProofResult] = dc_field(default_factory=list)
    batches: int = 0
    drains: int = 0
    ops: OpCounter = dc_field(default_factory=OpCounter)
    _workers: dict[str, WorkerStats] = dc_field(default_factory=dict)

    def record_result(self, result: ProofResult) -> None:
        self.results.append(result)
        w = self._workers.setdefault(result.worker_id,
                                     WorkerStats(result.worker_id))
        w.jobs += 1
        w.busy_s += result.prove_s
        if result.counter is not None:
            self.ops = self.ops.merged(result.counter)

    def record_drain(self, num_batches: int) -> None:
        self.drains += 1
        self.batches += num_batches

    # -- derived -----------------------------------------------------------
    @property
    def jobs_done(self) -> int:
        return len(self.results)

    def latencies(self) -> list[float]:
        return [r.latency_s for r in self.results]

    def job_cache_hit_rate(self) -> float:
        """Fraction of jobs whose batch's index lookup hit the cache."""
        if not self.results:
            return 0.0
        return sum(r.cache_hit for r in self.results) / len(self.results)

    def prediction_error(self) -> dict | None:
        """Predicted-vs-actual prove-time accuracy (None = no predictions)."""
        pairs = [(r.predicted_s, r.prove_s) for r in self.results
                 if r.predicted_s is not None]
        if not pairs:
            return None
        predicted_total = sum(p for p, _ in pairs)
        actual_total = sum(a for _, a in pairs)
        abs_pct = [abs(p - a) / a * 100.0 for p, a in pairs if a > 0]
        return {
            "jobs": len(pairs),
            "predicted_total_s": round(predicted_total, 6),
            "actual_total_s": round(actual_total, 6),
            "mean_abs_error_pct": (
                round(sum(abs_pct) / len(abs_pct), 2) if abs_pct else 0.0
            ),
        }

    def estimated_capacity(self, num_workers: int) -> dict:
        """Steady-state proofs/sec ``num_workers`` could sustain on this
        job mix: workers divided by the mean seconds per proof."""
        prove = [r.prove_s for r in self.results if r.prove_s > 0]
        predicted = [r.predicted_s for r in self.results
                     if r.predicted_s is not None and r.predicted_s > 0]
        out = {}
        if prove:
            out["actual"] = round(num_workers * len(prove) / sum(prove), 3)
        if predicted:
            out["predicted"] = round(
                num_workers * len(predicted) / sum(predicted), 3)
        return out

    def summary(self, wall_s: float,
                cache_stats: CacheStats | None = None,
                num_workers: int = 1) -> dict:
        lat = self.latencies()
        lat_p50, lat_p95, lat_p99, lat_p99_9 = percentiles(
            lat, (50, 95, 99, 99.9)
        )
        queue = [r.queue_s for r in self.results]
        prove = [r.prove_s for r in self.results]
        by_class = {
            cls.value: sum(1 for r in self.results if r.request_class is cls)
            for cls in RequestClass
        }
        doc = {
            "jobs": self.jobs_done,
            "batches": self.batches,
            "drains": self.drains,
            "by_class": by_class,
            "wall_s": round(wall_s, 6),
            "throughput_proofs_per_s": (
                round(self.jobs_done / wall_s, 3) if wall_s > 0 else 0.0
            ),
            "latency_s": {
                "p50": round(lat_p50, 6),
                "p95": round(lat_p95, 6),
                "p99": round(lat_p99, 6),
                "p99_9": round(lat_p99_9, 6),
                "max": round(max(lat), 6) if lat else 0.0,
            },
            "queue_s_p50": round(percentile(queue, 50), 6),
            "prove_s_p50": round(percentile(prove, 50), 6),
            "job_cache_hit_rate": round(self.job_cache_hit_rate(), 4),
            "workers": [
                {
                    "worker_id": w.worker_id,
                    "jobs": w.jobs,
                    "busy_s": round(w.busy_s, 6),
                    "utilization": (
                        round(w.busy_s / wall_s, 4) if wall_s > 0 else 0.0
                    ),
                }
                for w in sorted(self._workers.values(),
                                key=lambda w: w.worker_id)
            ],
        }
        prediction = self.prediction_error()
        if prediction is not None:
            doc["prediction"] = prediction
            doc["estimated_capacity_proofs_per_s"] = (
                self.estimated_capacity(num_workers))
        if cache_stats is not None:
            doc["cache"] = cache_stats.as_dict()
        if self.ops.mul or self.ops.add or self.ops.inv:
            doc["ops"] = {
                "mul": self.ops.mul,
                "add": self.ops.add,
                "inv": self.ops.inv,
                "ee_mul": self.ops.ee_mul,
                "pl_mul": self.ops.pl_mul,
            }
        return doc
