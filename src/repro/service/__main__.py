"""Proving-service demo CLI: ``python -m repro.service`` / ``repro-serve``.

Generates a traffic scenario, runs it through a :class:`ProvingService`,
verifies every proof, and prints the metrics summary.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli import (
    backend_choices,
    cache_capacity,
    nonnegative_float,
    positive_int,
)
from repro.plan import FunctionalProverCostModel
from repro.service.batching import DRAIN_POLICIES
from repro.service.core import ProvingService, ServiceConfig
from repro.service.traffic import TrafficGenerator
from repro.service.workers import EXECUTOR_KINDS
from repro.workloads import SCENARIOS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a proof-request traffic scenario through the "
                    "batched, cached HyperPlonk proving service.",
    )
    parser.add_argument("--scenario", default="uniform-small",
                        choices=sorted(SCENARIOS),
                        help="named traffic mix (repro.workloads)")
    parser.add_argument("--jobs", type=positive_int, default=8,
                        help="number of proof requests to generate")
    parser.add_argument("--executor", default="sync", choices=EXECUTOR_KINDS)
    parser.add_argument("--policy", default="fifo", choices=DRAIN_POLICIES,
                        help="drain order: fifo, shortest-job-first, or "
                             "deadline-aware (cost model: repro.plan)")
    parser.add_argument("--workers", type=positive_int, default=2,
                        help="worker count for thread/process executors")
    parser.add_argument("--backend", default="fused",
                        choices=backend_choices(),
                        help="field-vector backend (registry-sourced; "
                             "optional backends appear when installed)")
    parser.add_argument("--cache-capacity", type=cache_capacity, default=None,
                        help="LRU index-cache entries (0 or omitted: "
                             "unbounded)")
    parser.add_argument("--wave-s", type=nonnegative_float, default=1.0,
                        help="drain-wave window in model seconds "
                             "(0 = single wave)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-verify", action="store_true",
                        help="skip in-service verification of every proof")
    parser.add_argument("--counters", action="store_true",
                        help="collect aggregate OpCounter tallies")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw summary dict as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    gen = TrafficGenerator(args.scenario, seed=args.seed)
    config = ServiceConfig(
        max_vars=gen.max_vars(),
        executor=args.executor,
        num_workers=args.workers,
        cache_capacity=args.cache_capacity,
        default_backend=args.backend,
        verify_proofs=not args.no_verify,
        collect_counters=args.counters,
        drain_policy=args.policy,
        predict_costs=True,
    )
    jobs = gen.jobs(args.jobs)
    with ProvingService(config) as service:
        service.run(jobs, wave_s=args.wave_s or None)
        summary = service.summary()

    if args.json:
        print(json.dumps(summary, indent=2))
        return 0

    scenario = SCENARIOS[args.scenario]
    print(f"scenario        : {args.scenario} ({scenario.description})")
    print(f"predicted cost  : "
          f"{scenario.expected_job_cost_s(FunctionalProverCostModel()):.3f} "
          f"s/job (plan model)")
    print(f"executor        : {summary['executor']} "
          f"x{summary['num_workers']}, backend={args.backend}, "
          f"policy={summary['drain_policy']}")
    print(f"jobs            : {summary['jobs']} "
          f"({summary['by_class']}) in {summary['batches']} batches / "
          f"{summary['drains']} waves")
    print(f"wall time       : {summary['wall_s']:.3f} s  "
          f"-> {summary['throughput_proofs_per_s']:.2f} proofs/s")
    lat = summary["latency_s"]
    print(f"latency         : p50={lat['p50'] * 1e3:.1f} ms  "
          f"p95={lat['p95'] * 1e3:.1f} ms  max={lat['max'] * 1e3:.1f} ms")
    cache = summary["cache"]
    print(f"index cache     : {cache['hits']} hits / {cache['misses']} misses "
          f"/ {cache['evictions']} evictions "
          f"(hit rate {cache['hit_rate']:.0%}; "
          f"preprocess {cache['preprocess_s']:.3f} s)")
    for w in summary["workers"]:
        print(f"worker {w['worker_id']:<10}: {w['jobs']} jobs, "
              f"busy {w['busy_s']:.3f} s "
              f"(utilization {w['utilization']:.0%})")
    if "prediction" in summary:
        pred = summary["prediction"]
        cap = summary["estimated_capacity_proofs_per_s"]
        print(f"prediction      : {pred['predicted_total_s']:.3f} s predicted "
              f"vs {pred['actual_total_s']:.3f} s actual "
              f"(MAPE {pred['mean_abs_error_pct']:.0f}%); "
              f"est. capacity {cap.get('predicted', 0.0):.2f} proofs/s")
    if "ops" in summary:
        ops = summary["ops"]
        print(f"field ops       : {ops['mul']:,} mul / {ops['add']:,} add "
              f"/ {ops['inv']:,} inv")
    if not args.no_verify:
        print("all proofs verified ✔")
    return 0


if __name__ == "__main__":
    sys.exit(main())
