"""A batched, cached, multi-worker proving service (serving layer).

zkPHIRE is an accelerator for *serving* proofs at scale; this package is
the software serving substrate above the functional HyperPlonk stack
(DESIGN.md §5).  The pipeline is **job → cache → batch → worker**:

* :mod:`repro.service.jobs` — :class:`ProofJob` / :class:`ProofResult`
  with priorities and deferrable/real-time request classes;
* :mod:`repro.service.cache` — :class:`IndexCache`, a content-addressed
  LRU of preprocessed circuit indexes (circuit hash → prover/verifier
  index) with hit/miss/eviction stats;
* :mod:`repro.service.batching` — same-circuit batch planning with
  policy-driven drain order (``fifo`` / ``sjf`` / ``deadline``);
* :mod:`repro.service.costing` — :class:`JobCostModel`, per-job cost
  prediction over the shared :mod:`repro.plan` layer;
* :mod:`repro.service.workers` — sync / thread / process executors;
* :mod:`repro.service.metrics` — :class:`ServiceMetrics` (throughput,
  p50/p95 latency, cache hit rate, per-worker utilization, op tallies);
* :mod:`repro.service.traffic` — :class:`TrafficGenerator` driving the
  named scenarios in :mod:`repro.workloads`;
* :mod:`repro.service.core` — :class:`ProvingService` tying it together.

Demo CLI: ``python -m repro.service --scenario zipf-mixed --jobs 12``
(also installed as ``repro-serve``); see ``examples/proving_service.py``
and ``benchmarks/test_service_throughput.py`` (``BENCH_service.json``).
"""

from repro.service.batching import (
    Batch,
    DRAIN_POLICIES,
    order_jobs,
    plan_batches,
)
from repro.service.cache import CacheStats, IndexCache
from repro.service.core import ProvingService, ServiceConfig
from repro.service.costing import JobCostModel
from repro.service.jobs import ProofJob, ProofResult, RequestClass
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.traffic import TrafficGenerator, synthesize_circuit
from repro.service.workers import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SyncExecutor,
    ThreadExecutor,
    WorkerPool,
    WorkerProbe,
    WorkerState,
    make_executor,
    worker_state,
)

__all__ = [
    "Batch",
    "CacheStats",
    "DRAIN_POLICIES",
    "EXECUTOR_KINDS",
    "IndexCache",
    "JobCostModel",
    "ProcessExecutor",
    "ProofJob",
    "ProofResult",
    "ProvingService",
    "RequestClass",
    "ServiceConfig",
    "ServiceMetrics",
    "SyncExecutor",
    "ThreadExecutor",
    "TrafficGenerator",
    "WorkerPool",
    "WorkerProbe",
    "WorkerState",
    "make_executor",
    "worker_state",
    "order_jobs",
    "percentile",
    "plan_batches",
    "synthesize_circuit",
]
