"""Job-level cost prediction for the cost-aware scheduler.

:class:`JobCostModel` adapts a shape-level :mod:`repro.plan` cost model
(anything with ``shape_cost_s(gate_type_name, num_vars) -> float``) to
:class:`~repro.service.jobs.ProofJob`\\ s, stamping each job's
``predicted_cost_s`` so the drain policies, metrics, and results all see
one consistent prediction.  Predictions are memoized per circuit shape —
two jobs proving different witnesses of one circuit structure cost the
same.

The default shape model is
:class:`~repro.plan.cost.FunctionalProverCostModel`, which prices the
pure-Python prover the service actually runs.  Pass an
:class:`~repro.plan.cost.AcceleratorCostModel` instead to schedule as an
accelerator-backed fleet would.
"""

from __future__ import annotations

from repro.plan.cost import FunctionalProverCostModel, ShapeCostModel
from repro.service.jobs import ProofJob


class JobCostModel:
    """Predicted prove seconds per job, cached by circuit shape."""

    def __init__(self, shape_model: ShapeCostModel | None = None):
        self.shape_model = shape_model or FunctionalProverCostModel()

    def job_cost_s(self, job: ProofJob) -> float:
        """Predict (and stamp) ``job.predicted_cost_s``."""
        if job.predicted_cost_s is None:
            job.predicted_cost_s = self.shape_model.shape_cost_s(
                job.circuit.gate_type.name, job.circuit.num_vars
            )
        return job.predicted_cost_s

    __call__ = job_cost_s
