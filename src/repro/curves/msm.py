"""Multi-scalar multiplication (MSM).

Computes ``sum_i k_i * P_i`` for scalars ``k_i`` and curve points ``P_i``.
MSMs dominate HyperPlonk's prover runtime (§II-B, Fig. 12), and zkPHIRE's
MSM unit implements Pippenger's bucket algorithm [Pippenger76] in hardware.
:func:`msm_pippenger` here is the same algorithm in software, with the same
structure the hardware model (``repro.hw.msm_unit``) costs out: for each
``window_bits``-wide scalar window, accumulate points into buckets, then
reduce buckets with a running-sum scan.

:func:`msm_naive` is the O(n · 256) double-and-add oracle used in tests.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.curves.curve import AffinePoint, JacobianPoint
from repro.fields.vector import window_decompose


def msm_naive(scalars: Sequence[int], points: Sequence[AffinePoint]) -> AffinePoint:
    """Reference MSM by per-term scalar multiplication."""
    if len(scalars) != len(points):
        raise ValueError("scalars and points must have equal length")
    if not points:
        raise ValueError("empty MSM")
    curve = points[0].curve
    acc = curve.jacobian_infinity
    for k, pt in zip(scalars, points):
        acc = acc.add(pt.to_jacobian().scalar_mul(k))
    return acc.to_affine()


def optimal_window_bits(n: int) -> int:
    """Pippenger's asymptotically optimal window: ~log2(n) - log2(log2(n))."""
    if n <= 4:
        return 2
    logn = math.log2(n)
    return max(2, int(round(logn - math.log2(max(logn, 2)))))


def msm_pippenger(
    scalars: Sequence[int],
    points: Sequence[AffinePoint],
    window_bits: int | None = None,
) -> AffinePoint:
    """Pippenger bucket-method MSM.

    For each window w of the scalar (LSB first), every point whose scalar
    has window value v != 0 is added to bucket[v]; buckets are combined as
    ``sum_v v * bucket[v]`` via a suffix running sum, and window results
    are combined with ``window_bits`` doublings between windows.
    """
    if len(scalars) != len(points):
        raise ValueError("scalars and points must have equal length")
    if not points:
        raise ValueError("empty MSM")
    curve = points[0].curve
    order = curve.order
    scalars = [k % order for k in scalars]
    c = window_bits or optimal_window_bits(len(points))
    num_windows = (order.bit_length() + c - 1) // c
    # batched scalar slicing: every scalar is decomposed into its digits
    # once, instead of re-shifting the whole vector per window
    digits = window_decompose(scalars, c, num_windows)

    window_sums: list[JacobianPoint] = []
    for w in range(num_windows):
        buckets: list[JacobianPoint | None] = [None] * ((1 << c) - 1)
        for v, pt in zip(digits[w], points):
            if v == 0 or pt.inf:
                continue
            slot = v - 1
            cur = buckets[slot]
            buckets[slot] = pt.to_jacobian() if cur is None else cur.add_affine(pt)
        # Suffix running sum: sum_v v*bucket[v] with 2*(2^c - 1) additions.
        running = curve.jacobian_infinity
        total = curve.jacobian_infinity
        for slot in range(len(buckets) - 1, -1, -1):
            b = buckets[slot]
            if b is not None:
                running = running.add(b)
            total = total.add(running)
        window_sums.append(total)

    acc = curve.jacobian_infinity
    for total in reversed(window_sums):
        for _ in range(c):
            acc = acc.double()
        acc = acc.add(total)
    return acc.to_affine()
