"""Multi-scalar multiplication (MSM).

Computes ``sum_i k_i * P_i`` for scalars ``k_i`` and curve points ``P_i``.
MSMs dominate HyperPlonk's prover runtime (§II-B, Fig. 12), and zkPHIRE's
MSM unit implements Pippenger's bucket algorithm [Pippenger76] in hardware.
:func:`msm_pippenger` here is the same algorithm in software, with the same
structure the hardware model (``repro.hw.msm_unit``) costs out: for each
``window_bits``-wide scalar window, accumulate points into buckets, then
reduce buckets with a running-sum scan.

:func:`msm_naive` is the O(n · 256) double-and-add oracle used in tests.

**Fixed-base path.**  Pippenger pays ~``order.bit_length()`` running-sum
doublings per MSM regardless of how few points it has, which dominates
the many small commitments (opening quotients, 0-variable constants) a
HyperPlonk prover issues against *fixed, endlessly reused* SRS bases.
:class:`FixedBaseTable` precomputes every ``window_bits``-wide digit
multiple of one base so a scalar multiplication becomes one mixed
addition per nonzero digit — no doublings at all — and
:func:`msm_fixed_base` sums such tables.  The result is the same group
element (hence bit-identical affine coordinates) as any other MSM
algorithm; ``tests/test_msm_fixed_base.py`` locks the equivalence.  The
serving layer (:mod:`repro.service`) turns this on for its shared KZG;
one-shot callers keep plain Pippenger since tables only pay for
themselves with base reuse across requests.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.curves.curve import AffinePoint, JacobianPoint, batch_normalize
from repro.fields.vector import window_decompose


def msm_naive(scalars: Sequence[int], points: Sequence[AffinePoint]) -> AffinePoint:
    """Reference MSM by per-term scalar multiplication."""
    if len(scalars) != len(points):
        raise ValueError("scalars and points must have equal length")
    if not points:
        raise ValueError("empty MSM")
    curve = points[0].curve
    acc = curve.jacobian_infinity
    for k, pt in zip(scalars, points):
        acc = acc.add(pt.to_jacobian().scalar_mul(k))
    return acc.to_affine()


def optimal_window_bits(n: int) -> int:
    """Pippenger's asymptotically optimal window: ~log2(n) - log2(log2(n))."""
    if n <= 4:
        return 2
    logn = math.log2(n)
    return max(2, int(round(logn - math.log2(max(logn, 2)))))


def msm_pippenger(
    scalars: Sequence[int],
    points: Sequence[AffinePoint],
    window_bits: int | None = None,
) -> AffinePoint:
    """Pippenger bucket-method MSM.

    For each window w of the scalar (LSB first), every point whose scalar
    has window value v != 0 is added to bucket[v]; buckets are combined as
    ``sum_v v * bucket[v]`` via a suffix running sum, and window results
    are combined with ``window_bits`` doublings between windows.
    """
    if len(scalars) != len(points):
        raise ValueError("scalars and points must have equal length")
    if not points:
        raise ValueError("empty MSM")
    curve = points[0].curve
    order = curve.order
    scalars = [k % order for k in scalars]
    c = window_bits or optimal_window_bits(len(points))
    num_windows = (order.bit_length() + c - 1) // c
    # batched scalar slicing: every scalar is decomposed into its digits
    # once, instead of re-shifting the whole vector per window
    digits = window_decompose(scalars, c, num_windows)

    window_sums: list[JacobianPoint] = []
    for w in range(num_windows):
        buckets: list[JacobianPoint | None] = [None] * ((1 << c) - 1)
        for v, pt in zip(digits[w], points):
            if v == 0 or pt.inf:
                continue
            slot = v - 1
            cur = buckets[slot]
            buckets[slot] = pt.to_jacobian() if cur is None else cur.add_affine(pt)
        # Suffix running sum: sum_v v*bucket[v] with 2*(2^c - 1) additions.
        running = curve.jacobian_infinity
        total = curve.jacobian_infinity
        for slot in range(len(buckets) - 1, -1, -1):
            b = buckets[slot]
            if b is not None:
                running = running.add(b)
            total = total.add(running)
        window_sums.append(total)

    acc = curve.jacobian_infinity
    for total in reversed(window_sums):
        for _ in range(c):
            acc = acc.double()
        acc = acc.add(total)
    return acc.to_affine()


class FixedBaseTable:
    """Precomputed digit multiples of one fixed base point.

    ``rows[t][d - 1]`` holds ``d * 2^(window_bits * t) * P`` in affine
    form (batch-normalized with one shared inversion), so
    :meth:`mul` reduces ``k * P`` to one mixed addition per nonzero
    ``window_bits``-wide digit of ``k``.
    """

    def __init__(self, point: AffinePoint, window_bits: int = 4,
                 num_bits: int | None = None):
        if window_bits < 1:
            raise ValueError("window_bits must be >= 1")
        if num_bits is None:
            num_bits = point.curve.order.bit_length()
        elif num_bits < 1:
            raise ValueError("num_bits must be >= 1")
        curve = point.curve
        self.curve = curve
        self.point = point
        self.window_bits = window_bits
        self.num_bits = num_bits
        self.num_windows = (num_bits + window_bits - 1) // window_bits
        m = (1 << window_bits) - 1
        flat: list[JacobianPoint] = []
        base = point.to_jacobian()
        for _ in range(self.num_windows):
            cur = base
            flat.append(cur)
            for _ in range(m - 1):
                cur = cur.add(base)
                flat.append(cur)
            for _ in range(window_bits):
                base = base.double()
        affine = batch_normalize(flat)
        self.rows = [affine[t * m:(t + 1) * m]
                     for t in range(self.num_windows)]

    def mul(self, k: int) -> JacobianPoint:
        """``k * P`` as a Jacobian point (no doublings, adds only)."""
        k %= self.curve.order
        if k >> (self.num_windows * self.window_bits):
            raise ValueError(
                f"scalar needs {k.bit_length()} bits but this table only "
                f"covers {self.num_bits}"
            )
        acc = self.curve.jacobian_infinity
        mask = (1 << self.window_bits) - 1
        t = 0
        while k:
            d = k & mask
            if d:
                entry = self.rows[t][d - 1]
                if not entry.inf:
                    acc = acc.add_affine(entry)
            k >>= self.window_bits
            t += 1
        return acc

    def scalar_mul(self, k: int) -> AffinePoint:
        """``k * P`` in affine form (drop-in for AffinePoint.scalar_mul)."""
        return self.mul(k).to_affine()

    def __repr__(self):
        return (f"FixedBaseTable({self.curve.name}, w={self.window_bits}, "
                f"{self.num_windows} windows)")


def msm_fixed_base(scalars: Sequence[int],
                   tables: Sequence[FixedBaseTable]) -> AffinePoint:
    """MSM over precomputed fixed-base tables (one per point)."""
    if len(scalars) != len(tables):
        raise ValueError("scalars and tables must have equal length")
    if not tables:
        raise ValueError("empty MSM")
    acc = tables[0].curve.jacobian_infinity
    for k, table in zip(scalars, tables):
        if k:
            acc = acc.add(table.mul(k))
    return acc.to_affine()
