"""Short-Weierstrass elliptic-curve arithmetic.

Points on ``y^2 = x^3 + a*x + b`` over a prime field.  Two representations:

* :class:`AffinePoint` — canonical (x, y) pairs; cheap equality, used at
  API boundaries (commitments, SRS files).
* :class:`JacobianPoint` — (X, Y, Z) with x = X/Z^2, y = Y/Z^3; inversion-
  free group law used in all inner loops.  This matches hardware practice:
  zkPHIRE's fully-pipelined PADD units operate on projective coordinates.

Formulas follow the standard Jacobian dbl-2009-l / add-2007-bl forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fields.prime_field import PrimeField


class ShortWeierstrassCurve:
    """The curve y^2 = x^3 + a*x + b over ``field``, with group order ``order``."""

    def __init__(self, field: PrimeField, a: int, b: int, order: int, name: str):
        self.field = field
        self.a = a % field.modulus
        self.b = b % field.modulus
        self.order = order
        self.name = name

    def is_on_curve(self, x: int, y: int) -> bool:
        p = self.field.modulus
        return (y * y - (x * x * x + self.a * x + self.b)) % p == 0

    def affine(self, x: int, y: int) -> "AffinePoint":
        pt = AffinePoint(self, x % self.field.modulus, y % self.field.modulus, False)
        if not self.is_on_curve(pt.x, pt.y):
            raise ValueError(f"({x}, {y}) is not on {self.name}")
        return pt

    @property
    def infinity(self) -> "AffinePoint":
        return AffinePoint(self, 0, 0, True)

    @property
    def jacobian_infinity(self) -> "JacobianPoint":
        return JacobianPoint(self, 1, 1, 0)

    def __repr__(self):
        return f"ShortWeierstrassCurve({self.name})"


@dataclass(frozen=True)
class AffinePoint:
    """An affine curve point, or the point at infinity when ``inf`` is set."""

    curve: ShortWeierstrassCurve
    x: int
    y: int
    inf: bool = False

    def to_jacobian(self) -> "JacobianPoint":
        if self.inf:
            return self.curve.jacobian_infinity
        return JacobianPoint(self.curve, self.x, self.y, 1)

    def neg(self) -> "AffinePoint":
        if self.inf:
            return self
        return AffinePoint(self.curve, self.x, self.curve.field.modulus - self.y)

    def add(self, other: "AffinePoint") -> "AffinePoint":
        return self.to_jacobian().add_affine(other).to_affine()

    def double(self) -> "AffinePoint":
        return self.to_jacobian().double().to_affine()

    def scalar_mul(self, k: int) -> "AffinePoint":
        return self.to_jacobian().scalar_mul(k).to_affine()

    def __eq__(self, other):
        if not isinstance(other, AffinePoint):
            return NotImplemented
        if self.inf or other.inf:
            return self.inf and other.inf
        return self.x == other.x and self.y == other.y

    def __hash__(self):
        return hash((self.curve.name, self.x, self.y, self.inf))

    def __repr__(self):
        if self.inf:
            return f"AffinePoint({self.curve.name}, inf)"
        return f"AffinePoint({self.curve.name}, x={hex(self.x)[:14]}..)"


class JacobianPoint:
    """Jacobian-projective point; Z == 0 encodes the point at infinity."""

    __slots__ = ("curve", "x", "y", "z")

    def __init__(self, curve: ShortWeierstrassCurve, x: int, y: int, z: int):
        self.curve = curve
        self.x = x
        self.y = y
        self.z = z

    @property
    def is_infinity(self) -> bool:
        return self.z == 0

    def to_affine(self) -> AffinePoint:
        if self.z == 0:
            return self.curve.infinity
        p = self.curve.field.modulus
        zinv = pow(self.z, -1, p)
        zinv2 = zinv * zinv % p
        return AffinePoint(self.curve, self.x * zinv2 % p, self.y * zinv2 * zinv % p)

    def neg(self) -> "JacobianPoint":
        if self.z == 0:
            return self
        return JacobianPoint(self.curve, self.x, self.curve.field.modulus - self.y, self.z)

    def double(self) -> "JacobianPoint":
        if self.z == 0 or self.y == 0:
            return self.curve.jacobian_infinity if self.y == 0 else self
        p = self.curve.field.modulus
        x, y, z = self.x, self.y, self.z
        a = self.curve.a
        ysq = y * y % p
        s = 4 * x * ysq % p
        if a == 0:
            m = 3 * x * x % p
        else:
            z2 = z * z % p
            m = (3 * x * x + a * z2 * z2) % p
        nx = (m * m - 2 * s) % p
        ny = (m * (s - nx) - 8 * ysq * ysq) % p
        nz = 2 * y * z % p
        return JacobianPoint(self.curve, nx, ny, nz)

    def add(self, other: "JacobianPoint") -> "JacobianPoint":
        if self.z == 0:
            return other
        if other.z == 0:
            return self
        p = self.curve.field.modulus
        x1, y1, z1 = self.x, self.y, self.z
        x2, y2, z2 = other.x, other.y, other.z
        z1z1 = z1 * z1 % p
        z2z2 = z2 * z2 % p
        u1 = x1 * z2z2 % p
        u2 = x2 * z1z1 % p
        s1 = y1 * z2 * z2z2 % p
        s2 = y2 * z1 * z1z1 % p
        if u1 == u2:
            if s1 != s2:
                return self.curve.jacobian_infinity
            return self.double()
        h = (u2 - u1) % p
        i = 4 * h * h % p
        j = h * i % p
        r = 2 * (s2 - s1) % p
        v = u1 * i % p
        nx = (r * r - j - 2 * v) % p
        ny = (r * (v - nx) - 2 * s1 * j) % p
        nz = 2 * h * z1 * z2 % p
        return JacobianPoint(self.curve, nx, ny, nz)

    def add_affine(self, other: AffinePoint) -> "JacobianPoint":
        """Mixed addition (other has Z=1); ~30% cheaper, the hardware PADD case."""
        if other.inf:
            return self
        if self.z == 0:
            return other.to_jacobian()
        p = self.curve.field.modulus
        x1, y1, z1 = self.x, self.y, self.z
        z1z1 = z1 * z1 % p
        u2 = other.x * z1z1 % p
        s2 = other.y * z1 * z1z1 % p
        if x1 == u2:
            if y1 != s2:
                return self.curve.jacobian_infinity
            return self.double()
        h = (u2 - x1) % p
        hh = h * h % p
        i = 4 * hh % p
        j = h * i % p
        r = 2 * (s2 - y1) % p
        v = x1 * i % p
        nx = (r * r - j - 2 * v) % p
        ny = (r * (v - nx) - 2 * y1 * j) % p
        nz = (z1 + h) * (z1 + h) % p
        nz = (nz - z1z1 - hh) % p
        return JacobianPoint(self.curve, nx, ny, nz)

    def scalar_mul(self, k: int) -> "JacobianPoint":
        """Double-and-add scalar multiplication (left-to-right)."""
        k %= self.curve.order
        if k == 0 or self.z == 0:
            return self.curve.jacobian_infinity
        result: Optional[JacobianPoint] = None
        for bit in bin(k)[2:]:
            if result is not None:
                result = result.double()
            if bit == "1":
                result = self if result is None else result.add(self)
        assert result is not None
        return result

    def __eq__(self, other):
        if not isinstance(other, JacobianPoint):
            return NotImplemented
        if self.z == 0 or other.z == 0:
            return self.z == 0 and other.z == 0
        # Cross-multiply to compare without inversion.
        p = self.curve.field.modulus
        z1z1 = self.z * self.z % p
        z2z2 = other.z * other.z % p
        if self.x * z2z2 % p != other.x * z1z1 % p:
            return False
        return self.y * z2z2 * other.z % p == other.y * z1z1 * self.z % p

    def __repr__(self):
        if self.z == 0:
            return f"JacobianPoint({self.curve.name}, inf)"
        return f"JacobianPoint({self.curve.name}, x={hex(self.x)[:14]}..)"


def batch_normalize(points: "list[JacobianPoint]") -> "list[AffinePoint]":
    """Jacobian → affine for many points with one shared field inversion.

    Montgomery's batch-inversion trick — the same batching strategy
    zkPHIRE's Permutation Quotient Generator uses for field inverses
    (§IV-B5), applied to coordinate normalization.  Infinity entries
    (z = 0) are passed through and excluded from the inversion batch.
    """
    if not points:
        return []
    from repro.fields.prime_field import batch_inverse

    curve = points[0].curve
    p = curve.field.modulus
    finite = [(i, pt) for i, pt in enumerate(points) if pt.z != 0]
    inverses = batch_inverse(curve.field, [pt.z for _, pt in finite])
    out: list[AffinePoint] = [curve.infinity] * len(points)
    for (i, pt), zinv in zip(finite, inverses):
        zinv2 = zinv * zinv % p
        out[i] = AffinePoint(curve, pt.x * zinv2 % p,
                             pt.y * zinv2 * zinv % p)
    return out
