"""The ate pairing on BLS12-381.

e: G1 × G2 → GT ⊂ Fp12.  G2 points live on the sextic twist
E': y^2 = x^3 + 4(1 + u) over Fp2; with the tower w^2 = v, v^3 = ξ = 1+u
we have ξ = w^6, so the untwist map

    ψ(x', y') = (x' / w^2, y' / w^3)

carries E'(Fp2) into E(Fp12): y'^2 = x'^3 + 4ξ becomes y^2 = x^3 + 4.

Implementation choices favour *correctness over speed* (this module is
the ground truth the fast trapdoor commitment check is tested against):

* the Miller loop works on untwisted points with generic affine Fp12
  arithmetic and textbook line evaluations (no coordinate-slot tricks),
* the final exponentiation is computed directly as f^((p^12 - 1)/r).

A pairing costs a few seconds in pure Python — fine for tests and the
public-verification path of a handful of openings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.curves.curve import AffinePoint
from repro.curves.tower import Fp2, Fp6, Fp12
from repro.fields.bls12_381 import BLS_X, FQ_MODULUS as P, FR_MODULUS as R

#: |x|, the absolute BLS parameter (x itself is negative)
BLS_X_ABS = -BLS_X

#: the full final-exponentiation exponent (p^12 - 1) / r
FINAL_EXP = (P**12 - 1) // R

#: G2 twist coefficient b' = 4 (1 + u)
TWIST_B = Fp2(4, 4)

#: the standard G2 generator (subgroup order r), from the BLS12-381 spec
G2_GENERATOR_X = Fp2(
    int("0x024AA2B2F08F0A91260805272DC51051C6E47AD4FA403B02B4510B647AE3D177"
        "0BAC0326A805BBEFD48056C8C121BDB8", 16),
    int("0x13E02B6052719F607DACD3A088274F65596BD0D09920B61AB5DA61BBDC7F5049"
        "334CF11213945D57E5AC7D055D042B7E", 16),
)
G2_GENERATOR_Y = Fp2(
    int("0x0CE5D527727D6E118CC9CDC6DA2E351AADFD9BAA8CBDD3A76D429A695160D12C"
        "923AC9CC3BACA289E193548608B82801", 16),
    int("0x0606C4A02EA734CC32ACD2B02BC28B99CB3E287E85A763AF267492AB572E99AB"
        "3F370D275CEC1DA1AAA9075FF05F79BE", 16),
)


@dataclass(frozen=True)
class G2Point:
    """Affine point on the G2 twist (or infinity)."""

    x: Fp2
    y: Fp2
    inf: bool = False

    @staticmethod
    def generator() -> "G2Point":
        return G2Point(G2_GENERATOR_X, G2_GENERATOR_Y)

    @staticmethod
    def infinity() -> "G2Point":
        return G2Point(Fp2.ZERO, Fp2.ZERO, True)

    def is_on_curve(self) -> bool:
        if self.inf:
            return True
        return self.y.square() == self.x.square() * self.x + TWIST_B

    def neg(self) -> "G2Point":
        if self.inf:
            return self
        return G2Point(self.x, -self.y)

    def double(self) -> "G2Point":
        if self.inf or self.y.is_zero():
            return G2Point.infinity()
        lam = self.x.square().mul_scalar(3) * self.y.mul_scalar(2).inverse()
        x3 = lam.square() - self.x.mul_scalar(2)
        y3 = lam * (self.x - x3) - self.y
        return G2Point(x3, y3)

    def add(self, other: "G2Point") -> "G2Point":
        if self.inf:
            return other
        if other.inf:
            return self
        if self.x == other.x:
            if self.y == other.y:
                return self.double()
            return G2Point.infinity()
        lam = (other.y - self.y) * (other.x - self.x).inverse()
        x3 = lam.square() - self.x - other.x
        y3 = lam * (self.x - x3) - self.y
        return G2Point(x3, y3)

    def scalar_mul(self, k: int) -> "G2Point":
        k %= R
        result = G2Point.infinity()
        addend = self
        while k:
            if k & 1:
                result = result.add(addend)
            addend = addend.double()
            k >>= 1
        return result


# -- Fp12 embeddings and the untwist ------------------------------------------

def fp12_from_fp(a: int) -> Fp12:
    return Fp12(Fp6(Fp2(a), Fp2.ZERO, Fp2.ZERO), Fp6.ZERO)


def fp12_from_fp2(a: Fp2) -> Fp12:
    return Fp12(Fp6(a, Fp2.ZERO, Fp2.ZERO), Fp6.ZERO)


#: w^2 = v and w^3 = v·w as Fp12 elements, and their inverses
_W2 = Fp12(Fp6(Fp2.ZERO, Fp2.ONE, Fp2.ZERO), Fp6.ZERO)
_W3 = Fp12(Fp6.ZERO, Fp6(Fp2.ZERO, Fp2.ONE, Fp2.ZERO))
_W2_INV = _W2.inverse()
_W3_INV = _W3.inverse()


def untwist(q: G2Point) -> tuple[Fp12, Fp12]:
    """ψ(Q): coordinates of Q on E(Fp12)."""
    if q.inf:
        raise ValueError("cannot untwist the point at infinity")
    return fp12_from_fp2(q.x) * _W2_INV, fp12_from_fp2(q.y) * _W3_INV


# -- the Miller loop ------------------------------------------------------------

def _line(tx: Fp12, ty: Fp12, qx: Fp12, qy: Fp12,
          px: Fp12, py: Fp12) -> tuple[Fp12, Fp12, Fp12]:
    """Line through T=(tx,ty) and Q=(qx,qy) (tangent when equal),
    evaluated at P; returns (line value, new point x, new point y)."""
    if tx == qx and ty == qy:
        lam = tx.square() * fp12_from_fp(3) * (ty * fp12_from_fp(2)).inverse()
    elif tx == qx:
        # vertical line x - tx; the sum is infinity (never hit mid-loop
        # for r-order inputs, but handled for completeness)
        return px - tx, None, None  # type: ignore
    else:
        lam = (qy - ty) * (qx - tx).inverse()
    line = py - ty - lam * (px - tx)
    nx = lam.square() - tx - qx
    ny = lam * (tx - nx) - ty
    return line, nx, ny


def miller_loop(p: AffinePoint, q: G2Point) -> Fp12:
    """f_{|x|, Q}(P) without the final exponentiation."""
    if p.inf or q.inf:
        return Fp12.ONE
    px, py = fp12_from_fp(p.x), fp12_from_fp(p.y)
    qx, qy = untwist(q)
    f = Fp12.ONE
    tx, ty = qx, qy
    for bit in bin(BLS_X_ABS)[3:]:  # MSB already consumed
        line, tx, ty = _line(tx, ty, tx, ty, px, py)
        f = f.square() * line
        if bit == "1":
            line, tx, ty = _line(tx, ty, qx, qy, px, py)
            f = f * line
    # BLS parameter x is negative: conjugate (f -> f^(p^6) = 1/f in GT)
    return f.conjugate()


def pairing(p: AffinePoint, q: G2Point) -> Fp12:
    """The ate pairing e(P, Q) with final exponentiation."""
    if not q.is_on_curve():
        raise ValueError("Q is not on the G2 twist")
    return miller_loop(p, q).pow(FINAL_EXP)


def multi_pairing(pairs: list[tuple[AffinePoint, G2Point]]) -> Fp12:
    """Π e(P_i, Q_i) sharing one final exponentiation."""
    f = Fp12.ONE
    for p, q in pairs:
        if not q.is_on_curve():
            raise ValueError("Q is not on the G2 twist")
        f = f * miller_loop(p, q)
    return f.pow(FINAL_EXP)
