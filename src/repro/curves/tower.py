"""The BLS12-381 extension-field tower: Fp2, Fp6, Fp12.

Layout (the standard one, e.g. zkcrypto/bls12_381):

* Fp2  = Fp [u] / (u^2 + 1)
* Fp6  = Fp2[v] / (v^3 - ξ),  ξ = u + 1
* Fp12 = Fp6[w] / (w^2 - v)

Elements are immutable tuples of coefficients (low degree first).  Used
by :mod:`repro.curves.pairing` to implement the ate pairing that backs
the public-verification path of the multilinear KZG commitment.
"""

from __future__ import annotations

from repro.fields.bls12_381 import FQ_MODULUS as P


class Fp2:
    """a + b·u with u^2 = -1."""

    __slots__ = ("a", "b")

    def __init__(self, a: int, b: int = 0):
        self.a = a % P
        self.b = b % P

    ZERO: "Fp2"
    ONE: "Fp2"

    def __add__(self, o: "Fp2") -> "Fp2":
        return Fp2(self.a + o.a, self.b + o.b)

    def __sub__(self, o: "Fp2") -> "Fp2":
        return Fp2(self.a - o.a, self.b - o.b)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.a, -self.b)

    def __mul__(self, o: "Fp2") -> "Fp2":
        # Karatsuba: (a1 + b1 u)(a2 + b2 u) = a1a2 - b1b2 + (a1b2 + a2b1) u
        aa = self.a * o.a
        bb = self.b * o.b
        cross = (self.a + self.b) * (o.a + o.b) - aa - bb
        return Fp2(aa - bb, cross)

    def mul_scalar(self, k: int) -> "Fp2":
        return Fp2(self.a * k, self.b * k)

    def square(self) -> "Fp2":
        # (a + bu)^2 = (a+b)(a-b) + 2ab u
        return Fp2((self.a + self.b) * (self.a - self.b), 2 * self.a * self.b)

    def conjugate(self) -> "Fp2":
        return Fp2(self.a, -self.b)

    def inverse(self) -> "Fp2":
        norm = (self.a * self.a + self.b * self.b) % P
        if norm == 0:
            raise ZeroDivisionError("Fp2 inverse of zero")
        inv = pow(norm, -1, P)
        return Fp2(self.a * inv, -self.b * inv)

    def frobenius(self) -> "Fp2":
        """x -> x^p (conjugation, since p ≡ 3 mod 4)."""
        return self.conjugate()

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def __eq__(self, o):
        return isinstance(o, Fp2) and self.a == o.a and self.b == o.b

    def __hash__(self):
        return hash((self.a, self.b))

    def __repr__(self):
        return f"Fp2({hex(self.a)[:12]}.., {hex(self.b)[:12]}..)"


Fp2.ZERO = Fp2(0, 0)
Fp2.ONE = Fp2(1, 0)

#: the Fp6 non-residue ξ = u + 1
XI = Fp2(1, 1)


def _mul_by_xi(x: Fp2) -> Fp2:
    """Multiply by ξ = 1 + u: (a + bu)(1 + u) = (a - b) + (a + b)u."""
    return Fp2(x.a - x.b, x.a + x.b)


class Fp6:
    """c0 + c1·v + c2·v^2 over Fp2, with v^3 = ξ."""

    __slots__ = ("c0", "c1", "c2")

    def __init__(self, c0: Fp2, c1: Fp2, c2: Fp2):
        self.c0, self.c1, self.c2 = c0, c1, c2

    ZERO: "Fp6"
    ONE: "Fp6"

    def __add__(self, o: "Fp6") -> "Fp6":
        return Fp6(self.c0 + o.c0, self.c1 + o.c1, self.c2 + o.c2)

    def __sub__(self, o: "Fp6") -> "Fp6":
        return Fp6(self.c0 - o.c0, self.c1 - o.c1, self.c2 - o.c2)

    def __neg__(self) -> "Fp6":
        return Fp6(-self.c0, -self.c1, -self.c2)

    def __mul__(self, o: "Fp6") -> "Fp6":
        a0, a1, a2 = self.c0, self.c1, self.c2
        b0, b1, b2 = o.c0, o.c1, o.c2
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = a2 * b2
        c0 = t0 + _mul_by_xi((a1 + a2) * (b1 + b2) - t1 - t2)
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1 + _mul_by_xi(t2)
        c2 = (a0 + a2) * (b0 + b2) - t0 - t2 + t1
        return Fp6(c0, c1, c2)

    def square(self) -> "Fp6":
        return self * self

    def mul_by_v(self) -> "Fp6":
        """Multiply by v: (c0, c1, c2) -> (ξ·c2, c0, c1)."""
        return Fp6(_mul_by_xi(self.c2), self.c0, self.c1)

    def mul_fp2(self, k: Fp2) -> "Fp6":
        return Fp6(self.c0 * k, self.c1 * k, self.c2 * k)

    def inverse(self) -> "Fp6":
        a, b, c = self.c0, self.c1, self.c2
        t0 = a.square() - _mul_by_xi(b * c)
        t1 = _mul_by_xi(c.square()) - a * b
        t2 = b.square() - a * c
        denom = a * t0 + _mul_by_xi(c * t1) + _mul_by_xi(b * t2)
        inv = denom.inverse()
        return Fp6(t0 * inv, t1 * inv, t2 * inv)

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero() and self.c2.is_zero()

    def __eq__(self, o):
        return (isinstance(o, Fp6) and self.c0 == o.c0 and self.c1 == o.c1
                and self.c2 == o.c2)

    def __repr__(self):
        return f"Fp6({self.c0!r}, {self.c1!r}, {self.c2!r})"


Fp6.ZERO = Fp6(Fp2.ZERO, Fp2.ZERO, Fp2.ZERO)
Fp6.ONE = Fp6(Fp2.ONE, Fp2.ZERO, Fp2.ZERO)


# Frobenius coefficients: γ_i = ξ^((p^1 - 1) * i / 3) etc., precomputed
# as integer powers at import time (exact field arithmetic, no magic
# constants to mistype).
def _xi_pow(exp_num: int, exp_den: int) -> Fp2:
    """ξ^((p - 1) * exp_num / exp_den) computed via integer exponent."""
    e = (P - 1) * exp_num // exp_den
    # ξ = 1 + u; compute by square-and-multiply in Fp2
    base = XI
    result = Fp2.ONE
    while e:
        if e & 1:
            result = result * base
        base = base.square()
        e >>= 1
    return result


FROB_GAMMA1 = _xi_pow(1, 3)   # for c1 of Fp6
FROB_GAMMA2 = _xi_pow(2, 3)   # for c2 of Fp6
FROB_GAMMA_W = _xi_pow(1, 6)  # for the w coefficient of Fp12


def _fp6_frobenius(x: Fp6) -> Fp6:
    return Fp6(
        x.c0.frobenius(),
        x.c1.frobenius() * FROB_GAMMA1,
        x.c2.frobenius() * FROB_GAMMA2,
    )


class Fp12:
    """d0 + d1·w over Fp6, with w^2 = v."""

    __slots__ = ("d0", "d1")

    def __init__(self, d0: Fp6, d1: Fp6):
        self.d0, self.d1 = d0, d1

    ZERO: "Fp12"
    ONE: "Fp12"

    def __add__(self, o: "Fp12") -> "Fp12":
        return Fp12(self.d0 + o.d0, self.d1 + o.d1)

    def __sub__(self, o: "Fp12") -> "Fp12":
        return Fp12(self.d0 - o.d0, self.d1 - o.d1)

    def __neg__(self) -> "Fp12":
        return Fp12(-self.d0, -self.d1)

    def __mul__(self, o: "Fp12") -> "Fp12":
        a0, a1 = self.d0, self.d1
        b0, b1 = o.d0, o.d1
        t0 = a0 * b0
        t1 = a1 * b1
        d0 = t0 + t1.mul_by_v()
        d1 = (a0 + a1) * (b0 + b1) - t0 - t1
        return Fp12(d0, d1)

    def square(self) -> "Fp12":
        return self * self

    def conjugate(self) -> "Fp12":
        """x -> x^(p^6): negate the w coefficient."""
        return Fp12(self.d0, -self.d1)

    def inverse(self) -> "Fp12":
        norm = self.d0 * self.d0 - (self.d1 * self.d1).mul_by_v()
        inv = norm.inverse()
        return Fp12(self.d0 * inv, -(self.d1 * inv))

    def frobenius(self) -> "Fp12":
        d0 = _fp6_frobenius(self.d0)
        d1 = _fp6_frobenius(self.d1)
        return Fp12(d0, d1.mul_fp2(FROB_GAMMA_W))

    def pow(self, e: int) -> "Fp12":
        if e < 0:
            return self.inverse().pow(-e)
        result = Fp12.ONE
        base = self
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def is_one(self) -> bool:
        return self == Fp12.ONE

    def __eq__(self, o):
        return isinstance(o, Fp12) and self.d0 == o.d0 and self.d1 == o.d1

    def __repr__(self):
        return f"Fp12({self.d0!r}, {self.d1!r})"


Fp12.ZERO = Fp12(Fp6.ZERO, Fp6.ZERO)
Fp12.ONE = Fp12(Fp6.ONE, Fp6.ZERO)
