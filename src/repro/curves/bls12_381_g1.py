"""The BLS12-381 G1 group: y^2 = x^3 + 4 over Fq, order r."""

from repro.curves.curve import ShortWeierstrassCurve
from repro.fields.bls12_381 import (
    FR_MODULUS,
    Fq,
    G1_B,
    G1_GENERATOR_X,
    G1_GENERATOR_Y,
)

G1 = ShortWeierstrassCurve(Fq, a=0, b=G1_B, order=FR_MODULUS, name="BLS12-381 G1")

G1_GENERATOR = G1.affine(G1_GENERATOR_X, G1_GENERATOR_Y)
