"""Elliptic-curve substrate: BLS12-381 G1 and multi-scalar multiplication.

The polynomial commitment scheme in HyperPlonk commits to MLEs with
multi-scalar multiplications (MSMs) over BLS12-381 G1 (§II-B).  This
package implements

* :class:`~repro.curves.curve.ShortWeierstrassCurve` and point types
  (affine and Jacobian) with complete add/double/scalar-mul,
* :mod:`~repro.curves.bls12_381_g1` — the concrete G1 group,
* :func:`~repro.curves.msm.msm_pippenger` — Pippenger's bucket algorithm,
  the same algorithm zkPHIRE's MSM unit implements in hardware, plus a
  naive MSM used as a test oracle.
"""

from repro.curves.curve import (
    AffinePoint,
    JacobianPoint,
    ShortWeierstrassCurve,
    batch_normalize,
)
from repro.curves.bls12_381_g1 import G1, G1_GENERATOR
from repro.curves.msm import (
    FixedBaseTable,
    msm_fixed_base,
    msm_naive,
    msm_pippenger,
)

__all__ = [
    "AffinePoint",
    "JacobianPoint",
    "ShortWeierstrassCurve",
    "G1",
    "G1_GENERATOR",
    "FixedBaseTable",
    "batch_normalize",
    "msm_fixed_base",
    "msm_naive",
    "msm_pippenger",
]
