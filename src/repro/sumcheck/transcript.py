"""Fiat–Shamir transcript over SHA3-256.

zkPHIRE instantiates the random oracle with a SHA3 (Keccak) IP block
(§V, Fig. 4): after each SumCheck round the prover hashes the round's
evaluations to derive the verifier challenge.  This transcript mirrors
that: an absorb/squeeze sponge-style interface where every challenge is
the hash of everything absorbed so far.

Determinism contract: a prover and verifier that absorb identical byte
sequences derive identical challenges; any divergence (tampered proof)
diverges the challenge stream and the proof fails.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.fields.prime_field import PrimeField


class Transcript:
    """SHA3-256 Fiat–Shamir transcript bound to a prime field."""

    def __init__(self, field: PrimeField, domain: bytes = b"zkphire"):
        self.field = field
        self._state = hashlib.sha3_256(b"transcript/" + domain).digest()
        self._counter = 0
        # field elements are serialized to a fixed width so absorption is
        # injective (255-bit Fr -> 32 bytes, 381-bit Fq -> 48 bytes)
        self._width = (field.bit_length + 7) // 8

    # -- absorption --------------------------------------------------------
    def absorb_bytes(self, label: bytes, data: bytes) -> None:
        h = hashlib.sha3_256()
        h.update(self._state)
        h.update(len(label).to_bytes(4, "big"))
        h.update(label)
        h.update(len(data).to_bytes(8, "big"))
        h.update(data)
        self._state = h.digest()

    def absorb_scalar(self, label: bytes, value: int) -> None:
        self.absorb_bytes(label, (value % self.field.modulus).to_bytes(self._width, "big"))

    def absorb_scalars(self, label: bytes, values: Iterable[int]) -> None:
        p = self.field.modulus
        data = b"".join((v % p).to_bytes(self._width, "big") for v in values)
        self.absorb_bytes(label, data)

    def absorb_point(self, label: bytes, point) -> None:
        """Absorb an affine curve point (commitment)."""
        if point.inf:
            self.absorb_bytes(label, b"\x00" * 97)
        else:
            width = (point.curve.field.bit_length + 7) // 8
            self.absorb_bytes(
                label,
                b"\x04" + point.x.to_bytes(width, "big") + point.y.to_bytes(width, "big"),
            )

    # -- squeezing -----------------------------------------------------------
    def challenge(self, label: bytes) -> int:
        """Derive a field challenge; each call advances the transcript."""
        h = hashlib.sha3_256()
        h.update(self._state)
        h.update(b"challenge")
        h.update(len(label).to_bytes(4, "big"))
        h.update(label)
        h.update(self._counter.to_bytes(8, "big"))
        digest = h.digest()
        self._counter += 1
        # fold two blocks for negligible mod-p bias on a 255-bit field
        wide = int.from_bytes(digest + hashlib.sha3_256(digest).digest(), "big")
        value = wide % self.field.modulus
        self.absorb_scalar(b"challenge-out/" + label, value)
        return value

    def challenges(self, label: bytes, count: int) -> list[int]:
        return [self.challenge(label + b"/%d" % i) for i in range(count)]

    def fork(self, domain: bytes) -> "Transcript":
        """Independent transcript seeded by the current state (sub-protocols)."""
        child = Transcript(self.field, domain)
        child.absorb_bytes(b"fork-parent", self._state)
        return child
