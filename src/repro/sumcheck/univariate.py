"""Univariate helpers for SumCheck round polynomials.

Round i of SumCheck on a degree-d composition is described by the d+1
evaluations s_i(0), ..., s_i(d).  The verifier needs s_i(r_i) at a random
challenge, i.e. Lagrange interpolation on the fixed node set {0..d}.
"""

from __future__ import annotations

from typing import Sequence

from repro.fields.prime_field import PrimeField


def lagrange_eval_at(field: PrimeField, evals: Sequence[int], r: int) -> int:
    """Evaluate the unique degree-(len(evals)-1) polynomial through
    (i, evals[i]) for i = 0..d at the point ``r``.

    Uses the barycentric form specialized to integer nodes: weights
    w_i = 1 / (i! * (d-i)! * (-1)^(d-i)), with prefix/suffix products of
    (r - j) so the whole evaluation costs O(d) multiplications and a
    single batch of inversions.
    """
    p = field.modulus
    d = len(evals) - 1
    if d < 0:
        raise ValueError("need at least one evaluation")
    r %= p
    if r <= d:
        return evals[r] % p

    # prefix[i] = prod_{j<i} (r-j), suffix[i] = prod_{j>i} (r-j)
    prefix = [1] * (d + 1)
    for i in range(1, d + 1):
        prefix[i] = prefix[i - 1] * (r - (i - 1)) % p
    suffix = [1] * (d + 1)
    for i in range(d - 1, -1, -1):
        suffix[i] = suffix[i + 1] * (r - (i + 1)) % p

    # inverse factorials
    fact = [1] * (d + 1)
    for i in range(1, d + 1):
        fact[i] = fact[i - 1] * i % p
    inv_fact_d = pow(fact[d], -1, p)
    inv_fact = [0] * (d + 1)
    inv_fact[d] = inv_fact_d
    for i in range(d, 0, -1):
        inv_fact[i - 1] = inv_fact[i] * i % p

    total = 0
    for i in range(d + 1):
        w = inv_fact[i] * inv_fact[d - i] % p
        if (d - i) % 2 == 1:
            w = p - w
        total = (total + evals[i] * w % p * prefix[i] % p * suffix[i]) % p
    return total


def univariate_sum_01(field: PrimeField, evals: Sequence[int]) -> int:
    """s(0) + s(1) for a round polynomial given by its evaluations."""
    if len(evals) < 2:
        raise ValueError("round polynomial needs at least two evaluations")
    return (evals[0] + evals[1]) % field.modulus
