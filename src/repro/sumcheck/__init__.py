"""The SumCheck protocol family.

SumCheck [LFKN90] lets a prover convince a verifier that the sum of a
multivariate polynomial over the boolean hypercube equals a claimed value,
in μ rounds of univariate exchanges (§II-C).  This package implements the
protocol over virtual (composite multilinear) polynomials:

* :class:`~repro.sumcheck.transcript.Transcript` — SHA3-based Fiat–Shamir,
* :func:`~repro.sumcheck.prover.prove_sumcheck` — the prover, following
  the extension/product/update dataflow of the paper's Figure 1,
* :class:`~repro.sumcheck.prover.FastSumCheckProver` — the same protocol
  on a batched :mod:`repro.fields.vector` backend (``backend="fused"``
  is the fast path; proofs are bit-identical to the reference),
* :func:`~repro.sumcheck.verifier.verify_sumcheck` — round checks
  s_i(0) + s_i(1) = prior claim plus the final composition check,
* :mod:`~repro.sumcheck.zerocheck` — the ZeroCheck wrapper that
  multiplies the gate polynomial by eq(x, r) (§III-F),
* :mod:`~repro.sumcheck.univariate` — Lagrange interpolation on the
  evaluation points 0..d.
"""

from repro.sumcheck.transcript import Transcript
from repro.sumcheck.prover import FastSumCheckProver, SumCheckProof, prove_sumcheck
from repro.sumcheck.verifier import SumCheckError, verify_sumcheck
from repro.sumcheck.zerocheck import prove_zerocheck, verify_zerocheck
from repro.sumcheck.univariate import lagrange_eval_at

__all__ = [
    "Transcript",
    "SumCheckProof",
    "FastSumCheckProver",
    "prove_sumcheck",
    "SumCheckError",
    "verify_sumcheck",
    "prove_zerocheck",
    "verify_zerocheck",
    "lagrange_eval_at",
]
