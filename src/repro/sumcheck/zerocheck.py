"""ZeroCheck: SumCheck-based proof that f vanishes on the whole hypercube.

Summing f alone is insufficient — wrong gates could cancel — so the
protocol multiplies f by the randomizer fr(x) = eq(x, r) for transcript-
derived r and proves sum_x f(x) * fr(x) = 0 (§III-F).  The verifier can
evaluate fr at the final challenge point itself (eq has a closed form),
so fr needs no commitment or opening.

zkPHIRE fuses the construction of fr's table into round 1 of SumCheck
("Build MLE" fusion); functionally the table is identical, so we build it
explicitly here and let the hardware model account for the fusion.
"""

from __future__ import annotations

from typing import Sequence

from repro.fields.counters import OpCounter
from repro.fields.prime_field import PrimeField
from repro.mle.eq import build_eq_mle, eq_eval
from repro.mle.table import DenseMLE
from repro.mle.virtual import Term, VirtualPolynomial
from repro.sumcheck.prover import SumCheckProof, prove_sumcheck
from repro.sumcheck.transcript import Transcript
from repro.sumcheck.verifier import SumCheckError, verify_sumcheck

FR_NAME = "fr"


def randomized_terms(terms: Sequence[Term], fr_name: str = FR_NAME) -> list[Term]:
    """Multiply every term by the randomizer MLE (degree +1)."""
    out = []
    for term in terms:
        if any(name == fr_name for name, _ in term.factors):
            raise ValueError(f"term already contains {fr_name!r}")
        out.append(Term(coeff=term.coeff, factors=term.factors + ((fr_name, 1),)))
    return out


def prove_zerocheck(
    field: PrimeField,
    terms: Sequence[Term],
    mles: dict[str, DenseMLE],
    transcript: Transcript,
    counter: OpCounter | None = None,
    backend=None,
) -> SumCheckProof:
    """Prove that the composition given by ``terms`` is 0 everywhere.

    ``mles`` must not contain the reserved name ``fr``; the randomizer is
    derived from the transcript and added internally.  ``backend`` selects
    the field-vector backend for the inner SumCheck (``None`` keeps the
    original scalar path; any backend is bit-identical).
    """
    if FR_NAME in mles:
        raise ValueError(f"MLE name {FR_NAME!r} is reserved for the randomizer")
    num_vars = next(iter(mles.values())).num_vars
    r = transcript.challenges(b"zerocheck/r", num_vars)
    fr = build_eq_mle(field, r, counter)
    full_mles = dict(mles)
    full_mles[FR_NAME] = fr
    vp = VirtualPolynomial(field, randomized_terms(terms), full_mles)
    return prove_sumcheck(vp, transcript, claim=0, counter=counter, backend=backend)


def verify_zerocheck(
    field: PrimeField,
    terms: Sequence[Term],
    proof: SumCheckProof,
    transcript: Transcript,
    final_eval_oracle=None,
) -> list[int]:
    """Verify a ZeroCheck proof; returns the SumCheck challenge point."""
    if proof.claim % field.modulus != 0:
        raise SumCheckError("zerocheck claim must be zero")
    r = transcript.challenges(b"zerocheck/r", proof.num_vars)
    rand_terms = randomized_terms(terms)

    def oracle(name: str, point: Sequence[int]) -> int:
        if name == FR_NAME:
            return eq_eval(field, point, r)
        if final_eval_oracle is None:
            raise SumCheckError(
                f"no oracle for {name!r}; pass final_eval_oracle or use an "
                "outer protocol that opens commitments"
            )
        return final_eval_oracle(name, point)

    # Always check fr (it is public); check others when an oracle exists.
    challenges = verify_sumcheck(
        field,
        rand_terms,
        proof,
        transcript,
        final_eval_oracle=oracle if final_eval_oracle is not None else None,
    )
    expected_fr = eq_eval(field, challenges, r)
    if proof.final_evals.get(FR_NAME, None) is None:
        raise SumCheckError("proof lacks the randomizer's final evaluation")
    if proof.final_evals[FR_NAME] % field.modulus != expected_fr:
        raise SumCheckError("randomizer final evaluation mismatch")
    return challenges
