"""The SumCheck verifier.

Checks, per round, that s_i(0) + s_i(1) equals the running claim, then
reduces the claim to s_i(r_i) via Lagrange interpolation at the Fiat–
Shamir challenge r_i.  After μ rounds the final claim must equal the
composition applied to the constituent MLEs' evaluations at
(r_1, ..., r_μ) — supplied either directly (when an outer protocol opens
them via the PCS) or via an oracle callable.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.mle.virtual import Term
from repro.sumcheck.prover import SumCheckProof
from repro.sumcheck.transcript import Transcript
from repro.sumcheck.univariate import lagrange_eval_at, univariate_sum_01
from repro.fields.prime_field import PrimeField


class SumCheckError(AssertionError):
    """Raised when a SumCheck proof fails verification."""


def combine_terms(field: PrimeField, terms: Sequence[Term], evals: Mapping[str, int]) -> int:
    """Apply a term list to per-MLE evaluations (the verifier's last step)."""
    p = field.modulus
    total = 0
    for term in terms:
        prod = term.coeff % p
        for name, power in term.factors:
            prod = prod * pow(evals[name] % p, power, p) % p
        total = (total + prod) % p
    return total


def verify_sumcheck(
    field: PrimeField,
    terms: Sequence[Term],
    proof: SumCheckProof,
    transcript: Transcript,
    final_eval_oracle: Callable[[str, Sequence[int]], int] | None = None,
) -> list[int]:
    """Verify a SumCheck proof.

    Parameters
    ----------
    terms:
        The composition structure (public: it is part of the circuit).
    final_eval_oracle:
        Optional callable ``(mle_name, challenge_point) -> eval``.  When
        given, the verifier checks the prover's claimed final evaluations
        against the oracle (in HyperPlonk this role is played by PCS
        openings).  When omitted, the prover-supplied values are used for
        the composition check only — sound inside an outer protocol that
        opens them later.

    Returns the challenge vector on success; raises :class:`SumCheckError`
    on any failed check.
    """
    transcript.absorb_scalar(b"sumcheck/claim", proof.claim)
    transcript.absorb_scalar(b"sumcheck/num-vars", proof.num_vars)
    transcript.absorb_scalar(b"sumcheck/degree", proof.degree)

    if len(proof.round_evals) != proof.num_vars:
        raise SumCheckError(
            f"expected {proof.num_vars} rounds, proof has {len(proof.round_evals)}"
        )

    claim = proof.claim % field.modulus
    challenges: list[int] = []
    for rnd, evals in enumerate(proof.round_evals):
        if len(evals) != proof.degree + 1:
            raise SumCheckError(
                f"round {rnd}: expected {proof.degree + 1} evaluations, "
                f"got {len(evals)}"
            )
        if univariate_sum_01(field, evals) != claim:
            raise SumCheckError(f"round {rnd}: s(0) + s(1) != running claim")
        transcript.absorb_scalars(b"sumcheck/round", evals)
        r = transcript.challenge(b"sumcheck/challenge")
        challenges.append(r)
        claim = lagrange_eval_at(field, evals, r)

    final_evals = dict(proof.final_evals)
    needed = {name for t in terms for name, _ in t.factors}
    missing = needed - final_evals.keys()
    if missing:
        raise SumCheckError(f"final evaluations missing for {sorted(missing)}")

    if final_eval_oracle is not None:
        for name in sorted(needed):
            expected = final_eval_oracle(name, challenges) % field.modulus
            if final_evals[name] % field.modulus != expected:
                raise SumCheckError(f"final evaluation of {name!r} disagrees with oracle")

    if combine_terms(field, terms, final_evals) != claim:
        raise SumCheckError("final composition check failed")

    transcript.absorb_scalars(b"sumcheck/final", final_evals.values())
    return challenges
