"""The SumCheck prover over virtual polynomials.

Implements the dataflow of the paper's Figure 1: per round, every MLE's
adjacent evaluation pair is *extended* to the d+1 points 0..d, extensions
are multiplied across each term's factors (product lanes), products are
accumulated down the table into the round evaluations, the evaluations
are hashed into the transcript to obtain the round challenge, and every
table is *updated* (folded) by that challenge.

An optional :class:`~repro.fields.counters.OpCounter` tallies multiplies
in the same categories as the hardware (extension-engine vs product-lane),
which the tests cross-check against ``repro.hw``'s predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.fields.counters import OpCounter
from repro.fields.vector import VectorBackend, get_backend
from repro.mle.table import extend_pair
from repro.mle.virtual import VirtualPolynomial
from repro.sumcheck.transcript import Transcript


@dataclass
class SumCheckProof:
    """Everything the prover sends: the claim, per-round evaluations, and
    the final per-MLE evaluations at the challenge point."""

    claim: int
    num_vars: int
    degree: int
    round_evals: list[list[int]] = dc_field(default_factory=list)
    final_evals: dict[str, int] = dc_field(default_factory=dict)
    challenges: list[int] = dc_field(default_factory=list)


def _round_evaluations(
    vp: VirtualPolynomial,
    degree: int,
    counter: OpCounter | None,
) -> list[int]:
    """Compute s(0..degree) for the current (partially-folded) tables.

    Kept as an independent scalar implementation on purpose: it is the
    oracle the differential suite pins every vector backend against, so
    protocol changes here must be mirrored in
    :meth:`repro.fields.vector.VectorBackend.round_evaluations`
    implementations (and the tests will catch a missed one).
    """
    p = vp.field.modulus
    half = len(next(iter(vp.mles.values()))) // 2
    names = vp.unique_mle_names
    evals = [0] * (degree + 1)
    for j in range(half):
        # extension engines: one pair per constituent MLE
        exts = {}
        for name in names:
            t = vp.mles[name].table
            exts[name] = extend_pair(vp.field, t[2 * j], t[2 * j + 1], degree, counter)
        # product lanes: multiply extensions within each term, accumulate
        for term in vp.terms:
            coeff = term.coeff
            for x in range(degree + 1):
                prod = coeff
                nmul = 0
                for name, power in term.factors:
                    e = exts[name][x]
                    for _ in range(power):
                        prod = prod * e % p
                        nmul += 1
                evals[x] = (evals[x] + prod) % p
                if counter is not None:
                    counter.count_mul(nmul, kind="pl")
                    counter.count_add(1)
    return evals


def prove_sumcheck(
    vp: VirtualPolynomial,
    transcript: Transcript,
    claim: int | None = None,
    counter: OpCounter | None = None,
    backend: str | VectorBackend | None = None,
) -> SumCheckProof:
    """Run the full μ-round SumCheck prover.

    If ``claim`` is None the true hypercube sum is computed and used.
    Returns the proof; the transcript is advanced identically to the
    verifier's so Fiat–Shamir challenges agree.

    ``backend`` selects a batched field-vector backend (see
    :mod:`repro.fields.vector`); ``None`` keeps the original scalar code
    path.  Every backend produces a bit-identical proof and identical
    ``counter`` tallies — ``"fused"`` is simply faster.
    """
    if backend is not None:
        return FastSumCheckProver(backend).prove(vp, transcript, claim, counter)
    if claim is None:
        claim = vp.sum_over_hypercube()
    degree = vp.degree
    proof = SumCheckProof(claim=claim, num_vars=vp.num_vars, degree=degree)

    transcript.absorb_scalar(b"sumcheck/claim", claim)
    transcript.absorb_scalar(b"sumcheck/num-vars", vp.num_vars)
    transcript.absorb_scalar(b"sumcheck/degree", degree)

    current = vp
    for _ in range(vp.num_vars):
        evals = _round_evaluations(current, degree, counter)
        proof.round_evals.append(evals)
        transcript.absorb_scalars(b"sumcheck/round", evals)
        r = transcript.challenge(b"sumcheck/challenge")
        proof.challenges.append(r)
        folded = {
            name: mle.fix_first_variable(r, counter)
            for name, mle in current.mles.items()
        }
        current = VirtualPolynomial(current.field, current.terms, folded)

    proof.final_evals = {name: mle.table[0] for name, mle in current.mles.items()}
    transcript.absorb_scalars(b"sumcheck/final", proof.final_evals.values())
    return proof


class FastSumCheckProver:
    """SumCheck prover running on a batched field-vector backend.

    The protocol flow (claim absorption, per-round transcript traffic,
    challenge derivation, final-evaluation ordering) is identical to
    :func:`prove_sumcheck`; the difference is purely mechanical:

    * round evaluations go through the backend's fused
      ``round_evaluations`` kernel instead of a per-pair Python loop;
    * tables are kept as raw ``[0, p)`` integer lists between rounds, so
      no ``DenseMLE``/``VirtualPolynomial`` objects are rebuilt per fold.

    With ``backend="reference"`` the output and the ``OpCounter`` tallies
    are bit-identical to the original prover by construction; with
    ``backend="fused"`` they are bit-identical by the differential test
    suite (``tests/test_fastpath_differential.py``).
    """

    def __init__(self, backend: str | VectorBackend = "fused"):
        self.backend = get_backend(backend)

    def prove(
        self,
        vp: VirtualPolynomial,
        transcript: Transcript,
        claim: int | None = None,
        counter: OpCounter | None = None,
    ) -> SumCheckProof:
        be = self.backend
        field = vp.field
        if claim is None:
            claim = vp.sum_over_hypercube()
        degree = vp.degree
        proof = SumCheckProof(claim=claim, num_vars=vp.num_vars, degree=degree)

        transcript.absorb_scalar(b"sumcheck/claim", claim)
        transcript.absorb_scalar(b"sumcheck/num-vars", vp.num_vars)
        transcript.absorb_scalar(b"sumcheck/degree", degree)

        # raw tables, in vp.mles order (final_evals ordering depends on
        # it), adopted into the backend's native representation once so
        # round kernels skip per-round conversions
        tables = {
            name: be.wrap_table(field, mle.table)
            for name, mle in vp.mles.items()
        }
        # extend only the MLEs that terms reference (counter parity with
        # the reference prover); an all-constant composition has none, so
        # fall back to the full table dict for the pair count
        active = vp.unique_mle_names
        for _ in range(vp.num_vars):
            round_tables = (
                {n: tables[n] for n in active} if active else tables
            )
            evals = be.round_evaluations(
                field, vp.terms, round_tables, degree, counter
            )
            proof.round_evals.append(evals)
            transcript.absorb_scalars(b"sumcheck/round", evals)
            r = transcript.challenge(b"sumcheck/challenge")
            proof.challenges.append(r)
            tables = be.fold_tables(field, tables, r, counter)
        proof.final_evals = {name: t[0] for name, t in tables.items()}
        transcript.absorb_scalars(b"sumcheck/final", proof.final_evals.values())
        return proof
