"""The shared proof-cost plan layer (DESIGN.md §6).

One declarative description of the work inside a HyperPlonk proof —
:class:`ProofPlan`, a DAG of :class:`PhaseCost` nodes sized from the
circuit shape — priced by every consumer instead of re-derived by each:

* ``repro.hw.accelerator.ZkPhireModel.price(plan)`` → accelerator
  latency (the Table VI/VII numbers);
* ``repro.hw.cpu_baseline.CpuModel.price(plan)`` → calibrated CPU
  seconds per phase;
* :class:`FunctionalProverCostModel` → predicted pure-Python prove
  seconds, driving the service's cost-aware (SJF / deadline) drain
  policies and the ``repro.workloads`` scenario cost annotations;
* :meth:`ProofPlan.predicted_prover_ops` → the exact
  :class:`~repro.fields.counters.OpCounter` tallies an instrumented
  ``HyperPlonkProver.prove()`` produces (the layer's semantic anchor).
"""

from repro.plan.cost import (
    AcceleratorCostModel,
    CpuCostModel,
    FunctionalProverCostModel,
    HostIndexInstallModel,
    OutstandingCost,
    PlanPrice,
    ShapeCostModel,
    phase_modmuls,
    plan_modmuls,
    preprocess_modmuls,
    sumcheck_modmuls,
)
from repro.plan.profiles import FR_NAME, PolyProfile, TermProfile
from repro.plan.proof_plan import (
    HYPERPLONK_PHASES,
    MSMTask,
    OPENCHECK_POINTS,
    PHASE_KINDS,
    PhaseCost,
    PlanOps,
    ProofPlan,
    gate_type_by_name,
    hyperplonk_plan,
    opencheck_profile,
)

__all__ = [
    "AcceleratorCostModel",
    "CpuCostModel",
    "FR_NAME",
    "FunctionalProverCostModel",
    "HYPERPLONK_PHASES",
    "HostIndexInstallModel",
    "MSMTask",
    "OPENCHECK_POINTS",
    "OutstandingCost",
    "PHASE_KINDS",
    "PhaseCost",
    "PlanOps",
    "PlanPrice",
    "PolyProfile",
    "ProofPlan",
    "ShapeCostModel",
    "TermProfile",
    "gate_type_by_name",
    "hyperplonk_plan",
    "opencheck_profile",
    "phase_modmuls",
    "plan_modmuls",
    "preprocess_modmuls",
    "sumcheck_modmuls",
]
