"""Pricing plans: shared modmul formulas and pluggable cost models.

Two layers live here:

* **closed-form op counts** — :func:`sumcheck_modmuls` (the software
  SumCheck multiply count the CPU baseline is calibrated on) and
  :func:`plan_modmuls` (a per-phase software modmul estimate for a whole
  :class:`~repro.plan.proof_plan.ProofPlan`);
* **cost models** — objects with one entry point,
  ``shape_cost_s(gate_type_name, num_vars) -> float``, that the
  cost-aware service scheduler and the workload annotations consume.
  :class:`FunctionalProverCostModel` prices the pure-Python prover the
  service actually runs; :class:`AcceleratorCostModel` and
  :class:`CpuCostModel` wrap the ``repro.hw`` models so the same
  scheduler can plan for accelerator- or CPU-backed fleets.

Per-phase modmul estimates for non-SumCheck phases are deliberately
coarse (MSMs especially: a constant per point).  They exist to *rank*
jobs and budget capacity, not to reproduce paper latencies — the
bit-exact latency path is ``ZkPhireModel.price`` / ``CpuModel.price``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.plan.profiles import PolyProfile
from repro.plan.proof_plan import PhaseCost, ProofPlan, hyperplonk_plan


def sumcheck_modmuls(poly: PolyProfile, num_vars: int) -> float:
    """Modular multiplies a software SumCheck performs.

    Per table pair: (d-1) extension muls per distinct MLE, Σ_t deg_t
    product muls per evaluation point across d+1 points, and one update
    mul per distinct MLE.  Total pairs over all rounds = 2^μ - 1 ≈ N.
    """
    d = poly.degree
    uniq = len(poly.unique_mles)
    prod = sum(t.degree for t in poly.terms)
    per_pair = uniq * (d - 1) + (d + 1) * prod + uniq
    pairs = (1 << num_vars) - 1
    return float(per_pair * pairs)


#: modmul-equivalents per MSM point.  A software Pippenger loop costs
#: ~255/13 ≈ 20 window additions per point at ~12 mixed-coordinate muls
#: each (~240); the default is fitted a bit above that to absorb the
#: per-quotient commitment work the KZG openings add on top of the
#: plan's named MSMs.
MSM_MODMULS_PER_POINT = 360.0

#: witness columns are ~90% zero/one (§IV-B3), and the service's
#: fixed-base tables make those commitments cheaper still
SPARSE_MSM_FACTOR = 0.1

#: batch inversion amortizes to ~3 muls per inverted element
BATCH_INVERSE_MULS = 3.0


def phase_modmuls(phase: PhaseCost, num_vars: int) -> float:
    """Software modmul estimate for one plan phase."""
    if phase.kind == "msm":
        return sum(
            t.points * MSM_MODMULS_PER_POINT
            * (SPARSE_MSM_FACTOR if t.sparse else 1.0)
            for t in phase.msms
        )
    if phase.kind == "sumcheck":
        return sumcheck_modmuls(phase.poly, num_vars)
    if phase.kind == "permquot":
        # N/D builds (4 muls/row/column), batched inverse, φ quotient
        return phase.rows * (4.0 * phase.columns + BATCH_INVERSE_MULS + 1.0)
    if phase.kind == "product_tree":
        return float(phase.rows - 1)
    if phase.kind == "batch_eval":
        # one eq build + one table reduction per claim stream
        return 2.0 * phase.streams * phase.rows
    if phase.kind == "mle_combine":
        return float(phase.streams * phase.rows)
    raise ValueError(f"unpriceable phase kind {phase.kind!r}")


def plan_modmuls(plan: ProofPlan) -> dict[str, float]:
    """Per-phase software modmul estimates for a whole plan."""
    return {p.name: phase_modmuls(p, plan.num_vars) for p in plan.phases}


@dataclass
class PlanPrice:
    """A priced plan: seconds per phase (no overlap modelling)."""

    seconds: dict[str, float] = dc_field(default_factory=dict)

    @property
    def total_s(self) -> float:
        """Plain sum over phases (no overlap modelling)."""
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, float]:
        """Seconds per phase, as a plain dict copy."""
        return dict(self.seconds)


class ShapeCostModel:
    """Base class for cost models keyed by circuit shape.

    Subclasses implement :meth:`plan_cost_s`; results are memoized per
    ``(gate_type_name, num_vars)`` since every plan of one shape prices
    identically.
    """

    def __init__(self):
        self._cache: dict[tuple[str, int], float] = {}

    def plan_cost_s(self, plan: ProofPlan) -> float:  # pragma: no cover
        """Price one plan in this model's seconds (subclass hook)."""
        raise NotImplementedError

    def shape_cost_s(self, gate_type_name: str, num_vars: int) -> float:
        """Memoized :meth:`plan_cost_s` for a (gate type, μ) shape."""
        key = (gate_type_name, num_vars)
        if key not in self._cache:
            self._cache[key] = self.plan_cost_s(
                hyperplonk_plan(gate_type_name, num_vars))
        return self._cache[key]


class OutstandingCost:
    """Predicted outstanding prove-seconds per node, from plan pricing.

    The shared load signal of the fleet layer: the cluster router feeds
    it on every assignment (``add``) and drains it on completion
    (``release``), the ``least_loaded`` policy reads the per-node view,
    and the autoscaler reads the fleet aggregate
    (:meth:`mean_per_node_s`) to decide when predicted backlog per node
    justifies scaling out.  Costs come from any
    :class:`ShapeCostModel` via ``shape_cost_s`` and are therefore pure
    functions of circuit shape — the signal is deterministic for a
    deterministic job stream.
    """

    def __init__(self, model: ShapeCostModel):
        self.model = model
        self._per_node: dict[str, float] = {}

    def track(self, node_id: str) -> None:
        """Start tracking ``node_id`` (idempotent)."""
        self._per_node.setdefault(node_id, 0.0)

    def drop(self, node_id: str) -> None:
        """Forget ``node_id`` and its outstanding cost entirely."""
        self._per_node.pop(node_id, None)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._per_node

    def job_cost_s(self, job) -> float:
        """Predicted prove seconds for one job's circuit shape."""
        circuit = job.circuit
        return self.model.shape_cost_s(circuit.gate_type.name, circuit.num_vars)

    def add(self, node_id: str, job) -> float:
        """Charge ``job``'s predicted cost to ``node_id``; returns it."""
        if node_id not in self._per_node:
            raise KeyError(f"node {node_id!r} is not tracked")
        cost = self.job_cost_s(job)
        self._per_node[node_id] += cost
        return cost

    def release(self, node_id: str, cost_s: float | None = None) -> None:
        """Drop drained cost from ``node_id`` (all of it by default)."""
        if node_id not in self._per_node:
            raise KeyError(f"node {node_id!r} is not tracked")
        if cost_s is None:
            self._per_node[node_id] = 0.0
        else:
            remaining = self._per_node[node_id] - cost_s
            self._per_node[node_id] = max(0.0, remaining)

    def node_s(self, node_id: str) -> float:
        """Outstanding predicted seconds charged to ``node_id``."""
        return self._per_node[node_id]

    @property
    def per_node_s(self) -> dict[str, float]:
        """Outstanding predicted seconds per tracked node (a copy)."""
        return dict(self._per_node)

    @property
    def total_s(self) -> float:
        """Fleet-wide outstanding predicted seconds."""
        return sum(self._per_node.values())

    def mean_per_node_s(self) -> float:
        """The autoscaler signal: total outstanding over tracked nodes."""
        if not self._per_node:
            return 0.0
        return self.total_s / len(self._per_node)

    def __repr__(self):
        return (
            f"OutstandingCost(nodes={len(self._per_node)}, "
            f"total={self.total_s:.4f}s)"
        )


class FunctionalProverCostModel(ShapeCostModel):
    """Predicted wall seconds of the pure-Python ``HyperPlonkProver``.

    Total plan modmuls × an effective per-modmul cost.  The default
    constant folds in everything that rides along with a multiply in the
    functional stack (Python interpreter overhead, EC arithmetic per MSM
    bucket op, hashing); it is fitted to service-measured fused-backend
    prove times at μ = 3..6 (~25% mean absolute error, monotone in size
    within and across gate families), which is what a shortest-job-first
    ranking and a capacity estimate need.  The service reports
    predicted-vs-actual error so drift stays visible
    (``ServiceMetrics``), and the constant can be re-fitted from any
    measured result set via :meth:`calibrated`.
    """

    def __init__(self, s_per_modmul: float = 3.0e-6):
        super().__init__()
        self.s_per_modmul = s_per_modmul

    def plan_cost_s(self, plan: ProofPlan) -> float:
        """Total plan modmuls at the fitted per-modmul rate."""
        return sum(plan_modmuls(plan).values()) * self.s_per_modmul

    def calibrated(self, shape_seconds: list[tuple[str, int, float]]
                   ) -> "FunctionalProverCostModel":
        """A new model whose constant is the mean implied by measured
        ``(gate_type_name, num_vars, prove_seconds)`` samples."""
        if not shape_seconds:
            raise ValueError("calibration needs at least one sample")
        ratios = []
        for gate, mu, seconds in shape_seconds:
            muls = sum(plan_modmuls(hyperplonk_plan(gate, mu)).values())
            ratios.append(seconds / muls)
        return FunctionalProverCostModel(sum(ratios) / len(ratios))


def preprocess_modmuls(plan: ProofPlan) -> float:
    """Software modmuls of one ``preprocess()`` run for ``plan``'s shape.

    Preprocessing commits every selector and σ table — ``s + k`` dense
    MSMs of ``n`` points each (identities are closed-form and never
    committed; see :func:`repro.hyperplonk.preprocess.preprocess`) —
    priced with the same per-point constant as the plan's named MSMs.
    """
    cols = plan.num_selectors + plan.num_witnesses
    return cols * plan.num_gates * MSM_MODMULS_PER_POINT


class HostIndexInstallModel(ShapeCostModel):
    """Host-side seconds to build + install one circuit index on a node.

    In the fleet framing (DESIGN.md §7) proving is accelerator-resident
    but index *builds* stay on the host CPU: a node whose
    :class:`~repro.service.cache.IndexCache` misses must re-commit the
    circuit's selector and σ tables before it can prove, so a cache miss
    costs host-CPU preprocessing time while a hit costs nothing.  The
    per-modmul constant matches
    :class:`FunctionalProverCostModel`'s default (the same pure-Python
    MSM loops run in both places).
    """

    def __init__(self, s_per_modmul: float = 3.0e-6):
        super().__init__()
        self.s_per_modmul = s_per_modmul

    def plan_cost_s(self, plan: ProofPlan) -> float:
        """Preprocessing MSM modmuls at host-CPU rates."""
        return preprocess_modmuls(plan) * self.s_per_modmul


class AcceleratorCostModel(ShapeCostModel):
    """Plan cost in zkPHIRE seconds (masked schedule included)."""

    def __init__(self, model):
        super().__init__()
        self.model = model  # a repro.hw.accelerator.ZkPhireModel

    def plan_cost_s(self, plan: ProofPlan) -> float:
        """Accelerator latency with the masked overlap schedule."""
        return self.model.price(plan).total


class CpuCostModel(ShapeCostModel):
    """Plan cost in calibrated CPU-baseline seconds."""

    def __init__(self, model=None):
        super().__init__()
        if model is None:
            from repro.hw.cpu_baseline import CpuModel
            model = CpuModel(threads=32)
        self.model = model

    def plan_cost_s(self, plan: ProofPlan) -> float:
        """Analytic CPU seconds, summed over phases."""
        return self.model.price(plan).total_s
