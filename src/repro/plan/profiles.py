"""Composite-polynomial profiles: the shared cost vocabulary.

A :class:`PolyProfile` is the structural summary of a composite
SumCheck polynomial — its product terms, degrees, and per-MLE storage
classes — that every cost consumer speaks: the Figure-2 hardware
scheduler (:mod:`repro.hw.scheduler`), the CPU baseline's modmul
formula, and the :class:`~repro.plan.proof_plan.ProofPlan` phase DAG.
The classes were born inside ``repro.hw.scheduler`` and are still
re-exported there; they live in the plan layer so that describing a
proof's work never requires importing a hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.gates.compiler import CompiledGate
from repro.gates.library import GateSpec

#: reserved name of the ZeroCheck randomizer
FR_NAME = "fr"


@dataclass(frozen=True)
class TermProfile:
    """One product term: (mle name, power) factors."""

    factors: tuple[tuple[str, int], ...]

    @property
    def degree(self) -> int:
        """Total degree of the term (sum of factor powers)."""
        return sum(p for _, p in self.factors)

    @property
    def distinct(self) -> int:
        """Number of distinct MLEs multiplied in this term."""
        return len(self.factors)

    @property
    def names(self) -> tuple[str, ...]:
        """The term's MLE names, in factor order."""
        return tuple(n for n, _ in self.factors)


@dataclass
class PolyProfile:
    """The scheduler's view of a composite polynomial.

    ``mle_classes`` maps each constituent MLE to a storage class used by
    the round-1 traffic model: ``selector`` (0/1 bitstream), ``sparse``
    (~90% zero/one witness data, offset-buffer encoded), or ``dense``.
    """

    name: str
    terms: list[TermProfile]
    mle_classes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        for t in self.terms:
            for n, _ in t.factors:
                self.mle_classes.setdefault(n, "dense")

    @property
    def degree(self) -> int:
        """Degree of the composite: the largest term degree."""
        return max(t.degree for t in self.terms)

    @property
    def unique_mles(self) -> list[str]:
        """Distinct constituent MLE names, first-seen order."""
        seen: dict[str, None] = {}
        for t in self.terms:
            for n, _ in t.factors:
                seen.setdefault(n)
        return list(seen)

    @property
    def has_fr(self) -> bool:
        """True when the ZeroCheck randomizer participates."""
        return FR_NAME in self.unique_mles

    @classmethod
    def from_gate(cls, spec: GateSpec) -> "PolyProfile":
        """Profile a Table-I gate spec (selector classes included)."""
        return cls.from_compiled(spec.compiled, selector_names=spec.selector_names)

    @classmethod
    def from_compiled(cls, compiled: CompiledGate,
                      selector_names: Sequence[str] = ()) -> "PolyProfile":
        """Profile a compiled gate expression, classifying each MLE as
        ``selector`` / ``sparse`` / ``dense`` for the traffic model."""
        terms = [TermProfile(m.factors) for m in compiled.monomials]
        classes: dict[str, str] = {}
        for name in compiled.mle_names:
            if name == FR_NAME:
                classes[name] = "dense"
            elif name in selector_names:
                classes[name] = "selector"
            elif name.startswith(("w", "qc", "qC")):
                classes[name] = "sparse"
            else:
                classes[name] = "dense"
        return cls(name=compiled.name, terms=terms, mle_classes=classes)
