"""The declarative proof-cost plan: HyperPlonk as a phase DAG.

A :class:`ProofPlan` describes *what work* one HyperPlonk proof performs
— the witness sparse MSMs, the Gate-Identity ZeroCheck, the Permutation
Quotient Generator pass, the product tree, the wiring dense MSMs, the
PermCheck ZeroCheck, and the batched openings — as a small DAG of
:class:`PhaseCost` nodes whose sizes follow from the circuit shape
(gate type, 2^μ gates).  Before this layer existed the same inventory
was re-derived independently by ``hw.accelerator``, ``hw.cpu_baseline``,
``hw.dse`` and the breakdown experiments; now they all price the one
shared plan (DESIGN.md §6).

The plan layer sits between the gate library / scheduler profiles and
every consumer: ``repro.hw`` prices plans in accelerator or CPU seconds,
``repro.service`` schedules jobs by plan cost, and ``repro.workloads``
annotates traffic scenarios with expected per-job cost.  It depends only
on :mod:`repro.gates` and the
:class:`~repro.plan.profiles.PolyProfile` vocabulary (born in
``repro.hw.scheduler``, which still re-exports it) — never on the
models that consume it.

Semantic anchor: :meth:`ProofPlan.predicted_prover_ops` states, in
closed form, exactly which operation tallies an instrumented
``HyperPlonkProver.prove()`` run produces
(``tests/test_plan_crosscheck.py`` pins the identity).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING

from repro.gates.library import gate_by_id
from repro.hyperplonk.circuit import GateType, JELLYFISH, VANILLA
from repro.plan.profiles import PolyProfile, TermProfile

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.hyperplonk.circuit import Circuit
    from repro.hyperplonk.preprocess import ProverIndex


def gate_type_by_name(name: str) -> GateType:
    """Resolve a gate-family name to its :class:`GateType`."""
    if name == "vanilla":
        return VANILLA
    if name == "jellyfish":
        return JELLYFISH
    raise ValueError(f"unknown gate type {name!r}")


#: distinct opening points in the protocol (Table I row 24 has six
#: y_i · fr_i terms; polynomials opened at the same point are first
#: random-linear-combined by the MLE Combine module)
OPENCHECK_POINTS = 6


def opencheck_profile(num_points: int = OPENCHECK_POINTS) -> PolyProfile:
    """Table I row 24: Σ_i y_i(x) · eq_i(x) over the distinct opening
    points, degree 2.  y_i is the pre-combined polynomial for point i."""
    terms = [
        TermProfile(((f"y{i}", 1), (f"fr{i}", 1))) for i in range(num_points)
    ]
    return PolyProfile(name=f"opencheck-{num_points}", terms=terms)


#: the vocabulary of phase kinds a cost model must know how to price
PHASE_KINDS = (
    "msm",
    "sumcheck",
    "permquot",
    "product_tree",
    "batch_eval",
    "mle_combine",
)

#: canonical phase names of the HyperPlonk plan, in schedule order
HYPERPLONK_PHASES = (
    "witness_msm",
    "zerocheck",
    "permquot",
    "prod_tree",
    "wiring_msm",
    "permcheck",
    "batch_evals",
    "mle_combine",
    "opencheck",
    "opening_msm",
)


@dataclass(frozen=True)
class MSMTask:
    """One multi-scalar multiplication: how many points, and whether the
    scalar column is sparse (~90% zero/one witness data, §IV-B3)."""

    points: int
    sparse: bool = False


@dataclass(frozen=True)
class PhaseCost:
    """One node of the proof DAG: a unit of work a cost model can price.

    Only the fields relevant to ``kind`` are populated:

    ``msm``            ``msms`` (one :class:`MSMTask` per MSM, in order)
    ``sumcheck``       ``poly`` (+ ``fuse_fr``: build the ZeroCheck
                       randomizer in-datapath; ``None`` = "poly has fr",
                       matching the SumCheck unit's default), over μ vars
    ``permquot``       ``rows`` × ``columns`` quotient generation
    ``product_tree``   ``rows``-leaf tree reduction
    ``batch_eval``     ``streams`` claims over ``rows`` entries
    ``mle_combine``    ``streams``-way RLC over ``rows`` entries
    """

    name: str
    kind: str
    #: names of phases that must complete first (DAG edges)
    after: tuple[str, ...] = ()
    msms: tuple[MSMTask, ...] = ()
    poly: PolyProfile | None = None
    fuse_fr: bool | None = None
    rows: int = 0
    columns: int = 0
    streams: int = 0

    def __post_init__(self):
        if self.kind not in PHASE_KINDS:
            raise ValueError(
                f"phase {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {PHASE_KINDS}"
            )
        if self.kind == "msm" and not self.msms:
            raise ValueError(f"msm phase {self.name!r} lists no MSMTasks")
        if self.kind == "sumcheck" and self.poly is None:
            raise ValueError(f"sumcheck phase {self.name!r} has no profile")


@dataclass(frozen=True)
class PlanOps:
    """Exact operation tallies an instrumented functional prover
    produces for one proof of the plan (see
    :meth:`ProofPlan.predicted_prover_ops`)."""

    #: extension-engine muls: eq-table builds + per-round table folds
    ee_mul: int
    #: product-lane muls across the three SumChecks
    pl_mul: int
    #: every counted modular multiply (ee + pl + the PermQuot pass)
    total_mul: int
    #: modular inversions (the batched φ denominator inverse)
    inv: int
    #: labelled MSM bumps, keyed the way ``HyperPlonkProver`` keys them
    msm_counts: dict[str, int] = dc_field(default_factory=dict)


@dataclass(frozen=True)
class ProofPlan:
    """A HyperPlonk proof for 2^``num_vars`` gates as its phase DAG."""

    gate_type_name: str
    num_vars: int
    phases: tuple[PhaseCost, ...]

    def __post_init__(self):
        seen: set[str] = set()
        for phase in self.phases:
            if phase.name in seen:
                raise ValueError(f"duplicate phase name {phase.name!r}")
            missing = set(phase.after) - seen
            if missing:
                raise ValueError(
                    f"phase {phase.name!r} depends on {sorted(missing)} "
                    "which do not precede it (plans list phases in "
                    "topological order)"
                )
            seen.add(phase.name)

    # -- shape -------------------------------------------------------------
    @property
    def gate_type(self) -> GateType:
        """The resolved :class:`GateType` (vanilla / jellyfish / …)."""
        return gate_type_by_name(self.gate_type_name)

    @property
    def num_gates(self) -> int:
        """Gate count N = 2^μ."""
        return 1 << self.num_vars

    @property
    def num_witnesses(self) -> int:
        """Witness columns k of the gate type."""
        return self.gate_type.num_witnesses

    @property
    def num_selectors(self) -> int:
        """Selector columns s of the gate type."""
        return len(self.gate_type.selector_names)

    @property
    def num_claims(self) -> int:
        """Evaluation claims entering the batched opening: one per
        selector and witness at the gate point, plus witnesses, σ tables
        and φ at the permutation point."""
        return claims_for_gate_type(self.gate_type)

    @property
    def shape_key(self) -> tuple[str, int]:
        """Two plans with one shape_key describe identical work."""
        return (self.gate_type_name, self.num_vars)

    # -- access ------------------------------------------------------------
    def phase(self, name: str) -> PhaseCost:
        """Look up one phase by name (KeyError with the valid names)."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"plan has no phase {name!r}; "
                       f"phases: {[p.name for p in self.phases]}")

    def __iter__(self):
        return iter(self.phases)

    def sumcheck_profile(self, name: str) -> PolyProfile:
        """The composite-polynomial profile of a sumcheck phase."""
        phase = self.phase(name)
        if phase.poly is None:
            raise ValueError(f"phase {name!r} is not a sumcheck phase")
        return phase.poly

    def msm_tasks(self) -> list[MSMTask]:
        """Every MSM in the proof, in schedule order (the §IV-B3
        inventory: k sparse witness, φ + π̃ dense, opening dense)."""
        return [t for phase in self.phases for t in phase.msms]

    # -- exact functional-prover op model -----------------------------------
    def predicted_prover_ops(self) -> PlanOps:
        """Closed-form prediction of ``HyperPlonkProver.prove()``'s
        :class:`~repro.fields.counters.OpCounter` tallies.

        Per SumCheck over μ vars the prover touches 2^μ - 1 table pairs
        in total; each pair costs (d+1)·Σ_t deg_t product-lane muls, and
        every MLE in the session dict folds once per output entry
        (2^μ - 1 ee muls per MLE).  Each eq(x, r) table build costs
        2·(2^μ - 1) ee muls.  PermQuot adds 4·N plain muls per column
        plus N (φ) and N-1 (tree).  (The opening-combine axpy runs
        uninstrumented, so it is deliberately absent from ``total_mul``.)
        """
        n = self.num_gates
        pairs = n - 1
        k = self.num_witnesses
        s = self.num_selectors
        claims = self.num_claims
        unique_opened = s + 2 * k + 1          # selectors, w_i, σ_i, φ

        def sumcheck_pl(poly: PolyProfile) -> int:
            d = poly.degree
            sum_deg = sum(t.degree for t in poly.terms)
            return pairs * (d + 1) * sum_deg

        gate_poly = self.sumcheck_profile("zerocheck")
        perm_poly = self.sumcheck_profile("permcheck")
        # the functional OpenCheck runs one degree-2 term per claim
        oc_pl = pairs * 3 * 2 * claims

        # fold widths: gate dict = selectors + witnesses + fr; perm dict =
        # {π, p1, p2, φ} + N_i + D_i + fr; opencheck dict = opened polys
        # + one eq per claim
        folds = ((s + k + 1) + (2 * k + 5) + (unique_opened + claims))
        eq_builds = 1 + 1 + claims             # one fr each + one eq/claim
        ee = (folds + 2 * eq_builds) * pairs

        pl = sumcheck_pl(gate_poly) + sumcheck_pl(perm_poly) + oc_pl
        permquot_mul = 4 * n * k + n + (n - 1)
        return PlanOps(
            ee_mul=ee,
            pl_mul=pl,
            total_mul=ee + pl + permquot_mul,
            inv=n,
            msm_counts={
                "witness_msm": k,
                "permcheck_msm": 2,        # φ and π̃ commitments
                "opening_msm": 1 + 4,      # combined + 4 tree openings
            },
        )

    # -- constructors --------------------------------------------------------
    @classmethod
    def for_shape(cls, gate_type_name: str, num_vars: int,
                  custom_zerocheck: PolyProfile | None = None) -> "ProofPlan":
        """The canonical plan for a (gate type, μ) shape; see
        :func:`hyperplonk_plan`."""
        return hyperplonk_plan(gate_type_name, num_vars,
                               custom_zerocheck=custom_zerocheck)

    @classmethod
    def from_circuit(cls, circuit: "Circuit") -> "ProofPlan":
        """The plan for a built circuit (shape only; witness ignored)."""
        return hyperplonk_plan(circuit.gate_type.name, circuit.num_vars)

    @classmethod
    def from_index(cls, index: "ProverIndex") -> "ProofPlan":
        """The plan for a preprocessed prover index."""
        return hyperplonk_plan(index.gate_type.name, index.num_vars)


def claims_for_gate_type(gate_type: GateType) -> int:
    """Opening claims one proof produces: selectors + witnesses at the
    gate point; witnesses, σ tables, and φ at the permutation point."""
    k = gate_type.num_witnesses
    return len(gate_type.selector_names) + k + (2 * k + 1)


def hyperplonk_plan(gate_type_name: str, num_vars: int,
                    custom_zerocheck: PolyProfile | None = None) -> ProofPlan:
    """Build the canonical HyperPlonk phase DAG for one circuit shape.

    ``custom_zerocheck`` substitutes the Gate-Identity polynomial (the
    Fig 14 high-degree sweep); every other phase keeps the gate type's
    structure.
    """
    gate_type = gate_type_by_name(gate_type_name)
    if num_vars < 1:
        raise ValueError("num_vars must be >= 1")
    n = 1 << num_vars
    k = gate_type.num_witnesses
    zc_poly = custom_zerocheck or PolyProfile.from_gate(
        gate_by_id(gate_type.zerocheck_gate_id))
    pc_poly = PolyProfile.from_gate(gate_by_id(gate_type.permcheck_gate_id))
    claims = claims_for_gate_type(gate_type)

    phases = (
        PhaseCost("witness_msm", "msm",
                  msms=tuple(MSMTask(n, sparse=True) for _ in range(k))),
        PhaseCost("zerocheck", "sumcheck", after=("witness_msm",),
                  poly=zc_poly),
        PhaseCost("permquot", "permquot", after=("witness_msm",),
                  rows=n, columns=k),
        PhaseCost("prod_tree", "product_tree", after=("permquot",), rows=n),
        PhaseCost("wiring_msm", "msm", after=("permquot", "prod_tree"),
                  msms=(MSMTask(n), MSMTask(2 * n))),
        PhaseCost("permcheck", "sumcheck", after=("wiring_msm",),
                  poly=pc_poly),
        PhaseCost("batch_evals", "batch_eval",
                  after=("zerocheck", "permcheck"),
                  rows=n, streams=claims),
        PhaseCost("mle_combine", "mle_combine", after=("batch_evals",),
                  rows=n, streams=claims),
        PhaseCost("opencheck", "sumcheck", after=("mle_combine",),
                  poly=opencheck_profile(), fuse_fr=False),
        PhaseCost("opening_msm", "msm", after=("opencheck",),
                  msms=(MSMTask(n), MSMTask(2 * n))),
    )
    return ProofPlan(gate_type_name=gate_type_name, num_vars=num_vars,
                     phases=phases)
