"""Shared argparse helpers for the ``repro-*`` console scripts.

Bad values must exit with argparse's status 2 and a one-line message,
never a traceback — CI's entry-point smoke step locks this down for
``repro-serve`` and ``repro-cluster`` alike.
"""

from __future__ import annotations

import argparse
import math


def backend_choices() -> list[str]:
    """Live field-vector backend names for ``--backend`` choices.

    Sourced from the registry at parser-build time so optional backends
    (numpy ``array``, gmpy2 ``gmp``) are offered exactly when their
    dependencies import — a hardcoded list would either hide them or
    advertise unavailable ones.  Bad values still exit 2 via argparse's
    ``choices`` machinery.
    """
    from repro.fields.vector import list_backends

    return list_backends()


def positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"{value} is not >= 1")
    return value


def nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    # NaN slips past a plain `value < 0` check and infinities make the
    # wave bucketing divide by them; both must exit 2, never traceback
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(f"{text!r} is not a finite number >= 0")
    return value


def nonnegative_int(text: str) -> int:
    """An integer >= 0 (retry budgets, seeds-as-counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"{value} is not >= 0")
    return value


def positive_float(text: str) -> float:
    """A finite float > 0 (MTTRs, autoscale thresholds/intervals)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"{text!r} is not a finite number > 0")
    return value


def rate_fraction(text: str) -> float:
    """A churn/downtime fraction in [0, 1) — 1.0 would mean a fleet
    that is permanently down; argparse rejects it with exit status 2."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not math.isfinite(value) or not 0 <= value < 1:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a fraction in [0, 1)"
        )
    return value


def multiplier(text: str) -> float:
    """A finite float >= 1 (burst multipliers and similar scale-ups)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not math.isfinite(value) or value < 1:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a finite number >= 1"
        )
    return value


def cache_capacity(text: str) -> int | None:
    """LRU cache capacity: a positive entry count, or 0 for unbounded.

    Shared by ``repro-serve`` and ``repro-cluster`` so the flag means
    the same thing on both CLIs.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"{value} is not >= 0")
    return None if value == 0 else value


def carbon_trace(text: str) -> dict:
    """A carbon-intensity trace spec: ``diurnal[:BASE:AMP:PERIOD]``.

    ``diurnal`` alone takes the defaults from
    :class:`repro.carbon.CarbonIntensityTrace`; the long form pins the
    mean gCO₂/kWh, the diurnal swing fraction, and the period in model
    seconds (``diurnal:300:0.8:240``).  Returned as a kwargs dict so the
    CLI can construct the trace next to the run's other seeds.  Bad
    shapes and out-of-range numbers exit 2, never traceback.
    """
    parts = text.split(":")
    if parts[0] != "diurnal":
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a carbon trace; expected "
            "'diurnal' or 'diurnal:BASE:AMP:PERIOD'"
        )
    if len(parts) == 1:
        return {}
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"{text!r} has {len(parts) - 1} diurnal parameters; "
            "expected 'diurnal:BASE:AMP:PERIOD' (all three)"
        )
    try:
        base, amp, period = (float(part) for part in parts[1:])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} has non-numeric diurnal parameters"
        )
    if not math.isfinite(base) or base <= 0:
        raise argparse.ArgumentTypeError(
            f"base intensity {parts[1]!r} is not a finite number > 0"
        )
    if not math.isfinite(amp) or not 0 <= amp < 1:
        raise argparse.ArgumentTypeError(
            f"amplitude {parts[2]!r} is not a fraction in [0, 1)"
        )
    if not math.isfinite(period) or period <= 0:
        raise argparse.ArgumentTypeError(
            f"period {parts[3]!r} is not a finite number > 0"
        )
    return {"base_g_per_kwh": base, "amplitude": amp, "period_s": period}


def int_list(text: str) -> list[int]:
    """Comma-separated positive ints (``"1,2,4"``), deduplicated."""
    out: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if part:
            value = positive_int(part)
            if value not in out:
                out.append(value)
    if not out:
        raise argparse.ArgumentTypeError(f"{text!r} names no counts")
    return out
