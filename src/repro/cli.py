"""Shared argparse helpers for the ``repro-*`` console scripts.

Bad values must exit with argparse's status 2 and a one-line message,
never a traceback — CI's entry-point smoke step locks this down for
``repro-serve`` and ``repro-cluster`` alike.
"""

from __future__ import annotations

import argparse
import math


def backend_choices() -> list[str]:
    """Live field-vector backend names for ``--backend`` choices.

    Sourced from the registry at parser-build time so optional backends
    (numpy ``array``, gmpy2 ``gmp``) are offered exactly when their
    dependencies import — a hardcoded list would either hide them or
    advertise unavailable ones.  Bad values still exit 2 via argparse's
    ``choices`` machinery.
    """
    from repro.fields.vector import list_backends

    return list_backends()


def positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"{value} is not >= 1")
    return value


def nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    # NaN slips past a plain `value < 0` check and infinities make the
    # wave bucketing divide by them; both must exit 2, never traceback
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(f"{text!r} is not a finite number >= 0")
    return value


def nonnegative_int(text: str) -> int:
    """An integer >= 0 (retry budgets, seeds-as-counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"{value} is not >= 0")
    return value


def positive_float(text: str) -> float:
    """A finite float > 0 (MTTRs, autoscale thresholds/intervals)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"{text!r} is not a finite number > 0")
    return value


def rate_fraction(text: str) -> float:
    """A churn/downtime fraction in [0, 1) — 1.0 would mean a fleet
    that is permanently down; argparse rejects it with exit status 2."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not math.isfinite(value) or not 0 <= value < 1:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a fraction in [0, 1)"
        )
    return value


def multiplier(text: str) -> float:
    """A finite float >= 1 (burst multipliers and similar scale-ups)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not math.isfinite(value) or value < 1:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a finite number >= 1"
        )
    return value


def cache_capacity(text: str) -> int | None:
    """LRU cache capacity: a positive entry count, or 0 for unbounded.

    Shared by ``repro-serve`` and ``repro-cluster`` so the flag means
    the same thing on both CLIs.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"{value} is not >= 0")
    return None if value == 0 else value


def int_list(text: str) -> list[int]:
    """Comma-separated positive ints (``"1,2,4"``), deduplicated."""
    out: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if part:
            value = positive_int(part)
            if value not in out:
                out.append(value)
    if not out:
        raise argparse.ArgumentTypeError(f"{text!r} names no counts")
    return out
