"""Admission control: shed load before the queues eat the SLOs.

An open-loop source keeps sending whether or not the fleet can keep up;
without a gate, overload turns into unbounded queues and every tenant's
tail latency dies together.  :class:`AdmissionController` bounds the
fleet's *predicted outstanding cost* — the same plan-derived
seconds-of-work signal the ``least_loaded`` router and the autoscaler
already use — against a capacity budget::

    budget_s = window_s * headroom * max(1, up_nodes)

i.e. "the work the up fleet can finish in one ``window_s``".  A job is
admitted only while

* the fleet-wide admitted-but-unfinished cost stays inside the job's
  *tier* cap (``budget_s × tier.admission_factor`` — bronze caps out
  before silver before gold, so lower tiers shed first), and
* the tenant's own outstanding cost stays inside its quota
  (``budget_s × quota_fraction``), so one tenant cannot occupy the
  whole budget even inside its tier.

Rejected jobs are *shed*: counted per tenant, logged as ``job_shed``
events, and never queued.  The controller also drives backpressure into
the traffic generator: :meth:`overloaded` (outstanding above
``backpressure_high × budget``) tells the open-loop engine to pause the
arrival pump, :meth:`relieved` (below ``backpressure_low × budget``) to
resume it.

The controller keeps its own outstanding ledger (settled by the engine
on completion or failure) instead of reading the router's, because the
router zeroes a node's cost on crash — admission debt must survive
reassignment or shedding would over-admit during churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only (and import-cycle
    # guard: repro.traffic imports this module back through its engine)
    from repro.service.jobs import ProofJob
    from repro.traffic.tenants import TenantSpec


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for :class:`AdmissionController` (all in model seconds)."""

    #: the budget horizon: admit up to ``window_s`` of predicted work
    #: per up node
    window_s: float = 10.0
    #: scale on the budget; < 1 leaves slack for prediction error
    headroom: float = 1.0
    #: pause the generator above this multiple of the budget
    backpressure_high: float = 1.5
    #: resume the generator below this multiple of the budget
    backpressure_low: float = 0.75

    def __post_init__(self):
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0; got {self.window_s}")
        if self.headroom <= 0:
            raise ValueError(f"headroom must be > 0; got {self.headroom}")
        if not 0 < self.backpressure_low < self.backpressure_high:
            raise ValueError(
                "need 0 < backpressure_low < backpressure_high; got "
                f"{self.backpressure_low} / {self.backpressure_high}"
            )


class AdmissionController:
    """Budgeted admission + per-tenant quotas; see the module docstring.

    ``cost_of`` prices one job in predicted prove seconds (the engine
    passes the router's shape-cost model, so admission and routing
    agree on what a job weighs); ``up_nodes`` reports current serving
    capacity so the budget tracks churn and autoscaling.
    """

    def __init__(
        self,
        policy: AdmissionPolicy,
        tenants: list[TenantSpec],
        *,
        cost_of: Callable[["ProofJob"], float],
        up_nodes: Callable[[], int],
    ):
        if not tenants:
            raise ValueError("admission needs at least one tenant")
        self.policy = policy
        self.tenants = {t.name: t for t in tenants}
        if len(self.tenants) != len(tenants):
            raise ValueError("tenant names must be unique")
        self._cost_of = cost_of
        self._up_nodes = up_nodes
        #: admitted-but-unfinished predicted seconds, fleet-wide
        self.outstanding_s = 0.0
        self._by_tenant_s: dict[str, float] = {t.name: 0.0 for t in tenants}
        self._cost_by_job: dict[int, float] = {}
        self.admitted = 0
        self.shed = 0
        self.shed_by_tenant: dict[str, int] = {t.name: 0 for t in tenants}

    # -- budget --------------------------------------------------------------
    def budget_s(self) -> float:
        """Seconds of predicted work the up fleet may hold right now."""
        return self.policy.window_s * self.policy.headroom * max(
            1, self._up_nodes()
        )

    def _tenant_of(self, job: "ProofJob") -> TenantSpec:
        tenant = self.tenants.get(job.tenant or "")
        if tenant is None:
            raise KeyError(f"job {job.job_id} has unknown tenant {job.tenant!r}")
        return tenant

    # -- decisions -----------------------------------------------------------
    def admit(self, job: "ProofJob") -> bool:
        """Admit or shed ``job``; admitted jobs charge the ledgers."""
        tenant = self._tenant_of(job)
        cost = self._cost_of(job)
        budget = self.budget_s()
        tier_cap = budget * tenant.tier.admission_factor
        quota_cap = budget * tenant.quota_fraction
        if (
            self.outstanding_s + cost > tier_cap
            or self._by_tenant_s[tenant.name] + cost > quota_cap
        ):
            self.shed += 1
            self.shed_by_tenant[tenant.name] += 1
            return False
        self.admitted += 1
        self.outstanding_s += cost
        self._by_tenant_s[tenant.name] += cost
        self._cost_by_job[job.job_id] = cost
        return True

    def settle(self, job: "ProofJob") -> None:
        """Release ``job``'s charge after it completed or failed.

        Idempotent per job (retries resolve a job once), and a no-op
        for jobs this controller never admitted.
        """
        cost = self._cost_by_job.pop(job.job_id, None)
        if cost is None:
            return
        self.outstanding_s = max(0.0, self.outstanding_s - cost)
        name = (job.tenant or "") if job.tenant in self.tenants else None
        if name is not None:
            self._by_tenant_s[name] = max(0.0, self._by_tenant_s[name] - cost)

    # -- backpressure --------------------------------------------------------
    def overloaded(self) -> bool:
        """True when the generator should pause (outstanding too high)."""
        return self.outstanding_s > self.policy.backpressure_high * self.budget_s()

    def relieved(self) -> bool:
        """True when a paused generator may resume."""
        return self.outstanding_s < self.policy.backpressure_low * self.budget_s()

    # -- reporting -----------------------------------------------------------
    def tenant_outstanding_s(self, name: str) -> float:
        """Admitted-but-unfinished predicted seconds for one tenant."""
        return self._by_tenant_s[name]

    def as_dict(self) -> dict:
        """The ``admission`` section of a traffic summary."""
        offered = self.admitted + self.shed
        return {
            "policy": {
                "window_s": self.policy.window_s,
                "headroom": self.policy.headroom,
                "backpressure_high": self.policy.backpressure_high,
                "backpressure_low": self.policy.backpressure_low,
            },
            "offered": offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_rate": round(self.shed / offered, 4) if offered else 0.0,
            "shed_by_tenant": dict(sorted(self.shed_by_tenant.items())),
        }

    def __repr__(self):
        return (
            f"AdmissionController(outstanding={self.outstanding_s:.3f}s, "
            f"admitted={self.admitted}, shed={self.shed})"
        )
