"""A sharded multi-node proving simulation (fleet layer).

One :class:`~repro.service.ProvingService` is a node; this package is
the fleet above it (DESIGN.md §7).  The pipeline is **route → shard →
drain**:

* :mod:`repro.cluster.routing` — :class:`ClusterRouter` over
  ``round_robin`` / ``least_loaded`` / ``affinity`` policies, with a
  SHA-256 :class:`HashRing` so fingerprint placement is deterministic
  across processes and node churn moves only ~K/N keys;
* :mod:`repro.cluster.nodes` — :class:`ProverNode`: a bounded
  :class:`SimIndexCache`, a model-time clock, and (in execute mode) a
  private real proving service per node;
* :mod:`repro.cluster.timemodel` — :class:`FleetTimeModel`: plan-priced
  prove seconds plus host-side index-install seconds on cache misses;
* :mod:`repro.cluster.metrics` — :func:`cluster_summary`: makespan,
  throughput, load imbalance, install share, cache locality, shape
  spread;
* :mod:`repro.cluster.core` — :class:`ProvingCluster` tying it together.

Demo CLI: ``python -m repro.cluster --scenario zipf-mixed --nodes 1,2,4``
(also installed as ``repro-cluster``); see
``benchmarks/test_cluster_scaling.py`` (``BENCH_cluster.json``).
"""

from repro.cluster.core import ClusterConfig, ProvingCluster
from repro.cluster.metrics import cluster_summary, load_imbalance, shape_spread
from repro.cluster.nodes import (
    DEFAULT_NODE_CACHE_CAPACITY,
    JobRecord,
    NodeConfig,
    ProverNode,
    SimIndexCache,
)
from repro.cluster.routing import (
    DEFAULT_REPLICAS,
    ROUTING_POLICIES,
    ClusterRouter,
    HashRing,
    stable_hash,
)
from repro.cluster.timemodel import TIME_MODEL_PRESETS, FleetTimeModel

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "DEFAULT_NODE_CACHE_CAPACITY",
    "DEFAULT_REPLICAS",
    "FleetTimeModel",
    "HashRing",
    "JobRecord",
    "NodeConfig",
    "ProverNode",
    "ProvingCluster",
    "ROUTING_POLICIES",
    "SimIndexCache",
    "TIME_MODEL_PRESETS",
    "cluster_summary",
    "load_imbalance",
    "shape_spread",
    "stable_hash",
]
