"""A sharded multi-node proving simulation (fleet layer).

One :class:`~repro.service.ProvingService` is a node; this package is
the fleet above it (DESIGN.md §7–8).  The pipeline is **route → shard →
drain**, executed on the :mod:`repro.sim` discrete-event engine:

* :mod:`repro.cluster.routing` — :class:`ClusterRouter` over
  ``round_robin`` / ``least_loaded`` / ``affinity`` policies, with a
  SHA-256 :class:`HashRing` so fingerprint placement is deterministic
  across processes and node churn moves only ~K/N keys; down-marking
  (crashes) and ``exclude`` sets (retries) ride the same ring;
* :mod:`repro.cluster.nodes` — :class:`ProverNode`: a bounded
  :class:`SimIndexCache`, a model-time clock, crash/recover state, and
  (in execute mode) a private real proving service per node;
* :mod:`repro.cluster.engine` — :class:`ClusterEngine`: the event loop
  interleaving job completions, churn, retries, and autoscaler ticks;
* :mod:`repro.cluster.autoscale` — :class:`AutoscalePolicy`: fleet
  sizing from the plan-predicted backlog signal;
* :mod:`repro.cluster.timemodel` — :class:`FleetTimeModel`: plan-priced
  prove seconds plus host-side index-install seconds on cache misses;
* :mod:`repro.cluster.metrics` — :func:`cluster_summary`: makespan,
  throughput, load imbalance, install share, cache locality, shape
  spread, deadline misses, retry latency, resilience counters;
* :mod:`repro.cluster.core` — :class:`ProvingCluster` tying it together
  (``run`` for failure-free drains, ``run_scenario`` for churn).

Demo CLI: ``python -m repro.cluster --scenario zipf-mixed --nodes 1,2,4``
(also installed as ``repro-cluster``; add ``--churn-rate 0.2`` for the
failure-aware path); see ``benchmarks/test_cluster_scaling.py``
(``BENCH_cluster.json``) and ``benchmarks/test_cluster_resilience.py``
(``BENCH_resilience.json``).
"""

from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.core import ClusterConfig, ProvingCluster
from repro.cluster.engine import ClusterEngine, ResilienceStats
from repro.cluster.metrics import (
    cluster_summary,
    deadline_stats,
    load_imbalance,
    retry_stats,
    shape_spread,
)
from repro.cluster.nodes import (
    DEFAULT_NODE_CACHE_CAPACITY,
    InFlightJob,
    NodeConfig,
    ProverNode,
    SimIndexCache,
)
from repro.cluster.records import JobRecord, RetryPolicy
from repro.cluster.routing import (
    DEFAULT_REPLICAS,
    NoRoutableNodeError,
    ROUTING_POLICIES,
    ClusterRouter,
    HashRing,
    stable_hash,
)
from repro.cluster.timemodel import TIME_MODEL_PRESETS, FleetTimeModel

__all__ = [
    "AutoscalePolicy",
    "ClusterConfig",
    "ClusterEngine",
    "ClusterRouter",
    "DEFAULT_NODE_CACHE_CAPACITY",
    "DEFAULT_REPLICAS",
    "FleetTimeModel",
    "HashRing",
    "InFlightJob",
    "JobRecord",
    "NoRoutableNodeError",
    "NodeConfig",
    "ProverNode",
    "ProvingCluster",
    "ROUTING_POLICIES",
    "ResilienceStats",
    "RetryPolicy",
    "SimIndexCache",
    "TIME_MODEL_PRESETS",
    "cluster_summary",
    "deadline_stats",
    "load_imbalance",
    "retry_stats",
    "shape_spread",
    "stable_hash",
]
