"""One prover node: a bounded index cache, a model clock, a service.

A :class:`ProverNode` is the sharding unit of the simulated fleet.  It
always runs the *simulated* layer — an LRU fingerprint cache
(:class:`SimIndexCache`) plus a model-time clock advanced by the
cluster's :class:`~repro.cluster.timemodel.FleetTimeModel` — and, when
the cluster runs in ``execute`` mode, additionally drains its jobs
through a private :class:`~repro.service.ProvingService` (own SRS, own
:class:`~repro.service.cache.IndexCache`, own worker pool) so the
proofs, cache hits, and preprocess seconds it reports are real.

Every node builds its SRS from the same seed, so a proof is bit-identical
no matter which node produced it — routing policy changes *when and
where* work happens, never the bytes; ``tests/test_cluster.py`` locks
this down.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cluster.timemodel import FleetTimeModel
from repro.service.cache import CacheStats
from repro.service.core import ProvingService, ServiceConfig
from repro.service.jobs import ProofJob, ProofResult

#: default LRU entries in a node's (bounded) local index cache
DEFAULT_NODE_CACHE_CAPACITY = 4


class SimIndexCache:
    """LRU of circuit fingerprints with the service's cache statistics.

    Models which indexes a node currently holds without preprocessing
    anything; the execute path's real :class:`IndexCache` runs the same
    capacity so measured hit rates track simulated ones.
    """

    def __init__(self, capacity: int | None = DEFAULT_NODE_CACHE_CAPACITY):
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be >= 1 (or None)")
        self.capacity = capacity
        self.stats = CacheStats()
        self._keys: OrderedDict[str, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def lookup(self, key: str) -> bool:
        """Touch ``key``; True on hit, False on miss (key now cached)."""
        if key in self._keys:
            self._keys.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._keys[key] = None
        if self.capacity is not None:
            while len(self._keys) > self.capacity:
                self._keys.popitem(last=False)
                self.stats.evictions += 1
        return False


@dataclass
class NodeConfig:
    """Per-node knobs shared by every node of one cluster."""

    #: LRU entries in the node-local index cache (None = unbounded)
    cache_capacity: int | None = DEFAULT_NODE_CACHE_CAPACITY
    #: largest circuit μ the node accepts
    max_vars: int = 6
    #: one seed for every node: identical SRS, bit-identical proofs
    srs_seed: int = 0x5EED
    #: field-vector backend for execute-mode proving
    default_backend: str | None = "fused"
    #: execute-mode executor / workers per node
    executor: str = "sync"
    num_workers: int = 1
    #: execute-mode drain-wave window in model seconds (None = one wave)
    wave_s: float | None = 1.0
    #: verify every execute-mode proof in-service
    verify_proofs: bool = False


@dataclass
class JobRecord:
    """Model-time bookkeeping for one routed job."""

    job_id: int
    tag: str
    circuit_key: str
    node_id: str
    arrival_s: float
    start_s: float
    finish_s: float
    prove_model_s: float
    install_model_s: float
    cache_hit: bool

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


class ProverNode:
    """One shard of the fleet; see the module docstring."""

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        time_model: FleetTimeModel,
        *,
        execute: bool = False,
    ):
        self.node_id = node_id
        self.config = config
        self.time_model = time_model
        self.execute = execute
        self.sim_cache = SimIndexCache(config.cache_capacity)
        self.clock_s = 0.0
        #: model seconds spent proving + installing (idle excluded)
        self.busy_s = 0.0
        self.jobs_done = 0
        self.shapes_seen: set[str] = set()
        self.records: list[JobRecord] = []
        self.results: list[ProofResult] = []
        self._pending: list[ProofJob] = []
        self.service: ProvingService | None = None
        if execute:
            self.service = ProvingService(
                ServiceConfig(
                    max_vars=config.max_vars,
                    srs_seed=config.srs_seed,
                    executor=config.executor,
                    num_workers=config.num_workers,
                    cache_capacity=config.cache_capacity,
                    default_backend=config.default_backend,
                    verify_proofs=config.verify_proofs,
                )
            )

    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit(self, job: ProofJob) -> None:
        self._pending.append(job)
        self.shapes_seen.add(job.circuit_key)

    def drain(self, *, respect_arrivals: bool = False) -> list[JobRecord]:
        """Process everything pending in arrival order.

        Advances the model clock job by job: a sim-cache miss charges
        the install cost before the prove cost.  With
        ``respect_arrivals`` the clock waits for each job's model-time
        arrival (idle gaps appear); without it the node runs saturated
        and arrivals only order the queue.  In execute mode the same
        jobs then run through the real per-node service.
        """
        jobs, self._pending = self._pending, []
        if not jobs:
            return []
        jobs.sort(key=lambda j: (j.arrival_s, j.job_id))
        drained: list[JobRecord] = []
        for job in jobs:
            arrival = job.arrival_s if respect_arrivals else 0.0
            start = max(self.clock_s, arrival)
            install = 0.0
            hit = self.sim_cache.lookup(job.circuit_key)
            if not hit:
                install = self.time_model.install_s(job)
            prove = self.time_model.prove_s(job)
            self.clock_s = start + install + prove
            self.busy_s += install + prove
            self.jobs_done += 1
            drained.append(
                JobRecord(
                    job_id=job.job_id,
                    tag=job.tag,
                    circuit_key=job.circuit_key,
                    node_id=self.node_id,
                    arrival_s=arrival,
                    start_s=start,
                    finish_s=self.clock_s,
                    prove_model_s=prove,
                    install_model_s=install,
                    cache_hit=hit,
                )
            )
        self.records.extend(drained)
        if self.service is not None:
            # the node's service re-ids jobs for its own queue; map the
            # results back to cluster-wide ids so records and results of
            # one job line up across the fleet
            cluster_ids = {id(job): job.job_id for job in jobs}
            results = self.service.run(jobs, wave_s=self.config.wave_s)
            remap = {job.job_id: cluster_ids[id(job)] for job in jobs}
            for result in results:
                result.job_id = remap[result.job_id]
            for job in jobs:  # leave caller-held jobs cluster-consistent
                job.job_id = cluster_ids[id(job)]
            self.results.extend(results)
        return drained

    # -- measured side (execute mode only) ----------------------------------
    @property
    def real_cache_stats(self) -> CacheStats | None:
        if self.service is None:
            return None
        return self.service.cache.stats

    @property
    def measured_busy_s(self) -> float:
        """Real seconds this node spent preprocessing + proving."""
        if self.service is None:
            return 0.0
        prove = sum(r.prove_s for r in self.results)
        return self.service.cache.stats.preprocess_s + prove

    def close(self) -> None:
        if self.service is not None:
            self.service.close()

    def __repr__(self):
        return (
            f"ProverNode({self.node_id!r}, jobs={self.jobs_done}, "
            f"busy={self.busy_s:.4f}s)"
        )
