"""One prover node: a bounded index cache, a model clock, a service.

A :class:`ProverNode` is the sharding unit of the simulated fleet.  It
always runs the *simulated* layer — an LRU fingerprint cache
(:class:`SimIndexCache`) plus a model-time clock advanced by the
cluster's :class:`~repro.cluster.timemodel.FleetTimeModel` — and, when
the cluster runs in ``execute`` mode, additionally proves its completed
jobs through a private :class:`~repro.service.ProvingService` (own SRS,
own :class:`~repro.service.cache.IndexCache`, own worker pool) so the
proofs, cache hits, and preprocess seconds it reports are real.

Nodes expose event-granular primitives — :meth:`begin` /
:meth:`complete` / :meth:`abort` / :meth:`crash` / :meth:`recover` —
driven by the cluster's discrete-event engine
(:mod:`repro.cluster.engine` on :mod:`repro.sim`); they never advance
time themselves.  A crash loses the in-flight job and cold-starts the
node's index cache; queued jobs survive (queue state is
coordinator-side) and are requeued by the engine.

Every node builds its SRS from the same seed, so a proof is bit-identical
no matter which node produced it — routing policy changes *when and
where* work happens, never the bytes; ``tests/test_cluster.py`` locks
this down.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

from repro.cluster.records import JobRecord
from repro.cluster.timemodel import FleetTimeModel
from repro.service.cache import CacheStats
from repro.service.core import ProvingService, ServiceConfig
from repro.service.jobs import ProofJob, ProofResult

__all__ = [
    "DEFAULT_NODE_CACHE_CAPACITY",
    "InFlightJob",
    "JobRecord",
    "NodeConfig",
    "ProverNode",
    "SimIndexCache",
    "SuspendedFlight",
]

#: default LRU entries in a node's (bounded) local index cache
DEFAULT_NODE_CACHE_CAPACITY = 4


class SimIndexCache:
    """LRU of circuit fingerprints with the service's cache statistics.

    Models which indexes a node currently holds without preprocessing
    anything; the execute path's real :class:`IndexCache` runs the same
    capacity so measured hit rates track simulated ones.
    """

    def __init__(self, capacity: int | None = DEFAULT_NODE_CACHE_CAPACITY):
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be >= 1 (or None)")
        self.capacity = capacity
        self.stats = CacheStats()
        self._keys: OrderedDict[str, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def lookup(self, key: str) -> bool:
        """Touch ``key``; True on hit, False on miss (key now cached)."""
        if key in self._keys:
            self._keys.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._keys[key] = None
        if self.capacity is not None:
            while len(self._keys) > self.capacity:
                self._keys.popitem(last=False)
                self.stats.evictions += 1
        return False

    def clear(self) -> None:
        """Drop every cached key (stats survive) — a node cold start."""
        self._keys.clear()


@dataclass
class NodeConfig:
    """Per-node knobs shared by every node of one cluster."""

    #: LRU entries in the node-local index cache (None = unbounded)
    cache_capacity: int | None = DEFAULT_NODE_CACHE_CAPACITY
    #: largest circuit μ the node accepts
    max_vars: int = 6
    #: one seed for every node: identical SRS, bit-identical proofs
    srs_seed: int = 0x5EED
    #: field-vector backend for execute-mode proving
    default_backend: str | None = "fused"
    #: execute-mode executor / workers per node
    executor: str = "sync"
    num_workers: int = 1
    #: execute-mode drain-wave window in model seconds (None = one wave)
    wave_s: float | None = 1.0
    #: verify every execute-mode proof in-service
    verify_proofs: bool = False


@dataclass
class InFlightJob:
    """The one job a node is currently proving (model time).

    ``start_s``/``finish_s`` describe the *current* busy segment: a
    suspended-and-resumed job gets fresh values on resume, with the work
    already banked in ``done_before_s``.  ``first_start_s`` keeps the
    original start for latency records.
    """

    job: ProofJob
    arrival_s: float
    start_s: float
    finish_s: float
    install_s: float
    prove_s: float
    cache_hit: bool
    #: model time the job first started (segment restarts don't move it)
    first_start_s: float = 0.0
    #: busy seconds completed in earlier segments (before suspensions)
    done_before_s: float = 0.0
    #: how many times this job was parked at a phase boundary
    suspensions: int = 0
    #: model seconds spent parked between suspend and resume
    suspended_wait_s: float = 0.0


@dataclass
class SuspendedFlight:
    """A parked deferrable job: its flight state plus when it parked."""

    flight: InFlightJob
    suspended_at_s: float


class ProverNode:
    """One shard of the fleet; see the module docstring."""

    def __init__(
        self,
        node_id: str,
        config: NodeConfig,
        time_model: FleetTimeModel,
        *,
        execute: bool = False,
    ):
        self.node_id = node_id
        self.config = config
        self.time_model = time_model
        self.execute = execute
        self.sim_cache = SimIndexCache(config.cache_capacity)
        self.clock_s = 0.0
        #: model seconds spent proving + installing (idle excluded)
        self.busy_s = 0.0
        #: model seconds of in-flight work lost to crashes
        self.lost_s = 0.0
        self.jobs_done = 0
        self.crashes = 0
        self.down = False
        self.shapes_seen: set[str] = set()
        self.records: list[JobRecord] = []
        self.results: list[ProofResult] = []
        self.in_flight: InFlightJob | None = None
        # pending queue: insertion-ordered dict (crash requeue order)
        # plus a (key, job_id) heap for O(log q) peek/begin; heap
        # entries for started jobs are dropped lazily in peek_next
        self._pending: dict[int, ProofJob] = {}
        self._pending_heap: list[tuple[float, int]] = []
        self._queue_respect = False
        #: jobs parked at a phase boundary, awaiting resume (by job id)
        self._suspended: dict[int, SuspendedFlight] = {}
        #: jobs completed in model time but not yet really proven
        self._to_execute: list[ProofJob] = []
        self.service: ProvingService | None = None
        if execute:
            self.service = ProvingService(
                ServiceConfig(
                    max_vars=config.max_vars,
                    srs_seed=config.srs_seed,
                    executor=config.executor,
                    num_workers=config.num_workers,
                    cache_capacity=config.cache_capacity,
                    default_backend=config.default_backend,
                    verify_proofs=config.verify_proofs,
                )
            )

    @property
    def pending(self) -> int:
        """Queued jobs not yet started (in-flight work excluded)."""
        return len(self._pending)

    @property
    def idle(self) -> bool:
        """True when the node is up with nothing queued, parked, or in
        flight."""
        return (
            not self.down
            and self.in_flight is None
            and not self._pending
            and not self._suspended
        )

    @property
    def suspended_ids(self) -> list[int]:
        """Job ids currently parked on this node, ascending."""
        return sorted(self._suspended)

    def submit(self, job: ProofJob) -> None:
        """Queue ``job`` on this node (the router already chose it)."""
        self._pending[job.job_id] = job
        arrival = job.arrival_s if self._queue_respect else 0.0
        heapq.heappush(self._pending_heap, (arrival, job.job_id))
        self.shapes_seen.add(job.circuit_key)

    # -- event-engine primitives --------------------------------------------
    def _rekey_queue(self, respect_arrivals: bool) -> None:
        """Rebuild the queue heap under the other arrival mode.

        The queue orders by ``(arrival, job_id)`` when arrivals are
        respected and ``(0, job_id)`` otherwise; a run uses one mode
        throughout, so this fires at most once per node per run.
        """
        self._queue_respect = respect_arrivals
        self._pending_heap = [
            (job.arrival_s if respect_arrivals else 0.0, job_id)
            for job_id, job in self._pending.items()
        ]
        heapq.heapify(self._pending_heap)

    def peek_next(self, *, respect_arrivals: bool = False) -> ProofJob | None:
        """The queued job the node would start next (None if empty)."""
        if not self._pending:
            return None
        if respect_arrivals != self._queue_respect:
            self._rekey_queue(respect_arrivals)
        heap = self._pending_heap
        pending = self._pending
        while heap:
            job = pending.get(heap[0][1])
            if job is None:
                heapq.heappop(heap)
                continue
            return job
        return None

    def pending_jobs(self, *, respect_arrivals: bool = False) -> list[ProofJob]:
        """Every queued job in queue (start) order, without popping.

        The carbon policies scan this to reorder or skip ahead of the
        queue head; :meth:`begin` accepts any returned job, not just
        the head.
        """
        if not self._pending:
            return []
        if respect_arrivals != self._queue_respect:
            self._rekey_queue(respect_arrivals)
        live = sorted(
            entry for entry in self._pending_heap if entry[1] in self._pending
        )
        seen: set[int] = set()
        jobs: list[ProofJob] = []
        for _, job_id in live:
            if job_id not in seen:
                seen.add(job_id)
                jobs.append(self._pending[job_id])
        return jobs

    def begin(
        self, job: ProofJob, now_s: float, *, respect_arrivals: bool = False
    ) -> InFlightJob:
        """Start proving ``job``: cache lookup, install-or-hit, timing.

        ``start = max(node clock, arrival)`` (arrival counts as 0 when
        arrivals are not respected); a sim-cache miss charges the
        install cost before the prove cost.  The caller schedules the
        finish event at ``in_flight.finish_s``.
        """
        if self.down:
            raise RuntimeError(f"node {self.node_id} is down")
        if self.in_flight is not None:
            raise RuntimeError(f"node {self.node_id} is already proving")
        if respect_arrivals != self._queue_respect:
            self._rekey_queue(respect_arrivals)
        del self._pending[job.job_id]
        arrival = job.arrival_s if respect_arrivals else 0.0
        start = max(self.clock_s, arrival, now_s if respect_arrivals else 0.0)
        install = 0.0
        hit = self.sim_cache.lookup(job.circuit_key)
        if not hit:
            install = self.time_model.install_s(job)
        prove = self.time_model.prove_s(job)
        self.in_flight = InFlightJob(
            job=job,
            arrival_s=arrival,
            start_s=start,
            finish_s=start + install + prove,
            install_s=install,
            prove_s=prove,
            cache_hit=hit,
            first_start_s=start,
        )
        return self.in_flight

    def complete(self) -> JobRecord:
        """Commit the in-flight job at its finish time; returns the record."""
        flight = self.in_flight
        if flight is None:
            raise RuntimeError(f"node {self.node_id} has nothing in flight")
        self.in_flight = None
        self.clock_s = flight.finish_s
        # earlier segments of a suspended job were banked at suspend time
        self.busy_s += (
            flight.install_s + flight.prove_s - flight.done_before_s
        )
        self.jobs_done += 1
        record = JobRecord(
            job_id=flight.job.job_id,
            tag=flight.job.tag,
            circuit_key=flight.job.circuit_key,
            node_id=self.node_id,
            arrival_s=flight.arrival_s,
            start_s=flight.first_start_s,
            finish_s=flight.finish_s,
            prove_model_s=flight.prove_s,
            install_model_s=flight.install_s,
            cache_hit=flight.cache_hit,
            deadline_s=flight.job.deadline_s,
            attempt=flight.job.attempt,
            suspensions=flight.suspensions,
            suspended_s=flight.suspended_wait_s,
        )
        self.records.append(record)
        if self.service is not None:
            self._to_execute.append(flight.job)
        return record

    def abort(self, now_s: float) -> tuple[ProofJob, float]:
        """Lose the in-flight job at ``now_s``; returns (job, lost seconds)."""
        flight = self.in_flight
        if flight is None:
            raise RuntimeError(f"node {self.node_id} has nothing in flight")
        self.in_flight = None
        lost = max(0.0, now_s - flight.start_s)
        self.lost_s += lost
        return flight.job, lost

    def suspend(self, now_s: float) -> InFlightJob:
        """Park the in-flight job at ``now_s`` (a phase boundary).

        The completed segment's busy seconds are banked immediately
        (``busy_s`` and ``done_before_s``) so a later crash loses only
        queued state, never finished phases; the flight waits in the
        suspended set until :meth:`resume`.
        """
        flight = self.in_flight
        if flight is None:
            raise RuntimeError(f"node {self.node_id} has nothing in flight")
        self.in_flight = None
        done = max(0.0, now_s - flight.start_s)
        flight.done_before_s += done
        flight.suspensions += 1
        self.busy_s += done
        self.clock_s = max(self.clock_s, now_s)
        self._suspended[flight.job.job_id] = SuspendedFlight(
            flight=flight, suspended_at_s=now_s
        )
        return flight

    def resume(self, job_id: int, now_s: float) -> InFlightJob:
        """Unpark ``job_id`` at ``now_s``; returns the live flight.

        The flight restarts as a fresh segment — ``start_s``/``finish_s``
        describe only the remaining work — with the banked progress in
        ``done_before_s``; the caller schedules the new finish event.
        """
        if self.down:
            raise RuntimeError(f"node {self.node_id} is down")
        if self.in_flight is not None:
            raise RuntimeError(f"node {self.node_id} is already proving")
        parked = self._suspended.pop(job_id)
        flight = parked.flight
        start = max(self.clock_s, now_s)
        flight.suspended_wait_s += max(0.0, start - parked.suspended_at_s)
        remaining = flight.install_s + flight.prove_s - flight.done_before_s
        flight.start_s = start
        flight.finish_s = start + remaining
        self.in_flight = flight
        return flight

    def discard_suspended(self) -> list[InFlightJob]:
        """Drop every parked job (end of run); returns their flights.

        Banked busy seconds move to ``lost_s`` — the phases completed
        before the park were ultimately wasted work.
        """
        flights = [
            self._suspended[job_id].flight for job_id in sorted(self._suspended)
        ]
        self._suspended.clear()
        for flight in flights:
            self.busy_s -= flight.done_before_s
            self.lost_s += flight.done_before_s
        return flights

    def crash(self, now_s: float) -> list[ProofJob]:
        """Take the node down at ``now_s``; returns its queued jobs.

        The in-flight job (if any) must be aborted by the caller
        *before* the crash so retry bookkeeping happens at one place;
        the local index cache cold-starts (keys dropped, stats kept).
        """
        if self.down:
            raise RuntimeError(f"node {self.node_id} is already down")
        if self.in_flight is not None:
            raise RuntimeError("abort the in-flight job before crashing")
        self.down = True
        self.crashes += 1
        self.clock_s = max(self.clock_s, now_s)
        self.sim_cache.clear()
        requeued = list(self._pending.values())
        self._pending.clear()
        self._pending_heap.clear()
        # parked jobs survive as *jobs* but their banked phases die with
        # the node's state: busy seconds become lost seconds and the job
        # requeues from scratch alongside the queued ones
        for job_id in sorted(self._suspended):
            flight = self._suspended[job_id].flight
            self.busy_s -= flight.done_before_s
            self.lost_s += flight.done_before_s
            requeued.append(flight.job)
        self._suspended.clear()
        return requeued

    def recover(self, now_s: float) -> None:
        """Bring the node back up at ``now_s`` with a cold cache."""
        if not self.down:
            raise RuntimeError(f"node {self.node_id} is not down")
        self.down = False
        self.clock_s = max(self.clock_s, now_s)

    # -- execute mode --------------------------------------------------------
    def flush_service(self) -> list[ProofResult]:
        """Really prove every model-completed job (execute mode only).

        The node's service re-ids jobs for its own queue; results are
        mapped back to cluster-wide ids so records and results of one
        job line up across the fleet.
        """
        jobs, self._to_execute = self._to_execute, []
        if self.service is None or not jobs:
            return []
        cluster_ids = {id(job): job.job_id for job in jobs}
        results = self.service.run(jobs, wave_s=self.config.wave_s)
        remap = {job.job_id: cluster_ids[id(job)] for job in jobs}
        for result in results:
            result.job_id = remap[result.job_id]
        for job in jobs:  # leave caller-held jobs cluster-consistent
            job.job_id = cluster_ids[id(job)]
        self.results.extend(results)
        return results

    # -- measured side (execute mode only) ----------------------------------
    @property
    def real_cache_stats(self) -> CacheStats | None:
        """The private service's index-cache stats (None in sim mode)."""
        if self.service is None:
            return None
        return self.service.cache.stats

    @property
    def measured_busy_s(self) -> float:
        """Real seconds this node spent preprocessing + proving."""
        if self.service is None:
            return 0.0
        prove = sum(r.prove_s for r in self.results)
        return self.service.cache.stats.preprocess_s + prove

    def close(self) -> None:
        """Shut down the node's private proving service (if any)."""
        if self.service is not None:
            self.service.close()

    def __repr__(self):
        state = "down" if self.down else "up"
        return (
            f"ProverNode({self.node_id!r}, {state}, jobs={self.jobs_done}, "
            f"busy={self.busy_s:.4f}s)"
        )
