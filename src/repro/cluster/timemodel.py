"""Model-time accounting for the simulated proving fleet.

The cluster simulation separates *what happens* (real jobs, real caches,
optionally real proofs) from *how long it takes at fleet scale*.  Wall
clock on one laptop cannot show 4 nodes proving concurrently, so each
node keeps a model-time clock advanced by a :class:`FleetTimeModel`:

* **prove seconds** — the plan-priced cost of proving one job on the
  node's backend.  The ``accelerator`` preset prices the paper's zkPHIRE
  exemplar (:class:`~repro.plan.AcceleratorCostModel`); ``functional``
  prices the pure-Python prover the repo actually runs
  (:class:`~repro.plan.FunctionalProverCostModel`, fitted to measured
  prove times).
* **install seconds** — charged when the node's index cache misses:
  host-side preprocessing (committing selector and σ tables) that is
  *not* accelerator-resident (:class:`~repro.plan.HostIndexInstallModel`).

This asymmetry is the serving story of the paper's fleet framing: an
accelerated prove costs far less than rebuilding a circuit index on the
host, so routing that preserves index-cache locality — affinity on the
circuit fingerprint — dominates cost-blind sharding.  It also prices
node failure (DESIGN.md §8): a crash cold-starts the node's index
cache, so the cost of a churn event is exactly the install seconds the
recovered node re-pays on its post-crash misses — no separate restart
constant is needed, the asymmetry *is* the failure cost.  Install pricing
models a *cold* host commit (plain Pippenger per column, no warmed
fixed-base tables), so in the ``functional`` preset installs land at a
few tens of percent of busy time and the policy ranking flips: with
proving itself expensive, load balance matters more than cache locality
— which is the trade-off the cluster benchmark records from both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.cost import (
    AcceleratorCostModel,
    FunctionalProverCostModel,
    HostIndexInstallModel,
    ShapeCostModel,
)
from repro.service.jobs import ProofJob

#: named :class:`FleetTimeModel` presets accepted by the cluster config
TIME_MODEL_PRESETS = ("accelerator", "functional")


@dataclass
class FleetTimeModel:
    """Pluggable (prove, install) pricing for node model time."""

    prove_model: ShapeCostModel
    install_model: ShapeCostModel
    #: preset name (or "custom") carried into summaries
    name: str = "custom"

    @classmethod
    def accelerator(cls) -> "FleetTimeModel":
        """zkPHIRE-exemplar proving, host-CPU index installs."""
        from repro.hw.accelerator import ZkPhireModel
        from repro.hw.config import AcceleratorConfig

        exemplar = ZkPhireModel(AcceleratorConfig.exemplar())
        return cls(
            prove_model=AcceleratorCostModel(exemplar),
            install_model=HostIndexInstallModel(),
            name="accelerator",
        )

    @classmethod
    def functional(cls) -> "FleetTimeModel":
        """Pure-Python proving and installs (CPU-fleet replay)."""
        return cls(
            prove_model=FunctionalProverCostModel(),
            install_model=HostIndexInstallModel(),
            name="functional",
        )

    @classmethod
    def preset(cls, name: str) -> "FleetTimeModel":
        """Resolve a :data:`TIME_MODEL_PRESETS` name to a model."""
        if name == "accelerator":
            return cls.accelerator()
        if name == "functional":
            return cls.functional()
        raise ValueError(
            f"unknown time model {name!r}; choose from {TIME_MODEL_PRESETS}"
        )

    def _shape(self, job: ProofJob) -> tuple[str, int]:
        return (job.circuit.gate_type.name, job.circuit.num_vars)

    def prove_s(self, job: ProofJob) -> float:
        """Model seconds to prove ``job`` on a warm node."""
        gate, num_vars = self._shape(job)
        return self.prove_model.shape_cost_s(gate, num_vars)

    def install_s(self, job: ProofJob) -> float:
        """Model seconds to build + install ``job``'s index on a miss."""
        gate, num_vars = self._shape(job)
        return self.install_model.shape_cost_s(gate, num_vars)
