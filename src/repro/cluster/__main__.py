"""Cluster sweep CLI: ``python -m repro.cluster`` / ``repro-cluster``.

Replays one :mod:`repro.workloads` traffic scenario over a node-count
sweep for each requested routing policy and prints one line per
(nodes, policy) cell: model throughput, makespan, load imbalance,
install share, cache hit rate, and shape spread.  Same seed → same job
stream in every cell, so the cells are directly comparable.

With ``--churn-rate`` (and/or ``--autoscale``) each cell instead runs
the failure-aware scenario path: jobs submitted at their arrival times,
a seeded crash/recovery trace targeting the requested node-downtime
fraction, deterministic crash retries, and optional plan-cost-driven
autoscaling — the printout then adds deadline-miss, retry, and churn
columns.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.carbon import (
    CARBON_POLICIES,
    CarbonConfig,
    CarbonIntensityTrace,
    node_watts,
)
from repro.cli import (
    backend_choices,
    cache_capacity,
    carbon_trace,
    int_list,
    multiplier,
    nonnegative_float,
    nonnegative_int,
    positive_float,
    positive_int,
    rate_fraction,
)
from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.core import ClusterConfig, ProvingCluster
from repro.cluster.nodes import DEFAULT_NODE_CACHE_CAPACITY, NodeConfig
from repro.cluster.routing import DEFAULT_REPLICAS, ROUTING_POLICIES
from repro.cluster.timemodel import TIME_MODEL_PRESETS
from repro.service.traffic import TrafficGenerator
from repro.workloads import SCENARIOS, trace_for_downtime

#: model seconds of churn horizon granted past the last job arrival
CHURN_HORIZON_SLACK_S = 8.0


def policy_list(text: str) -> list[str]:
    """Comma-separated routing policy names, validated + deduplicated."""
    out: list[str] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part not in ROUTING_POLICIES:
            raise argparse.ArgumentTypeError(
                f"unknown policy {part!r}; choose from "
                + ", ".join(ROUTING_POLICIES)
            )
        if part not in out:
            out.append(part)
    if not out:
        raise argparse.ArgumentTypeError(f"{text!r} names no policies")
    return out


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-cluster`` argument parser (shared with tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description=(
            "Replay a proof-request traffic scenario over a simulated "
            "multi-node proving cluster, sweeping node counts and "
            "routing policies."
        ),
    )
    parser.add_argument(
        "--scenario",
        default="zipf-mixed",
        choices=sorted(SCENARIOS),
        help="named traffic mix (repro.workloads)",
    )
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=64,
        help="number of proof requests to generate",
    )
    parser.add_argument(
        "--nodes",
        type=int_list,
        default=[1, 2, 4],
        help="comma-separated node counts to sweep (e.g. 1,2,4,8)",
    )
    parser.add_argument(
        "--policies",
        type=policy_list,
        default=list(ROUTING_POLICIES),
        help=f"comma-separated routing policies ({', '.join(ROUTING_POLICIES)})",
    )
    parser.add_argument(
        "--time-model",
        default="accelerator",
        choices=TIME_MODEL_PRESETS,
        help="fleet time model: accelerator-resident proving with "
        "host-side index installs, or all-functional CPU replay",
    )
    parser.add_argument(
        "--cache-capacity",
        type=cache_capacity,
        default=DEFAULT_NODE_CACHE_CAPACITY,
        help="LRU entries in each node's index cache (0 = unbounded)",
    )
    parser.add_argument(
        "--replicas",
        type=positive_int,
        default=DEFAULT_REPLICAS,
        help="virtual points per node on the affinity hash ring",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="traffic-generator seed (same seed = same job stream)",
    )
    parser.add_argument(
        "--wave-s",
        type=nonnegative_float,
        default=1.0,
        help="execute-mode drain-wave window in model seconds (0 = single wave)",
    )
    parser.add_argument(
        "--churn-rate",
        type=rate_fraction,
        default=0.0,
        help="target fraction of node-time spent down (0 disables churn; "
        "must be in [0, 1))",
    )
    parser.add_argument(
        "--churn-mttr",
        type=positive_float,
        default=2.0,
        help="mean model seconds a crashed node stays down",
    )
    parser.add_argument(
        "--churn-seed",
        type=int,
        default=0,
        help="churn-trace seed (same seed = same crash/recovery trace)",
    )
    parser.add_argument(
        "--max-retries",
        type=nonnegative_int,
        default=2,
        help="crash-retry budget per job in scenario runs",
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help="enable the plan-cost-driven autoscaler (scenario runs)",
    )
    parser.add_argument(
        "--scale-out-s",
        type=positive_float,
        default=2.0,
        help="mean predicted backlog s/node above which a node is added",
    )
    parser.add_argument(
        "--scale-in-s",
        type=nonnegative_float,
        default=0.25,
        help="mean predicted backlog s/node below which an idle node retires",
    )
    parser.add_argument(
        "--autoscale-interval",
        type=positive_float,
        default=0.5,
        help="model seconds between autoscaler evaluations",
    )
    parser.add_argument(
        "--provision-s",
        type=nonnegative_float,
        default=0.5,
        help="model seconds before a scaled-out node accepts traffic",
    )
    parser.add_argument(
        "--max-nodes",
        type=positive_int,
        default=8,
        help="autoscaler fleet-size ceiling",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="really prove on every node (slow; adds measured stats)",
    )
    parser.add_argument(
        "--backend",
        default="fused",
        choices=backend_choices(),
        help="field-vector backend for execute-mode proving "
        "(registry-sourced; optional backends appear when installed)",
    )
    parser.add_argument(
        "--open-loop",
        action="store_true",
        help="run the open-loop multi-tenant traffic path "
        "(repro.traffic) instead of replaying a closed batch",
    )
    parser.add_argument(
        "--rate-rps",
        type=positive_float,
        default=None,
        help="open-loop base arrival rate (default: the scenario's)",
    )
    parser.add_argument(
        "--horizon-s",
        type=positive_float,
        default=None,
        help="open-loop model-time horizon (default: stop after --jobs)",
    )
    parser.add_argument(
        "--tenants",
        type=positive_int,
        default=3,
        help="open-loop tenant count (Zipf weights, cycling SLO tiers)",
    )
    parser.add_argument(
        "--admission",
        action="store_true",
        help="gate open-loop arrivals through the admission controller "
        "(budgeted shedding + backpressure); requires --open-loop",
    )
    parser.add_argument(
        "--admission-window",
        type=positive_float,
        default=10.0,
        help="admission budget horizon in model seconds per up node",
    )
    parser.add_argument(
        "--diurnal-amplitude",
        type=rate_fraction,
        default=0.5,
        help="open-loop diurnal rate swing, a fraction in [0, 1)",
    )
    parser.add_argument(
        "--burst-mult",
        type=multiplier,
        default=3.0,
        help="open-loop burst-window rate multiplier (>= 1)",
    )
    parser.add_argument(
        "--carbon-trace",
        type=carbon_trace,
        default=None,
        help="carbon-intensity trace: 'diurnal' (defaults) or "
        "'diurnal:BASE:AMP:PERIOD' (mean gCO2/kWh, swing fraction, "
        "period s); seeded from --seed",
    )
    parser.add_argument(
        "--carbon-policy",
        default="none",
        choices=CARBON_POLICIES,
        help="carbon-aware scheduling policy (repro.carbon); "
        "'none' prices joules and grams without moving any job",
    )
    parser.add_argument(
        "--power-cap",
        type=positive_float,
        default=None,
        help="fleet power cap in watts; pauses deferrable work at "
        "checkpoint boundaries first (requires --carbon-trace)",
    )
    parser.add_argument(
        "--carbon-threshold",
        type=positive_float,
        default=None,
        help="gCO2/kWh below which carbon_waiting releases deferrable "
        "jobs (default: the trace's mean intensity)",
    )
    parser.add_argument(
        "--respect-arrivals",
        action="store_true",
        help="let node clocks idle until each job's model-time arrival "
        "instead of running saturated",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw summary rows as JSON",
    )
    return parser


def scenario_mode(args) -> bool:
    """True when the failure-aware path should run."""
    return args.churn_rate > 0 or args.autoscale


def make_carbon(args) -> CarbonConfig | None:
    """The run's :class:`CarbonConfig`, or None without --carbon-trace."""
    if args.carbon_trace is None:
        return None
    trace = CarbonIntensityTrace(seed=args.seed, **args.carbon_trace)
    return CarbonConfig(
        trace=trace,
        policy=args.carbon_policy,
        power_cap_w=args.power_cap,
        low_threshold_g_per_kwh=args.carbon_threshold,
    )


def print_carbon(rows: list[dict]) -> None:
    """The carbon table (only for runs that priced joules and grams)."""
    carbon_rows = [row for row in rows if "carbon" in row]
    if not carbon_rows:
        return
    first = carbon_rows[0]["carbon"]
    cap = first["power_cap_w"]
    print(
        f"\ncarbon (policy {first['policy']}, power model "
        f"{first['power_model']}, cap {f'{cap:g} W' if cap else 'off'})"
    )
    cheader = (
        f"{'nodes':>5}  {'policy':<12} {'energy':>9} {'carbon':>9} "
        f"{'g/proof':>9} {'held':>5} {'susp':>5} {'defer':>5}"
    )
    print(cheader)
    print("-" * len(cheader))
    for row in carbon_rows:
        carbon = row["carbon"]
        print(
            f"{row['nodes']:>5}  {row['policy']:<12} "
            f"{carbon['energy_j'] / 1e3:>8.3f}kJ "
            f"{carbon['carbon_g']:>8.4f}g "
            f"{carbon['carbon_per_proof_g']:>9.6f} "
            f"{carbon['held_starts']:>5} "
            f"{carbon['suspends']:>5} "
            f"{carbon['cap_deferrals']:>5}"
        )


def run_cell(args, num_nodes: int, policy: str) -> dict:
    """One (nodes, policy) sweep cell; scenario path when churn is on."""
    generator = TrafficGenerator(args.scenario, seed=args.seed)
    autoscale = None
    if args.autoscale:
        autoscale = AutoscalePolicy(
            scale_out_threshold_s=args.scale_out_s,
            scale_in_threshold_s=args.scale_in_s,
            interval_s=args.autoscale_interval,
            min_nodes=1,
            max_nodes=max(args.max_nodes, num_nodes),
            provision_s=args.provision_s,
        )
    config = ClusterConfig(
        num_nodes=num_nodes,
        policy=policy,
        time_model=args.time_model,
        execute=args.execute,
        respect_arrivals=args.respect_arrivals,
        replicas=args.replicas,
        max_retries=args.max_retries,
        autoscale=autoscale,
        carbon=make_carbon(args),
        node=NodeConfig(
            cache_capacity=args.cache_capacity,
            max_vars=generator.max_vars(),
            default_backend=args.backend,
            wave_s=args.wave_s or None,
        ),
    )
    jobs = generator.jobs(args.jobs)
    with ProvingCluster(config) as cluster:
        if scenario_mode(args):
            horizon = max(j.arrival_s for j in jobs) + CHURN_HORIZON_SLACK_S
            churn = trace_for_downtime(
                num_nodes,
                horizon,
                downtime_fraction=args.churn_rate,
                mttr_s=args.churn_mttr,
                seed=args.churn_seed,
            )
            cluster.run_scenario(jobs, churn=churn)
        else:
            cluster.run(jobs)
        return cluster.summary()


def run_open_loop_cell(args, num_nodes: int, policy: str) -> dict:
    """One (nodes, policy) open-loop cell; returns its traffic summary."""
    # imported here so the closed-batch sweep keeps its import surface
    from repro.cluster.admission import AdmissionPolicy
    from repro.traffic import (
        OpenLoopEngine,
        OpenLoopTraffic,
        default_tenants,
        make_admission,
        traffic_summary,
    )

    traffic = OpenLoopTraffic(
        args.scenario,
        seed=args.seed,
        tenants=default_tenants(args.tenants),
        rate_rps=args.rate_rps,
        diurnal_amplitude=args.diurnal_amplitude,
        burst_mult=args.burst_mult,
        max_jobs=None if args.horizon_s is not None else args.jobs,
        horizon_s=args.horizon_s,
    )
    config = ClusterConfig(
        num_nodes=num_nodes,
        policy=policy,
        time_model=args.time_model,
        replicas=args.replicas,
        max_retries=args.max_retries,
        carbon=make_carbon(args),
        node=NodeConfig(
            cache_capacity=args.cache_capacity,
            max_vars=traffic.max_vars(),
        ),
    )
    with ProvingCluster(config) as cluster:
        admission = None
        if args.admission:
            admission = make_admission(
                cluster,
                AdmissionPolicy(window_s=args.admission_window),
                traffic.tenants,
            )
        engine = OpenLoopEngine(cluster, traffic, admission=admission)
        churn = ()
        if args.churn_rate > 0:
            churn = trace_for_downtime(
                num_nodes,
                args.horizon_s,
                downtime_fraction=args.churn_rate,
                mttr_s=args.churn_mttr,
                seed=args.churn_seed,
            )
        engine.run_open_loop(churn=churn)
        summary = traffic_summary(engine)
        summary["nodes"] = num_nodes
        summary["policy"] = policy
        return summary


def print_open_loop(args, rows: list[dict]) -> None:
    """The open-loop table: goodput, shedding, SLO, tail, fairness."""
    scenario = SCENARIOS[args.scenario]
    print(
        f"scenario   : {args.scenario} ({scenario.description})\n"
        f"open loop  : rate {args.rate_rps or scenario.rate_rps} rps   "
        f"tenants: {args.tenants}   "
        f"admission: {'on' if args.admission else 'off'}   "
        f"seed: {args.seed}"
    )
    header = (
        f"{'nodes':>5}  {'policy':<12} {'offered':>8} {'shed%':>6} "
        f"{'goodput':>8} {'slo%':>6} {'p99':>9} {'jain':>5} {'pauses':>6}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        model = row["model"]
        print(
            f"{row['nodes']:>5}  {row['policy']:<12} "
            f"{row['offered']:>8} "
            f"{row['shed_rate'] * 100:>5.1f}% "
            f"{model['goodput_jobs_per_s']:>8.2f} "
            f"{model['slo_attainment'] * 100:>5.1f}% "
            f"{model['latency_s']['p99']:>8.3f}s "
            f"{row['jain_fairness']:>5.2f} "
            f"{row['pauses']:>6}"
        )


def main(argv: list[str] | None = None) -> int:
    """Run the sweep and print (or JSON-dump) one row per cell."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.autoscale and args.scale_in_s >= args.scale_out_s:
        parser.error(
            f"--scale-in-s ({args.scale_in_s}) must be below "
            f"--scale-out-s ({args.scale_out_s})"
        )
    if args.admission and not args.open_loop:
        parser.error("--admission requires --open-loop")
    if args.open_loop and args.execute:
        parser.error("--open-loop is a model-time path; drop --execute")
    if args.open_loop and args.autoscale:
        parser.error(
            "--open-loop does not take --autoscale (admission and "
            "backpressure bound the backlog instead)"
        )
    if args.open_loop and args.churn_rate > 0 and args.horizon_s is None:
        parser.error("--open-loop with --churn-rate needs --horizon-s "
                     "to size the churn trace")
    if args.carbon_trace is None:
        if args.carbon_policy != "none":
            parser.error(
                f"--carbon-policy {args.carbon_policy} needs --carbon-trace"
            )
        if args.power_cap is not None:
            parser.error("--power-cap needs --carbon-trace")
        if args.carbon_threshold is not None:
            parser.error("--carbon-threshold needs --carbon-trace")
    if args.power_cap is not None:
        busy_w = node_watts(args.time_model).busy_w
        if args.power_cap < busy_w:
            parser.error(
                f"--power-cap ({args.power_cap:g} W) is below one busy "
                f"node ({busy_w:g} W) for --time-model {args.time_model}; "
                "no job could ever start"
            )
    if args.open_loop:
        rows = [
            run_open_loop_cell(args, num_nodes, policy)
            for num_nodes in sorted(args.nodes)
            for policy in args.policies
        ]
        if args.json:
            print(
                json.dumps({"scenario": args.scenario, "rows": rows}, indent=2)
            )
        else:
            print_open_loop(args, rows)
            print_carbon(rows)
        return 0
    rows = [
        run_cell(args, num_nodes, policy)
        for num_nodes in sorted(args.nodes)
        for policy in args.policies
    ]
    if args.json:
        print(json.dumps({"scenario": args.scenario, "rows": rows}, indent=2))
        return 0

    scenario = SCENARIOS[args.scenario]
    print(
        f"scenario   : {args.scenario} ({scenario.description})\n"
        f"time model : {args.time_model}   jobs: {args.jobs}   "
        f"seed: {args.seed}   node cache: "
        f"{args.cache_capacity or 'unbounded'}"
    )
    header = (
        f"{'nodes':>5}  {'policy':<12} {'jobs/s':>9} {'makespan':>9} "
        f"{'imbalance':>9} {'install%':>8} {'hit-rate':>8} {'spread':>6} "
        f"{'p95':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        model = row["model"]
        cache = row["cache"]["sim"]
        print(
            f"{row['nodes']:>5}  {row['policy']:<12} "
            f"{model['throughput_jobs_per_s']:>9.2f} "
            f"{model['makespan_s']:>8.3f}s "
            f"{model['load_imbalance']:>9.2f} "
            f"{model['install_share'] * 100:>7.1f}% "
            f"{cache['hit_rate']:>8.2f} "
            f"{row['routing']['shape_spread']:>6.2f} "
            f"{model['latency_s']['p95']:>8.3f}s"
        )
    if scenario_mode(args):
        print(
            f"\nresilience (churn rate {args.churn_rate}, "
            f"mttr {args.churn_mttr}s, max retries {args.max_retries}, "
            f"autoscale {'on' if args.autoscale else 'off'})"
        )
        rheader = (
            f"{'nodes':>5}  {'policy':<12} {'miss%':>6} {'failed':>6} "
            f"{'retries':>7} {'requeue':>7} {'crashes':>7} {'scale+':>6} "
            f"{'scale-':>6}"
        )
        print(rheader)
        print("-" * len(rheader))
        for row in rows:
            deadlines = row.get("deadlines", {})
            resilience = row.get("resilience", {})
            autoscale = resilience.get("autoscale", {})
            print(
                f"{row['nodes']:>5}  {row['policy']:<12} "
                f"{deadlines.get('miss_rate', 0.0) * 100:>5.1f}% "
                f"{resilience.get('failed_jobs', 0):>6} "
                f"{resilience.get('retries', 0):>7} "
                f"{resilience.get('requeues', 0):>7} "
                f"{resilience.get('crashes', 0):>7} "
                f"{autoscale.get('scale_outs', 0):>6} "
                f"{autoscale.get('scale_ins', 0):>6}"
            )
    print_carbon(rows)
    if args.execute:
        print("\nmeasured (execute mode): real per-node caches + prove times")
        for row in rows:
            real = row["cache"].get("real", {})
            measured = row.get("measured", {})
            print(
                f"{row['nodes']:>5}  {row['policy']:<12} "
                f"real hit-rate {real.get('hit_rate', 0.0):.2f}  "
                f"preprocess {real.get('preprocess_s', 0.0):.3f}s  "
                f"measured makespan {measured.get('makespan_s', 0.0):.3f}s"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
