"""Cluster sweep CLI: ``python -m repro.cluster`` / ``repro-cluster``.

Replays one :mod:`repro.workloads` traffic scenario over a node-count
sweep for each requested routing policy and prints one line per
(nodes, policy) cell: model throughput, makespan, load imbalance,
install share, cache hit rate, and shape spread.  Same seed → same job
stream in every cell, so the cells are directly comparable.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli import cache_capacity, int_list, nonnegative_float, positive_int
from repro.cluster.core import ClusterConfig, ProvingCluster
from repro.cluster.nodes import DEFAULT_NODE_CACHE_CAPACITY, NodeConfig
from repro.cluster.routing import DEFAULT_REPLICAS, ROUTING_POLICIES
from repro.cluster.timemodel import TIME_MODEL_PRESETS
from repro.service.traffic import TrafficGenerator
from repro.workloads import SCENARIOS


def policy_list(text: str) -> list[str]:
    out: list[str] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part not in ROUTING_POLICIES:
            raise argparse.ArgumentTypeError(
                f"unknown policy {part!r}; choose from "
                + ", ".join(ROUTING_POLICIES)
            )
        if part not in out:
            out.append(part)
    if not out:
        raise argparse.ArgumentTypeError(f"{text!r} names no policies")
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description=(
            "Replay a proof-request traffic scenario over a simulated "
            "multi-node proving cluster, sweeping node counts and "
            "routing policies."
        ),
    )
    parser.add_argument(
        "--scenario",
        default="zipf-mixed",
        choices=sorted(SCENARIOS),
        help="named traffic mix (repro.workloads)",
    )
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=64,
        help="number of proof requests to generate",
    )
    parser.add_argument(
        "--nodes",
        type=int_list,
        default=[1, 2, 4],
        help="comma-separated node counts to sweep (e.g. 1,2,4,8)",
    )
    parser.add_argument(
        "--policies",
        type=policy_list,
        default=list(ROUTING_POLICIES),
        help=f"comma-separated routing policies ({', '.join(ROUTING_POLICIES)})",
    )
    parser.add_argument(
        "--time-model",
        default="accelerator",
        choices=TIME_MODEL_PRESETS,
        help="fleet time model: accelerator-resident proving with "
        "host-side index installs, or all-functional CPU replay",
    )
    parser.add_argument(
        "--cache-capacity",
        type=cache_capacity,
        default=DEFAULT_NODE_CACHE_CAPACITY,
        help="LRU entries in each node's index cache (0 = unbounded)",
    )
    parser.add_argument(
        "--replicas",
        type=positive_int,
        default=DEFAULT_REPLICAS,
        help="virtual points per node on the affinity hash ring",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="traffic-generator seed (same seed = same job stream)",
    )
    parser.add_argument(
        "--wave-s",
        type=nonnegative_float,
        default=1.0,
        help="execute-mode drain-wave window in model seconds (0 = single wave)",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="really prove on every node (slow; adds measured stats)",
    )
    parser.add_argument(
        "--respect-arrivals",
        action="store_true",
        help="let node clocks idle until each job's model-time arrival "
        "instead of running saturated",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw summary rows as JSON",
    )
    return parser


def run_cell(args, num_nodes: int, policy: str) -> dict:
    generator = TrafficGenerator(args.scenario, seed=args.seed)
    config = ClusterConfig(
        num_nodes=num_nodes,
        policy=policy,
        time_model=args.time_model,
        execute=args.execute,
        respect_arrivals=args.respect_arrivals,
        replicas=args.replicas,
        node=NodeConfig(
            cache_capacity=args.cache_capacity,
            max_vars=generator.max_vars(),
            wave_s=args.wave_s or None,
        ),
    )
    with ProvingCluster(config) as cluster:
        cluster.run(generator.jobs(args.jobs))
        return cluster.summary()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rows = [
        run_cell(args, num_nodes, policy)
        for num_nodes in sorted(args.nodes)
        for policy in args.policies
    ]
    if args.json:
        print(json.dumps({"scenario": args.scenario, "rows": rows}, indent=2))
        return 0

    scenario = SCENARIOS[args.scenario]
    print(
        f"scenario   : {args.scenario} ({scenario.description})\n"
        f"time model : {args.time_model}   jobs: {args.jobs}   "
        f"seed: {args.seed}   node cache: "
        f"{args.cache_capacity or 'unbounded'}"
    )
    header = (
        f"{'nodes':>5}  {'policy':<12} {'jobs/s':>9} {'makespan':>9} "
        f"{'imbalance':>9} {'install%':>8} {'hit-rate':>8} {'spread':>6} "
        f"{'p95':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        model = row["model"]
        cache = row["cache"]["sim"]
        print(
            f"{row['nodes']:>5}  {row['policy']:<12} "
            f"{model['throughput_jobs_per_s']:>9.2f} "
            f"{model['makespan_s']:>8.3f}s "
            f"{model['load_imbalance']:>9.2f} "
            f"{model['install_share'] * 100:>7.1f}% "
            f"{cache['hit_rate']:>8.2f} "
            f"{row['routing']['shape_spread']:>6.2f} "
            f"{model['latency_s']['p95']:>8.3f}s"
        )
    if args.execute:
        print("\nmeasured (execute mode): real per-node caches + prove times")
        for row in rows:
            real = row["cache"].get("real", {})
            measured = row.get("measured", {})
            print(
                f"{row['nodes']:>5}  {row['policy']:<12} "
                f"real hit-rate {real.get('hit_rate', 0.0):.2f}  "
                f"preprocess {real.get('preprocess_s', 0.0):.3f}s  "
                f"measured makespan {measured.get('makespan_s', 0.0):.3f}s"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
