"""The simulated multi-node proving cluster (route → shard → drain).

:class:`ProvingCluster` shards a :class:`~repro.service.jobs.ProofJob`
stream over N :class:`~repro.cluster.nodes.ProverNode`\\ s through a
:class:`~repro.cluster.routing.ClusterRouter`.  Model time comes from a
:class:`~repro.cluster.timemodel.FleetTimeModel`; with
``config.execute`` the nodes additionally prove for real through their
private :class:`~repro.service.ProvingService` stacks, so cache hit
rates and preprocess seconds in the summary are measured, not modelled.

Every run is executed by the discrete-event
:class:`~repro.cluster.engine.ClusterEngine` on :mod:`repro.sim`:
:meth:`ProvingCluster.run` / :meth:`drain` is the failure-free drain of
pre-routed jobs, and :meth:`run_scenario` is the failure-aware path —
jobs submitted at their arrival times, node churn from a seeded trace,
deterministic retry/requeue that excludes the failed node, and optional
plan-cost-driven autoscaling (:class:`~repro.cluster.autoscale.\
AutoscalePolicy`).

Nodes can be added or removed between drains; the affinity policy's
consistent-hash ring then moves only the ~K/N fingerprints that land on
the changed node, so warm caches elsewhere survive rebalancing.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterable

from repro.carbon.runtime import CarbonConfig, CarbonRuntime
from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.engine import ClusterEngine
from repro.cluster.metrics import cluster_summary
from repro.cluster.nodes import JobRecord, NodeConfig, ProverNode
from repro.cluster.routing import DEFAULT_REPLICAS, ClusterRouter
from repro.cluster.timemodel import FleetTimeModel
from repro.fleet.events import EventLog
from repro.service.jobs import ProofJob, ProofResult
from repro.workloads.churn import ChurnEvent


@dataclass
class ClusterConfig:
    """Knobs for one :class:`ProvingCluster`."""

    num_nodes: int = 4
    #: ``round_robin`` | ``least_loaded`` | ``affinity``
    policy: str = "affinity"
    #: :data:`~repro.cluster.timemodel.TIME_MODEL_PRESETS` preset name
    time_model: str = "accelerator"
    #: shared per-node configuration
    node: NodeConfig = dc_field(default_factory=NodeConfig)
    #: prove for real through per-node services (slower, measured)
    execute: bool = False
    #: make node clocks wait for model-time arrivals instead of running
    #: saturated (throughput numbers then measure offered load)
    respect_arrivals: bool = False
    #: virtual points per node on the affinity hash ring
    replicas: int = DEFAULT_REPLICAS
    #: crash-retry budget per job in :meth:`ProvingCluster.run_scenario`
    #: (a job lost to its ``max_retries + 1``-th crash is failed)
    max_retries: int = 2
    #: plan-cost-driven fleet sizing for scenario runs (None = fixed)
    autoscale: AutoscalePolicy | None = None
    #: carbon/power accounting and policies (None = carbon-free run);
    #: see :mod:`repro.carbon`
    carbon: "CarbonConfig | None" = None


class ProvingCluster:
    """A router plus N prover nodes; see the module docstring."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        time_model: FleetTimeModel | None = None,
    ):
        self.config = config = config or ClusterConfig()
        if config.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if config.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if time_model is None:
            time_model = FleetTimeModel.preset(config.time_model)
        self.time_model = time_model
        self.nodes: dict[str, ProverNode] = {}
        self._retired: list[ProverNode] = []
        self._next_node = 0
        self._next_id = 0
        node_ids = [self._new_node_id() for _ in range(config.num_nodes)]
        for node_id in node_ids:
            self.nodes[node_id] = self._make_node(node_id)
        self.router = ClusterRouter(
            config.policy,
            node_ids,
            cost_model=time_model.prove_model,
            replicas=config.replicas,
        )
        self.records: list[JobRecord] = []
        #: jobs dropped by scenario runs (retries exhausted / stranded)
        self.failed_jobs: list[ProofJob] = []
        #: resilience section of the last scenario run (None = none ran)
        self.resilience: dict | None = None
        #: structured event log of the last run (shared fleet schema;
        #: None until a drain or scenario ran)
        self.events: EventLog | None = None
        #: carbon runtime of the last run (None until one ran with a
        #: ``config.carbon``); holds joule/gram accounting and counters
        self.carbon: "CarbonRuntime | None" = None

    def _new_node_id(self) -> str:
        node_id = f"node-{self._next_node}"
        self._next_node += 1
        return node_id

    def _make_node(self, node_id: str) -> ProverNode:
        return ProverNode(
            node_id,
            self.config.node,
            self.time_model,
            execute=self.config.execute,
        )

    # -- membership ---------------------------------------------------------
    def add_node(self) -> str:
        """Join a fresh node; affinity moves ~K/N fingerprints to it."""
        node_id = self._new_node_id()
        self.router.add_node(node_id)
        self.nodes[node_id] = self._make_node(node_id)
        return node_id

    def remove_node(self, node_id: str) -> None:
        """Retire ``node_id`` (its drained history stays in summaries)."""
        node = self.nodes.get(node_id)
        if node is None:
            raise KeyError(f"unknown node {node_id!r}")
        if node.pending or node.in_flight is not None or node.suspended_ids:
            raise ValueError(
                f"node {node_id!r} still has {node.pending} pending jobs; "
                "drain before removing it"
            )
        self.router.remove_node(node_id)
        node.close()
        self._retired.append(self.nodes.pop(node_id))

    # -- submission / draining ----------------------------------------------
    def check_fits(self, job: ProofJob) -> None:
        """Reject circuits larger than the per-node SRS allows."""
        max_vars = self.config.node.max_vars
        if job.circuit.num_vars > max_vars:
            raise ValueError(
                f"circuit μ={job.circuit.num_vars} exceeds the cluster's "
                f"node SRS (max μ={max_vars})"
            )

    def next_job_id(self) -> int:
        """Stamp the next cluster-wide job id."""
        job_id = self._next_id
        self._next_id += 1
        return job_id

    def submit(self, job: ProofJob) -> str:
        """Route one job; returns the chosen node id."""
        self.check_fits(job)
        job.job_id = self.next_job_id()
        node_id = self.router.assign(job)
        self.nodes[node_id].submit(job)
        return node_id

    def drain(self) -> list[JobRecord]:
        """Drain every node; returns this wave's records in finish order."""
        engine = ClusterEngine(
            self, respect_arrivals=self.config.respect_arrivals
        )
        records = engine.run_wave()
        self.events = engine.events
        self.carbon = engine.carbon
        return records

    def run(self, jobs: list[ProofJob]) -> list[JobRecord]:
        """Submit and drain a whole job stream (failure-free)."""
        for job in jobs:
            self.submit(job)
        return self.drain()

    def run_scenario(
        self,
        jobs: list[ProofJob],
        *,
        churn: Iterable[ChurnEvent] = (),
    ) -> list[JobRecord]:
        """Failure-aware run: arrival-driven submission, churn, retries.

        Jobs are routed at their ``arrival_s`` (arrivals are always
        respected here); the churn trace crashes and recovers nodes by
        initial index; ``config.max_retries`` bounds per-job crash
        retries and ``config.autoscale`` (if set) resizes the fleet.
        Completed records are returned; dropped jobs land in
        :attr:`failed_jobs` and the run's failure/autoscale accounting
        in :attr:`resilience` (both folded into :meth:`summary`).
        """
        for job in jobs:
            self.check_fits(job)
        engine = ClusterEngine(self, respect_arrivals=True)
        records = engine.run_scenario(jobs, churn=churn)
        self.events = engine.events
        self.carbon = engine.carbon
        stats = engine.stats.as_dict()
        if self.resilience is None:
            self.resilience = stats
        else:  # accumulate across scenario runs on one cluster
            merged = self.resilience
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    merged[key] = round(merged[key] + value, 6)
            merged["autoscale"]["scale_outs"] += stats["autoscale"]["scale_outs"]
            merged["autoscale"]["scale_ins"] += stats["autoscale"]["scale_ins"]
            merged["autoscale"]["actions"].extend(stats["autoscale"]["actions"])
        return records

    # -- reporting / lifecycle ----------------------------------------------
    @property
    def results(self) -> list[ProofResult]:
        """Execute-mode proof results across all nodes (drain order)."""
        out: list[ProofResult] = []
        for node in self._all_nodes():
            out.extend(node.results)
        return out

    def _all_nodes(self) -> list[ProverNode]:
        active = [self.nodes[node_id] for node_id in sorted(self.nodes)]
        return self._retired + active

    def summary(self) -> dict:
        """One dict of model/cache/routing (and resilience) metrics."""
        return cluster_summary(
            self._all_nodes(),
            self.records,
            policy=self.config.policy,
            time_model=self.time_model.name,
            failed_jobs=self.failed_jobs,
            resilience=self.resilience,
            deadlines=self.config.respect_arrivals or self.resilience is not None,
            carbon=(
                self.carbon.as_dict(self.records, self._all_nodes())
                if self.carbon is not None
                else None
            ),
        )

    def close(self) -> None:
        """Shut down every node's private service (execute mode)."""
        for node in self._all_nodes():
            node.close()

    def __enter__(self) -> "ProvingCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
