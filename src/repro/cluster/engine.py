"""The cluster's discrete-event executor (on :mod:`repro.sim`).

:class:`ClusterEngine` drives every :class:`~repro.cluster.core.\
ProvingCluster` run through one :class:`~repro.sim.Simulator`, so job
completions, node crashes, recoveries, retries, and autoscaler ticks
interleave on a single deterministic model-time axis:

* :meth:`run_wave` — the failure-free drain: every pre-routed pending
  job is processed per node in ``(arrival, job_id)`` order.  This is
  event-scheduled but arithmetically identical to the pre-engine
  sequential drain, so ``BENCH_cluster.json`` numbers are unchanged
  (``tests/test_cluster.py`` holds the sim/execute equality).
* :meth:`run_scenario` — the failure-aware run: jobs are *submitted at
  their arrival times* and routed on arrival; a churn trace
  (:mod:`repro.workloads.churn`) crashes and recovers nodes mid-stream;
  an optional :class:`~repro.cluster.autoscale.AutoscalePolicy` resizes
  the fleet from the plan-predicted backlog signal.

Failure semantics: a crash loses the node's *in-flight* job (the lost
model seconds are accounted), cold-starts its index cache, and takes
its ring points away so only ~K/N fingerprints remap.  The lost job's
``attempt`` is bumped and it is requeued through the router with the
failed node excluded — deterministically, so the same seed and trace
give identical retry counts (and, in execute mode, identical proof
bytes).  Queued-but-unstarted jobs requeue without a retry penalty
(queue state is coordinator-side).  Jobs that exhaust ``max_retries``
or strand with the whole fleet down are *failed* and count as deadline
misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING, Iterable

from repro.cluster.nodes import JobRecord, ProverNode
from repro.cluster.records import RetryPolicy
from repro.cluster.routing import NoRoutableNodeError
from repro.fleet.events import EventLog
from repro.service.jobs import ProofJob
from repro.sim import EventHandle, Simulator, TraceSource, install
from repro.workloads.churn import ChurnEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.core import ProvingCluster

#: same-time event priorities: arrivals first, then starts and
#: finishes, then churn, then autoscaler ticks — a fixed total order
#: so simultaneous events never depend on scheduling accidents
PRIO_ARRIVAL = 0
PRIO_START = 1
PRIO_FINISH = 2
PRIO_CHURN = 3
PRIO_TICK = 4


@dataclass
class ResilienceStats:
    """Failure/retry/autoscale accounting for one scenario run.

    Counters cover the *serving window*: once the last job resolves,
    the remaining churn trace is cancelled, so two cells replaying one
    trace can legitimately report slightly different crash/recovery
    counts when their jobs finish at different times.
    """

    crashes: int = 0
    recoveries: int = 0
    #: in-flight jobs lost to a crash and requeued (attempt bumped)
    retries: int = 0
    #: queued jobs moved off a crashed node (no retry penalty)
    requeues: int = 0
    #: times a job had to park because the whole fleet was down
    parked: int = 0
    #: retry exclusions waived because only excluded nodes were up
    exclusion_waivers: int = 0
    #: jobs dropped: retries exhausted or stranded with the fleet down
    failed: int = 0
    #: model seconds of in-flight work destroyed by crashes
    lost_model_s: float = 0.0
    scale_outs: int = 0
    scale_ins: int = 0
    autoscale_actions: list[dict] = dc_field(default_factory=list)

    def as_dict(self) -> dict:
        """The ``resilience`` section of the cluster summary."""
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "retries": self.retries,
            "requeues": self.requeues,
            "parked": self.parked,
            "exclusion_waivers": self.exclusion_waivers,
            "failed_jobs": self.failed,
            "lost_model_s": round(self.lost_model_s, 6),
            "autoscale": {
                "scale_outs": self.scale_outs,
                "scale_ins": self.scale_ins,
                "actions": self.autoscale_actions,
            },
        }


class ClusterEngine:
    """One event-driven cluster run; see the module docstring."""

    def __init__(self, cluster: "ProvingCluster", *, respect_arrivals: bool = False):
        self.cluster = cluster
        self.respect = respect_arrivals
        self.sim = Simulator()
        self.stats = ResilienceStats()
        self.records: list[JobRecord] = []
        self.failed_jobs: list[ProofJob] = []
        self._start_handles: dict[str, EventHandle] = {}
        self._finish_handles: dict[str, EventHandle] = {}
        self._parked: list[ProofJob] = []
        self._cancellable: list[EventHandle] = []
        self._tick_handle: EventHandle | None = None
        self._total_jobs = 0
        self._scenario = False
        self.max_retries = cluster.config.max_retries
        #: shared crash-retry contract (same object family the fleet uses)
        self.retry_policy = RetryPolicy(cluster.config.max_retries)
        #: structured JSONL event log on the model clock (shared schema
        #: with the real fleet — see :mod:`repro.fleet.events`)
        self.events = EventLog(clock=lambda: self.sim.now)

    # -- node work loop ------------------------------------------------------
    def _kick(self, node: ProverNode) -> None:
        """(Re)arm ``node``: start its next job now or at its ready time."""
        if node.down or node.in_flight is not None:
            return
        handle = self._start_handles.pop(node.node_id, None)
        if handle is not None:
            handle.cancel()
        job = node.peek_next(respect_arrivals=self.respect)
        if job is None:
            return
        arrival = job.arrival_s if self.respect else 0.0
        ready = max(node.clock_s, arrival)
        if ready <= self.sim.now:
            self._begin(node)
        else:
            self._start_handles[node.node_id] = self.sim.schedule(
                ready, lambda: self._start_event(node), priority=PRIO_START
            )

    def _start_event(self, node: ProverNode) -> None:
        self._start_handles.pop(node.node_id, None)
        if node.down or node.in_flight is not None:
            return
        self._begin(node)

    def _begin(self, node: ProverNode) -> None:
        job = node.peek_next(respect_arrivals=self.respect)
        if job is None:
            return
        flight = node.begin(job, self.sim.now, respect_arrivals=self.respect)
        self._finish_handles[node.node_id] = self.sim.schedule(
            flight.finish_s, lambda: self._finish(node), priority=PRIO_FINISH
        )

    def _finish(self, node: ProverNode) -> None:
        self._finish_handles.pop(node.node_id, None)
        job = node.in_flight.job
        record = node.complete()
        self.records.append(record)
        self.events.emit(
            "job_completed",
            job_id=record.job_id,
            node_id=node.node_id,
            attempt=record.attempt,
            cache_hit=record.cache_hit,
        )
        if self._scenario:
            self.cluster.router.release(
                node.node_id, self.cluster.router.job_cost_s(job)
            )
            self._check_done()
        self._kick(node)

    # -- scenario-side routing ----------------------------------------------
    def _route(self, job: ProofJob) -> str | None:
        """Route one job, parking it when nothing is routable.

        Node exclusion is best-effort: when the exclusion set would
        leave a job with no home while other nodes are up, the
        exclusion is waived (and counted) rather than starving the job
        — a recovered loser is still a better home than no home.  Jobs
        park only when the whole fleet is down.
        """
        router = self.cluster.router
        try:
            node_id = router.assign(job, exclude=job.excluded_node_ids)
        except NoRoutableNodeError:
            if not router.up_node_ids:
                self.stats.parked += 1
                self._parked.append(job)
                return None
            self.stats.exclusion_waivers += 1
            node_id = router.assign(job)
        node = self.cluster.nodes[node_id]
        node.submit(job)
        self.events.emit(
            "job_assigned",
            job_id=job.job_id,
            node_id=node_id,
            attempt=job.attempt,
        )
        self._kick(node)
        return node_id

    def _unpark(self) -> None:
        """Retry every parked job after a node became routable."""
        parked, self._parked = self._parked, []
        for job in sorted(parked, key=lambda j: (j.arrival_s, j.job_id)):
            self._route(job)

    def _submit(self, job: ProofJob) -> None:
        """Arrival event: id-stamp and route one job."""
        self.cluster.check_fits(job)
        job.job_id = self.cluster.next_job_id()
        self.events.emit("job_accepted", job_id=job.job_id, tag=job.tag)
        self._route(job)

    def _fail(self, job: ProofJob) -> None:
        self.stats.failed += 1
        self.failed_jobs.append(job)
        self.events.emit("job_failed", job_id=job.job_id, attempt=job.attempt)
        self._check_done()

    def _check_done(self) -> None:
        """Stop churn/autoscale event streams once every job resolved."""
        if len(self.records) + len(self.failed_jobs) < self._total_jobs:
            return
        for handle in self._cancellable:
            handle.cancel()
        self._cancellable.clear()
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    # -- churn ---------------------------------------------------------------
    def _on_churn(self, event: ChurnEvent) -> None:
        node = self.cluster.nodes.get(f"node-{event.node_index}")
        if node is None:
            return  # retired by the autoscaler; churn no longer applies
        if event.kind == "crash":
            if not node.down:
                self._crash(node)
        elif node.down:
            self._recover(node)

    def _crash(self, node: ProverNode) -> None:
        self.stats.crashes += 1
        handle = self._start_handles.pop(node.node_id, None)
        if handle is not None:
            handle.cancel()
        retry_job: ProofJob | None = None
        if node.in_flight is not None:
            handle = self._finish_handles.pop(node.node_id, None)
            if handle is not None:
                handle.cancel()
            retry_job, lost = node.abort(self.sim.now)
            self.stats.lost_model_s += lost
        requeued = node.crash(self.sim.now)
        self.cluster.router.mark_down(node.node_id)
        self.events.emit("node_down", node_id=node.node_id, reason="crash")
        for job in sorted(requeued, key=lambda j: (j.arrival_s, j.job_id)):
            self.stats.requeues += 1
            self._route(job)
        if retry_job is not None:
            self.events.emit(
                "job_crashed",
                job_id=retry_job.job_id,
                node_id=node.node_id,
                attempt=retry_job.attempt,
            )
            if self.retry_policy.register_loss(retry_job, node.node_id):
                self.stats.retries += 1
                self.events.emit(
                    "job_retried",
                    job_id=retry_job.job_id,
                    attempt=retry_job.attempt,
                )
                self._route(retry_job)
            else:
                self._fail(retry_job)

    def _recover(self, node: ProverNode) -> None:
        self.stats.recoveries += 1
        node.recover(self.sim.now)
        self.cluster.router.mark_up(node.node_id)
        self.events.emit("node_up", node_id=node.node_id, reason="recover")
        self._unpark()
        self._kick(node)

    # -- autoscaler ----------------------------------------------------------
    def _backlog_signal_s(self) -> float | None:
        """Mean predicted outstanding seconds per up node (None = all down).

        Parked jobs count toward the backlog — they are exactly the
        work the fleet currently has no capacity for.
        """
        router = self.cluster.router
        up = router.up_node_ids
        if not up:
            return None
        outstanding = router.outstanding
        parked = sum(router.job_cost_s(job) for job in self._parked)
        return (sum(outstanding.node_s(n) for n in up) + parked) / len(up)

    def _tick(self) -> None:
        self._tick_handle = None
        if len(self.records) + len(self.failed_jobs) >= self._total_jobs:
            return
        policy = self.cluster.config.autoscale
        signal = self._backlog_signal_s()
        can_grow = len(self.cluster.nodes) < policy.max_nodes
        if signal is None:
            # whole fleet down: provision a replacement for parked work
            if self._parked and can_grow:
                self._scale_out(0.0)
        elif signal > policy.scale_out_threshold_s and can_grow:
            self._scale_out(signal)
        elif signal < policy.scale_in_threshold_s:
            self._scale_in(signal)
        if len(self.sim):
            # only re-arm while something else can still happen; with an
            # empty heap the state is frozen between ticks, so ticking
            # on would spin the simulation forever (stranded jobs are
            # failed at finalize instead)
            self._tick_handle = self.sim.schedule_after(
                policy.interval_s, self._tick, priority=PRIO_TICK
            )

    def _scale_out(self, signal: float) -> None:
        policy = self.cluster.config.autoscale
        node_id = self.cluster.add_node()
        node = self.cluster.nodes[node_id]
        self.stats.scale_outs += 1
        self.stats.autoscale_actions.append(
            {
                "at_s": round(self.sim.now, 6),
                "action": "scale_out",
                "node_id": node_id,
                "signal_s": round(signal, 6),
                "nodes": len(self.cluster.nodes),
            }
        )
        if policy.provision_s > 0:
            # not routable until provisioned: down-marked, then revived
            node.down = True
            self.cluster.router.mark_down(node_id)
            self.sim.schedule_after(
                policy.provision_s,
                lambda: self._provisioned(node),
                priority=PRIO_CHURN,
            )
        else:
            self.events.emit(
                "node_up", node_id=node_id, reason="scale_out"
            )
            self._unpark()

    def _provisioned(self, node: ProverNode) -> None:
        if self.cluster.nodes.get(node.node_id) is not node:
            return  # retired before provisioning finished
        node.recover(self.sim.now)
        self.cluster.router.mark_up(node.node_id)
        self.events.emit("node_up", node_id=node.node_id, reason="scale_out")
        self._unpark()
        self._kick(node)

    def _scale_in(self, signal: float) -> None:
        policy = self.cluster.config.autoscale
        router = self.cluster.router
        if len(router.up_node_ids) <= policy.min_nodes:
            return
        idle = [
            node_id
            for node_id in router.up_node_ids
            if self.cluster.nodes[node_id].idle
        ]
        if not idle:
            return
        # retire the newest idle node: scale-in unwinds scale-out
        node_id = max(idle, key=lambda n: int(n.rsplit("-", 1)[1]))
        node = self.cluster.nodes[node_id]
        node.flush_service()  # execute mode: prove its backlog first
        self.cluster.remove_node(node_id)
        self.events.emit("node_down", node_id=node_id, reason="scale_in")
        self.stats.scale_ins += 1
        self.stats.autoscale_actions.append(
            {
                "at_s": round(self.sim.now, 6),
                "action": "scale_in",
                "node_id": node_id,
                "signal_s": round(signal, 6),
                "nodes": len(self.cluster.nodes),
            }
        )

    # -- entry points --------------------------------------------------------
    def _finalize(self) -> list[JobRecord]:
        """Sort, record, and really prove (execute mode) this run's work."""
        for job in sorted(self._parked, key=lambda j: (j.arrival_s, j.job_id)):
            self._fail(job)  # stranded: fleet was down to the end
        self._parked = []
        self.records.sort(key=lambda r: (r.finish_s, r.job_id))
        self.cluster.records.extend(self.records)
        self.cluster.failed_jobs.extend(self.failed_jobs)
        for node_id in sorted(self.cluster.nodes):
            self.cluster.nodes[node_id].flush_service()
        return self.records

    def run_wave(self) -> list[JobRecord]:
        """Drain every pre-routed pending job (the failure-free path)."""
        self._scenario = False
        self._total_jobs = sum(
            node.pending for node in self.cluster.nodes.values()
        )
        for node_id in sorted(self.cluster.nodes):
            self._kick(self.cluster.nodes[node_id])
        self.sim.run()
        records = self._finalize()
        for node_id in sorted(self.cluster.nodes):
            self.cluster.router.release(node_id)
        return records

    def run_scenario(
        self,
        jobs: list[ProofJob],
        *,
        churn: Iterable[ChurnEvent] = (),
    ) -> list[JobRecord]:
        """Arrival-driven run with churn, retries, and autoscaling.

        Arrivals are always respected (jobs are routed at their
        ``arrival_s``), so deadline accounting is meaningful.  The
        churn trace addresses nodes by *initial* index; events for
        nodes the autoscaler has retired are skipped.
        """
        self._scenario = True
        self.respect = True
        self._total_jobs = len(jobs)
        for job in jobs:
            self.sim.schedule(
                job.arrival_s,
                (lambda j=job: self._submit(j)),
                priority=PRIO_ARRIVAL,
            )
        self._cancellable.extend(
            install(
                self.sim,
                TraceSource([(event.at_s, event) for event in churn]),
                self._on_churn,
                priority=PRIO_CHURN,
            )
        )
        if self.cluster.config.autoscale is not None:
            self._tick_handle = self.sim.schedule(
                self.cluster.config.autoscale.interval_s,
                self._tick,
                priority=PRIO_TICK,
            )
        self.sim.run()
        return self._finalize()
